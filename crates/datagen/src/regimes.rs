//! Regime-driven positional data — the sparse-relational analog.
//!
//! Weather and Forest (Covertype), the paper's "sparse" datasets, are
//! flattened relational tables: one item per attribute *position*, a few
//! thousand distinct values overall, and supports mined at 1–5%. What
//! makes them productive for pattern mining is a latent *regime*
//! (season/station climate for Weather, cover type/ecozone for Forest):
//! tuples of the same regime agree on many attribute values, producing
//! long patterns whose supports sit just above the mining thresholds —
//! exactly the structure recycling exploits (few groups, many members,
//! small outliers).
//!
//! [`RegimeGenerator`] reproduces that: each tuple samples a regime from
//! a skewed distribution, then each position takes the regime's
//! signature value with probability [`RegimeGenerator::adherence`] and a
//! Zipf-noise value otherwise.

use crate::zipf::Zipf;
use gogreen_data::{Transaction, TransactionDb};
use gogreen_util::rng::{Rng, SmallRng};

/// Generator for regime-structured positional data.
#[derive(Debug, Clone)]
pub struct RegimeGenerator {
    /// Number of tuples.
    pub num_transactions: usize,
    /// Positions per tuple (= tuple length).
    pub positions: usize,
    /// Distinct values per position.
    pub values_per_position: usize,
    /// Number of latent regimes.
    pub num_regimes: usize,
    /// Zipf exponent of the regime popularity distribution.
    pub regime_skew: f64,
    /// Probability that the *most regime-bound* position takes its
    /// regime's signature value. Adherence is interpolated down to
    /// [`RegimeGenerator::adherence_lo`] across positions (shape
    /// [`RegimeGenerator::adherence_gamma`]): real relational data has a
    /// few attributes locked to the regime and many loose ones, which is
    /// what bounds the maximal frequent-pattern length.
    pub adherence: f64,
    /// Adherence of the least regime-bound position.
    pub adherence_lo: f64,
    /// Interpolation exponent (1 = linear; >1 keeps more positions near
    /// the top).
    pub adherence_gamma: f64,
    /// Zipf exponent of the per-position noise distribution.
    pub noise_skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RegimeGenerator {
    fn default() -> Self {
        RegimeGenerator {
            num_transactions: 10_000,
            positions: 15,
            values_per_position: 100,
            num_regimes: 8,
            regime_skew: 1.0,
            adherence: 0.8,
            adherence_lo: 0.8,
            adherence_gamma: 1.0,
            noise_skew: 0.8,
            seed: 0x7265_6769,
        }
    }
}

impl RegimeGenerator {
    /// Item id of `(position, value)`.
    pub fn item_id(&self, position: usize, value: usize) -> u32 {
        (position * self.values_per_position + value) as u32
    }

    /// Total item-universe size.
    pub fn num_items(&self) -> usize {
        self.positions * self.values_per_position
    }

    /// Generates the database.
    pub fn generate(&self) -> TransactionDb {
        let mut db = TransactionDb::new();
        self.for_each_transaction(|row| {
            db.push(Transaction::from_ids(row.iter().copied()));
        });
        db
    }

    /// Streams every tuple through `f` without materializing the
    /// database. Rows arrive sorted ascending and deduplicated (one item
    /// per position, ids strictly increasing by position), in the exact
    /// order and RNG sequence [`Self::generate`] uses — `generate`
    /// delegates here, so the two are identical by construction.
    pub fn for_each_transaction(&self, mut f: impl FnMut(&[u32])) {
        assert!(self.positions > 0 && self.values_per_position > 0 && self.num_regimes > 0);
        assert!((0.0..=1.0).contains(&self.adherence));
        assert!((0.0..=self.adherence).contains(&self.adherence_lo));
        assert!(self.adherence_gamma > 0.0);
        let adherence_at = |pos: usize| -> f64 {
            if self.positions <= 1 {
                self.adherence
            } else {
                let t = (pos as f64 / (self.positions - 1) as f64).powf(self.adherence_gamma);
                self.adherence + t * (self.adherence_lo - self.adherence)
            }
        };
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let regime_dist = Zipf::new(self.num_regimes, self.regime_skew);
        let noise = Zipf::new(self.values_per_position, self.noise_skew);
        // Signature values per (regime, position): drawn uniformly so
        // different regimes mostly disagree (as different seasons or
        // cover types do).
        let signatures: Vec<Vec<usize>> = (0..self.num_regimes)
            .map(|_| (0..self.positions).map(|_| rng.gen_index(self.values_per_position)).collect())
            .collect();
        // Per-position noise permutation so popular noise values differ
        // across positions.
        let mut perms: Vec<Vec<usize>> = Vec::with_capacity(self.positions);
        for _ in 0..self.positions {
            let mut perm: Vec<usize> = (0..self.values_per_position).collect();
            for i in (1..perm.len()).rev() {
                perm.swap(i, rng.gen_index(i + 1));
            }
            perms.push(perm);
        }
        let mut buf = Vec::with_capacity(self.positions);
        for _ in 0..self.num_transactions {
            let z = regime_dist.sample(&mut rng);
            buf.clear();
            #[allow(clippy::needless_range_loop)] // pos drives sampling, not just indexing
            for pos in 0..self.positions {
                let value = if rng.gen_f64() < adherence_at(pos) {
                    signatures[z][pos]
                } else {
                    perms[pos][noise.sample(&mut rng)]
                };
                buf.push(self.item_id(pos, value));
            }
            f(&buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gogreen_data::FList;

    fn small() -> RegimeGenerator {
        RegimeGenerator {
            num_transactions: 4_000,
            positions: 12,
            values_per_position: 60,
            num_regimes: 6,
            adherence: 0.8,
            adherence_lo: 0.8,
            ..RegimeGenerator::default()
        }
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(small().generate(), small().generate());
    }

    #[test]
    fn constant_tuple_length_and_universe() {
        let g = small();
        let db = g.generate();
        assert!(db.iter().all(|t| t.len() == 12));
        assert!(db.stats().max_item.unwrap().id() < g.num_items() as u32);
    }

    #[test]
    fn regimes_create_midrange_frequent_items() {
        let db = small().generate();
        // The top regime's signature values should clear 5%: regime
        // share ≈ 0.41 (Zipf s=1 over 6), adherence 0.8 → ≈ 33%.
        let fl5 = FList::from_db(&db, (db.len() as f64 * 0.05) as u64);
        assert!(fl5.len() >= 12, "only {} items ≥ 5%", fl5.len());
        // But far fewer than the whole universe is frequent.
        assert!(fl5.len() < 200);
    }

    #[test]
    fn low_adherence_shortens_patterns() {
        // With adherence near zero the data is pure noise: at 20%
        // support almost nothing survives.
        let g = RegimeGenerator { adherence: 0.05, adherence_lo: 0.05, ..small() };
        let db = g.generate();
        let fl = FList::from_db(&db, (db.len() as f64 * 0.2) as u64);
        assert!(fl.len() <= 12);
    }

    #[test]
    fn different_regimes_disagree() {
        // Two distinct regimes should produce materially different
        // tuples: the most common tuple shape must not dominate
        // everything (i.e. there are ≥ 2 clusters).
        let db = small().generate();
        let fl = FList::from_db(&db, (db.len() as f64 * 0.02) as u64);
        // Multiple positions contribute ≥ 2 frequent values each.
        let mut per_position = std::collections::BTreeMap::new();
        for (item, _) in fl.iter() {
            *per_position.entry(item.id() / 60).or_insert(0usize) += 1;
        }
        let multi = per_position.values().filter(|&&n| n >= 2).count();
        assert!(multi >= 6, "only {multi} positions have ≥2 frequent values");
    }
}
