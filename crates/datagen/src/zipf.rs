//! Zipf-distributed sampling over `0..n`.

use gogreen_util::rng::Rng;

/// A Zipf sampler: value `k` (0-based) is drawn with probability
/// proportional to `1 / (k+1)^s`.
///
/// Sampling inverts the cumulative table by binary search — O(log n) per
/// draw, exact, no rejection.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative probabilities; `cdf[k]` = P(value ≤ k).
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a sampler over `0..n` with exponent `s ≥ 0`. `s = 0` is
    /// uniform; larger `s` concentrates mass on small values.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over an empty domain");
        assert!(s >= 0.0 && s.is_finite(), "invalid Zipf exponent {s}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point shortfall at the top end.
        *cdf.last_mut().expect("n > 0") = 1.0;
        Zipf { cdf }
    }

    /// Number of values in the domain.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false (the constructor rejects empty domains).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Probability of value `k`.
    pub fn probability(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }

    /// Draws one value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u = rng.gen_f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gogreen_util::rng::SmallRng;

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((z.probability(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn skew_concentrates_mass() {
        let z = Zipf::new(10, 2.0);
        assert!(z.probability(0) > 0.6);
        assert!(z.probability(9) < 0.01);
    }

    #[test]
    fn samples_cover_domain_and_respect_skew() {
        let z = Zipf::new(5, 1.0);
        let mut rng = SmallRng::seed_from_u64(42);
        let mut counts = [0usize; 5];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[3]);
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn single_value_domain() {
        let z = Zipf::new(1, 3.0);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.probability(0), 1.0);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let z = Zipf::new(100, 1.5);
        let total: f64 = (0..100).map(|k| z.probability(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn empty_domain_panics() {
        Zipf::new(0, 1.0);
    }
}
