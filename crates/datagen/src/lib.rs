#![warn(missing_docs)]

//! Synthetic transaction-database generators.
//!
//! The paper evaluates on four datasets we cannot redistribute: Weather
//! and Forest (sparse) and Connect-4 and Pumsb (dense, FIMI). Following
//! the substitution rule documented in `DESIGN.md` §4, this crate provides
//! generators that reproduce the *shape* of each regime:
//!
//! * [`quest::QuestGenerator`] — the classic IBM Quest market-basket
//!   model (Agrawal & Srikant): transactions assembled from a pool of
//!   corrupted, correlated potential patterns.
//! * [`regimes::RegimeGenerator`] — regime-structured positional data:
//!   the analog of the paper's sparse *relational* datasets (Weather,
//!   Forest), whose latent regimes (seasons, cover types) produce long
//!   patterns at low supports.
//! * [`dense::PositionalGenerator`] — attribute/value data in the style
//!   of Connect-4 and Pumsb: every tuple has one item per *position*
//!   (board square, census field), values drawn from skewed per-position
//!   distributions. A configurable fraction of positions is dominated by
//!   a single value, which is exactly what makes those datasets explode
//!   with long high-support patterns.
//! * [`zipf::Zipf`] — the skewed value sampler both generators use.
//! * [`presets`] — calibrated, seeded stand-ins for the paper's four
//!   datasets, scalable from smoke-test size to paper size.
//!
//! All generators are deterministic given their seed.

pub mod dense;
pub mod presets;
pub mod quest;
pub mod regimes;
pub mod zipf;

pub use dense::PositionalGenerator;
pub use presets::{DatasetPreset, PaperRow, PresetKind};
pub use quest::QuestGenerator;
pub use regimes::RegimeGenerator;
pub use zipf::Zipf;
