//! Calibrated stand-ins for the paper's four evaluation datasets.
//!
//! Each preset mirrors one row of the paper's Table 3: tuple count
//! (scalable), average tuple length, item-universe size, the initial
//! support `ξ_old` used to mine the recycled pattern set, and the `ξ_new`
//! sweep the figures plot. The paper's own Table 3 numbers are carried
//! along ([`DatasetPreset::paper_row`]) so the experiment harness can
//! print paper-vs-measured side by side.

use crate::dense::PositionalGenerator;
use crate::regimes::RegimeGenerator;
use gogreen_data::{MinSupport, TransactionDb};

/// Which paper dataset a preset imitates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PresetKind {
    /// Sparse; 1,015,367 × 15 over 7,959 items; `ξ_old = 5%`.
    Weather,
    /// Sparse; 581,012 × 13 over 15,970 items; `ξ_old = 1%`.
    Forest,
    /// Dense; 67,557 × 43 over 130 items; `ξ_old = 95%`.
    Connect4,
    /// Dense; 49,446 × 74 over 7,117 items; `ξ_old = 90%`.
    Pumsb,
}

/// The paper's Table 3 row for a dataset (reference values for
/// EXPERIMENTS.md; our generators reproduce shape, not these numbers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRow {
    /// Tuples in the original dataset.
    pub tuples: usize,
    /// Average tuple length.
    pub avg_len: f64,
    /// Item universe size.
    pub items: usize,
    /// `ξ_old` as a percentage.
    pub xi_old_pct: f64,
    /// Patterns mined at `ξ_old`.
    pub num_patterns: usize,
    /// Longest pattern at `ξ_old`.
    pub max_len: usize,
    /// Compression ratio under MCP.
    pub ratio_mcp: f64,
    /// Compression ratio under MLP.
    pub ratio_mlp: f64,
}

/// A scalable, seeded analog of one paper dataset.
///
/// ```
/// use gogreen_datagen::{DatasetPreset, PresetKind};
///
/// let preset = DatasetPreset::new(PresetKind::Connect4, 0.01);
/// let db = preset.generate();
/// assert_eq!(db.stats().avg_len, 43.0); // one item per board position
/// assert_eq!(db, preset.generate());    // deterministic
/// ```
#[derive(Debug, Clone, Copy)]
pub struct DatasetPreset {
    /// Which dataset is imitated.
    pub kind: PresetKind,
    /// Multiplier on the paper's tuple count (1.0 = paper size). The
    /// default experiment scale of 0.05 keeps the full suite in the
    /// minutes range.
    pub scale: f64,
}

impl DatasetPreset {
    /// Creates a preset at the given scale.
    pub fn new(kind: PresetKind, scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        DatasetPreset { kind, scale }
    }

    /// All four presets at one scale, in the paper's dataset order.
    pub fn all(scale: f64) -> Vec<DatasetPreset> {
        [PresetKind::Weather, PresetKind::Forest, PresetKind::Connect4, PresetKind::Pumsb]
            .into_iter()
            .map(|k| DatasetPreset::new(k, scale))
            .collect()
    }

    /// Dataset name as used in the paper.
    pub fn name(&self) -> &'static str {
        match self.kind {
            PresetKind::Weather => "weather",
            PresetKind::Forest => "forest",
            PresetKind::Connect4 => "connect4",
            PresetKind::Pumsb => "pumsb",
        }
    }

    /// Scaled tuple count (never below 2,000 so supports stay meaningful).
    pub fn num_tuples(&self) -> usize {
        ((self.paper_row().tuples as f64 * self.scale) as usize).max(2_000)
    }

    /// The initial threshold `ξ_old` the paper mines the recycled
    /// patterns at.
    pub fn xi_old(&self) -> MinSupport {
        MinSupport::percent(self.paper_row().xi_old_pct)
    }

    /// The `ξ_new` sweep (relaxations of `ξ_old`) the figures plot.
    pub fn sweep(&self) -> Vec<MinSupport> {
        let pct: &[f64] = match self.kind {
            PresetKind::Weather => &[4.0, 3.0, 2.0, 1.5, 1.0],
            PresetKind::Forest => &[0.9, 0.7, 0.5, 0.35, 0.25],
            PresetKind::Connect4 => &[92.0, 89.0, 86.0, 83.0, 80.0],
            PresetKind::Pumsb => &[87.0, 84.0, 81.0, 78.0, 75.0],
        };
        pct.iter().map(|&p| MinSupport::percent(p)).collect()
    }

    /// The paper's Table 3 reference numbers for this dataset.
    pub fn paper_row(&self) -> PaperRow {
        match self.kind {
            PresetKind::Weather => PaperRow {
                tuples: 1_015_367,
                avg_len: 15.0,
                items: 7_959,
                xi_old_pct: 5.0,
                num_patterns: 1_227,
                max_len: 9,
                ratio_mcp: 0.79, // Table 3 reports MLP ≥ MCP in ratio terms
                ratio_mlp: 0.75,
            },
            PresetKind::Forest => PaperRow {
                tuples: 581_012,
                avg_len: 13.0,
                items: 15_970,
                xi_old_pct: 1.0,
                num_patterns: 523,
                max_len: 4,
                ratio_mcp: 0.85,
                ratio_mlp: 0.82,
            },
            PresetKind::Connect4 => PaperRow {
                tuples: 67_557,
                avg_len: 43.0,
                items: 130,
                xi_old_pct: 95.0,
                num_patterns: 4_411,
                max_len: 10,
                ratio_mcp: 0.78,
                ratio_mlp: 0.77,
            },
            PresetKind::Pumsb => PaperRow {
                tuples: 49_446,
                avg_len: 74.0,
                items: 7_117,
                xi_old_pct: 90.0,
                num_patterns: 2_567,
                max_len: 8,
                ratio_mcp: 0.89,
                ratio_mlp: 0.88,
            },
        }
    }

    /// Generates the database (deterministic for a given kind and scale).
    pub fn generate(&self) -> TransactionDb {
        match self.configured() {
            PresetGenerator::Regime(g) => g.generate(),
            PresetGenerator::Positional(g) => g.generate(),
        }
    }

    /// Streams every tuple through `f` without materializing the
    /// database — same rows, order, and RNG sequence as
    /// [`Self::generate`]. This is how datasets larger than memory are
    /// written straight into bounded on-disk segment stores.
    pub fn for_each_transaction(&self, f: impl FnMut(&[u32])) {
        match self.configured() {
            PresetGenerator::Regime(g) => g.for_each_transaction(f),
            PresetGenerator::Positional(g) => g.for_each_transaction(f),
        }
    }

    /// The fully-configured underlying generator for this preset.
    fn configured(&self) -> PresetGenerator {
        let n = self.num_tuples();
        match self.kind {
            // Weather: 15 attribute positions × ~530 values ≈ 7,959
            // items; seasonal/climatic regimes give maxlen ≈ 9 at 5%.
            PresetKind::Weather => PresetGenerator::Regime(RegimeGenerator {
                num_transactions: n,
                positions: 15,
                values_per_position: 530,
                num_regimes: 10,
                regime_skew: 1.0,
                adherence: 0.97,
                adherence_lo: 0.10,
                adherence_gamma: 1.0,
                noise_skew: 0.8,
                seed: 0x7765_6174,
            }),
            // Forest (Covertype): 13 positions × ~1,228 values ≈ 15,970
            // items; cover-type regimes adhere weakly → maxlen ≈ 4 at 1%.
            PresetKind::Forest => PresetGenerator::Regime(RegimeGenerator {
                num_transactions: n,
                positions: 13,
                values_per_position: 1_228,
                num_regimes: 7,
                regime_skew: 0.9,
                adherence: 0.82,
                adherence_lo: 0.05,
                adherence_gamma: 1.2,
                noise_skew: 1.0,
                seed: 0x666f_7265,
            }),
            PresetKind::Connect4 => PresetGenerator::Positional(PositionalGenerator {
                num_transactions: n,
                positions: 43,
                values_per_position: 3,
                skew: 1.2,
                dominated_positions: 16,
                dominant_prob: 0.998,
                dominant_prob_lo: 0.80,
                dominant_gamma: 3.0,
                seed: 0x636f_6e34,
            }),
            PresetKind::Pumsb => PresetGenerator::Positional(PositionalGenerator {
                num_transactions: n,
                positions: 74,
                values_per_position: 96,
                skew: 2.5,
                dominated_positions: 14,
                dominant_prob: 0.995,
                dominant_prob_lo: 0.72,
                dominant_gamma: 3.0,
                seed: 0x7075_6d73,
            }),
        }
    }
}

/// A preset's concrete generator — the two families presets draw from.
enum PresetGenerator {
    Regime(RegimeGenerator),
    Positional(PositionalGenerator),
}

#[cfg(test)]
mod tests {
    use super::*;
    use gogreen_data::FList;

    #[test]
    fn four_presets_in_paper_order() {
        let all = DatasetPreset::all(0.01);
        assert_eq!(all.len(), 4);
        assert_eq!(all[0].name(), "weather");
        assert_eq!(all[3].name(), "pumsb");
    }

    #[test]
    fn num_tuples_scales_with_floor() {
        let w = DatasetPreset::new(PresetKind::Weather, 0.1);
        assert_eq!(w.num_tuples(), 101_536);
        let tiny = DatasetPreset::new(PresetKind::Pumsb, 0.000001);
        assert_eq!(tiny.num_tuples(), 2_000);
    }

    #[test]
    fn sweeps_relax_xi_old() {
        for p in DatasetPreset::all(0.01) {
            let n = 10_000;
            let old = p.xi_old().to_absolute(n);
            for s in p.sweep() {
                assert!(s.to_absolute(n) < old, "{}: {s} !< ξ_old", p.name());
            }
        }
    }

    #[test]
    fn connect4_preset_has_dense_shape() {
        let p = DatasetPreset::new(PresetKind::Connect4, 0.03);
        let db = p.generate();
        let stats = db.stats();
        assert_eq!(stats.avg_len, 43.0);
        assert!(stats.num_items <= 43 * 3);
        // ξ_old = 95% leaves a usable frequent-item set.
        let fl = FList::from_db(&db, p.xi_old().to_absolute(db.len()));
        assert!(fl.len() >= 6, "only {} items at 95%", fl.len());
    }

    #[test]
    fn weather_preset_has_sparse_shape() {
        let p = DatasetPreset::new(PresetKind::Weather, 0.005);
        let db = p.generate();
        let stats = db.stats();
        assert!(stats.avg_len > 10.0 && stats.avg_len < 20.0);
        // Sparse: at ξ_old = 5% only a small minority of items survive.
        let fl = FList::from_db(&db, p.xi_old().to_absolute(db.len()));
        assert!(fl.len() > 5, "some items must clear 5%");
        assert!((fl.len() as f64) < stats.num_items as f64 * 0.2);
    }

    #[test]
    fn generation_is_deterministic() {
        let p = DatasetPreset::new(PresetKind::Forest, 0.004);
        assert_eq!(p.generate(), p.generate());
    }

    #[test]
    fn streaming_matches_generate_row_for_row() {
        for p in DatasetPreset::all(0.0001) {
            let db = p.generate();
            let mut rows: Vec<Vec<u32>> = Vec::new();
            p.for_each_transaction(|r| rows.push(r.to_vec()));
            assert_eq!(rows.len(), db.len(), "{}", p.name());
            for (row, t) in rows.iter().zip(db.iter()) {
                assert!(
                    row.iter().copied().eq(t.iter().map(|i| i.id())),
                    "{}: streamed row diverges from generate()",
                    p.name()
                );
            }
        }
    }
}
