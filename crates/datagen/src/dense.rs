//! Dense attribute/value dataset generator.
//!
//! Connect-4 and Pumsb — the paper's dense datasets — are relational
//! tables flattened into transactions: every tuple carries exactly one
//! item per *position* (a board square, a census attribute), so tuples are
//! long and constant-length, the item universe is `positions ×
//! values-per-position`, and a handful of positions are dominated by one
//! value in nearly every tuple. Those dominated positions are what makes
//! dense data combinatorially explosive at 90–95% support: any subset of
//! the dominant items is frequent.
//!
//! [`PositionalGenerator`] reproduces exactly that structure with a
//! controllable number of dominated positions.

use crate::zipf::Zipf;
use gogreen_data::{Transaction, TransactionDb};
use gogreen_util::rng::{Rng, SmallRng};

/// Generator for dense positional (attribute/value) data.
#[derive(Debug, Clone)]
pub struct PositionalGenerator {
    /// Number of tuples.
    pub num_transactions: usize,
    /// Positions per tuple (= tuple length; Connect-4: 43, Pumsb: 74).
    pub positions: usize,
    /// Distinct values per position (Connect-4: 3, Pumsb: ~96).
    pub values_per_position: usize,
    /// Zipf exponent of the per-position value distribution for
    /// non-dominated positions.
    pub skew: f64,
    /// Number of *dominated* positions. Controls how many long patterns
    /// survive at very high support thresholds.
    pub dominated_positions: usize,
    /// Dominant-value probability of the most dominated position.
    /// Probabilities are interpolated linearly down to
    /// [`Self::dominant_prob_lo`] across the dominated positions, so
    /// lowering the threshold progressively admits more items — the
    /// pattern-count explosion real dense data shows.
    pub dominant_prob: f64,
    /// Dominant-value probability of the least dominated position.
    pub dominant_prob_lo: f64,
    /// Shape of the interpolation between `dominant_prob` and
    /// `dominant_prob_lo`: probability of position `k` is
    /// `hi − (hi − lo)·(k/(D−1))^gamma`. `gamma > 1` keeps many positions
    /// near the top before falling off — matching how real dense data
    /// stacks a dozen near-certain attribute values.
    pub dominant_gamma: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PositionalGenerator {
    fn default() -> Self {
        PositionalGenerator {
            num_transactions: 10_000,
            positions: 40,
            values_per_position: 3,
            skew: 1.0,
            dominated_positions: 12,
            dominant_prob: 0.995,
            dominant_prob_lo: 0.9,
            dominant_gamma: 2.0,
            seed: 0x6465_6e73,
        }
    }
}

impl PositionalGenerator {
    /// Item id of `(position, value)` — values of different positions
    /// never collide.
    pub fn item_id(&self, position: usize, value: usize) -> u32 {
        (position * self.values_per_position + value) as u32
    }

    /// Total size of the item universe.
    pub fn num_items(&self) -> usize {
        self.positions * self.values_per_position
    }

    /// Generates the database.
    pub fn generate(&self) -> TransactionDb {
        let mut db = TransactionDb::new();
        self.for_each_transaction(|row| {
            db.push(Transaction::from_ids(row.iter().copied()));
        });
        db
    }

    /// Streams every tuple through `f` without materializing the
    /// database. Rows arrive sorted ascending and deduplicated (one item
    /// per position, ids strictly increasing by position), in the exact
    /// order and RNG sequence [`Self::generate`] uses — `generate`
    /// delegates here, so the two are identical by construction.
    pub fn for_each_transaction(&self, mut f: impl FnMut(&[u32])) {
        assert!(self.positions > 0 && self.values_per_position > 0);
        assert!(self.dominated_positions <= self.positions);
        assert!((0.0..=1.0).contains(&self.dominant_prob));
        assert!((0.0..=self.dominant_prob).contains(&self.dominant_prob_lo));
        assert!(self.dominant_gamma > 0.0);
        let dom_prob = |pos: usize| -> f64 {
            if self.dominated_positions <= 1 {
                self.dominant_prob
            } else {
                let t =
                    (pos as f64 / (self.dominated_positions - 1) as f64).powf(self.dominant_gamma);
                self.dominant_prob + t * (self.dominant_prob_lo - self.dominant_prob)
            }
        };
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let zipf = Zipf::new(self.values_per_position, self.skew);
        // Each position permutes value popularity independently so the
        // dominant items are spread over the id space like real data.
        let mut perms: Vec<Vec<usize>> = Vec::with_capacity(self.positions);
        for _ in 0..self.positions {
            let mut perm: Vec<usize> = (0..self.values_per_position).collect();
            // Fisher–Yates.
            for i in (1..perm.len()).rev() {
                perm.swap(i, rng.gen_index(i + 1));
            }
            perms.push(perm);
        }
        let mut buf: Vec<u32> = Vec::with_capacity(self.positions);
        for _ in 0..self.num_transactions {
            buf.clear();
            #[allow(clippy::needless_range_loop)] // pos drives sampling, not just indexing
            for pos in 0..self.positions {
                let value = if pos < self.dominated_positions {
                    if self.values_per_position == 1 || rng.gen_f64() < dom_prob(pos) {
                        0
                    } else {
                        1 + rng.gen_index(self.values_per_position - 1)
                    }
                } else {
                    zipf.sample(&mut rng)
                };
                buf.push(self.item_id(pos, perms[pos][value]));
            }
            f(&buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gogreen_data::FList;

    fn small() -> PositionalGenerator {
        PositionalGenerator {
            num_transactions: 2_000,
            positions: 20,
            values_per_position: 3,
            dominated_positions: 8,
            ..PositionalGenerator::default()
        }
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(small().generate(), small().generate());
    }

    #[test]
    fn constant_tuple_length() {
        let db = small().generate();
        assert!(db.iter().all(|t| t.len() == 20));
        assert_eq!(db.stats().avg_len, 20.0);
    }

    #[test]
    fn item_ids_partition_by_position() {
        let g = small();
        assert_eq!(g.item_id(0, 2), 2);
        assert_eq!(g.item_id(1, 0), 3);
        assert_eq!(g.num_items(), 60);
        let db = g.generate();
        assert!(db.stats().max_item.unwrap().id() < 60);
    }

    #[test]
    fn dominated_positions_create_high_support_items() {
        let db = small().generate();
        // Domination grades from 0.995 down to 0.9 over the 8 dominated
        // positions, so the most dominated items clear 95%…
        let minsup = (db.len() as f64 * 0.95) as u64;
        let fl = FList::from_db(&db, minsup);
        assert!(fl.len() >= 3, "only {} items ≥95%", fl.len());
        // …more enter by 90%…
        let fl_lo = FList::from_db(&db, (db.len() as f64 * 0.88) as u64);
        assert!(fl_lo.len() > fl.len());
        // …and essentially none survive 99.9%.
        let fl_hi = FList::from_db(&db, (db.len() as f64 * 0.999) as u64);
        assert!(fl_hi.len() < 3);
    }

    #[test]
    fn non_dominated_positions_are_diverse() {
        let g = PositionalGenerator { dominated_positions: 0, skew: 0.3, ..small() };
        let db = g.generate();
        let minsup = (db.len() as f64 * 0.95) as u64;
        let fl = FList::from_db(&db, minsup);
        assert_eq!(fl.len(), 0, "no item should reach 95% without domination");
    }

    #[test]
    fn single_value_positions_are_total() {
        let g = PositionalGenerator {
            values_per_position: 1,
            dominated_positions: 5,
            positions: 5,
            num_transactions: 50,
            ..PositionalGenerator::default()
        };
        let db = g.generate();
        let fl = FList::from_db(&db, 50);
        assert_eq!(fl.len(), 5);
    }
}
