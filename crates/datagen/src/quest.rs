//! IBM Quest-style market-basket generator (Agrawal & Srikant, VLDB '94).
//!
//! Transactions are assembled from a pool of *potential patterns*:
//! correlated itemsets with exponentially distributed popularity. Each
//! chosen pattern is *corrupted* (items dropped) before insertion, which
//! is what produces the long tail of partially-supported itemsets real
//! basket data shows. This is the standard synthetic model behind the
//! `T10I4D100K`-family datasets and a faithful stand-in for the paper's
//! sparse Weather/Forest workloads.

use crate::zipf::Zipf;
use gogreen_data::{Transaction, TransactionDb};
use gogreen_util::rng::{Rng, SmallRng};

/// Configuration of a Quest generation run.
///
/// Field names follow the original paper's notation: `T` average
/// transaction size, `I` average potential-pattern size, `L` pattern-pool
/// size, `N` item universe, `D` transaction count.
#[derive(Debug, Clone)]
pub struct QuestGenerator {
    /// `D`: number of transactions.
    pub num_transactions: usize,
    /// `N`: number of distinct items.
    pub num_items: usize,
    /// `T`: mean transaction length.
    pub avg_transaction_len: f64,
    /// `I`: mean potential-pattern length.
    pub avg_pattern_len: f64,
    /// `L`: size of the potential-pattern pool.
    pub num_patterns: usize,
    /// Fraction of each pattern's items drawn from its predecessor
    /// (Quest's correlation level; 0.5 in the original).
    pub correlation: f64,
    /// Mean corruption level (probability of dropping pattern items;
    /// 0.5 in the original).
    pub corruption: f64,
    /// RNG seed: identical configurations generate identical databases.
    pub seed: u64,
}

impl Default for QuestGenerator {
    fn default() -> Self {
        QuestGenerator {
            num_transactions: 10_000,
            num_items: 1_000,
            avg_transaction_len: 10.0,
            avg_pattern_len: 4.0,
            num_patterns: 500,
            correlation: 0.5,
            corruption: 0.5,
            seed: 0x9061_7261,
        }
    }
}

impl QuestGenerator {
    /// Generates the database.
    pub fn generate(&self) -> TransactionDb {
        let mut db = TransactionDb::new();
        self.for_each_transaction(|row| {
            db.push(Transaction::from_ids(row.iter().copied()));
        });
        db
    }

    /// Streams every transaction through `f` without materializing the
    /// database. Rows arrive sorted ascending and deduplicated, in the
    /// exact order and RNG sequence [`Self::generate`] uses — `generate`
    /// delegates here, so the two are identical by construction.
    pub fn for_each_transaction(&self, mut f: impl FnMut(&[u32])) {
        assert!(self.num_items > 0 && self.num_patterns > 0);
        let mut rng = SmallRng::seed_from_u64(self.seed);

        // Potential patterns with Zipf popularity (stand-in for Quest's
        // exponential weights — same heavy-tail effect) and per-pattern
        // corruption levels.
        let mut patterns: Vec<Vec<u32>> = Vec::with_capacity(self.num_patterns);
        let mut corruption: Vec<f64> = Vec::with_capacity(self.num_patterns);
        for p in 0..self.num_patterns {
            let len = poisson_at_least_one(&mut rng, self.avg_pattern_len);
            let mut items = Vec::with_capacity(len);
            if p > 0 {
                // Correlated fraction reuses items of the previous pattern.
                let prev = &patterns[p - 1];
                for &it in prev.iter() {
                    if items.len() < len && rng.gen_f64() < self.correlation {
                        items.push(it);
                    }
                }
            }
            while items.len() < len {
                let it = rng.gen_below(self.num_items as u64) as u32;
                if !items.contains(&it) {
                    items.push(it);
                }
            }
            items.sort_unstable();
            items.dedup();
            patterns.push(items);
            corruption.push((self.corruption + rng.gen_f64() * 0.2 - 0.1).clamp(0.0, 0.95));
        }
        let popularity = Zipf::new(self.num_patterns, 1.0);

        let mut buf: Vec<u32> = Vec::new();
        for _ in 0..self.num_transactions {
            let target = poisson_at_least_one(&mut rng, self.avg_transaction_len);
            buf.clear();
            // Fill from corrupted patterns until the target size is met.
            let mut guard = 0;
            while buf.len() < target && guard < 8 * target {
                guard += 1;
                let p = popularity.sample(&mut rng);
                let level = corruption[p];
                for &it in &patterns[p] {
                    if rng.gen_f64() >= level {
                        buf.push(it);
                    }
                }
            }
            // Top up with random noise items if patterns under-filled.
            while buf.len() < target {
                buf.push(rng.gen_below(self.num_items as u64) as u32);
            }
            // Normalize after all sampling so the RNG sequence is
            // untouched; `Transaction::from_ids` would do the same.
            buf.sort_unstable();
            buf.dedup();
            f(&buf);
        }
    }
}

/// Samples a Poisson-like length with mean `mean`, clamped to ≥ 1.
///
/// Uses Knuth's product method for small means (all uses here).
fn poisson_at_least_one<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> usize {
    let l = (-mean).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        k += 1;
        p *= rng.gen_f64();
        if p <= l || k > (mean * 8.0) as usize + 16 {
            break;
        }
    }
    (k - 1).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> QuestGenerator {
        QuestGenerator {
            num_transactions: 2_000,
            num_items: 200,
            avg_transaction_len: 8.0,
            avg_pattern_len: 3.0,
            num_patterns: 60,
            ..QuestGenerator::default()
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = small().generate();
        let b = small().generate();
        assert_eq!(a, b);
    }

    #[test]
    fn streaming_matches_generate_row_for_row() {
        let g = small();
        let db = g.generate();
        let mut rows: Vec<Vec<u32>> = Vec::new();
        g.for_each_transaction(|r| rows.push(r.to_vec()));
        assert_eq!(rows.len(), db.len());
        for (row, t) in rows.iter().zip(db.iter()) {
            assert!(row.iter().copied().eq(t.iter().map(|i| i.id())));
            assert!(row.windows(2).all(|w| w[0] < w[1]), "rows must arrive sorted unique");
        }
    }

    #[test]
    fn different_seed_differs() {
        let a = small().generate();
        let b = QuestGenerator { seed: 7, ..small() }.generate();
        assert_ne!(a, b);
    }

    #[test]
    fn shape_matches_configuration() {
        let db = small().generate();
        let stats = db.stats();
        assert_eq!(stats.num_tuples, 2_000);
        assert!(stats.max_item.unwrap().id() < 200);
        // Mean length lands near the target (generous tolerance; the
        // pattern-fill loop overshoots a little by design).
        assert!(stats.avg_len > 5.0 && stats.avg_len < 14.0, "avg_len = {}", stats.avg_len);
    }

    #[test]
    fn produces_frequent_patterns_beyond_singletons() {
        // The whole point of Quest data: correlated patterns recur, so
        // some 2+-itemsets are frequent at a few percent support.
        let db = small().generate();
        let fl = gogreen_data::FList::from_db(&db, 40); // 2%
        assert!(fl.len() > 10, "only {} frequent items", fl.len());
    }

    #[test]
    fn poisson_mean_is_roughly_right() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 20_000;
        let total: usize = (0..n).map(|_| poisson_at_least_one(&mut rng, 10.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 10.0).abs() < 0.8, "mean = {mean}");
    }

    #[test]
    fn poisson_never_returns_zero() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..1000 {
            assert!(poisson_at_least_one(&mut rng, 0.3) >= 1);
        }
    }
}
