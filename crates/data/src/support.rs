//! Minimum-support thresholds.

use std::fmt;

/// A minimum-support threshold `ξ`.
///
/// The paper specifies supports as percentages of the database size (e.g.
/// `ξ_old = 5%`) but counts tuples; both forms convert to an absolute tuple
/// count through [`MinSupport::to_absolute`]. A pattern is *frequent* when
/// its support is **at least** the absolute threshold (we follow the common
/// `sup(X) ≥ ξ` convention; the paper's "greater than" wording is absorbed
/// into the threshold value itself).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MinSupport {
    /// An absolute number of tuples. `Absolute(0)` is normalized to 1.
    Absolute(u64),
    /// A fraction of the database size in `[0, 1]`.
    Relative(f64),
}

impl MinSupport {
    /// Converts to an absolute tuple count for a database of `db_len`
    /// tuples. Relative thresholds round up (`ceil`), so `Relative(0.05)`
    /// over 100 tuples demands support ≥ 5; results are clamped to ≥ 1
    /// because a support-0 threshold would make every subset of `I`
    /// "frequent".
    pub fn to_absolute(self, db_len: usize) -> u64 {
        match self {
            MinSupport::Absolute(n) => n.max(1),
            MinSupport::Relative(f) => {
                assert!((0.0..=1.0).contains(&f), "relative support {f} outside [0,1]");
                ((f * db_len as f64).ceil() as u64).max(1)
            }
        }
    }

    /// True when `self` is a tighter (higher) threshold than `other` for a
    /// database of `db_len` tuples.
    pub fn is_tighter_than(self, other: MinSupport, db_len: usize) -> bool {
        self.to_absolute(db_len) > other.to_absolute(db_len)
    }

    /// Percentage helper: `MinSupport::percent(5.0)` is `Relative(0.05)`.
    pub fn percent(p: f64) -> Self {
        MinSupport::Relative(p / 100.0)
    }
}

impl fmt::Display for MinSupport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MinSupport::Absolute(n) => write!(f, "{n} tuples"),
            MinSupport::Relative(r) => write!(f, "{}%", r * 100.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absolute_clamps_to_one() {
        assert_eq!(MinSupport::Absolute(0).to_absolute(100), 1);
        assert_eq!(MinSupport::Absolute(7).to_absolute(100), 7);
    }

    #[test]
    fn relative_rounds_up() {
        assert_eq!(MinSupport::Relative(0.05).to_absolute(100), 5);
        assert_eq!(MinSupport::Relative(0.05).to_absolute(101), 6);
        assert_eq!(MinSupport::Relative(0.0).to_absolute(100), 1);
        assert_eq!(MinSupport::Relative(1.0).to_absolute(100), 100);
    }

    #[test]
    fn percent_constructor() {
        assert_eq!(MinSupport::percent(5.0).to_absolute(1000), 50);
    }

    #[test]
    fn tighter_comparison() {
        let five = MinSupport::percent(5.0);
        let three = MinSupport::percent(3.0);
        assert!(five.is_tighter_than(three, 1000));
        assert!(!three.is_tighter_than(five, 1000));
        assert!(!five.is_tighter_than(five, 1000));
        // Mixed forms compare through the absolute value.
        assert!(MinSupport::Absolute(51).is_tighter_than(five, 1000));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn relative_out_of_range_panics() {
        MinSupport::Relative(1.5).to_absolute(10);
    }

    #[test]
    fn display_forms() {
        assert_eq!(MinSupport::Absolute(3).to_string(), "3 tuples");
        assert_eq!(MinSupport::percent(5.0).to_string(), "5%");
    }
}
