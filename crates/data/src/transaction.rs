//! Transactions (tuples) — sorted, duplicate-free itemsets.

use crate::item::Item;
use gogreen_util::HeapSize;
use std::fmt;

/// A single tuple of a transaction database.
///
/// Items are stored sorted ascending by id with duplicates removed, so
/// containment tests ([`Transaction::contains_all`]) are linear merges and
/// the representation is canonical: two transactions with the same item set
/// compare equal regardless of input order.
///
/// Databases store tuples in flat CSR form
/// ([`crate::TransactionDb`] over [`crate::CsrTuples`]); `Transaction`
/// is the owned boundary type for constructing and extracting individual
/// tuples. The slice-level operations ([`contains_all`],
/// [`difference_into`]) are free functions so CSR rows use them without
/// materializing a `Transaction`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Transaction {
    items: Box<[Item]>,
}

/// True when every item of `pattern` occurs in `tuple`. Both slices must
/// be sorted ascending; the test is a linear merge.
pub fn contains_all(tuple: &[Item], pattern: &[Item]) -> bool {
    debug_assert!(pattern.windows(2).all(|w| w[0] < w[1]));
    if pattern.len() > tuple.len() {
        return false;
    }
    let mut t = tuple.iter();
    'outer: for p in pattern {
        for it in t.by_ref() {
            match it.cmp(p) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

/// Appends the items of `tuple` not in `pattern` (both sorted ascending)
/// to `out`: the *outlying items* left over after compressing with
/// `pattern` (paper §3.1, Table 2). The reusable output buffer is the
/// no-allocation path the compression kernel runs per tuple.
pub fn difference_into(tuple: &[Item], pattern: &[Item], out: &mut Vec<Item>) {
    debug_assert!(pattern.windows(2).all(|w| w[0] < w[1]));
    let mut p = 0;
    for &it in tuple {
        while p < pattern.len() && pattern[p] < it {
            p += 1;
        }
        if p < pattern.len() && pattern[p] == it {
            p += 1;
        } else {
            out.push(it);
        }
    }
}

impl Transaction {
    /// Builds a transaction from arbitrary items, sorting and deduplicating.
    pub fn new(mut items: Vec<Item>) -> Self {
        items.sort_unstable();
        items.dedup();
        Transaction { items: items.into_boxed_slice() }
    }

    /// Builds a transaction from raw `u32` ids.
    pub fn from_ids(ids: impl IntoIterator<Item = u32>) -> Self {
        Self::new(ids.into_iter().map(Item).collect())
    }

    /// Builds from a slice already known to be sorted ascending and unique.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the invariant does not hold.
    pub fn from_sorted_unchecked(items: Vec<Item>) -> Self {
        debug_assert!(items.windows(2).all(|w| w[0] < w[1]), "items must be sorted and unique");
        Transaction { items: items.into_boxed_slice() }
    }

    /// The items, sorted ascending.
    #[inline]
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Number of items.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True for the empty tuple.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Membership test (binary search).
    #[inline]
    pub fn contains(&self, item: Item) -> bool {
        self.items.binary_search(&item).is_ok()
    }

    /// True when every item of `pattern` occurs in this transaction.
    /// `pattern` must be sorted ascending; the test is a linear merge.
    pub fn contains_all(&self, pattern: &[Item]) -> bool {
        contains_all(&self.items, pattern)
    }

    /// Items of this transaction not in `pattern` (both sorted): the
    /// *outlying items* left over after compressing with `pattern`
    /// (paper §3.1, Table 2).
    pub fn difference(&self, pattern: &[Item]) -> Vec<Item> {
        let mut out = Vec::with_capacity(self.items.len().saturating_sub(pattern.len()));
        difference_into(&self.items, pattern, &mut out);
        out
    }
}

impl fmt::Display for Transaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (k, it) in self.items().iter().enumerate() {
            if k > 0 {
                write!(f, " ")?;
            }
            write!(f, "{it}")?;
        }
        write!(f, "]")
    }
}

impl HeapSize for Transaction {
    fn heap_size(&self) -> usize {
        self.items.heap_size()
    }
}

impl FromIterator<u32> for Transaction {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        Transaction::from_ids(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ids: &[u32]) -> Transaction {
        Transaction::from_ids(ids.iter().copied())
    }

    #[test]
    fn new_sorts_and_dedups() {
        let tx = t(&[5, 1, 3, 1, 5]);
        assert_eq!(tx.items(), &[Item(1), Item(3), Item(5)]);
        assert_eq!(tx.len(), 3);
    }

    #[test]
    fn canonical_equality() {
        assert_eq!(t(&[3, 1, 2]), t(&[1, 2, 3]));
        assert_ne!(t(&[1, 2]), t(&[1, 2, 3]));
    }

    #[test]
    fn contains_single() {
        let tx = t(&[2, 4, 6]);
        assert!(tx.contains(Item(4)));
        assert!(!tx.contains(Item(5)));
    }

    #[test]
    fn contains_all_subset() {
        let tx = t(&[1, 2, 3, 4, 5]);
        assert!(tx.contains_all(&[Item(2), Item(4)]));
        assert!(tx.contains_all(&[]));
        assert!(tx.contains_all(&[Item(1), Item(2), Item(3), Item(4), Item(5)]));
        assert!(!tx.contains_all(&[Item(2), Item(6)]));
        assert!(!tx.contains_all(&[Item(0)]));
    }

    #[test]
    fn contains_all_longer_pattern_fails_fast() {
        let tx = t(&[1, 2]);
        assert!(!tx.contains_all(&[Item(1), Item(2), Item(3)]));
    }

    #[test]
    fn difference_removes_pattern_items() {
        let tx = t(&[1, 2, 3, 4, 5]);
        assert_eq!(tx.difference(&[Item(2), Item(4)]), vec![Item(1), Item(3), Item(5)]);
        assert_eq!(tx.difference(&[]), tx.items().to_vec());
        assert!(tx.difference(tx.items()).is_empty());
    }

    #[test]
    fn difference_ignores_pattern_items_absent_from_tx() {
        let tx = t(&[1, 3]);
        assert_eq!(tx.difference(&[Item(2)]), vec![Item(1), Item(3)]);
    }

    #[test]
    fn empty_transaction() {
        let tx = t(&[]);
        assert!(tx.is_empty());
        assert!(tx.contains_all(&[]));
        assert!(!tx.contains(Item(0)));
    }

    #[test]
    fn display_formats_items() {
        assert_eq!(t(&[2, 1]).to_string(), "[i1 i2]");
    }
}
