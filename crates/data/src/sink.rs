//! Pattern sinks: where miners deliver their output.
//!
//! The paper excludes the cost of *outputting* patterns from all reported
//! timings (§5.2) because it is identical across algorithms. Miners here
//! therefore emit into a [`PatternSink`]: tests use [`CollectSink`] to
//! materialize a [`PatternSet`], while benchmarks use [`CountSink`] so that
//! allocation of millions of result itemsets does not drown out the mining
//! cost being compared.

use crate::item::Item;
use crate::pattern::{Pattern, PatternSet};

/// Receives each frequent pattern exactly once.
pub trait PatternSink {
    /// Called once per discovered pattern. `items` need not be sorted;
    /// sinks that materialize patterns canonicalize.
    fn emit(&mut self, items: &[Item], support: u64);
}

/// Collects emitted patterns into a [`PatternSet`].
#[derive(Debug, Default)]
pub struct CollectSink {
    set: PatternSet,
}

impl CollectSink {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the sink, yielding the collected set.
    pub fn into_set(self) -> PatternSet {
        self.set
    }

    /// Borrowed view of the collected set.
    pub fn set(&self) -> &PatternSet {
        &self.set
    }
}

impl PatternSink for CollectSink {
    fn emit(&mut self, items: &[Item], support: u64) {
        self.set.insert(Pattern::new(items.to_vec(), support));
    }
}

/// Counts emitted patterns without materializing them.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountSink {
    count: u64,
    total_items: u64,
    max_len: usize,
    /// XOR-fold of (items, support); defeats dead-code elimination in
    /// benchmarks and doubles as a cheap cross-run checksum.
    checksum: u64,
}

impl CountSink {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of patterns emitted.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of pattern lengths.
    pub fn total_items(&self) -> u64 {
        self.total_items
    }

    /// Longest pattern seen.
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// Order-independent checksum of everything emitted.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }
}

impl PatternSink for CountSink {
    fn emit(&mut self, items: &[Item], support: u64) {
        self.count += 1;
        self.total_items += items.len() as u64;
        self.max_len = self.max_len.max(items.len());
        let mut h = support.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        for &it in items {
            h ^= u64::from(it.id()).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
        }
        self.checksum ^= h;
    }
}

/// Adapts a closure as a sink.
pub struct FnSink<F: FnMut(&[Item], u64)>(pub F);

impl<F: FnMut(&[Item], u64)> PatternSink for FnSink<F> {
    fn emit(&mut self, items: &[Item], support: u64) {
        (self.0)(items, support)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_sink_builds_set() {
        let mut s = CollectSink::new();
        s.emit(&[Item(2), Item(1)], 4);
        s.emit(&[Item(3)], 2);
        let set = s.into_set();
        assert_eq!(set.len(), 2);
        assert_eq!(set.support_of(&[Item(1), Item(2)]), Some(4));
    }

    #[test]
    fn count_sink_counts() {
        let mut s = CountSink::new();
        s.emit(&[Item(1)], 4);
        s.emit(&[Item(1), Item(2), Item(3)], 2);
        assert_eq!(s.count(), 2);
        assert_eq!(s.total_items(), 4);
        assert_eq!(s.max_len(), 3);
    }

    #[test]
    fn count_sink_checksum_is_order_independent() {
        let mut a = CountSink::new();
        a.emit(&[Item(1)], 4);
        a.emit(&[Item(2)], 3);
        let mut b = CountSink::new();
        b.emit(&[Item(2)], 3);
        b.emit(&[Item(1)], 4);
        assert_eq!(a.checksum(), b.checksum());
        let mut c = CountSink::new();
        c.emit(&[Item(2)], 3);
        c.emit(&[Item(1)], 5);
        assert_ne!(a.checksum(), c.checksum());
    }

    #[test]
    fn fn_sink_calls_closure() {
        let mut seen = Vec::new();
        {
            let mut s = FnSink(|items: &[Item], sup| seen.push((items.len(), sup)));
            s.emit(&[Item(9)], 1);
        }
        assert_eq!(seen, vec![(1, 1)]);
    }
}
