//! Text interchange format for pattern sets.
//!
//! One pattern per line: whitespace-separated item ids, a `:` separator,
//! and the support — e.g. `2 5 6 : 3` for the paper's `fgc:3`. Blank
//! lines and `#` comments are ignored. This is how mined `FP` sets are
//! persisted between sessions (the multi-user recycling story needs
//! pattern sets that outlive the process that mined them).

use crate::error::DataError;
use crate::pattern::{Pattern, PatternSet};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Reads a pattern set in the `items : support` line format.
pub fn read_patterns<R: Read>(reader: R) -> Result<PatternSet, DataError> {
    let mut set = PatternSet::new();
    let mut reader = BufReader::new(reader);
    let mut buf = String::new();
    let mut line_no = 0usize;
    loop {
        buf.clear();
        if reader.read_line(&mut buf)? == 0 {
            break;
        }
        line_no += 1;
        let line = buf.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (items_part, support_part) = line.split_once(':').ok_or_else(|| DataError::Format {
            line: line_no,
            reason: "missing ':' separator".into(),
        })?;
        let mut ids = Vec::new();
        for token in items_part.split_whitespace() {
            let id: u32 = token
                .parse()
                .map_err(|_| DataError::Parse { line: line_no, token: token.to_owned() })?;
            ids.push(id);
        }
        if ids.is_empty() {
            return Err(DataError::Format {
                line: line_no,
                reason: "pattern has no items before ':'".into(),
            });
        }
        let support: u64 = support_part.trim().parse().map_err(|_| DataError::Parse {
            line: line_no,
            token: support_part.trim().to_owned(),
        })?;
        set.insert(Pattern::from_ids(ids, support));
    }
    Ok(set)
}

/// Writes a pattern set in the `items : support` line format, in
/// canonical (lexicographic) order so files diff cleanly.
pub fn write_patterns<W: Write>(set: &PatternSet, writer: W) -> Result<(), DataError> {
    let mut w = BufWriter::new(writer);
    let mut line = String::new();
    for p in set.sorted() {
        line.clear();
        for (k, it) in p.items().iter().enumerate() {
            if k > 0 {
                line.push(' ');
            }
            line.push_str(&it.id().to_string());
        }
        line.push_str(" : ");
        line.push_str(&p.support().to_string());
        line.push('\n');
        w.write_all(line.as_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a pattern set from a file path.
pub fn read_patterns_file(path: impl AsRef<Path>) -> Result<PatternSet, DataError> {
    read_patterns(std::fs::File::open(path)?)
}

/// Writes a pattern set to a file path.
pub fn write_patterns_file(set: &PatternSet, path: impl AsRef<Path>) -> Result<(), DataError> {
    write_patterns(set, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Item;

    fn sample() -> PatternSet {
        [
            Pattern::from_ids([2u32, 5, 6], 3),
            Pattern::from_ids([0u32, 4], 3),
            Pattern::from_ids([4u32], 4),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn round_trip() {
        let set = sample();
        let mut buf = Vec::new();
        write_patterns(&set, &mut buf).unwrap();
        let back = read_patterns(&buf[..]).unwrap();
        assert!(back.same_patterns_as(&set));
    }

    #[test]
    fn output_is_canonical_and_readable() {
        let mut buf = Vec::new();
        write_patterns(&sample(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines, vec!["0 4 : 3", "2 5 6 : 3", "4 : 4"]);
    }

    #[test]
    fn skips_comments_and_blanks() {
        let text = "# mined at 5%\n\n1 2 : 7\n";
        let set = read_patterns(text.as_bytes()).unwrap();
        assert_eq!(set.len(), 1);
        assert_eq!(set.support_of(&[Item(1), Item(2)]), Some(7));
    }

    #[test]
    fn rejects_malformed_lines() {
        // Structural problems are Format errors; bad tokens are Parse.
        let no_colon = read_patterns("1 2 7\n".as_bytes()).unwrap_err();
        assert!(matches!(no_colon, DataError::Format { line: 1, .. }), "{no_colon:?}");
        let no_items = read_patterns(": 7\n".as_bytes()).unwrap_err();
        assert!(matches!(no_items, DataError::Format { line: 1, .. }), "{no_items:?}");
        let bad_support = read_patterns("1 : x\n".as_bytes()).unwrap_err();
        assert!(
            matches!(&bad_support, DataError::Parse { line: 1, token } if token == "x"),
            "{bad_support:?}"
        );
        let bad_item = read_patterns("a : 7\n".as_bytes()).unwrap_err();
        assert!(
            matches!(&bad_item, DataError::Parse { line: 1, token } if token == "a"),
            "{bad_item:?}"
        );
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join(format!("gogreen-pio-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fp.txt");
        write_patterns_file(&sample(), &path).unwrap();
        let back = read_patterns_file(&path).unwrap();
        assert!(back.same_patterns_as(&sample()));
        std::fs::remove_dir_all(&dir).ok();
    }
}
