//! The substrate abstraction behind the unified mining engines.
//!
//! The paper's central identity — a raw database is just a compressed
//! database in which every group has an empty head and unit count — lets
//! one traversal implementation per algorithm family serve both the
//! baseline miners and their recycling counterparts. [`GroupedSource`]
//! captures exactly what a root-level engine build needs from either
//! substrate: groups (a shared pattern head, member outlier lists, a
//! bare-member count) plus a residue of plain rank tuples.
//!
//! Tuples come out as [`TupleSlices`] windows over flat CSR storage —
//! rows are `&[u32]` slices of one shared buffer, so engine inner loops
//! are slice-native (binary search, `partition_point`, suffix slicing)
//! and a whole-substrate scan never chases per-tuple pointers.
//!
//! Two implementations exist:
//!
//! * `CompressedRankDb` (in `gogreen-core`) — the real thing, produced by
//!   `CompressedDb::to_ranks`;
//! * [`PlainRanks`] — a zero-cost degenerate view over encoded plain
//!   tuples: no groups at all, so the group-at-a-time code paths vanish
//!   statically ([`GroupedSource::GROUPED`] is `false`) and counting
//!   reduces to per-tuple counting with no branch in the inner loop.

use crate::flat::{CsrTuples, TupleSlices};

/// Read access to a (possibly degenerately) grouped rank database.
///
/// Tuples are rank lists, ascending, against the caller's F-list. Groups
/// carry a non-empty `pattern` head shared by `group_count` members;
/// members either contribute an extra non-empty `outliers` rank list or
/// are counted `bare`. `plain` tuples belong to no group.
pub trait GroupedSource {
    /// Whether this substrate can contain groups at all. `false` lets
    /// monomorphized engines drop group handling statically.
    const GROUPED: bool;

    /// Rank-space size (length of the F-list the tuples were encoded
    /// against).
    fn num_ranks(&self) -> usize;

    /// Number of groups. Always 0 when [`Self::GROUPED`] is `false`.
    fn num_groups(&self) -> usize;

    /// The shared pattern head of group `g` (ascending ranks, non-empty).
    fn group_pattern(&self, g: usize) -> &[u32];

    /// Outlier rank lists (each ascending, non-empty) of group `g`'s
    /// members that have any, as a CSR window.
    fn group_outliers(&self, g: usize) -> TupleSlices<'_>;

    /// Members of group `g` whose tuple *is* the pattern head.
    fn group_bare(&self, g: usize) -> u64;

    /// Tuples covered by no group (ascending ranks, non-empty), as a CSR
    /// window.
    fn plain(&self) -> TupleSlices<'_>;

    /// Member count of group `g` (outlier members + bare members).
    fn group_count(&self, g: usize) -> u64 {
        self.group_outliers(g).len() as u64 + self.group_bare(g)
    }
}

/// The degenerate [`GroupedSource`]: a borrowed CSR window of encoded
/// plain tuples, no groups (head = ∅, count = 1 per tuple in the paper's
/// identity). Wrapping is free; the raw miners encode against an F-list
/// exactly as before and hand the engines this view.
#[derive(Debug, Clone, Copy)]
pub struct PlainRanks<'a> {
    tuples: TupleSlices<'a>,
    num_ranks: usize,
}

impl<'a> PlainRanks<'a> {
    /// Wraps `tuples` (rank lists, ascending, non-empty) encoded against
    /// an F-list of `num_ranks` entries.
    pub fn new(tuples: TupleSlices<'a>, num_ranks: usize) -> Self {
        debug_assert!(tuples.iter().all(|t| !t.is_empty() && t.windows(2).all(|w| w[0] < w[1])));
        PlainRanks { tuples, num_ranks }
    }

    /// Convenience wrapper over owned CSR storage.
    pub fn from_csr(tuples: &'a CsrTuples<u32>, num_ranks: usize) -> Self {
        Self::new(tuples.as_slices(), num_ranks)
    }
}

impl GroupedSource for PlainRanks<'_> {
    const GROUPED: bool = false;

    fn num_ranks(&self) -> usize {
        self.num_ranks
    }

    fn num_groups(&self) -> usize {
        0
    }

    fn group_pattern(&self, _g: usize) -> &[u32] {
        unreachable!("PlainRanks has no groups")
    }

    fn group_outliers(&self, _g: usize) -> TupleSlices<'_> {
        unreachable!("PlainRanks has no groups")
    }

    fn group_bare(&self, _g: usize) -> u64 {
        unreachable!("PlainRanks has no groups")
    }

    fn plain(&self) -> TupleSlices<'_> {
        self.tuples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_ranks_is_all_residue() {
        let mut tuples = CsrTuples::new();
        tuples.push_row(&[0, 2]);
        tuples.push_row(&[1]);
        let v = PlainRanks::from_csr(&tuples, 3);
        const { assert!(!PlainRanks::GROUPED) };
        assert_eq!(v.num_ranks(), 3);
        assert_eq!(v.num_groups(), 0);
        assert_eq!(v.plain().len(), 2);
        assert_eq!(v.plain().row(0), &[0, 2]);
        assert_eq!(v.plain().row(1), &[1]);
    }
}
