//! Search-pruning hooks for constrained mining.
//!
//! Anti-monotone and succinct constraints can be *pushed into* the
//! depth-first search instead of post-filtering its output (the paper's
//! §2 cites the constrained-mining line of work [12, 14] for this).
//! [`SearchPrune`] is the hook surface: miners consult it at three
//! points, and the constraints crate adapts its
//! [`Pushdown`](https://docs.rs) bundle onto it.
//!
//! Soundness contract (anti-monotonicity): if `prefix_ok` returns false
//! for a prefix, it must return false for every superset, and if
//! `may_extend(n)` is false then no pattern longer than `n` is wanted.
//! Under that contract a pruned search emits exactly the frequent
//! patterns that satisfy the pushed predicates.

use crate::item::Item;

/// Prune hooks consulted during the pattern-growth search.
pub trait SearchPrune {
    /// May `item` appear in any output pattern? Items rejected here are
    /// stripped from the search space entirely (succinct `X ⊆ S`).
    fn item_allowed(&self, item: Item) -> bool;

    /// May a prefix of length `len` be extended further
    /// (anti-monotone `|X| ≤ k`)?
    fn may_extend(&self, len: usize) -> bool;

    /// Does the prefix (unsorted item list) satisfy every pushed
    /// anti-monotone predicate? A `false` abandons the whole subtree.
    fn prefix_ok(&self, items: &[Item]) -> bool;
}

/// The no-op pruner: unconstrained mining.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoPrune;

impl SearchPrune for NoPrune {
    #[inline]
    fn item_allowed(&self, _: Item) -> bool {
        true
    }

    #[inline]
    fn may_extend(&self, _: usize) -> bool {
        true
    }

    #[inline]
    fn prefix_ok(&self, _: &[Item]) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_prune_allows_everything() {
        let p = NoPrune;
        assert!(p.item_allowed(Item(0)));
        assert!(p.may_extend(usize::MAX));
        assert!(p.prefix_ok(&[Item(1), Item(2)]));
    }
}
