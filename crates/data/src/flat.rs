//! Flat (CSR) tuple storage and projection slab arenas.
//!
//! Every hot loop in the pipeline — cover sweeps, F-list counting,
//! group-at-a-time candidate tests, projected-database construction —
//! walks tuples. Storing them as `Vec<Vec<u32>>` makes each tuple its own
//! heap allocation and every scan a pointer chase; [`CsrTuples`] replaces
//! that with the compressed-sparse-row layout — one flat element buffer
//! plus an offsets array — so a whole-database scan is a single linear
//! walk over one allocation and a chunked parallel scan is a range split
//! of the same buffer.
//!
//! [`TupleSlices`] is the borrowed view engines traverse (rows come out
//! as `&[u32]` slices, not iterators: slices keep `windows`,
//! `binary_search` and `partition_point` available to the engine inner
//! loops and cost nothing to subrange). [`ProjectionArena`] is the
//! companion write-side structure: a bump slab that DFS descent fills
//! with short-lived projected rows and `reset()`s between siblings, so
//! steady-state mining performs no allocation at all.

use gogreen_util::HeapSize;

/// Row storage in compressed-sparse-row form: all elements in one flat
/// `data` buffer, with `offsets[i]..offsets[i+1]` delimiting row `i`.
///
/// `offsets` always holds `len() + 1` entries starting at 0, so the
/// empty container has one offset. Elements are `u32`-indexed: a single
/// container is limited to 4 Gi elements, far above any database this
/// workspace handles (the seed's largest analog has ~10⁶ elements).
///
/// Rows may be built incrementally with [`CsrTuples::push_elem`] /
/// [`CsrTuples::commit_row`]: elements past the last committed offset
/// form the *open row*, invisible to readers until committed. This is
/// what lets encode-and-filter passes build a row in place and decide
/// afterwards whether to keep it (committing) or drop it (discarding) —
/// the one-pass replacement for "materialize a `Vec`, inspect, maybe
/// push".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrTuples<T = u32> {
    data: Vec<T>,
    offsets: Vec<u32>,
}

impl<T: Copy> Default for CsrTuples<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy> CsrTuples<T> {
    /// An empty container.
    pub fn new() -> Self {
        CsrTuples { data: Vec::new(), offsets: vec![0] }
    }

    /// An empty container with room for `rows` rows of `elems` total
    /// elements.
    pub fn with_capacity(rows: usize, elems: usize) -> Self {
        let mut offsets = Vec::with_capacity(rows + 1);
        offsets.push(0);
        CsrTuples { data: Vec::with_capacity(elems), offsets }
    }

    /// Reassembles a container from its raw CSR parts — the layout a
    /// sealed on-disk segment stores verbatim, so loading a segment is a
    /// bulk read of two arrays straight into place, no per-row work.
    ///
    /// `offsets` must be non-empty, start at 0, be non-decreasing, and
    /// end at `data.len()`; violations panic rather than constructing a
    /// container whose accessors would slice out of bounds.
    pub fn from_raw_parts(data: Vec<T>, offsets: Vec<u32>) -> Self {
        assert_eq!(offsets.first(), Some(&0), "offsets must start at 0");
        assert_eq!(
            *offsets.last().expect("offsets non-empty") as usize,
            data.len(),
            "last offset must equal data length"
        );
        assert!(offsets.windows(2).all(|w| w[0] <= w[1]), "offsets must be non-decreasing");
        CsrTuples { data, offsets }
    }

    /// Consumes the container, returning `(data, offsets)` — the inverse
    /// of [`CsrTuples::from_raw_parts`], used to write a segment out as
    /// two flat arrays.
    pub fn into_raw_parts(self) -> (Vec<T>, Vec<u32>) {
        (self.data, self.offsets)
    }

    /// The raw offsets array (`len() + 1` entries starting at 0).
    #[inline]
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// Number of committed rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when no row has been committed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.offsets.len() == 1
    }

    /// Total committed elements (excludes any open row).
    #[inline]
    pub fn total_elems(&self) -> usize {
        *self.offsets.last().expect("offsets non-empty") as usize
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[T] {
        &self.data[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Iterates the committed rows in order.
    #[inline]
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[T]> + Clone + '_ {
        self.offsets.windows(2).map(|w| &self.data[w[0] as usize..w[1] as usize])
    }

    /// Appends a whole row.
    pub fn push_row(&mut self, row: &[T]) {
        self.data.extend_from_slice(row);
        self.commit_row();
    }

    /// Appends one element to the open row.
    #[inline]
    pub fn push_elem(&mut self, x: T) {
        self.data.push(x);
    }

    /// The open (uncommitted) row.
    #[inline]
    pub fn open_row(&self) -> &[T] {
        &self.data[self.total_elems()..]
    }

    /// Mutable view of the open row (for in-place sorting after an
    /// unordered fill).
    #[inline]
    pub fn open_row_mut(&mut self) -> &mut [T] {
        let start = self.total_elems();
        &mut self.data[start..]
    }

    /// Number of elements in the open row.
    #[inline]
    pub fn open_len(&self) -> usize {
        self.data.len() - self.total_elems()
    }

    /// Commits the open row, returning its index.
    #[inline]
    pub fn commit_row(&mut self) -> usize {
        debug_assert!(self.data.len() <= u32::MAX as usize, "CsrTuples overflow");
        self.offsets.push(self.data.len() as u32);
        self.offsets.len() - 2
    }

    /// Discards the open row.
    #[inline]
    pub fn discard_row(&mut self) {
        self.data.truncate(self.total_elems());
    }

    /// Removes the last committed row (it must be the last one pushed;
    /// there must be no open row).
    pub fn pop_row(&mut self) {
        debug_assert_eq!(self.open_len(), 0, "pop_row with an open row");
        assert!(!self.is_empty(), "pop_row on empty CsrTuples");
        self.offsets.pop();
        self.data.truncate(self.total_elems());
    }

    /// Drops all rows, keeping capacity.
    pub fn clear(&mut self) {
        self.data.clear();
        self.offsets.clear();
        self.offsets.push(0);
    }

    /// The whole flat element buffer (committed rows, in row order).
    ///
    /// This is the chunk-wise scan surface: kernels that do not care
    /// about row boundaries (pure element counting) walk it directly.
    #[inline]
    pub fn flat(&self) -> &[T] {
        &self.data[..self.total_elems()]
    }

    /// Borrowed view over all committed rows.
    #[inline]
    pub fn as_slices(&self) -> TupleSlices<'_, T> {
        TupleSlices { data: &self.data, offsets: &self.offsets }
    }
}

impl<T: Copy> FromIterator<Vec<T>> for CsrTuples<T> {
    fn from_iter<I: IntoIterator<Item = Vec<T>>>(iter: I) -> Self {
        let mut out = CsrTuples::new();
        for row in iter {
            out.push_row(&row);
        }
        out
    }
}

impl<T> HeapSize for CsrTuples<T> {
    fn heap_size(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<T>() + self.offsets.capacity() * 4
    }
}

/// A borrowed window of [`CsrTuples`] rows.
///
/// `offsets` stays absolute into `data`, so subranging is just an
/// offsets-window — no row is copied and `data` is shared by every
/// window of the same container. Rows come out as plain slices.
#[derive(Debug, Clone, Copy)]
pub struct TupleSlices<'a, T = u32> {
    data: &'a [T],
    offsets: &'a [u32],
}

impl<'a, T> TupleSlices<'a, T> {
    /// An empty view.
    pub fn empty() -> Self {
        TupleSlices { data: &[], offsets: &[0] }
    }

    /// Number of rows in the window.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when the window holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.offsets.len() <= 1
    }

    /// Total elements across the window's rows.
    #[inline]
    pub fn total_elems(&self) -> usize {
        (self.offsets[self.offsets.len() - 1] - self.offsets[0]) as usize
    }

    /// Row `i` of the window.
    #[inline]
    pub fn row(&self, i: usize) -> &'a [T] {
        &self.data[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Iterates the window's rows in order.
    #[inline]
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &'a [T]> + Clone + '_ {
        self.offsets.windows(2).map(|w| &self.data[w[0] as usize..w[1] as usize])
    }

    /// The sub-window of rows `lo..hi`.
    #[inline]
    pub fn range(&self, lo: usize, hi: usize) -> TupleSlices<'a, T> {
        TupleSlices { data: self.data, offsets: &self.offsets[lo..=hi] }
    }

    /// The window's elements as one flat slice, in row order.
    #[inline]
    pub fn flat(&self) -> &'a [T] {
        &self.data[self.offsets[0] as usize..self.offsets[self.offsets.len() - 1] as usize]
    }
}

impl<'a, T> IntoIterator for TupleSlices<'a, T> {
    type Item = &'a [T];
    type IntoIter = TupleSlicesIter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        TupleSlicesIter { view: self, next: 0 }
    }
}

/// Owning row iterator of a [`TupleSlices`] window.
#[derive(Debug, Clone)]
pub struct TupleSlicesIter<'a, T> {
    view: TupleSlices<'a, T>,
    next: usize,
}

impl<'a, T> Iterator for TupleSlicesIter<'a, T> {
    type Item = &'a [T];

    fn next(&mut self) -> Option<&'a [T]> {
        if self.next >= self.view.len() {
            return None;
        }
        let row = self.view.row(self.next);
        self.next += 1;
        Some(row)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.view.len() - self.next;
        (rem, Some(rem))
    }
}

impl<T> ExactSizeIterator for TupleSlicesIter<'_, T> {}

/// A bump slab for short-lived projected rows.
///
/// DFS descent repeatedly materializes small row sets — conditional
/// bases, compacted suffixes, projected member lists — whose lifetime is
/// one tree node. The arena is a [`CsrTuples`] that is `reset()` between
/// uses instead of dropped, so after warm-up the descent performs zero
/// steady-state allocation: rows land in already-grown buffers.
///
/// Two observability counters make the reuse measurable:
/// `alloc.projection_bytes` accumulates the bytes *used* (not capacity)
/// by each filled generation, and `alloc.arena_reuses` counts the
/// non-empty generations recycled by `reset()`. Both are flushed on
/// `reset()` and on drop, and both depend only on the rows the search
/// actually wrote — which is identical at any thread count — so they are
/// thread-invariant.
#[derive(Debug, Default)]
pub struct ProjectionArena {
    rows: CsrTuples<u32>,
    /// Per-row weights for callers that need them (conditional bases).
    weights: Vec<u64>,
    /// Generations recycled so far (non-empty resets).
    reuses: u64,
    /// Bytes used across flushed generations.
    used_bytes: u64,
}

impl ProjectionArena {
    /// An empty arena.
    pub fn new() -> Self {
        ProjectionArena::default()
    }

    /// Starts a new generation: flushes the previous one's accounting
    /// and clears the slab, keeping capacity.
    pub fn reset(&mut self) {
        if !self.rows.is_empty() || self.rows.open_len() > 0 {
            self.reuses += 1;
            self.used_bytes += (self.rows.data.len() * 4 + self.weights.len() * 8) as u64;
        }
        self.rows.clear();
        self.weights.clear();
    }

    /// The rows of the current generation.
    #[inline]
    pub fn rows(&self) -> &CsrTuples<u32> {
        &self.rows
    }

    /// Mutable access to the row slab, for callers that use the arena as
    /// a plain row store (no weights). Mixing this with the weighted API
    /// in one generation desynchronizes the parallel arrays — don't.
    #[inline]
    pub fn rows_mut(&mut self) -> &mut CsrTuples<u32> {
        &mut self.rows
    }

    /// The per-row weights of the current generation (parallel to
    /// [`ProjectionArena::rows`] when the caller pushes them).
    #[inline]
    pub fn weights(&self) -> &[u64] {
        &self.weights
    }

    /// Appends a whole row with a weight.
    pub fn push_weighted(&mut self, row: &[u32], w: u64) {
        self.rows.push_row(row);
        self.weights.push(w);
    }

    /// Appends one element to the open row.
    #[inline]
    pub fn push_elem(&mut self, x: u32) {
        self.rows.push_elem(x);
    }

    /// Commits the open row with a weight.
    #[inline]
    pub fn commit_weighted(&mut self, w: u64) -> usize {
        self.weights.push(w);
        self.rows.commit_row()
    }

    /// Discards the open row.
    #[inline]
    pub fn discard_row(&mut self) {
        self.rows.discard_row();
    }

    /// Number of elements in the open row.
    #[inline]
    pub fn open_len(&self) -> usize {
        self.rows.open_len()
    }

    /// Heap bytes currently reserved by the slab.
    pub fn capacity_bytes(&self) -> usize {
        self.rows.heap_size() + self.weights.capacity() * 8
    }

    fn flush_metrics(&mut self) {
        if !self.rows.is_empty() || self.rows.open_len() > 0 {
            self.reuses += 1;
            self.used_bytes += (self.rows.data.len() * 4 + self.weights.len() * 8) as u64;
        }
        if self.used_bytes > 0 {
            gogreen_obs::metrics::add("alloc.projection_bytes", self.used_bytes);
            gogreen_obs::metrics::add("alloc.arena_reuses", self.reuses);
        }
        self.used_bytes = 0;
        self.reuses = 0;
    }
}

impl Drop for ProjectionArena {
    fn drop(&mut self) {
        self.flush_metrics();
    }
}

impl HeapSize for ProjectionArena {
    fn heap_size(&self) -> usize {
        self.capacity_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_container() {
        let c: CsrTuples = CsrTuples::new();
        assert_eq!(c.len(), 0);
        assert!(c.is_empty());
        assert_eq!(c.total_elems(), 0);
        assert_eq!(c.iter().count(), 0);
        assert!(c.flat().is_empty());
    }

    #[test]
    fn push_and_read_rows() {
        let mut c = CsrTuples::new();
        c.push_row(&[1, 2, 3]);
        c.push_row(&[]);
        c.push_row(&[9]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.row(0), &[1, 2, 3]);
        assert_eq!(c.row(1), &[] as &[u32]);
        assert_eq!(c.row(2), &[9]);
        assert_eq!(c.total_elems(), 4);
        assert_eq!(c.flat(), &[1, 2, 3, 9]);
        let rows: Vec<&[u32]> = c.iter().collect();
        let expect: Vec<&[u32]> = vec![&[1, 2, 3], &[], &[9]];
        assert_eq!(rows, expect);
    }

    #[test]
    fn open_row_commit_and_discard() {
        let mut c = CsrTuples::new();
        c.push_elem(5);
        c.push_elem(3);
        assert_eq!(c.open_len(), 2);
        assert_eq!(c.len(), 0, "open row invisible");
        c.open_row_mut().sort_unstable();
        assert_eq!(c.open_row(), &[3, 5]);
        assert_eq!(c.commit_row(), 0);
        assert_eq!(c.row(0), &[3, 5]);

        c.push_elem(7);
        c.discard_row();
        assert_eq!(c.len(), 1);
        assert_eq!(c.total_elems(), 2);
        assert_eq!(c.open_len(), 0);
    }

    #[test]
    fn pop_row_removes_last() {
        let mut c = CsrTuples::new();
        c.push_row(&[1]);
        c.push_row(&[2, 3]);
        c.pop_row();
        assert_eq!(c.len(), 1);
        assert_eq!(c.row(0), &[1]);
        assert_eq!(c.total_elems(), 1);
    }

    #[test]
    fn raw_parts_round_trip() {
        let mut c = CsrTuples::new();
        c.push_row(&[1, 2]);
        c.push_row(&[3]);
        let (data, offsets) = c.clone().into_raw_parts();
        assert_eq!(offsets, c.offsets());
        let back = CsrTuples::from_raw_parts(data, offsets);
        assert_eq!(back, c);
    }

    #[test]
    #[should_panic(expected = "last offset")]
    fn raw_parts_rejects_mismatched_lengths() {
        let _ = CsrTuples::from_raw_parts(vec![1u32, 2], vec![0, 1]);
    }

    #[test]
    fn from_iter_round_trip() {
        let rows = vec![vec![1u32, 2], vec![3], vec![]];
        let c: CsrTuples = rows.clone().into_iter().collect();
        assert_eq!(c.iter().map(|r| r.to_vec()).collect::<Vec<_>>(), rows);
    }

    #[test]
    fn slices_window_and_range() {
        let mut c = CsrTuples::new();
        c.push_row(&[1, 2]);
        c.push_row(&[3]);
        c.push_row(&[4, 5, 6]);
        let v = c.as_slices();
        assert_eq!(v.len(), 3);
        assert_eq!(v.row(2), &[4, 5, 6]);
        assert_eq!(v.total_elems(), 6);
        assert_eq!(v.flat(), &[1, 2, 3, 4, 5, 6]);

        let mid = v.range(1, 3);
        assert_eq!(mid.len(), 2);
        assert_eq!(mid.row(0), &[3]);
        assert_eq!(mid.row(1), &[4, 5, 6]);
        assert_eq!(mid.flat(), &[3, 4, 5, 6]);
        assert_eq!(mid.total_elems(), 4);

        let none = v.range(1, 1);
        assert!(none.is_empty());
        assert_eq!(none.total_elems(), 0);

        let rows: Vec<&[u32]> = mid.into_iter().collect();
        let expect: Vec<&[u32]> = vec![&[3], &[4, 5, 6]];
        assert_eq!(rows, expect);
    }

    #[test]
    fn empty_view() {
        let v: TupleSlices = TupleSlices::empty();
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
        assert_eq!(v.into_iter().count(), 0);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut c = CsrTuples::with_capacity(4, 16);
        c.push_row(&[1, 2, 3]);
        let cap = c.data.capacity();
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.data.capacity(), cap);
    }

    #[test]
    fn heap_size_counts_both_buffers() {
        let mut c: CsrTuples = CsrTuples::new();
        c.push_row(&[1, 2, 3]);
        assert_eq!(c.heap_size(), c.data.capacity() * 4 + c.offsets.capacity() * 4);
    }

    #[test]
    fn arena_reuse_cycle() {
        let mut a = ProjectionArena::new();
        a.push_weighted(&[1, 2], 5);
        a.push_elem(9);
        assert_eq!(a.commit_weighted(2), 1);
        assert_eq!(a.rows().len(), 2);
        assert_eq!(a.weights(), &[5, 2]);
        a.reset();
        assert_eq!(a.rows().len(), 0);
        assert!(a.weights().is_empty());
        assert_eq!(a.reuses, 1);
        // Second generation lands in the same buffers.
        a.push_weighted(&[7], 1);
        assert_eq!(a.rows().row(0), &[7]);
        // Empty resets are not counted as reuse.
        a.reset();
        a.reset();
        assert_eq!(a.reuses, 2);
    }

    #[test]
    fn arena_discard_open_row() {
        let mut a = ProjectionArena::new();
        a.push_elem(1);
        assert_eq!(a.open_len(), 1);
        a.discard_row();
        assert_eq!(a.open_len(), 0);
        assert_eq!(a.rows().len(), 0);
    }
}
