//! Plain-text transaction interchange format.
//!
//! One transaction per line; items are whitespace-separated `u32` ids —
//! the de-facto format of the FIMI repository datasets the paper uses
//! (Connect-4, Pumsb). Blank lines and lines starting with `#` are
//! ignored.

use crate::database::TransactionDb;
use crate::error::DataError;
use crate::transaction::Transaction;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Reads a database from any reader in the one-line-per-transaction format.
pub fn read_transactions<R: Read>(reader: R) -> Result<TransactionDb, DataError> {
    let mut db = TransactionDb::new();
    let mut buf = String::new();
    let mut reader = BufReader::new(reader);
    let mut line_no = 0usize;
    // Workhorse line buffer: BufRead::lines would allocate per line.
    loop {
        buf.clear();
        if reader.read_line(&mut buf)? == 0 {
            break;
        }
        line_no += 1;
        let line = buf.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut ids = Vec::new();
        for token in line.split_whitespace() {
            let id: u32 = token
                .parse()
                .map_err(|_| DataError::Parse { line: line_no, token: token.to_owned() })?;
            ids.push(id);
        }
        db.push(Transaction::from_ids(ids));
    }
    Ok(db)
}

/// Writes a database in the one-line-per-transaction format.
pub fn write_transactions<W: Write>(db: &TransactionDb, writer: W) -> Result<(), DataError> {
    let mut w = BufWriter::new(writer);
    let mut line = String::new();
    for t in db.iter() {
        line.clear();
        for (k, it) in t.iter().enumerate() {
            if k > 0 {
                line.push(' ');
            }
            line.push_str(&it.id().to_string());
        }
        line.push('\n');
        w.write_all(line.as_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a database from a file path.
pub fn read_file(path: impl AsRef<Path>) -> Result<TransactionDb, DataError> {
    read_transactions(std::fs::File::open(path)?)
}

/// Writes a database to a file path, creating or truncating it.
pub fn write_file(db: &TransactionDb, path: impl AsRef<Path>) -> Result<(), DataError> {
    write_transactions(db, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_through_memory() {
        let db = TransactionDb::paper_example();
        let mut buf = Vec::new();
        write_transactions(&db, &mut buf).unwrap();
        let back = read_transactions(&buf[..]).unwrap();
        assert_eq!(db, back);
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let text = "# header\n1 2 3\n\n  \n4 5\n";
        let db = read_transactions(text.as_bytes()).unwrap();
        assert_eq!(db.len(), 2);
        assert_eq!(db.tuple(0).len(), 3);
    }

    #[test]
    fn unsorted_input_is_canonicalized() {
        let db = read_transactions("3 1 2 1\n".as_bytes()).unwrap();
        assert_eq!(db.tuple(0), &[crate::Item(1), crate::Item(2), crate::Item(3)]);
    }

    #[test]
    fn bad_token_reports_line() {
        let err = read_transactions("1 2\nx 3\n".as_bytes()).unwrap_err();
        assert!(
            matches!(&err, DataError::Parse { line: 2, token } if token == "x"),
            "unexpected error: {err:?}"
        );
    }

    #[test]
    fn negative_id_rejected() {
        assert!(read_transactions("-1\n".as_bytes()).is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("gogreen-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.txt");
        let db = TransactionDb::paper_example();
        write_file(&db, &path).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(db, back);
        std::fs::remove_file(&path).ok();
    }
}
