//! Item identifiers and the item symbol table.

use gogreen_util::{FxHashMap, HeapSize};
use std::fmt;

/// An item (attribute value) in a transaction database.
///
/// Items are dense `u32` identifiers. The paper's `I = {i1, …, in}` is the
/// set of distinct `Item` values appearing in a [`crate::TransactionDb`];
/// human-readable names are kept out-of-band in an [`ItemCatalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Item(pub u32);

impl Item {
    /// The raw identifier.
    #[inline]
    pub fn id(self) -> u32 {
        self.0
    }

    /// Index form, for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for Item {
    #[inline]
    fn from(v: u32) -> Self {
        Item(v)
    }
}

impl fmt::Display for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

impl HeapSize for Item {
    #[inline]
    fn heap_size(&self) -> usize {
        0
    }
}

/// Bidirectional mapping between item ids and external names.
///
/// Mining works purely on ids; the catalog exists so that applications (and
/// the examples in this repository) can present results with meaningful
/// labels such as `"milk"` or `"outlook=sunny"`.
#[derive(Debug, Default, Clone)]
pub struct ItemCatalog {
    names: Vec<String>,
    by_name: FxHashMap<String, Item>,
}

impl ItemCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its item id. Repeated calls with the same
    /// name return the same id.
    pub fn intern(&mut self, name: &str) -> Item {
        if let Some(&item) = self.by_name.get(name) {
            return item;
        }
        let item = Item(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), item);
        item
    }

    /// Looks up an already-interned name.
    pub fn get(&self, name: &str) -> Option<Item> {
        self.by_name.get(name).copied()
    }

    /// The name of `item`, if it was interned here.
    pub fn name(&self, item: Item) -> Option<&str> {
        self.names.get(item.index()).map(String::as_str)
    }

    /// Number of interned items.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Renders an itemset as `{a, b, c}` using catalog names, falling back
    /// to `iN` for unknown ids.
    pub fn render(&self, items: &[Item]) -> String {
        let mut out = String::from("{");
        for (k, &it) in items.iter().enumerate() {
            if k > 0 {
                out.push_str(", ");
            }
            match self.name(it) {
                Some(name) => out.push_str(name),
                None => out.push_str(&it.to_string()),
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut c = ItemCatalog::new();
        let a = c.intern("beer");
        let b = c.intern("beer");
        assert_eq!(a, b);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn intern_assigns_dense_ids() {
        let mut c = ItemCatalog::new();
        assert_eq!(c.intern("a"), Item(0));
        assert_eq!(c.intern("b"), Item(1));
        assert_eq!(c.intern("c"), Item(2));
    }

    #[test]
    fn name_round_trip() {
        let mut c = ItemCatalog::new();
        let it = c.intern("diapers");
        assert_eq!(c.name(it), Some("diapers"));
        assert_eq!(c.get("diapers"), Some(it));
        assert_eq!(c.get("unknown"), None);
        assert_eq!(c.name(Item(99)), None);
    }

    #[test]
    fn render_uses_names_with_fallback() {
        let mut c = ItemCatalog::new();
        let a = c.intern("a");
        assert_eq!(c.render(&[a, Item(42)]), "{a, i42}");
        assert_eq!(c.render(&[]), "{}");
    }

    #[test]
    fn item_display_and_order() {
        assert_eq!(Item(5).to_string(), "i5");
        assert!(Item(1) < Item(2));
    }
}
