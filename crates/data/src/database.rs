//! The transaction database `DB`.

use crate::flat::{CsrTuples, TupleSlices};
use crate::item::Item;
use crate::transaction::{self, Transaction};
use gogreen_util::HeapSize;

/// A transaction database: the `DB` of the paper's problem statement.
///
/// Tuples are stored in insertion order; tuple ids are their positions.
/// Storage is flat CSR ([`CsrTuples`]): one item buffer plus offsets, so
/// whole-database scans (cover sweeps, F-list counting) walk a single
/// allocation and parallel kernels split it by index range. Tuples read
/// out as `&[Item]` slices; [`Transaction`] remains the owned boundary
/// type for construction and extraction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TransactionDb {
    tuples: CsrTuples<Item>,
}

/// Summary statistics of a database, as reported in the paper's Table 3
/// (number of tuples, average tuple length, number of distinct items).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DbStats {
    /// Number of tuples.
    pub num_tuples: usize,
    /// Mean tuple length.
    pub avg_len: f64,
    /// Number of distinct items occurring at least once.
    pub num_items: usize,
    /// Largest item id occurring, if any.
    pub max_item: Option<Item>,
    /// Total number of item occurrences.
    pub total_items: usize,
    /// Mean heap bytes per tuple of the CSR storage (elements plus the
    /// offset entry); 0 for the empty database.
    pub bytes_per_tuple: f64,
}

impl TransactionDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a database from transactions.
    pub fn from_transactions(tuples: Vec<Transaction>) -> Self {
        let mut csr =
            CsrTuples::with_capacity(tuples.len(), tuples.iter().map(Transaction::len).sum());
        for t in &tuples {
            csr.push_row(t.items());
        }
        TransactionDb { tuples: csr }
    }

    /// Convenience constructor from raw id rows (used pervasively in tests).
    pub fn from_rows(rows: &[&[u32]]) -> Self {
        Self::from_transactions(
            rows.iter().map(|r| Transaction::from_ids(r.iter().copied())).collect(),
        )
    }

    /// Wraps already-validated CSR storage (each row sorted ascending,
    /// duplicate-free) as a database without copying — the zero-copy
    /// path from a loaded on-disk segment into the mining engines.
    pub fn from_csr(tuples: CsrTuples<Item>) -> Self {
        debug_assert!(tuples.iter().all(|t| t.windows(2).all(|w| w[0] < w[1])));
        TransactionDb { tuples }
    }

    /// Appends a tuple, returning its id.
    pub fn push(&mut self, t: Transaction) -> usize {
        self.tuples.push_row(t.items());
        self.tuples.len() - 1
    }

    /// Number of tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when the database has no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The tuple with id `idx` (items sorted ascending).
    #[inline]
    pub fn tuple(&self, idx: usize) -> &[Item] {
        self.tuples.row(idx)
    }

    /// Iterator over tuples in id order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[Item]> + Clone + '_ {
        self.tuples.iter()
    }

    /// All tuples as a CSR view.
    #[inline]
    pub fn tuples(&self) -> TupleSlices<'_, Item> {
        self.tuples.as_slices()
    }

    /// The underlying CSR storage.
    #[inline]
    pub fn csr(&self) -> &CsrTuples<Item> {
        &self.tuples
    }

    /// Consumes the database, yielding its tuples.
    pub fn into_transactions(self) -> Vec<Transaction> {
        self.tuples.iter().map(|row| Transaction::from_sorted_unchecked(row.to_vec())).collect()
    }

    /// Exact support of `pattern` (sorted ascending) by a full scan.
    ///
    /// This is the ground-truth counter used in tests and by the compression
    /// verifier; miners never call it on hot paths.
    pub fn support_of(&self, pattern: &[Item]) -> u64 {
        self.tuples.iter().filter(|t| transaction::contains_all(t, pattern)).count() as u64
    }

    /// Computes summary statistics in one pass.
    pub fn stats(&self) -> DbStats {
        // max/total come from the flat buffer directly: items are sorted
        // within a tuple, so the per-row last element is the row max, but
        // a plain max over the whole buffer is the same answer in one
        // branch-free sweep.
        let flat = self.tuples.flat();
        let total_items = flat.len();
        let max_item = flat.iter().copied().max();
        let num_items = match max_item {
            None => 0,
            Some(m) => {
                let mut seen = vec![false; m.index() + 1];
                let mut n = 0usize;
                for &it in flat {
                    if !seen[it.index()] {
                        seen[it.index()] = true;
                        n += 1;
                    }
                }
                n
            }
        };
        let num_tuples = self.tuples.len();
        let stored_bytes = std::mem::size_of_val(self.tuples.flat()) + (num_tuples + 1) * 4;
        DbStats {
            num_tuples,
            avg_len: if num_tuples == 0 { 0.0 } else { total_items as f64 / num_tuples as f64 },
            num_items,
            max_item,
            total_items,
            bytes_per_tuple: if num_tuples == 0 {
                0.0
            } else {
                stored_bytes as f64 / num_tuples as f64
            },
        }
    }

    /// Counts per-item supports into a dense vector indexed by item id.
    pub fn item_supports(&self) -> Vec<u64> {
        // Single pass: items are sorted within a tuple, so the last one
        // bounds the indices and the vector grows at most once per tuple.
        let mut counts: Vec<u64> = Vec::new();
        for t in self.tuples.iter() {
            if let Some(&last) = t.last() {
                if last.index() >= counts.len() {
                    counts.resize(last.index() + 1, 0);
                }
                for &it in t {
                    counts[it.index()] += 1;
                }
            }
        }
        counts
    }

    /// The example database of the paper's Table 1, used throughout the
    /// paper's walk-through and throughout this repository's tests.
    ///
    /// Items are encoded `a=0, b=1, c=2, d=3, e=4, f=5, g=6, h=7, i=8`.
    pub fn paper_example() -> Self {
        const A: u32 = 0;
        const B: u32 = 1;
        const C: u32 = 2;
        const D: u32 = 3;
        const E: u32 = 4;
        const F: u32 = 5;
        const G: u32 = 6;
        const H: u32 = 7;
        const I: u32 = 8;
        Self::from_rows(&[
            &[A, C, D, E, F, G], // 100
            &[B, C, D, F, G],    // 200
            &[C, E, F, G],       // 300
            &[A, C, E, I],       // 400
            &[A, E, H],          // 500
        ])
    }
}

impl HeapSize for TransactionDb {
    fn heap_size(&self) -> usize {
        self.tuples.heap_size()
    }
}

impl FromIterator<Transaction> for TransactionDb {
    fn from_iter<T: IntoIterator<Item = Transaction>>(iter: T) -> Self {
        let mut db = TransactionDb::new();
        for t in iter {
            db.push(t);
        }
        db
    }
}

impl<'a> IntoIterator for &'a TransactionDb {
    type Item = &'a [Item];
    type IntoIter = crate::flat::TupleSlicesIter<'a, Item>;
    fn into_iter(self) -> Self::IntoIter {
        self.tuples.as_slices().into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_db_stats() {
        let db = TransactionDb::new();
        let s = db.stats();
        assert_eq!(s.num_tuples, 0);
        assert_eq!(s.avg_len, 0.0);
        assert_eq!(s.num_items, 0);
        assert_eq!(s.max_item, None);
        assert_eq!(s.bytes_per_tuple, 0.0);
    }

    #[test]
    fn paper_example_shape() {
        let db = TransactionDb::paper_example();
        let s = db.stats();
        assert_eq!(s.num_tuples, 5);
        assert_eq!(s.num_items, 9);
        assert_eq!(s.total_items, 6 + 5 + 4 + 4 + 3);
        assert!((s.avg_len - 22.0 / 5.0).abs() < 1e-12);
        // 22 items * 4 bytes + 6 offsets * 4 bytes over 5 tuples.
        assert!((s.bytes_per_tuple - (22.0 * 4.0 + 6.0 * 4.0) / 5.0).abs() < 1e-12);
    }

    #[test]
    fn support_of_matches_paper() {
        let db = TransactionDb::paper_example();
        // Supports from the paper: c:4, e:4, a:3, f:3, g:3, d:2.
        assert_eq!(db.support_of(&[Item(2)]), 4); // c
        assert_eq!(db.support_of(&[Item(4)]), 4); // e
        assert_eq!(db.support_of(&[Item(0)]), 3); // a
        assert_eq!(db.support_of(&[Item(3)]), 2); // d
                                                  // fgc (f=5, g=6, c=2 sorted -> [2,5,6]) has support 3.
        assert_eq!(db.support_of(&[Item(2), Item(5), Item(6)]), 3);
        // ae -> [0,4] support 3.
        assert_eq!(db.support_of(&[Item(0), Item(4)]), 3);
        assert_eq!(db.support_of(&[Item(1), Item(8)]), 0);
    }

    #[test]
    fn item_supports_dense_vector() {
        let db = TransactionDb::paper_example();
        let sup = db.item_supports();
        assert_eq!(sup.len(), 9);
        assert_eq!(sup[2], 4);
        assert_eq!(sup[3], 2);
        assert_eq!(sup[7], 1);
    }

    #[test]
    fn push_and_index() {
        let mut db = TransactionDb::new();
        let id = db.push(Transaction::from_ids([1, 2]));
        assert_eq!(id, 0);
        assert_eq!(db.tuple(0).len(), 2);
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn from_iterator_collects() {
        let db: TransactionDb = (0..3).map(|k| Transaction::from_ids([k, k + 1])).collect();
        assert_eq!(db.len(), 3);
    }

    #[test]
    fn csr_storage_round_trips_transactions() {
        let db = TransactionDb::paper_example();
        let back = db.clone().into_transactions();
        assert_eq!(back.len(), 5);
        for (row, t) in db.iter().zip(&back) {
            assert_eq!(row, t.items());
        }
        assert_eq!(db.csr().total_elems(), 22);
        assert_eq!(db.tuples().len(), 5);
    }
}
