#![warn(missing_docs)]
#![cfg_attr(feature = "portable-simd", feature(portable_simd))]

//! Transaction-database substrate for the `gogreen` workspace.
//!
//! Everything the miners and the recycling engine share lives here:
//!
//! * [`Item`] and [`ItemCatalog`] — integer item identifiers and a symbol
//!   table mapping them to external names.
//! * [`Transaction`] and [`TransactionDb`] — a tuple of items and a database
//!   of tuples, in the sense of the paper's §2 problem statement.
//! * [`FList`] — the *frequent list*: frequent items ordered by ascending
//!   support (paper Definition 3.1). All projected-database miners traverse
//!   the search space in F-list order.
//! * [`MinSupport`] — absolute or relative support thresholds.
//! * [`Pattern`], [`PatternSet`], [`PatternSink`] — mining output. Sinks let
//!   benchmarks count patterns without materializing them, matching the
//!   paper's practice of excluding output cost from timings (§5.2).
//! * [`flat`] — CSR tuple storage ([`CsrTuples`] / [`TupleSlices`]) and
//!   the [`ProjectionArena`] bump slab: the canonical flat memory layout
//!   every engine scans.
//! * [`bitmap`] — the shared word-wise AND/popcount kernels (4-way
//!   unrolled scalar by default, `std::simd` behind the `portable-simd`
//!   feature) and the [`BitsetArena`] tidset slab used by the cover
//!   sweep and the vertical mining engine.
//! * [`projected`] — materialized projected databases (paper Definition
//!   3.2) used by the reference miners.
//! * [`grouped`] — the [`GroupedSource`] substrate abstraction that lets
//!   one engine per algorithm family serve both plain and compressed
//!   databases (the paper's raw-DB-as-degenerate-CDB identity).
//! * [`io`] / [`pattern_io`] — plain text interchange formats for
//!   transactions (one per line) and pattern sets (`items : support`).

pub mod bitmap;
pub mod database;
pub mod error;
pub mod flat;
pub mod flist;
pub mod grouped;
pub mod io;
pub mod item;
pub mod pattern;
pub mod pattern_io;
pub mod projected;
pub mod prune;
pub mod sink;
pub mod support;
pub mod transaction;

pub use bitmap::BitsetArena;
pub use database::{DbStats, TransactionDb};
pub use error::DataError;
pub use flat::{CsrTuples, ProjectionArena, TupleSlices};
pub use flist::{FList, NO_RANK};
pub use grouped::{GroupedSource, PlainRanks};
pub use item::{Item, ItemCatalog};
pub use pattern::{Pattern, PatternSet};
pub use prune::{NoPrune, SearchPrune};
pub use sink::{CollectSink, CountSink, FnSink, PatternSink};
pub use support::MinSupport;
pub use transaction::{contains_all, difference_into, Transaction};
