//! Shared word-wise bitmap kernels and the tidset bump arena.
//!
//! Two subsystems run AND-chains over `u64` bitmaps: the compressor's
//! `CoverIndex` vertical sweep (per-item tuple columns, claim chains)
//! and the vertical mining engine (`miners::engine::vt`, per-rank tid
//! columns, intersection counting). Both used to open-code the same
//! four-line loop; this module is the single home for those kernels so
//! the two stay instruction-identical and get optimized once.
//!
//! # Build-time kernel selection
//!
//! Every kernel has two implementations chosen at build time:
//!
//! * the default, a **4-way unrolled scalar** loop — four independent
//!   accumulator lanes so the popcounts pipeline on any stable
//!   toolchain;
//! * an explicit `std::simd` path behind the `portable-simd` cargo
//!   feature (nightly-only, since `portable_simd` is an unstable
//!   library feature). Enabling the feature swaps the kernel bodies;
//!   every public signature and result is identical, so the rest of the
//!   workspace never notices which one it got.
//!
//! Callers count their own kernel traffic (`cover.words_scanned`,
//! `mine.bitmap_words_scanned`): the cover sweep's counter is
//! thread-*variant* while the mining engine's is invariant, so the
//! accounting policy belongs at the call site, not here.

use gogreen_util::HeapSize;

/// Number of `u64` words needed to hold `n` bits.
#[inline]
pub const fn words_for(n: usize) -> usize {
    n.div_ceil(64)
}

/// Sets bit `i` of the column.
#[inline]
pub fn set_bit(col: &mut [u64], i: usize) {
    col[i / 64] |= 1u64 << (i % 64);
}

/// True when bit `i` of the column is set.
#[inline]
pub fn get_bit(col: &[u64], i: usize) -> bool {
    col[i / 64] & (1u64 << (i % 64)) != 0
}

/// Sets the bit run `[lo, lo + len)` word-wise: interior words are
/// filled whole, so a run costs O(len / 64) — this is what makes the
/// vertical engine's group-at-a-time column build cheap (one run per
/// pattern item covers every member of the group).
pub fn set_run(col: &mut [u64], lo: usize, len: usize) {
    if len == 0 {
        return;
    }
    let hi = lo + len; // exclusive
    let (wl, bl) = (lo / 64, lo % 64);
    let (wh, bh) = (hi / 64, hi % 64);
    if wl == wh {
        // Within one word: bl < bh <= 63, so len < 64 and the shift is
        // in range.
        col[wl] |= ((1u64 << len) - 1) << bl;
    } else {
        col[wl] |= !0u64 << bl;
        for w in col[wl + 1..wh].iter_mut() {
            *w = !0;
        }
        if bh > 0 {
            col[wh] |= (1u64 << bh) - 1;
        }
    }
}

/// Number of set bits in the column.
#[inline]
pub fn popcount(col: &[u64]) -> u64 {
    kernel::popcount(col)
}

/// Fused intersection cardinality: `popcount(a & b)` without
/// materializing the intersection. The vertical engine's candidate
/// test.
#[inline]
pub fn and_popcount(a: &[u64], b: &[u64]) -> u64 {
    debug_assert_eq!(a.len(), b.len());
    kernel::and_popcount(a, b)
}

/// Fused difference cardinality: `popcount(a & !b)` without
/// materializing the difference — the size of the diffset a child
/// tidset loses against its parent (`sup(child) = sup(parent) − |diff|`
/// in dEclat arithmetic).
#[inline]
pub fn andnot_popcount(a: &[u64], b: &[u64]) -> u64 {
    debug_assert_eq!(a.len(), b.len());
    kernel::andnot_popcount(a, b)
}

/// `dst = a & b`, returning the OR of the result words (zero means the
/// intersection is empty). The first step of an AND-chain.
#[inline]
pub fn select_and(dst: &mut [u64], a: &[u64], b: &[u64]) -> u64 {
    debug_assert_eq!(dst.len(), a.len());
    debug_assert_eq!(dst.len(), b.len());
    kernel::select_and(dst, a, b)
}

/// `acc &= col`, returning the OR of the result words (zero means the
/// chain died). The continuation step of an AND-chain.
#[inline]
pub fn and_into(acc: &mut [u64], col: &[u64]) -> u64 {
    debug_assert_eq!(acc.len(), col.len());
    kernel::and_into(acc, col)
}

/// Appends the set-bit positions of `a & b` to `out`, ascending — the
/// fused bitmap→tid-list transition (materialize the child as a sparse
/// list while the parent is still dense).
pub fn collect_and(a: &[u64], b: &[u64], out: &mut Vec<u32>) {
    debug_assert_eq!(a.len(), b.len());
    for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
        let mut w = x & y;
        while w != 0 {
            out.push((i as u32) * 64 + w.trailing_zeros());
            w &= w - 1;
        }
    }
}

/// Appends the set-bit positions of `a & !b` to `out`, ascending — the
/// fused bitmap→diffset transition (the tids column `a` loses against
/// column `b`).
pub fn collect_andnot(a: &[u64], b: &[u64], out: &mut Vec<u32>) {
    debug_assert_eq!(a.len(), b.len());
    for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
        let mut w = x & !y;
        while w != 0 {
            out.push((i as u32) * 64 + w.trailing_zeros());
            w &= w - 1;
        }
    }
}

/// Appends the set-bit positions of `col` to `out`, ascending (bitmap →
/// sorted tid list).
pub fn to_tidlist(col: &[u64], out: &mut Vec<u32>) {
    for (i, &x) in col.iter().enumerate() {
        let mut w = x;
        while w != 0 {
            out.push((i as u32) * 64 + w.trailing_zeros());
            w &= w - 1;
        }
    }
}

/// Sets every tid of `list` in `col` (sorted tid list → bitmap; ORs
/// into whatever is already there).
pub fn tidlist_to_bitmap(list: &[u32], col: &mut [u64]) {
    for &t in list {
        set_bit(col, t as usize);
    }
}

/// Length-ratio threshold above which the sorted-list kernels switch
/// from the linear two-pointer merge to galloping search over the
/// longer side. Size-skewed intersections then cost
/// O(short · log(long)) instead of O(short + long).
const GALLOP_RATIO: usize = 16;

/// Index of the first element of `l` that is `>= x`: exponential probe
/// from the front, then binary search inside the final probe window.
#[inline]
fn first_ge(l: &[u32], x: u32) -> usize {
    let mut bound = 1;
    while bound < l.len() && l[bound] < x {
        bound *= 2;
    }
    let lo = bound / 2;
    let hi = (bound + 1).min(l.len());
    lo + l[lo..hi].partition_point(|&v| v < x)
}

/// Two-pointer merge count in branchless form: both cursors advance by
/// comparison results (compiled to conditional moves), so the loop has
/// no data-dependent branch to mispredict — this is the pair-counting
/// hot loop of the sparse representations, called O(k²) per node.
fn merge_count(a: &[u32], b: &[u32]) -> u64 {
    let (mut i, mut j, mut c) = (0, 0, 0u64);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        c += (x == y) as u64;
        i += (x <= y) as usize;
        j += (y <= x) as usize;
    }
    c
}

fn gallop_count(s: &[u32], l: &[u32]) -> u64 {
    let (mut base, mut c) = (0, 0u64);
    for &x in s {
        base += first_ge(&l[base..], x);
        if base == l.len() {
            break;
        }
        if l[base] == x {
            c += 1;
            base += 1;
        }
    }
    c
}

/// Cardinality of the intersection of two sorted tid lists — the
/// tid-list representation's candidate test. Linear merge for
/// comparably sized inputs, galloping over the longer side when the
/// ratio exceeds [`GALLOP_RATIO`].
pub fn intersect_count(a: &[u32], b: &[u32]) -> u64 {
    let (s, l) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if s.is_empty() {
        return 0;
    }
    if l.len() / s.len() >= GALLOP_RATIO {
        gallop_count(s, l)
    } else {
        merge_count(s, l)
    }
}

/// Appends the intersection of two sorted tid lists to `out`, ascending.
/// Same merge/galloping split as [`intersect_count`].
pub fn intersect_into(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    let (s, l) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if s.is_empty() {
        return;
    }
    if l.len() / s.len() >= GALLOP_RATIO {
        let mut base = 0;
        for &x in s {
            base += first_ge(&l[base..], x);
            if base == l.len() {
                break;
            }
            if l[base] == x {
                out.push(x);
                base += 1;
            }
        }
    } else {
        let (mut i, mut j) = (0, 0);
        while i < s.len() && j < l.len() {
            match s[i].cmp(&l[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(s[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
    }
}

/// Appends `a \ b` (elements of the sorted list `a` absent from the
/// sorted list `b`) to `out`, ascending. Serves both the
/// tidlist→diffset transition (`t(Pa) \ t(Pb)`) and the diffset descent
/// (`d(Pb) \ d(Pa)`). Gallops over `b` when it dwarfs `a`.
pub fn diff_into(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    if a.is_empty() {
        return;
    }
    if b.len() / a.len() >= GALLOP_RATIO {
        let mut base = 0;
        for &x in a {
            base += first_ge(&b[base..], x);
            if base < b.len() && b[base] == x {
                base += 1;
            } else {
                out.push(x);
            }
        }
    } else {
        let (mut i, mut j) = (0, 0);
        while i < a.len() {
            if j == b.len() || a[i] < b[j] {
                out.push(a[i]);
                i += 1;
            } else if a[i] > b[j] {
                j += 1;
            } else {
                i += 1;
                j += 1;
            }
        }
    }
}

/// The 4-way unrolled scalar kernels (default build).
#[cfg(not(feature = "portable-simd"))]
mod kernel {
    pub fn popcount(col: &[u64]) -> u64 {
        let it = col.chunks_exact(4);
        let tail = it.remainder();
        let (mut c0, mut c1, mut c2, mut c3) = (0u64, 0u64, 0u64, 0u64);
        for x in it {
            c0 += x[0].count_ones() as u64;
            c1 += x[1].count_ones() as u64;
            c2 += x[2].count_ones() as u64;
            c3 += x[3].count_ones() as u64;
        }
        let mut total = c0 + c1 + c2 + c3;
        for x in tail {
            total += x.count_ones() as u64;
        }
        total
    }

    pub fn and_popcount(a: &[u64], b: &[u64]) -> u64 {
        let mut ia = a.chunks_exact(4);
        let mut ib = b.chunks_exact(4);
        let (mut c0, mut c1, mut c2, mut c3) = (0u64, 0u64, 0u64, 0u64);
        for (x, y) in (&mut ia).zip(&mut ib) {
            c0 += (x[0] & y[0]).count_ones() as u64;
            c1 += (x[1] & y[1]).count_ones() as u64;
            c2 += (x[2] & y[2]).count_ones() as u64;
            c3 += (x[3] & y[3]).count_ones() as u64;
        }
        let mut total = c0 + c1 + c2 + c3;
        for (x, y) in ia.remainder().iter().zip(ib.remainder()) {
            total += (x & y).count_ones() as u64;
        }
        total
    }

    pub fn andnot_popcount(a: &[u64], b: &[u64]) -> u64 {
        let mut ia = a.chunks_exact(4);
        let mut ib = b.chunks_exact(4);
        let (mut c0, mut c1, mut c2, mut c3) = (0u64, 0u64, 0u64, 0u64);
        for (x, y) in (&mut ia).zip(&mut ib) {
            c0 += (x[0] & !y[0]).count_ones() as u64;
            c1 += (x[1] & !y[1]).count_ones() as u64;
            c2 += (x[2] & !y[2]).count_ones() as u64;
            c3 += (x[3] & !y[3]).count_ones() as u64;
        }
        let mut total = c0 + c1 + c2 + c3;
        for (x, y) in ia.remainder().iter().zip(ib.remainder()) {
            total += (x & !y).count_ones() as u64;
        }
        total
    }

    pub fn select_and(dst: &mut [u64], a: &[u64], b: &[u64]) -> u64 {
        let mut id = dst.chunks_exact_mut(4);
        let mut ia = a.chunks_exact(4);
        let mut ib = b.chunks_exact(4);
        let (mut o0, mut o1, mut o2, mut o3) = (0u64, 0u64, 0u64, 0u64);
        for ((d, x), y) in (&mut id).zip(&mut ia).zip(&mut ib) {
            d[0] = x[0] & y[0];
            o0 |= d[0];
            d[1] = x[1] & y[1];
            o1 |= d[1];
            d[2] = x[2] & y[2];
            o2 |= d[2];
            d[3] = x[3] & y[3];
            o3 |= d[3];
        }
        let mut any = o0 | o1 | o2 | o3;
        for ((d, x), y) in id.into_remainder().iter_mut().zip(ia.remainder()).zip(ib.remainder()) {
            *d = x & y;
            any |= *d;
        }
        any
    }

    pub fn and_into(acc: &mut [u64], col: &[u64]) -> u64 {
        let mut ia = acc.chunks_exact_mut(4);
        let mut ic = col.chunks_exact(4);
        let (mut o0, mut o1, mut o2, mut o3) = (0u64, 0u64, 0u64, 0u64);
        for (x, y) in (&mut ia).zip(&mut ic) {
            x[0] &= y[0];
            o0 |= x[0];
            x[1] &= y[1];
            o1 |= x[1];
            x[2] &= y[2];
            o2 |= x[2];
            x[3] &= y[3];
            o3 |= x[3];
        }
        let mut any = o0 | o1 | o2 | o3;
        for (x, y) in ia.into_remainder().iter_mut().zip(ic.remainder()) {
            *x &= *y;
            any |= *x;
        }
        any
    }
}

/// The explicit `std::simd` kernels (`--features portable-simd`,
/// nightly toolchains only).
#[cfg(feature = "portable-simd")]
mod kernel {
    use std::simd::num::SimdUint;
    use std::simd::u64x4;

    pub fn popcount(col: &[u64]) -> u64 {
        let n = col.len() / 4 * 4;
        let mut acc = u64x4::splat(0);
        let mut i = 0;
        while i < n {
            acc += u64x4::from_slice(&col[i..i + 4]).count_ones();
            i += 4;
        }
        let mut total = acc.reduce_sum();
        for x in &col[n..] {
            total += x.count_ones() as u64;
        }
        total
    }

    pub fn and_popcount(a: &[u64], b: &[u64]) -> u64 {
        let n = a.len() / 4 * 4;
        let mut acc = u64x4::splat(0);
        let mut i = 0;
        while i < n {
            let x = u64x4::from_slice(&a[i..i + 4]);
            let y = u64x4::from_slice(&b[i..i + 4]);
            acc += (x & y).count_ones();
            i += 4;
        }
        let mut total = acc.reduce_sum();
        for (x, y) in a[n..].iter().zip(&b[n..]) {
            total += (x & y).count_ones() as u64;
        }
        total
    }

    pub fn andnot_popcount(a: &[u64], b: &[u64]) -> u64 {
        let n = a.len() / 4 * 4;
        let mut acc = u64x4::splat(0);
        let mut i = 0;
        while i < n {
            let x = u64x4::from_slice(&a[i..i + 4]);
            let y = u64x4::from_slice(&b[i..i + 4]);
            acc += (x & !y).count_ones();
            i += 4;
        }
        let mut total = acc.reduce_sum();
        for (x, y) in a[n..].iter().zip(&b[n..]) {
            total += (x & !y).count_ones() as u64;
        }
        total
    }

    pub fn select_and(dst: &mut [u64], a: &[u64], b: &[u64]) -> u64 {
        let n = dst.len() / 4 * 4;
        let mut any = u64x4::splat(0);
        let mut i = 0;
        while i < n {
            let x = u64x4::from_slice(&a[i..i + 4]);
            let y = u64x4::from_slice(&b[i..i + 4]);
            let r = x & y;
            r.copy_to_slice(&mut dst[i..i + 4]);
            any |= r;
            i += 4;
        }
        let mut any = any.reduce_or();
        for ((d, x), y) in dst[n..].iter_mut().zip(&a[n..]).zip(&b[n..]) {
            *d = x & y;
            any |= *d;
        }
        any
    }

    pub fn and_into(acc: &mut [u64], col: &[u64]) -> u64 {
        let n = acc.len() / 4 * 4;
        let mut any = u64x4::splat(0);
        let mut i = 0;
        while i < n {
            let x = u64x4::from_slice(&acc[i..i + 4]);
            let y = u64x4::from_slice(&col[i..i + 4]);
            let r = x & y;
            r.copy_to_slice(&mut acc[i..i + 4]);
            any |= r;
            i += 4;
        }
        let mut any = any.reduce_or();
        for (x, y) in acc[n..].iter_mut().zip(&col[n..]) {
            *x &= *y;
            any |= *x;
        }
        any
    }
}

/// A bump arena of tidset columns in either vertical representation.
///
/// The vertical engine materializes one generation of child tidsets per
/// lexicographic node and `reset()`s the arena between sibling
/// subtrees. A generation is *either* `k` equal-width bitmap columns in
/// the `u64` slab (appended with [`BitsetArena::append_and`]) *or* `k`
/// variable-length sorted `u32` columns — tid lists or diffsets — in
/// the tid slab (appended with [`BitsetArena::push_tids`], bounded by
/// the per-column end offsets). Capacity is pre-reserved from the
/// candidate upper bound before a generation is filled, so after
/// warm-up (and, when the bound is tight, from the very first child)
/// descent allocates nothing. Both slabs persist across generations, so
/// a node that switches representation mid-descent still reuses
/// whatever its siblings reserved.
///
/// Accounting mirrors [`crate::ProjectionArena`]: the *used* (not
/// reserved) bytes of every filled generation — 8 per bitmap word plus
/// 4 per tid — accumulate into `alloc.projection_bytes` and recycled
/// generations into `alloc.arena_reuses`, flushed on drop. Both depend
/// only on the tidsets the search materializes — identical at any
/// thread count — so they stay thread-invariant.
#[derive(Debug, Default)]
pub struct BitsetArena {
    words: Vec<u64>,
    /// Variable-length `u32` columns (tid lists or diffsets).
    tids: Vec<u32>,
    /// End offset of each tid column, ascending; column `i` spans
    /// `tid_ends[i-1]..tid_ends[i]` (from 0 for the first).
    tid_ends: Vec<u32>,
    /// Generations recycled so far (non-empty resets).
    reuses: u64,
    /// Bytes used across flushed generations.
    used_bytes: u64,
}

impl BitsetArena {
    /// An empty arena.
    pub fn new() -> Self {
        BitsetArena::default()
    }

    /// Starts a new generation: flushes the previous one's accounting
    /// and clears both slabs, keeping capacity.
    pub fn reset(&mut self) {
        if !self.words.is_empty() || !self.tids.is_empty() {
            self.reuses += 1;
            self.used_bytes += (self.words.len() * 8 + self.tids.len() * 4) as u64;
        }
        self.words.clear();
        self.tids.clear();
        self.tid_ends.clear();
    }

    /// Pre-reserves room for `n` more words (the bound-driven
    /// pre-sizing hook; a no-op once capacity covers it).
    pub fn reserve_words(&mut self, n: usize) {
        self.words.reserve(n);
    }

    /// Pre-reserves room for `n` more tids (the bound-driven pre-sizing
    /// hook for the sparse representations).
    pub fn reserve_tids(&mut self, n: usize) {
        self.tids.reserve(n);
    }

    /// Appends the column `a & b` to the current generation.
    pub fn append_and(&mut self, a: &[u64], b: &[u64]) {
        debug_assert_eq!(a.len(), b.len());
        let start = self.words.len();
        self.words.resize(start + a.len(), 0);
        select_and(&mut self.words[start..], a, b);
    }

    /// Appends one variable-length tid column: `fill` pushes its sorted
    /// tids onto the slab, and the column boundary is recorded. Returns
    /// the column's length.
    pub fn push_tids(&mut self, fill: impl FnOnce(&mut Vec<u32>)) -> usize {
        let start = self.tids.len();
        fill(&mut self.tids);
        self.tid_ends.push(self.tids.len() as u32);
        self.tids.len() - start
    }

    /// The current generation's words, in append order.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The current generation's tid slab, in append order.
    #[inline]
    pub fn tids(&self) -> &[u32] {
        &self.tids
    }

    /// Per-column end offsets into [`BitsetArena::tids`].
    #[inline]
    pub fn tid_ends(&self) -> &[u32] {
        &self.tid_ends
    }

    /// Number of words in the current generation.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when the current generation holds neither bitmap words nor
    /// tid columns.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty() && self.tids.is_empty()
    }

    /// Heap bytes currently reserved by both slabs.
    pub fn capacity_bytes(&self) -> usize {
        self.words.capacity() * 8 + self.tids.capacity() * 4 + self.tid_ends.capacity() * 4
    }

    fn flush_metrics(&mut self) {
        if !self.words.is_empty() || !self.tids.is_empty() {
            self.reuses += 1;
            self.used_bytes += (self.words.len() * 8 + self.tids.len() * 4) as u64;
        }
        if self.used_bytes > 0 {
            gogreen_obs::metrics::add("alloc.projection_bytes", self.used_bytes);
            gogreen_obs::metrics::add("alloc.arena_reuses", self.reuses);
        }
        self.used_bytes = 0;
        self.reuses = 0;
    }
}

impl Drop for BitsetArena {
    fn drop(&mut self) {
        self.flush_metrics();
    }
}

impl HeapSize for BitsetArena {
    fn heap_size(&self) -> usize {
        self.capacity_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference single-step loops the kernels must match bit-for-bit.
    fn ref_and_popcount(a: &[u64], b: &[u64]) -> u64 {
        a.iter().zip(b).map(|(x, y)| (x & y).count_ones() as u64).sum()
    }

    fn test_vectors(len: usize) -> (Vec<u64>, Vec<u64>) {
        // Deterministic pseudo-random words (splitmix64).
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        let a: Vec<u64> = (0..len).map(|_| next()).collect();
        let b: Vec<u64> = (0..len).map(|_| next()).collect();
        (a, b)
    }

    #[test]
    fn and_popcount_matches_reference_at_all_tail_lengths() {
        // Lengths straddling the 4-word unroll boundary, including the
        // empty column.
        for len in 0..=13 {
            let (a, b) = test_vectors(len);
            assert_eq!(and_popcount(&a, &b), ref_and_popcount(&a, &b), "len={len}");
            assert_eq!(popcount(&a), a.iter().map(|x| x.count_ones() as u64).sum::<u64>());
        }
    }

    #[test]
    fn select_and_and_into_match_reference() {
        for len in 0..=13 {
            let (a, b) = test_vectors(len);
            let expect: Vec<u64> = a.iter().zip(&b).map(|(x, y)| x & y).collect();
            let expect_any = expect.iter().fold(0, |o, w| o | w);

            let mut dst = vec![!0u64; len];
            let any = select_and(&mut dst, &a, &b);
            assert_eq!(dst, expect, "select_and len={len}");
            assert_eq!(any, expect_any);

            let mut acc = a.clone();
            let any = and_into(&mut acc, &b);
            assert_eq!(acc, expect, "and_into len={len}");
            assert_eq!(any, expect_any);
        }
    }

    #[test]
    fn empty_intersection_reports_zero_any() {
        let a = vec![0b1010u64, 0, 7];
        let b = vec![0b0101u64, !0, 8];
        let mut dst = vec![0u64; 3];
        assert_eq!(select_and(&mut dst, &a, &b), 0);
        let mut acc = a.clone();
        assert_eq!(and_into(&mut acc, &b), 0);
        assert_eq!(and_popcount(&a, &b), 0);
    }

    #[test]
    fn set_bit_get_bit_round_trip() {
        let mut col = vec![0u64; 3];
        for i in [0usize, 1, 63, 64, 127, 130] {
            assert!(!get_bit(&col, i));
            set_bit(&mut col, i);
            assert!(get_bit(&col, i));
        }
        assert_eq!(popcount(&col), 6);
    }

    #[test]
    fn set_run_matches_per_bit_fill() {
        // Runs within a word, across word boundaries, word-aligned, and
        // multi-word interiors.
        for &(lo, len) in
            &[(0usize, 0usize), (0, 1), (3, 7), (0, 64), (60, 8), (64, 64), (1, 190), (63, 2)]
        {
            let words = words_for(lo + len.max(1));
            let mut fast = vec![0u64; words];
            let mut slow = vec![0u64; words];
            set_run(&mut fast, lo, len);
            for i in lo..lo + len {
                set_bit(&mut slow, i);
            }
            assert_eq!(fast, slow, "lo={lo} len={len}");
        }
    }

    #[test]
    fn set_run_ors_into_existing_bits() {
        let mut col = vec![0u64; 2];
        set_bit(&mut col, 0);
        set_run(&mut col, 62, 4);
        assert!(get_bit(&col, 0));
        for i in 62..66 {
            assert!(get_bit(&col, i), "bit {i}");
        }
        assert_eq!(popcount(&col), 5);
    }

    #[test]
    fn words_for_rounds_up() {
        assert_eq!(words_for(0), 0);
        assert_eq!(words_for(1), 1);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
    }

    #[test]
    fn arena_generations_and_accounting() {
        let mut a = BitsetArena::new();
        assert!(a.is_empty());
        a.reserve_words(8);
        let cap = a.capacity_bytes();
        assert!(cap >= 64);
        a.append_and(&[0b1100, 5], &[0b0110, 7]);
        assert_eq!(a.words(), &[0b0100, 5]);
        assert_eq!(a.len(), 2);
        a.reset();
        assert!(a.is_empty());
        assert_eq!(a.reuses, 1);
        assert_eq!(a.used_bytes, 16);
        // Second generation reuses the reservation.
        a.append_and(&[1], &[3]);
        assert_eq!(a.words(), &[1]);
        assert_eq!(a.capacity_bytes(), cap);
        // Empty resets are not counted as reuse.
        a.reset();
        a.reset();
        assert_eq!(a.reuses, 2);
    }

    #[test]
    fn arena_heap_size_tracks_capacity() {
        let mut a = BitsetArena::new();
        assert_eq!(a.heap_size(), 0);
        a.reserve_words(16);
        assert_eq!(a.heap_size(), a.capacity_bytes());
    }

    #[test]
    fn andnot_popcount_matches_reference_at_all_tail_lengths() {
        // Lengths straddling the 4-word unroll/SIMD-lane boundary,
        // including the empty column.
        for len in 0..=13 {
            let (a, b) = test_vectors(len);
            let expect: u64 = a.iter().zip(&b).map(|(x, y)| (x & !y).count_ones() as u64).sum();
            assert_eq!(andnot_popcount(&a, &b), expect, "len={len}");
        }
    }

    #[test]
    fn andnot_popcount_empty_and_full_columns() {
        let (a, _) = test_vectors(7);
        let zero = vec![0u64; 7];
        let full = vec![!0u64; 7];
        // a \ ∅ = a, a \ U = ∅, U \ a = |!a|, ∅ \ a = ∅.
        assert_eq!(andnot_popcount(&a, &zero), popcount(&a));
        assert_eq!(andnot_popcount(&a, &full), 0);
        assert_eq!(andnot_popcount(&full, &a), 7 * 64 - popcount(&a));
        assert_eq!(andnot_popcount(&zero, &a), 0);
    }

    /// Per-bit reference for the collect kernels.
    fn ref_bits(col: &[u64]) -> Vec<u32> {
        (0..col.len() * 64).filter(|&i| get_bit(col, i)).map(|i| i as u32).collect()
    }

    #[test]
    fn collect_kernels_match_per_bit_references() {
        for len in 0..=5 {
            let (a, b) = test_vectors(len);
            let and_ref: Vec<u64> = a.iter().zip(&b).map(|(x, y)| x & y).collect();
            let andnot_ref: Vec<u64> = a.iter().zip(&b).map(|(x, y)| x & !y).collect();
            let mut out = Vec::new();
            collect_and(&a, &b, &mut out);
            assert_eq!(out, ref_bits(&and_ref), "collect_and len={len}");
            out.clear();
            collect_andnot(&a, &b, &mut out);
            assert_eq!(out, ref_bits(&andnot_ref), "collect_andnot len={len}");
            out.clear();
            to_tidlist(&a, &mut out);
            assert_eq!(out, ref_bits(&a), "to_tidlist len={len}");
        }
    }

    #[test]
    fn bitmap_tidlist_round_trip() {
        // Word-boundary bits included on purpose.
        let tids = [0u32, 1, 63, 64, 127, 128, 190];
        let mut col = vec![0u64; 3];
        tidlist_to_bitmap(&tids, &mut col);
        let mut back = Vec::new();
        to_tidlist(&col, &mut back);
        assert_eq!(back, tids);
        assert_eq!(popcount(&col), tids.len() as u64);
    }

    /// Deterministic sorted tid lists for the list-kernel tests.
    fn list_vectors(len_a: usize, len_b: usize, seed: u64) -> (Vec<u32>, Vec<u32>) {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        let mut gen = |len: usize| {
            let mut v: Vec<u32> = (0..len).map(|_| (next() % 4096) as u32).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        (gen(len_a), gen(len_b))
    }

    fn ref_intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
        a.iter().filter(|x| b.contains(x)).copied().collect()
    }

    fn ref_diff(a: &[u32], b: &[u32]) -> Vec<u32> {
        a.iter().filter(|x| !b.contains(x)).copied().collect()
    }

    #[test]
    fn list_kernels_match_references_across_the_gallop_threshold() {
        // Size pairs on both sides of GALLOP_RATIO, plus empty and
        // identical inputs, so the merge and the galloping paths both
        // run and agree with the per-element references.
        for &(la, lb) in &[(0usize, 0usize), (0, 9), (5, 5), (40, 60), (4, 400), (600, 3), (1, 1)] {
            let (a, b) = list_vectors(la, lb, 0xabc0 + (la * 1000 + lb) as u64);
            let want_i = ref_intersect(&a, &b);
            let want_d = ref_diff(&a, &b);
            assert_eq!(intersect_count(&a, &b), want_i.len() as u64, "count {la}x{lb}");
            assert_eq!(intersect_count(&b, &a), want_i.len() as u64, "count sym {la}x{lb}");
            let mut out = Vec::new();
            intersect_into(&a, &b, &mut out);
            assert_eq!(out, want_i, "intersect {la}x{lb}");
            out.clear();
            diff_into(&a, &b, &mut out);
            assert_eq!(out, want_d, "diff {la}x{lb}");
            // Self-intersection/difference sanity.
            assert_eq!(intersect_count(&a, &a), a.len() as u64);
            out.clear();
            diff_into(&a, &a, &mut out);
            assert!(out.is_empty());
        }
    }

    #[test]
    fn first_ge_probes_every_window() {
        let l: Vec<u32> = (0..200).map(|i| i * 3).collect();
        for x in 0..620u32 {
            let want = l.partition_point(|&v| v < x);
            assert_eq!(first_ge(&l, x), want, "x={x}");
        }
        assert_eq!(first_ge(&[], 5), 0);
    }

    #[test]
    fn arena_tid_columns_and_accounting() {
        let mut a = BitsetArena::new();
        a.reserve_tids(16);
        let n = a.push_tids(|out| out.extend([1u32, 4, 9]));
        assert_eq!(n, 3);
        a.push_tids(|_| {});
        a.push_tids(|out| out.push(7));
        assert_eq!(a.tids(), &[1, 4, 9, 7]);
        assert_eq!(a.tid_ends(), &[3, 3, 4]);
        assert!(!a.is_empty());
        a.reset();
        assert!(a.is_empty());
        assert_eq!(a.reuses, 1);
        assert_eq!(a.used_bytes, 16); // 4 tids × 4 bytes
                                      // Mixed generation: words and tids both count.
        a.append_and(&[3], &[1]);
        a.push_tids(|out| out.push(2));
        a.reset();
        assert_eq!(a.used_bytes, 16 + 8 + 4);
        assert_eq!(a.reuses, 2);
    }
}
