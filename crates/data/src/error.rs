//! Error types for the data substrate.

use std::fmt;

/// Errors arising while reading or writing transaction data.
#[derive(Debug)]
pub enum DataError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// A token that is not a `u32` item id.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Io(e) => write!(f, "i/o error: {e}"),
            DataError::Parse { line, token } => {
                write!(f, "line {line}: invalid item id {token:?}")
            }
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Io(e) => Some(e),
            DataError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_io() {
        let e = DataError::from(std::io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn display_parse() {
        let e = DataError::Parse { line: 3, token: "x7".into() };
        let s = e.to_string();
        assert!(s.contains("line 3") && s.contains("x7"));
    }
}
