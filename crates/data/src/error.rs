//! Error types for the data substrate.

use std::fmt;

/// Errors arising while reading or writing transaction data.
#[derive(Debug)]
pub enum DataError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// A token that is not a `u32` item id.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// A structurally malformed line: the tokens may be fine
    /// individually but the line as a whole is not in the expected
    /// shape (missing `:` separator, pattern with no items, …).
    Format {
        /// 1-based line number.
        line: usize,
        /// What about the line's structure is wrong.
        reason: String,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Io(e) => write!(f, "i/o error: {e}"),
            DataError::Parse { line, token } => {
                write!(f, "line {line}: invalid item id {token:?}")
            }
            DataError::Format { line, reason } => {
                write!(f, "line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Io(e) => Some(e),
            DataError::Parse { .. } | DataError::Format { .. } => None,
        }
    }
}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_io() {
        let e = DataError::from(std::io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn display_parse() {
        let e = DataError::Parse { line: 3, token: "x7".into() };
        let s = e.to_string();
        assert!(s.contains("line 3") && s.contains("x7"));
    }

    #[test]
    fn display_format() {
        let e = DataError::Format { line: 5, reason: "missing ':' separator".into() };
        let s = e.to_string();
        assert!(s.contains("line 5") && s.contains("missing ':'"), "{s}");
    }
}
