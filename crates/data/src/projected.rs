//! Materialized projected databases (paper Definition 3.2).
//!
//! A [`RankDb`] is a database re-encoded into rank space against an
//! [`FList`]: each tuple keeps only frequent items, stored as ascending
//! ranks. The `i`-projected database of the paper — "tuples containing `i`
//! with infrequent items, `i`, and items before `i` removed" — is then
//! simply: for every tuple containing rank `r`, the suffix of ranks
//! greater than `r`.

use crate::database::TransactionDb;
use crate::flat::{CsrTuples, TupleSlices};
use crate::flist::FList;

/// A rank-encoded database: tuples are ascending rank rows in flat CSR
/// storage.
///
/// This is the representation the reference ("naive") projected-database
/// miner operates on, and the shape that compressed databases generalize.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RankDb {
    tuples: CsrTuples<u32>,
    /// Number of distinct ranks (the F-list length at encoding time).
    num_ranks: usize,
}

impl RankDb {
    /// Encodes `db` against `flist`, dropping infrequent items and empty
    /// tuples — one pass, straight into CSR storage.
    pub fn encode(db: &TransactionDb, flist: &FList) -> Self {
        let mut tuples = CsrTuples::with_capacity(db.len(), db.csr().total_elems());
        for t in db.iter() {
            if flist.encode_push(t, &mut tuples) == 0 {
                tuples.discard_row();
            } else {
                tuples.commit_row();
            }
        }
        RankDb { tuples, num_ranks: flist.len() }
    }

    /// Builds directly from rank tuples (each sorted ascending, non-empty).
    pub fn from_tuples(tuples: Vec<Vec<u32>>, num_ranks: usize) -> Self {
        debug_assert!(tuples.iter().all(|t| !t.is_empty() && t.windows(2).all(|w| w[0] < w[1])));
        debug_assert!(tuples.iter().flatten().all(|&r| (r as usize) < num_ranks));
        RankDb { tuples: tuples.into_iter().collect(), num_ranks }
    }

    /// Adopts already-encoded CSR storage (rows ascending, non-empty).
    pub fn from_csr(tuples: CsrTuples<u32>, num_ranks: usize) -> Self {
        debug_assert!(tuples.iter().all(|t| !t.is_empty() && t.windows(2).all(|w| w[0] < w[1])));
        RankDb { tuples, num_ranks }
    }

    /// The tuples as a CSR view.
    pub fn tuples(&self) -> TupleSlices<'_> {
        self.tuples.as_slices()
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when there are no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Number of rank slots (size of the counting vector needed).
    pub fn num_ranks(&self) -> usize {
        self.num_ranks
    }

    /// Counts the support of every rank into `counts` (reused workhorse
    /// buffer; it is zeroed and resized here). The count ignores row
    /// boundaries, so it sweeps the flat buffer directly.
    pub fn count_supports(&self, counts: &mut Vec<u64>) {
        counts.clear();
        counts.resize(self.num_ranks, 0);
        for &r in self.tuples.flat() {
            counts[r as usize] += 1;
        }
    }

    /// Materializes the `r`-projected database: for each tuple containing
    /// `r`, the strictly-greater suffix. Tuples whose suffix is empty are
    /// dropped (they contribute only to `r`'s own support).
    pub fn project(&self, r: u32) -> RankDb {
        let mut tuples = CsrTuples::new();
        for t in self.tuples.iter() {
            if let Ok(pos) = t.binary_search(&r) {
                if pos + 1 < t.len() {
                    tuples.push_row(&t[pos + 1..]);
                }
            }
        }
        RankDb { tuples, num_ranks: self.num_ranks }
    }

    /// Support of rank `r` (full scan; used by tests).
    pub fn support_of(&self, r: u32) -> u64 {
        self.tuples.iter().filter(|t| t.binary_search(&r).is_ok()).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::TransactionDb;

    fn paper_rankdb() -> (RankDb, FList) {
        let db = TransactionDb::paper_example();
        let fl = FList::from_db(&db, 2);
        (RankDb::encode(&db, &fl), fl)
    }

    #[test]
    fn encode_keeps_all_five_tuples() {
        let (rdb, fl) = paper_rankdb();
        assert_eq!(rdb.len(), 5);
        assert_eq!(rdb.num_ranks(), fl.len());
    }

    #[test]
    fn count_supports_matches_flist() {
        let (rdb, fl) = paper_rankdb();
        let mut counts = Vec::new();
        rdb.count_supports(&mut counts);
        for r in 0..fl.len() as u32 {
            assert_eq!(counts[r as usize], fl.support(r), "rank {r}");
        }
    }

    #[test]
    fn project_on_lowest_rank() {
        let (rdb, fl) = paper_rankdb();
        // Rank 0 is item d (support 2): the d-projected database has two
        // source tuples (100 and 200), both with non-empty suffixes.
        let proj = rdb.project(0);
        assert_eq!(proj.len(), 2);
        let mut counts = Vec::new();
        proj.count_supports(&mut counts);
        // In d-projection: f,g,c have support 2; a,e have 1.
        let sup = |id: u32| counts[fl.rank_of(crate::Item(id)).unwrap() as usize];
        assert_eq!(sup(5), 2); // f
        assert_eq!(sup(6), 2); // g
        assert_eq!(sup(2), 2); // c
        assert_eq!(sup(0), 1); // a
        assert_eq!(sup(4), 1); // e
    }

    #[test]
    fn project_drops_empty_suffixes() {
        let rdb = RankDb::from_tuples(vec![vec![0, 1], vec![1]], 2);
        let proj = rdb.project(1);
        assert!(proj.is_empty());
    }

    #[test]
    fn project_skips_tuples_without_rank() {
        let rdb = RankDb::from_tuples(vec![vec![0, 2], vec![1, 2]], 3);
        let proj = rdb.project(0);
        assert_eq!(proj.len(), 1);
        assert_eq!(proj.tuples().row(0), &[2]);
    }

    #[test]
    fn support_of_scans() {
        let rdb = RankDb::from_tuples(vec![vec![0, 1], vec![1], vec![0]], 2);
        assert_eq!(rdb.support_of(0), 2);
        assert_eq!(rdb.support_of(1), 2);
    }
}
