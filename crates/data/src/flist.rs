//! The frequent list (paper Definition 3.1).

use crate::database::TransactionDb;
use crate::item::Item;

/// Sentinel rank for infrequent items.
pub const NO_RANK: u32 = u32::MAX;

/// The *F-list*: frequent items of a (projected or compressed) database
/// ordered by **ascending** support, ties broken by ascending item id.
///
/// ```
/// use gogreen_data::{FList, Item, TransactionDb};
///
/// let db = TransactionDb::paper_example();
/// let flist = FList::from_db(&db, 2);
/// // d (id 3, support 2) is the rarest frequent item → rank 0.
/// assert_eq!(flist.item(0), Item(3));
/// assert_eq!(flist.support(0), 2);
/// // b, h, i are infrequent at ξ = 2.
/// assert!(!flist.is_frequent(Item(1)));
/// ```
///
/// Every projected-database miner in this repository traverses items in
/// F-list order and defines the candidate extensions of item `i` as the
/// items *after* `i` in the F-list (paper Definition 3.3). Internally the
/// miners work in *rank space*: item `i`'s rank is its position in the
/// F-list, so "extensions of `i`" is simply "ranks greater than
/// `rank(i)`".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FList {
    /// `(item, support)` ascending by `(support, item)`.
    entries: Vec<(Item, u64)>,
    /// Dense map item id → rank (`NO_RANK` if infrequent).
    ranks: Vec<u32>,
    /// The absolute threshold the list was built with.
    min_support: u64,
}

impl FList {
    /// Builds the F-list of `db` at the absolute threshold `min_support`.
    pub fn from_db(db: &TransactionDb, min_support: u64) -> Self {
        Self::from_counts(&db.item_supports(), min_support)
    }

    /// Builds an F-list from per-item supports (`counts[item_id]`).
    ///
    /// This constructor is what compressed-database mining uses: the counts
    /// there come from group heads and outlying items rather than a plain
    /// scan.
    pub fn from_counts(counts: &[u64], min_support: u64) -> Self {
        let min_support = min_support.max(1);
        let mut entries: Vec<(Item, u64)> = counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c >= min_support)
            .map(|(id, &c)| (Item(id as u32), c))
            .collect();
        entries.sort_unstable_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
        let mut ranks = vec![NO_RANK; counts.len()];
        for (rank, &(item, _)) in entries.iter().enumerate() {
            ranks[item.index()] = rank as u32;
        }
        FList { entries, ranks, min_support }
    }

    /// Number of frequent items.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no item is frequent.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The threshold this list was built with.
    #[inline]
    pub fn min_support(&self) -> u64 {
        self.min_support
    }

    /// The item at `rank` (ascending support order).
    #[inline]
    pub fn item(&self, rank: u32) -> Item {
        self.entries[rank as usize].0
    }

    /// The support of the item at `rank`.
    #[inline]
    pub fn support(&self, rank: u32) -> u64 {
        self.entries[rank as usize].1
    }

    /// The rank of `item`, or `None` when infrequent.
    #[inline]
    pub fn rank_of(&self, item: Item) -> Option<u32> {
        match self.ranks.get(item.index()) {
            Some(&r) if r != NO_RANK => Some(r),
            _ => None,
        }
    }

    /// True when `item` meets the threshold.
    #[inline]
    pub fn is_frequent(&self, item: Item) -> bool {
        self.rank_of(item).is_some()
    }

    /// Iterates `(item, support)` in F-list (ascending) order.
    pub fn iter(&self) -> impl Iterator<Item = (Item, u64)> + '_ {
        self.entries.iter().copied()
    }

    /// Re-encodes a tuple (sorted by item id) into **sorted rank space**:
    /// infrequent items are dropped and the survivors are ordered by rank.
    /// The returned ranks index back into this F-list.
    pub fn encode(&self, items: &[Item]) -> Vec<u32> {
        let mut out: Vec<u32> = items.iter().filter_map(|&it| self.rank_of(it)).collect();
        out.sort_unstable();
        out
    }

    /// Re-encodes a tuple into rank space directly into the open row of
    /// a CSR container, returning the number of surviving ranks.
    ///
    /// This is the one-pass form of [`FList::encode`]: ranks are pushed
    /// into `out`'s open row and sorted in place, with no intermediate
    /// `Vec` per tuple. The row is left **open** — the caller decides to
    /// `commit_row()` (keep the tuple) or `discard_row()` (drop an
    /// emptied tuple, count it as bare, …).
    pub fn encode_push(&self, items: &[Item], out: &mut crate::flat::CsrTuples<u32>) -> usize {
        debug_assert_eq!(out.open_len(), 0, "encode_push needs a fresh open row");
        for &it in items {
            if let Some(r) = self.rank_of(it) {
                out.push_elem(r);
            }
        }
        out.open_row_mut().sort_unstable();
        out.open_len()
    }

    /// Decodes a slice of ranks back to items sorted by item id.
    pub fn decode(&self, ranks: &[u32]) -> Vec<Item> {
        let mut out: Vec<Item> = ranks.iter().map(|&r| self.item(r)).collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Paper encoding: a=0, b=1, c=2, d=3, e=4, f=5, g=6, h=7, i=8.
    fn paper_flist(minsup: u64) -> FList {
        FList::from_db(&TransactionDb::paper_example(), minsup)
    }

    #[test]
    fn paper_flist_at_two_has_six_items() {
        let fl = paper_flist(2);
        assert_eq!(fl.len(), 6);
        // d:2 is the lowest-support frequent item, so rank 0.
        assert_eq!(fl.item(0), Item(3));
        assert_eq!(fl.support(0), 2);
        // The two rank-4/5 items are e and c, both support 4.
        let top: Vec<u64> = (4..6).map(|r| fl.support(r)).collect();
        assert_eq!(top, vec![4, 4]);
        // b, h, i are infrequent.
        for id in [1u32, 7, 8] {
            assert!(!fl.is_frequent(Item(id)));
            assert_eq!(fl.rank_of(Item(id)), None);
        }
    }

    #[test]
    fn paper_flist_at_three_drops_d() {
        let fl = paper_flist(3);
        assert_eq!(fl.len(), 5);
        assert!(!fl.is_frequent(Item(3)));
        assert!(fl.is_frequent(Item(0)));
    }

    #[test]
    fn ranks_ascend_with_support() {
        let fl = paper_flist(2);
        for r in 1..fl.len() as u32 {
            assert!(fl.support(r - 1) <= fl.support(r));
        }
    }

    #[test]
    fn ties_break_by_item_id() {
        let fl = paper_flist(2);
        // a(0), f(5), g(6) all have support 3 -> ranks 1,2,3 in id order.
        assert_eq!(fl.rank_of(Item(0)), Some(1));
        assert_eq!(fl.rank_of(Item(5)), Some(2));
        assert_eq!(fl.rank_of(Item(6)), Some(3));
    }

    #[test]
    fn encode_drops_infrequent_and_sorts_by_rank() {
        let fl = paper_flist(2);
        // Tuple 100: a c d e f g  (ids 0 2 3 4 5 6).
        let ranks = fl.encode(&[Item(0), Item(2), Item(3), Item(4), Item(5), Item(6)]);
        assert_eq!(ranks.len(), 6);
        assert!(ranks.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(ranks[0], 0); // d first (lowest support)
                                 // Tuple 500: a e h -> h dropped.
        let ranks = fl.encode(&[Item(0), Item(4), Item(7)]);
        assert_eq!(ranks.len(), 2);
    }

    #[test]
    fn encode_push_matches_encode() {
        let fl = paper_flist(2);
        let db = TransactionDb::paper_example();
        let mut csr = crate::flat::CsrTuples::new();
        let mut expect = Vec::new();
        for t in db.iter() {
            let n = fl.encode_push(t, &mut csr);
            assert_eq!(n, csr.open_len());
            if n == 0 {
                csr.discard_row();
            } else {
                csr.commit_row();
                expect.push(fl.encode(t));
            }
        }
        assert_eq!(csr.iter().map(|r| r.to_vec()).collect::<Vec<_>>(), expect);
    }

    #[test]
    fn decode_round_trip() {
        let fl = paper_flist(2);
        let items = vec![Item(2), Item(5), Item(6)];
        let ranks = fl.encode(&items);
        assert_eq!(fl.decode(&ranks), items);
    }

    #[test]
    fn from_counts_empty_when_nothing_frequent() {
        let fl = FList::from_counts(&[1, 1, 1], 2);
        assert!(fl.is_empty());
        assert_eq!(fl.encode(&[Item(0)]), Vec::<u32>::new());
    }

    #[test]
    fn min_support_zero_normalizes_to_one() {
        let fl = FList::from_counts(&[0, 3], 0);
        assert_eq!(fl.min_support(), 1);
        assert_eq!(fl.len(), 1); // item 0 has count 0 -> not frequent
    }

    #[test]
    fn rank_of_out_of_range_item() {
        let fl = FList::from_counts(&[5], 1);
        assert_eq!(fl.rank_of(Item(100)), None);
    }
}
