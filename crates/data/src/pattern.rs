//! Patterns (frequent itemsets) and pattern collections.

use crate::item::Item;
use gogreen_util::{FxHashMap, HeapSize};
use std::fmt;

/// A pattern (itemset) together with its support — one element of the
/// paper's `FP` set.
///
/// Items are sorted ascending by id, so the representation is canonical.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Pattern {
    items: Box<[Item]>,
    support: u64,
}

impl Pattern {
    /// Builds a pattern, sorting and deduplicating its items.
    ///
    /// # Panics
    ///
    /// Panics on an empty itemset: the paper defines patterns as non-empty
    /// subsets of `I`.
    pub fn new(mut items: Vec<Item>, support: u64) -> Self {
        items.sort_unstable();
        items.dedup();
        assert!(!items.is_empty(), "patterns are non-empty itemsets");
        Pattern { items: items.into_boxed_slice(), support }
    }

    /// Builds from raw `u32` ids.
    pub fn from_ids(ids: impl IntoIterator<Item = u32>, support: u64) -> Self {
        Self::new(ids.into_iter().map(Item).collect(), support)
    }

    /// The items, sorted ascending.
    #[inline]
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// The pattern length `|X|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Patterns are never empty; provided for API symmetry.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The support `X.C`.
    #[inline]
    pub fn support(&self) -> u64 {
        self.support
    }

    /// True when `self`'s itemset is a subset of `other`'s.
    pub fn is_subset_of(&self, other: &Pattern) -> bool {
        is_subset(&self.items, &other.items)
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, it) in self.items.iter().enumerate() {
            if k > 0 {
                write!(f, " ")?;
            }
            write!(f, "{it}")?;
        }
        write!(f, ":{}", self.support)
    }
}

impl HeapSize for Pattern {
    fn heap_size(&self) -> usize {
        self.items.heap_size()
    }
}

/// Subset test over two sorted item slices.
pub fn is_subset(small: &[Item], big: &[Item]) -> bool {
    if small.len() > big.len() {
        return false;
    }
    let mut b = big.iter();
    'outer: for s in small {
        for x in b.by_ref() {
            match x.cmp(s) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

/// The complete set of frequent patterns produced by one mining run — the
/// paper's `FP`.
///
/// Lookup by itemset is O(1); iteration order is insertion order. Use
/// [`PatternSet::sorted`] for a canonical ordering when comparing runs.
#[derive(Debug, Clone, Default)]
pub struct PatternSet {
    patterns: Vec<Pattern>,
    index: FxHashMap<Box<[Item]>, usize>,
}

impl PatternSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a pattern. Re-inserting the same itemset replaces its
    /// support (last write wins) and returns `false`.
    pub fn insert(&mut self, p: Pattern) -> bool {
        match self.index.get(p.items()) {
            Some(&at) => {
                self.patterns[at] = p;
                false
            }
            None => {
                self.index.insert(p.items.clone(), self.patterns.len());
                self.patterns.push(p);
                true
            }
        }
    }

    /// The support of `items` (sorted ascending), if present.
    pub fn support_of(&self, items: &[Item]) -> Option<u64> {
        self.index.get(items).map(|&at| self.patterns[at].support)
    }

    /// True when the itemset is present.
    pub fn contains(&self, items: &[Item]) -> bool {
        self.index.contains_key(items)
    }

    /// Number of patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// True when no pattern has been inserted.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Iterates patterns in insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, Pattern> {
        self.patterns.iter()
    }

    /// The patterns as a slice, in insertion order.
    pub fn as_slice(&self) -> &[Pattern] {
        &self.patterns
    }

    /// Length of the longest pattern (0 when empty) — Table 3's
    /// "maximal length" column.
    pub fn max_len(&self) -> usize {
        self.patterns.iter().map(Pattern::len).max().unwrap_or(0)
    }

    /// Returns the patterns sorted by `(items)` lexicographically — a
    /// canonical order for equality comparisons across miners.
    pub fn sorted(&self) -> Vec<Pattern> {
        let mut v = self.patterns.clone();
        v.sort_unstable_by(|a, b| a.items().cmp(b.items()));
        v
    }

    /// Retains only patterns satisfying `keep` — the paper's answer to
    /// *tightened* constraints (§2): filter the old `FP` instead of mining.
    pub fn filter(&self, mut keep: impl FnMut(&Pattern) -> bool) -> PatternSet {
        let mut out = PatternSet::new();
        for p in &self.patterns {
            if keep(p) {
                out.insert(p.clone());
            }
        }
        out
    }

    /// True when both sets contain exactly the same `(itemset, support)`
    /// pairs.
    pub fn same_patterns_as(&self, other: &PatternSet) -> bool {
        self.len() == other.len()
            && self.patterns.iter().all(|p| other.support_of(p.items()) == Some(p.support()))
    }

    /// Patterns of `self` whose itemset is absent from `other` — "what
    /// appeared at the new threshold", the question an analyst asks
    /// between session rounds.
    pub fn difference(&self, other: &PatternSet) -> PatternSet {
        self.filter(|p| !other.contains(p.items()))
    }

    /// Patterns present (by itemset) in both sets, keeping `self`'s
    /// supports.
    pub fn intersection(&self, other: &PatternSet) -> PatternSet {
        self.filter(|p| other.contains(p.items()))
    }

    /// The *closed* patterns: those with no proper superset of equal
    /// support in the set. Closed patterns are a lossless summary — every
    /// frequent pattern's support is recoverable from its smallest closed
    /// superset.
    pub fn closed_only(&self) -> PatternSet {
        self.filter(|p| {
            !self
                .patterns
                .iter()
                .any(|q| q.len() > p.len() && q.support() == p.support() && p.is_subset_of(q))
        })
    }

    /// The *maximal* patterns: those with no proper superset in the set
    /// at all — the frontier of the frequent border.
    pub fn maximal_only(&self) -> PatternSet {
        self.filter(|p| !self.patterns.iter().any(|q| q.len() > p.len() && p.is_subset_of(q)))
    }
}

impl FromIterator<Pattern> for PatternSet {
    fn from_iter<T: IntoIterator<Item = Pattern>>(iter: T) -> Self {
        let mut s = PatternSet::new();
        for p in iter {
            s.insert(p);
        }
        s
    }
}

impl<'a> IntoIterator for &'a PatternSet {
    type Item = &'a Pattern;
    type IntoIter = std::slice::Iter<'a, Pattern>;
    fn into_iter(self) -> Self::IntoIter {
        self.patterns.iter()
    }
}

impl HeapSize for PatternSet {
    fn heap_size(&self) -> usize {
        // Index keys share no storage with the patterns; count both.
        self.patterns.heap_size()
            + self.index.keys().map(|k| k.len() * std::mem::size_of::<Item>()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(ids: &[u32], sup: u64) -> Pattern {
        Pattern::from_ids(ids.iter().copied(), sup)
    }

    #[test]
    fn pattern_canonicalizes() {
        assert_eq!(p(&[3, 1, 2], 5), p(&[1, 2, 3], 5));
        assert_eq!(p(&[1, 1, 2], 5).len(), 2);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_pattern_rejected() {
        Pattern::new(vec![], 1);
    }

    #[test]
    fn subset_tests() {
        assert!(p(&[1, 3], 1).is_subset_of(&p(&[1, 2, 3], 1)));
        assert!(!p(&[1, 4], 1).is_subset_of(&p(&[1, 2, 3], 1)));
        assert!(p(&[2], 1).is_subset_of(&p(&[2], 1)));
        assert!(!p(&[1, 2, 3], 1).is_subset_of(&p(&[1, 2], 1)));
    }

    #[test]
    fn set_insert_and_lookup() {
        let mut s = PatternSet::new();
        assert!(s.insert(p(&[1, 2], 7)));
        assert!(s.contains(&[Item(1), Item(2)]));
        assert_eq!(s.support_of(&[Item(1), Item(2)]), Some(7));
        assert_eq!(s.support_of(&[Item(1)]), None);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn reinsert_replaces_support() {
        let mut s = PatternSet::new();
        s.insert(p(&[1], 5));
        assert!(!s.insert(p(&[1], 9)));
        assert_eq!(s.len(), 1);
        assert_eq!(s.support_of(&[Item(1)]), Some(9));
    }

    #[test]
    fn max_len_tracks_longest() {
        let mut s = PatternSet::new();
        assert_eq!(s.max_len(), 0);
        s.insert(p(&[1], 5));
        s.insert(p(&[1, 2, 3], 2));
        assert_eq!(s.max_len(), 3);
    }

    #[test]
    fn filter_keeps_matching() {
        let s: PatternSet = [p(&[1], 5), p(&[2], 3), p(&[1, 2], 3)].into_iter().collect();
        let hi = s.filter(|q| q.support() >= 4);
        assert_eq!(hi.len(), 1);
        assert!(hi.contains(&[Item(1)]));
    }

    #[test]
    fn same_patterns_ignores_order() {
        let a: PatternSet = [p(&[1], 5), p(&[2], 3)].into_iter().collect();
        let b: PatternSet = [p(&[2], 3), p(&[1], 5)].into_iter().collect();
        assert!(a.same_patterns_as(&b));
        let c: PatternSet = [p(&[2], 3), p(&[1], 4)].into_iter().collect();
        assert!(!a.same_patterns_as(&c));
        let d: PatternSet = [p(&[2], 3)].into_iter().collect();
        assert!(!a.same_patterns_as(&d));
    }

    #[test]
    fn sorted_is_lexicographic() {
        let s: PatternSet = [p(&[2], 1), p(&[1, 3], 1), p(&[1], 1)].into_iter().collect();
        let v = s.sorted();
        assert_eq!(v[0].items(), &[Item(1)]);
        assert_eq!(v[1].items(), &[Item(1), Item(3)]);
        assert_eq!(v[2].items(), &[Item(2)]);
    }

    #[test]
    fn display_format() {
        assert_eq!(p(&[2, 1], 4).to_string(), "i1 i2:4");
    }

    #[test]
    fn difference_and_intersection() {
        let a: PatternSet = [p(&[1], 5), p(&[2], 3), p(&[1, 2], 3)].into_iter().collect();
        let b: PatternSet = [p(&[1], 9), p(&[3], 1)].into_iter().collect();
        let d = a.difference(&b);
        assert_eq!(d.len(), 2);
        assert!(d.contains(&[Item(2)]) && d.contains(&[Item(1), Item(2)]));
        let i = a.intersection(&b);
        assert_eq!(i.len(), 1);
        // Intersection keeps self's support, not other's.
        assert_eq!(i.support_of(&[Item(1)]), Some(5));
    }

    #[test]
    fn closed_patterns_drop_absorbed_subsets() {
        // fgc:3 absorbs fg:3, fc:3, gc:3, f:3, g:3 (equal support);
        // c:4 stays closed (higher support than fgc).
        let s: PatternSet = [
            p(&[5], 3),
            p(&[6], 3),
            p(&[2], 4),
            p(&[5, 6], 3),
            p(&[2, 5], 3),
            p(&[2, 6], 3),
            p(&[2, 5, 6], 3),
        ]
        .into_iter()
        .collect();
        let closed = s.closed_only();
        assert_eq!(closed.len(), 2);
        assert!(closed.contains(&[Item(2), Item(5), Item(6)]));
        assert!(closed.contains(&[Item(2)]));
    }

    #[test]
    fn maximal_patterns_keep_only_the_border() {
        let s: PatternSet =
            [p(&[1], 5), p(&[2], 4), p(&[1, 2], 3), p(&[3], 2)].into_iter().collect();
        let max = s.maximal_only();
        assert_eq!(max.len(), 2);
        assert!(max.contains(&[Item(1), Item(2)]));
        assert!(max.contains(&[Item(3)]));
    }

    #[test]
    fn closed_superset_of_maximal() {
        let s: PatternSet = [p(&[1], 5), p(&[2], 4), p(&[1, 2], 3)].into_iter().collect();
        let closed = s.closed_only();
        let maximal = s.maximal_only();
        for m in maximal.iter() {
            assert!(closed.contains(m.items()), "maximal {m} must be closed");
        }
    }
}
