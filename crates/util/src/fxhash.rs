//! The "Fx" hash algorithm used by rustc, reimplemented locally.
//!
//! Fx is a simple multiply-and-rotate hash. It is *not* collision resistant
//! and must never be used where an adversary controls the keys; inside a
//! mining engine the keys are item identifiers and small integer tuples, so
//! throughput is all that matters. See the Rust Performance Book's hashing
//! chapter for the rationale of swapping SipHash out on hot paths.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// A `HashSet` using the Fx hasher.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED64: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// Streaming state for the Fx algorithm.
///
/// Each written word is folded in with `hash = (hash.rotate_left(5) ^ word)
/// .wrapping_mul(SEED)`. Bytes are consumed in word-sized chunks.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED64);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&bytes[..8]);
            self.add_to_hash(u64::from_le_bytes(buf));
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            let mut buf = [0u8; 4];
            buf.copy_from_slice(&bytes[..4]);
            self.add_to_hash(u64::from(u32::from_le_bytes(buf)));
            bytes = &bytes[4..];
        }
        if bytes.len() >= 2 {
            let mut buf = [0u8; 2];
            buf.copy_from_slice(&bytes[..2]);
            self.add_to_hash(u64::from(u16::from_le_bytes(buf)));
            bytes = &bytes[2..];
        }
        if let Some(&b) = bytes.first() {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Hash a single `u64` with the Fx algorithm (convenience for one-shot use).
#[inline]
pub fn hash_u64(value: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(value);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_input_same_hash() {
        assert_eq!(hash_u64(42), hash_u64(42));
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"hello world, this is a longer byte string!");
        b.write(b"hello world, this is a longer byte string!");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn different_inputs_differ() {
        assert_ne!(hash_u64(1), hash_u64(2));
        assert_ne!(hash_u64(0), hash_u64(u64::MAX));
    }

    #[test]
    fn map_round_trip() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(7, "seven");
        m.insert(11, "eleven");
        assert_eq!(m.get(&7), Some(&"seven"));
        assert_eq!(m.get(&11), Some(&"eleven"));
        assert_eq!(m.get(&13), None);
    }

    #[test]
    fn set_deduplicates() {
        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..1000 {
            s.insert(i % 100);
        }
        assert_eq!(s.len(), 100);
    }

    #[test]
    fn mixed_width_writes_consume_all_bytes() {
        // 7 bytes exercises the 4 + 2 + 1 tail path.
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 8]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn spreads_small_integers() {
        // Low-entropy keys should not collide in the low bits (bucket index).
        let mut buckets: FxHashSet<u64> = FxHashSet::default();
        for i in 0u64..256 {
            buckets.insert(hash_u64(i) & 0xFF);
        }
        // A perfect spread hits all 256 buckets; demand most of them.
        assert!(buckets.len() > 128, "only {} distinct buckets", buckets.len());
    }
}
