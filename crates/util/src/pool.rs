//! Data parallelism via scoped threads.
//!
//! The workspace has no thread-pool dependency, and the hot loops it
//! parallelizes (tuple covering, per-group FP-tree construction, support
//! counting) are all fork/join over an in-memory slice — `std::thread::scope`
//! fits exactly. [`Parallelism`] is the knob plumbed from the CLI down to
//! the kernels; the helpers here guarantee that results come back in input
//! order, so callers can produce output *identical* to their serial path
//! regardless of thread interleaving.

use std::sync::atomic::{AtomicUsize, Ordering};

/// How many worker threads a kernel may use.
///
/// `Parallelism::serial()` (1 thread) is the default everywhere — the
/// reproduction sweeps stay single-threaded so paper-figure timings remain
/// comparable — and all parallel paths are required to produce output
/// byte-identical to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    threads: usize,
}

impl Parallelism {
    /// Exactly one thread: run inline on the caller.
    pub const fn serial() -> Self {
        Parallelism { threads: 1 }
    }

    /// `n` worker threads; `0` means "use all available cores".
    pub fn threads(n: usize) -> Self {
        let threads = if n == 0 {
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
        } else {
            n
        };
        Parallelism { threads }
    }

    /// The resolved thread count (≥ 1).
    pub fn get(&self) -> usize {
        self.threads
    }

    /// True when the caller should take its inline, single-threaded path.
    pub fn is_serial(&self) -> bool {
        self.threads <= 1
    }

    /// Thread count clamped to `n` units of work — no point spawning
    /// workers that would receive an empty share.
    pub fn for_items(&self, n: usize) -> usize {
        self.threads.min(n).max(1)
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::serial()
    }
}

/// Maps `f` over `0..n`, returning results in index order.
///
/// Work is handed out dynamically (an atomic cursor) so uneven item costs
/// balance across workers, but because each index's result lands in its
/// own slot the output is independent of scheduling. `f` must be pure
/// with respect to ordering for the determinism guarantee to mean
/// anything — all workspace callers are.
pub fn par_map_indexed<R, F>(par: Parallelism, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = par.for_items(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let mut partials: Vec<Vec<(usize, R)>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, f(i)));
                }
                local
            }));
        }
        for h in handles {
            partials.push(h.join().expect("pool worker panicked"));
        }
    });
    for (i, r) in partials.into_iter().flatten() {
        out[i] = Some(r);
    }
    out.into_iter().map(|r| r.expect("pool slot unfilled")).collect()
}

/// Splits `items` into one contiguous chunk per worker and maps `f` over
/// the chunks, returning `(chunk_start, result)` pairs in chunk order.
///
/// Chunk boundaries depend only on `items.len()` and the thread count, so
/// a caller that merges the per-chunk results in order reproduces exactly
/// what a single pass over `items` would have produced.
pub fn par_chunks<T, R, F>(par: Parallelism, items: &[T], f: F) -> Vec<(usize, R)>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    let workers = par.for_items(items.len());
    if workers <= 1 {
        return vec![(0, f(0, items))];
    }
    let bounds = chunk_bounds(items.len(), workers);
    let mut out = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for &(lo, hi) in bounds.iter().take(workers) {
            let chunk = &items[lo..hi];
            let f = &f;
            handles.push(scope.spawn(move || (lo, f(lo, chunk))));
        }
        for h in handles {
            out.push(h.join().expect("pool worker panicked"));
        }
    });
    out
}

/// Splits `0..n` into one contiguous index range per worker and maps `f`
/// over the ranges, returning `(range_start, result)` pairs in range
/// order.
///
/// This is [`par_chunks`] for storage that cannot be sliced as `&[T]` —
/// CSR buffers, where a "chunk" is a range of row indices into one flat
/// allocation. Range boundaries depend only on `n` and the thread count
/// (the same [`chunk_bounds`] split `par_chunks` uses), so merging the
/// per-range results in order reproduces a single serial pass.
pub fn par_ranges<R, F>(par: Parallelism, n: usize, f: F) -> Vec<(usize, R)>
where
    R: Send,
    F: Fn(usize, std::ops::Range<usize>) -> R + Sync,
{
    let workers = par.for_items(n);
    if workers <= 1 {
        return vec![(0, f(0, 0..n))];
    }
    let bounds = chunk_bounds(n, workers);
    let mut out = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for &(lo, hi) in bounds.iter().take(workers) {
            let f = &f;
            handles.push(scope.spawn(move || (lo, f(lo, lo..hi))));
        }
        for h in handles {
            out.push(h.join().expect("pool worker panicked"));
        }
    });
    out
}

/// Contiguous `[lo, hi)` bounds splitting `n` items into `workers` chunks
/// whose sizes differ by at most one.
pub fn chunk_bounds(n: usize, workers: usize) -> Vec<(usize, usize)> {
    let workers = workers.max(1);
    let base = n / workers;
    let extra = n % workers;
    let mut bounds = Vec::with_capacity(workers);
    let mut lo = 0;
    for w in 0..workers {
        let len = base + usize::from(w < extra);
        bounds.push((lo, lo + len));
        lo += len;
    }
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_map_agree() {
        let serial = par_map_indexed(Parallelism::serial(), 100, |i| i * i);
        let parallel = par_map_indexed(Parallelism::threads(4), 100, |i| i * i);
        assert_eq!(serial, parallel);
        assert_eq!(serial[7], 49);
    }

    #[test]
    fn chunks_cover_input_in_order() {
        let items: Vec<u32> = (0..103).collect();
        let parts = par_chunks(Parallelism::threads(8), &items, |_, c| c.to_vec());
        let mut expect_lo = 0;
        let mut glued = Vec::new();
        for (lo, part) in parts {
            assert_eq!(lo, expect_lo);
            expect_lo += part.len();
            glued.extend(part);
        }
        assert_eq!(glued, items);
    }

    #[test]
    fn chunk_bounds_partition() {
        for n in [0usize, 1, 7, 64, 103] {
            for w in [1usize, 2, 3, 8, 200] {
                let b = chunk_bounds(n, w);
                assert_eq!(b.len(), w.max(1));
                assert_eq!(b[0].0, 0);
                assert_eq!(b.last().unwrap().1, n);
                for pair in b.windows(2) {
                    assert_eq!(pair[0].1, pair[1].0);
                }
            }
        }
    }

    #[test]
    fn ranges_cover_input_in_order() {
        for n in [0usize, 1, 7, 103] {
            let parts = par_ranges(Parallelism::threads(8), n, |_, r| r.collect::<Vec<usize>>());
            let mut expect_lo = 0;
            let mut glued = Vec::new();
            for (lo, part) in parts {
                assert_eq!(lo, expect_lo);
                expect_lo += part.len();
                glued.extend(part);
            }
            assert_eq!(glued, (0..n).collect::<Vec<usize>>());
        }
    }

    #[test]
    fn ranges_match_chunks_split() {
        let items: Vec<u32> = (0..103).collect();
        let a = par_chunks(Parallelism::threads(4), &items, |_, c| c.len());
        let b = par_ranges(Parallelism::threads(4), items.len(), |_, r| r.len());
        assert_eq!(a, b);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = par_map_indexed(Parallelism::threads(16), 3, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn zero_threads_resolves_to_cores() {
        assert!(Parallelism::threads(0).get() >= 1);
    }
}
