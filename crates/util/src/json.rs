//! Minimal JSON serialization.
//!
//! The experiment harness appends result records as JSON lines. With no
//! crate registry available we emit JSON by hand: a [`Json`] value tree
//! plus escaping, enough for flat records of numbers/strings/arrays.
//! There is deliberately no parser — results are write-only artifacts.

use std::fmt;

/// An owned JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number (non-finite floats serialize as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serializes to a compact single-line string.
    pub fn dump(&self) -> String {
        self.to_string()
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}
impl From<u8> for Json {
    fn from(x: u8) -> Json {
        Json::Num(x as f64)
    }
}
impl From<u32> for Json {
    fn from(x: u32) -> Json {
        Json::Num(x as f64)
    }
}
impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Num(x as f64)
    }
}
impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Num(x as f64)
    }
}
impl From<i64> for Json {
    fn from(x: i64) -> Json {
        Json::Num(x as f64)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

/// Types that can render themselves as a JSON value. Record structs in
/// the bench harness implement this in place of a serde derive.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

fn escape_into(s: &str, out: &mut fmt::Formatter<'_>) -> fmt::Result {
    out.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => write!(out, "{c}")?,
        }
    }
    out.write_str("\"")
}

fn write_num(x: f64, out: &mut fmt::Formatter<'_>) -> fmt::Result {
    if !x.is_finite() {
        return out.write_str("null");
    }
    // Integers print without a trailing ".0" so counts look like counts.
    if x == x.trunc() && x.abs() < 9.007_199_254_740_992e15 {
        write!(out, "{}", x as i64)
    } else {
        write!(out, "{x}")
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(x) => write_num(*x, f),
            Json::Str(s) => escape_into(s, f),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape_into(k, f)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_flat_record() {
        let j = Json::obj([
            ("name", Json::from("connect4_like")),
            ("tuples", Json::from(6758u64)),
            ("ratio", Json::from(0.25f64)),
            ("ok", Json::from(true)),
        ]);
        assert_eq!(j.dump(), r#"{"name":"connect4_like","tuples":6758,"ratio":0.25,"ok":true}"#);
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(Json::from("a\"b\\c\nd").dump(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn arrays_and_nesting() {
        let j = Json::obj([("xs", Json::from(vec![1u64, 2, 3]))]);
        assert_eq!(j.dump(), r#"{"xs":[1,2,3]}"#);
    }

    #[test]
    fn non_finite_is_null() {
        assert_eq!(Json::Num(f64::NAN).dump(), "null");
        assert_eq!(Json::Num(f64::INFINITY).dump(), "null");
    }
}
