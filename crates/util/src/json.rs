//! Minimal JSON serialization and parsing.
//!
//! The experiment harness appends result records as JSON lines. With no
//! crate registry available we handle JSON by hand: a [`Json`] value
//! tree plus escaping, enough for flat records of numbers/strings/
//! arrays, and a small recursive-descent [`Json::parse`] so traces and
//! metric dumps can be read back (round-trip tested) and validated in
//! CI. Numbers parse into `f64` — exact for the integer counters the
//! workspace emits (all below 2⁵³).

use std::fmt;

/// An owned JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number (non-finite floats serialize as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serializes to a compact single-line string.
    pub fn dump(&self) -> String {
        self.to_string()
    }

    /// Parses one JSON value from `text` (surrounding whitespace
    /// allowed; trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric payload as an exact non-negative integer (counters).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.trunc() == *x && *x < 1.8446744073709552e19 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Recursive-descent parser over the raw bytes (JSON syntax is ASCII;
/// string contents pass through as UTF-8).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("invalid number {text:?}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("invalid \\u escape {hex:?}"))?;
                            self.pos += 4;
                            // Surrogates (which this writer never emits)
                            // decode to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("unknown escape \\{}", other as char)),
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}
impl From<u8> for Json {
    fn from(x: u8) -> Json {
        Json::Num(x as f64)
    }
}
impl From<u32> for Json {
    fn from(x: u32) -> Json {
        Json::Num(x as f64)
    }
}
impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Num(x as f64)
    }
}
impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Num(x as f64)
    }
}
impl From<i64> for Json {
    fn from(x: i64) -> Json {
        Json::Num(x as f64)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

/// Types that can render themselves as a JSON value. Record structs in
/// the bench harness implement this in place of a serde derive.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

fn escape_into(s: &str, out: &mut fmt::Formatter<'_>) -> fmt::Result {
    out.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => write!(out, "{c}")?,
        }
    }
    out.write_str("\"")
}

fn write_num(x: f64, out: &mut fmt::Formatter<'_>) -> fmt::Result {
    if !x.is_finite() {
        return out.write_str("null");
    }
    // Integers print without a trailing ".0" so counts look like counts.
    if x == x.trunc() && x.abs() < 9.007_199_254_740_992e15 {
        write!(out, "{}", x as i64)
    } else {
        write!(out, "{x}")
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(x) => write_num(*x, f),
            Json::Str(s) => escape_into(s, f),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape_into(k, f)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_flat_record() {
        let j = Json::obj([
            ("name", Json::from("connect4_like")),
            ("tuples", Json::from(6758u64)),
            ("ratio", Json::from(0.25f64)),
            ("ok", Json::from(true)),
        ]);
        assert_eq!(j.dump(), r#"{"name":"connect4_like","tuples":6758,"ratio":0.25,"ok":true}"#);
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(Json::from("a\"b\\c\nd").dump(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn arrays_and_nesting() {
        let j = Json::obj([("xs", Json::from(vec![1u64, 2, 3]))]);
        assert_eq!(j.dump(), r#"{"xs":[1,2,3]}"#);
    }

    #[test]
    fn non_finite_is_null() {
        assert_eq!(Json::Num(f64::NAN).dump(), "null");
        assert_eq!(Json::Num(f64::INFINITY).dump(), "null");
    }

    #[test]
    fn parse_round_trips_every_emitted_shape() {
        let j = Json::obj([
            ("name", Json::from("weather analog")),
            ("quote", Json::from("a\"b\\c\nd\te")),
            ("count", Json::from(6758u64)),
            ("ratio", Json::from(0.251f64)),
            ("neg", Json::from(-3i64)),
            ("ok", Json::from(true)),
            ("off", Json::from(false)),
            ("gap", Json::Null),
            ("xs", Json::from(vec![1u64, 2, 3])),
            ("nested", Json::obj([("deep", Json::from(vec!["a", "b"]))])),
        ]);
        let text = j.dump();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, j);
        // And re-dumping the parse gives the identical line.
        assert_eq!(back.dump(), text);
    }

    #[test]
    fn parse_accepts_whitespace_and_control_escapes() {
        let j = Json::parse(" { \"a\" : [ 1 , 2.5e1 ] , \"b\" : \"\\u0041\\u0007\" } ").unwrap();
        assert_eq!(j.get("a").unwrap().as_arr().unwrap()[1], Json::Num(25.0));
        assert_eq!(j.get("b").and_then(Json::as_str), Some("A\u{7}"));
        // Control characters below 0x20 emit as \u escapes; round-trip.
        let original = Json::from("bell\u{7}");
        assert_eq!(Json::parse(&original.dump()).unwrap(), original);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"unterminated", "{\"a\" 1}"] {
            assert!(Json::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn accessors_navigate_parsed_records() {
        let j = Json::parse(r#"{"metric":"mine.candidate_tests","kind":"counter","value":123}"#)
            .unwrap();
        assert_eq!(j.get("metric").and_then(Json::as_str), Some("mine.candidate_tests"));
        assert_eq!(j.get("value").and_then(Json::as_u64), Some(123));
        assert_eq!(j.get("value").and_then(Json::as_f64), Some(123.0));
        assert_eq!(j.get("missing"), None);
        assert_eq!(Json::Bool(true).as_bool(), Some(true));
        assert_eq!(Json::Num(1.5).as_u64(), None);
    }
}
