//! Small, fast, seedable pseudo-random number generation.
//!
//! The workspace runs in hermetic environments with no crate registry, so
//! instead of depending on `rand` we carry a tiny xoshiro256++ generator
//! (Blackman & Vigna, 2019) seeded through SplitMix64 — the same
//! construction `rand`'s `SmallRng` used historically. It is *not*
//! cryptographically secure; it exists for synthetic data generation and
//! randomized testing, where speed and reproducibility are what matter.

/// Minimal random-source trait so generators can be written against an
/// abstract source (mirrors the sliver of `rand::Rng` the workspace used).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` (53 bits of entropy).
    #[inline]
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[0, bound)` via Lemire's multiply-shift with
    /// rejection, so small bounds carry no modulo bias.
    fn gen_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "gen_below(0)");
        loop {
            let x = self.next_u64();
            let hi = ((x as u128 * bound as u128) >> 64) as u64;
            let lo = x.wrapping_mul(bound);
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return hi;
            }
        }
    }

    /// Uniform `u64` in the inclusive range `[lo, hi]`.
    #[inline]
    fn gen_range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.gen_below(hi - lo + 1)
    }

    /// Uniform `usize` in `[0, bound)`.
    #[inline]
    fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_below(bound as u64) as usize
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

/// xoshiro256++ generator: 256 bits of state, period 2^256 − 1.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Deterministically expands `seed` into generator state via
    /// SplitMix64, as the xoshiro authors recommend.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SmallRng { s: [next(), next(), next(), next()] }
    }

    /// Splits off an independent stream (for per-worker determinism).
    pub fn split(&mut self) -> Self {
        SmallRng::seed_from_u64(self.next_u64())
    }
}

impl Rng for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_below_unbiased_enough() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            counts[r.gen_below(7) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_300..10_700).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut r = SmallRng::seed_from_u64(11);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..1000 {
            match r.gen_range_inclusive(3, 5) {
                3 => lo_seen = true,
                5 => hi_seen = true,
                4 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
    }
}
