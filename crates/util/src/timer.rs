//! Wall-clock timing helpers for the experiment harness.

use std::time::{Duration, Instant};

/// A restartable stopwatch that accumulates elapsed wall-clock time.
///
/// The paper reports several split timings (e.g. compression time with and
/// without I/O, Table 3); `Stopwatch` supports pausing so that excluded
/// phases do not pollute a measurement.
///
/// ```
/// use gogreen_util::Stopwatch;
/// let mut sw = Stopwatch::started();
/// // ... measured work ...
/// sw.pause();
/// // ... excluded work ...
/// sw.resume();
/// let total = sw.elapsed();
/// assert!(total >= std::time::Duration::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct Stopwatch {
    accumulated: Duration,
    running_since: Option<Instant>,
    /// Total elapsed at the last [`Self::lap`] call (zero initially).
    lap_mark: Duration,
}

impl Stopwatch {
    /// Creates a stopwatch that is not yet running.
    pub fn new() -> Self {
        Stopwatch { accumulated: Duration::ZERO, running_since: None, lap_mark: Duration::ZERO }
    }

    /// Creates a stopwatch that starts measuring immediately.
    pub fn started() -> Self {
        Stopwatch {
            accumulated: Duration::ZERO,
            running_since: Some(Instant::now()),
            lap_mark: Duration::ZERO,
        }
    }

    /// Returns true while the stopwatch is accumulating time.
    pub fn is_running(&self) -> bool {
        self.running_since.is_some()
    }

    /// Stops accumulating. Pausing an already-paused stopwatch is a no-op.
    pub fn pause(&mut self) {
        if let Some(since) = self.running_since.take() {
            self.accumulated += since.elapsed();
        }
    }

    /// Starts accumulating again. Resuming a running stopwatch is a no-op.
    pub fn resume(&mut self) {
        if self.running_since.is_none() {
            self.running_since = Some(Instant::now());
        }
    }

    /// Total accumulated time, including the currently running span.
    pub fn elapsed(&self) -> Duration {
        match self.running_since {
            Some(since) => self.accumulated + since.elapsed(),
            None => self.accumulated,
        }
    }

    /// The split since the previous `lap` call (or since creation for
    /// the first lap), without stopping the watch. Successive laps
    /// partition [`Self::elapsed`]: split timings (span enter→exit,
    /// bench warm-up vs measured iterations) come from one watch instead
    /// of ad-hoc `Instant::now()` pairs.
    ///
    /// ```
    /// use gogreen_util::Stopwatch;
    /// let mut sw = Stopwatch::started();
    /// let first = sw.lap();
    /// let second = sw.lap();
    /// assert!(first + second <= sw.elapsed());
    /// ```
    pub fn lap(&mut self) -> Duration {
        let total = self.elapsed();
        let split = total.saturating_sub(self.lap_mark);
        self.lap_mark = total;
        split
    }

    /// Resets to zero; keeps the running/paused state. The lap mark is
    /// cleared too, so the next [`Self::lap`] measures from the reset.
    pub fn reset(&mut self) {
        self.accumulated = Duration::ZERO;
        self.lap_mark = Duration::ZERO;
        if self.running_since.is_some() {
            self.running_since = Some(Instant::now());
        }
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::new()
    }
}

/// Runs `f` and returns its result together with the elapsed wall time.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_stopwatch_is_paused_at_zero() {
        let sw = Stopwatch::new();
        assert!(!sw.is_running());
        assert_eq!(sw.elapsed(), Duration::ZERO);
    }

    #[test]
    fn started_stopwatch_accumulates() {
        let sw = Stopwatch::started();
        assert!(sw.is_running());
        std::thread::sleep(Duration::from_millis(2));
        assert!(sw.elapsed() >= Duration::from_millis(1));
    }

    #[test]
    fn pause_freezes_elapsed() {
        let mut sw = Stopwatch::started();
        sw.pause();
        let frozen = sw.elapsed();
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(sw.elapsed(), frozen);
    }

    #[test]
    fn resume_continues_accumulating() {
        let mut sw = Stopwatch::started();
        sw.pause();
        let frozen = sw.elapsed();
        sw.resume();
        std::thread::sleep(Duration::from_millis(2));
        assert!(sw.elapsed() > frozen);
    }

    #[test]
    fn double_pause_and_double_resume_are_noops() {
        let mut sw = Stopwatch::started();
        sw.pause();
        sw.pause();
        assert!(!sw.is_running());
        sw.resume();
        sw.resume();
        assert!(sw.is_running());
    }

    #[test]
    fn reset_clears_accumulated_time() {
        let mut sw = Stopwatch::started();
        std::thread::sleep(Duration::from_millis(2));
        sw.pause();
        sw.reset();
        assert_eq!(sw.elapsed(), Duration::ZERO);
    }

    #[test]
    fn laps_partition_elapsed_time() {
        let mut sw = Stopwatch::started();
        std::thread::sleep(Duration::from_millis(2));
        let a = sw.lap();
        assert!(a >= Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(2));
        let b = sw.lap();
        assert!(b >= Duration::from_millis(1));
        // Laps never overlap: their sum stays within the total.
        assert!(a + b <= sw.elapsed());
        // An immediate lap is (near) zero, not the full elapsed time.
        assert!(sw.lap() < a + b);
    }

    #[test]
    fn lap_respects_pause_and_reset() {
        let mut sw = Stopwatch::started();
        sw.pause();
        let frozen = sw.lap();
        assert_eq!(sw.lap(), Duration::ZERO);
        let _ = frozen;
        sw.reset();
        assert_eq!(sw.elapsed(), Duration::ZERO);
        assert_eq!(sw.lap(), Duration::ZERO);
    }

    #[test]
    fn time_it_returns_value_and_duration() {
        let (v, d) = time_it(|| 6 * 7);
        assert_eq!(v, 42);
        assert!(d < Duration::from_secs(1));
    }
}
