#![warn(missing_docs)]

//! Support utilities shared across the `gogreen` workspace.
//!
//! This crate deliberately has no external dependencies. It provides:
//!
//! * [`fxhash`] — a fast, non-cryptographic hasher (the rustc "Fx" algorithm)
//!   plus `HashMap`/`HashSet` aliases built on it. Frequent-pattern mining
//!   hashes small integer keys on hot paths, where SipHash is a measurable
//!   cost.
//! * [`timer`] — lightweight wall-clock timing helpers used by the
//!   experiment harness.
//! * [`memsize`] — a [`memsize::HeapSize`] trait for estimating the heap
//!   footprint of data structures; the memory-limited mining mode of the
//!   paper (§5.3) budgets against these estimates.

pub mod fxhash;
pub mod memsize;
pub mod timer;

pub use fxhash::{FxHashMap, FxHashSet};
pub use memsize::HeapSize;
pub use timer::Stopwatch;
