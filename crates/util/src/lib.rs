#![warn(missing_docs)]

//! Support utilities shared across the `gogreen` workspace.
//!
//! This crate deliberately has no external dependencies. It provides:
//!
//! * [`fxhash`] — a fast, non-cryptographic hasher (the rustc "Fx" algorithm)
//!   plus `HashMap`/`HashSet` aliases built on it. Frequent-pattern mining
//!   hashes small integer keys on hot paths, where SipHash is a measurable
//!   cost.
//! * [`timer`] — lightweight wall-clock timing helpers used by the
//!   experiment harness.
//! * [`memsize`] — a [`memsize::HeapSize`] trait for estimating the heap
//!   footprint of data structures; the memory-limited mining mode of the
//!   paper (§5.3) budgets against these estimates.
//! * [`rng`] — a seedable xoshiro256++ generator for synthetic data and
//!   randomized tests (no `rand` dependency).
//! * [`json`] — JSON values for the experiment harness's result records
//!   and the observability layer's traces, with a minimal parser for
//!   reading artifacts back.
//! * [`pool`] — the [`pool::Parallelism`] knob and scoped-thread fork/join
//!   helpers with deterministic, input-ordered results.

pub mod fxhash;
pub mod json;
pub mod memsize;
pub mod pool;
pub mod rng;
pub mod timer;

pub use fxhash::{FxHashMap, FxHashSet};
pub use json::{Json, ToJson};
pub use memsize::HeapSize;
pub use pool::Parallelism;
pub use rng::{Rng, SmallRng};
pub use timer::Stopwatch;
