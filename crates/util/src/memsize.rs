//! Heap-footprint estimation.
//!
//! The paper's memory-limited mode (§3.3, §5.3) decides whether a projected
//! database can be mined in memory by *estimating* the size of the in-memory
//! structure before building it, and spills to disk otherwise. [`HeapSize`]
//! is the accounting trait those estimates are built on: it reports the
//! number of heap bytes owned by a value, excluding the inline size of the
//! value itself (add `size_of::<T>()` for totals).

/// Number of heap bytes owned (transitively) by `self`.
///
/// Implementations are estimates in the same sense the paper's are: they
/// count payload bytes of owned allocations and ignore allocator slack.
pub trait HeapSize {
    /// Heap bytes owned by this value, excluding `size_of::<Self>()`.
    fn heap_size(&self) -> usize;

    /// Heap bytes plus the inline size of the value.
    fn total_size(&self) -> usize
    where
        Self: Sized,
    {
        self.heap_size() + std::mem::size_of::<Self>()
    }
}

macro_rules! impl_heapsize_noop {
    ($($t:ty),* $(,)?) => {
        $(impl HeapSize for $t {
            #[inline]
            fn heap_size(&self) -> usize { 0 }
        })*
    };
}

impl_heapsize_noop!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool, char);

impl<T: HeapSize> HeapSize for Vec<T> {
    fn heap_size(&self) -> usize {
        self.capacity() * std::mem::size_of::<T>()
            + self.iter().map(HeapSize::heap_size).sum::<usize>()
    }
}

impl<T: HeapSize> HeapSize for Box<[T]> {
    fn heap_size(&self) -> usize {
        self.len() * std::mem::size_of::<T>() + self.iter().map(HeapSize::heap_size).sum::<usize>()
    }
}

impl<T: HeapSize> HeapSize for Option<T> {
    fn heap_size(&self) -> usize {
        self.as_ref().map_or(0, HeapSize::heap_size)
    }
}

impl HeapSize for String {
    fn heap_size(&self) -> usize {
        self.capacity()
    }
}

impl<A: HeapSize, B: HeapSize> HeapSize for (A, B) {
    fn heap_size(&self) -> usize {
        self.0.heap_size() + self.1.heap_size()
    }
}

/// Formats a byte count using binary units, e.g. `4.00 MiB`.
pub fn format_bytes(bytes: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit + 1 < UNITS.len() {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.2} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_own_no_heap() {
        assert_eq!(7u32.heap_size(), 0);
        assert_eq!(true.heap_size(), 0);
        assert_eq!(3.5f64.heap_size(), 0);
    }

    #[test]
    fn vec_counts_capacity() {
        let v: Vec<u32> = Vec::with_capacity(16);
        assert_eq!(v.heap_size(), 16 * 4);
    }

    #[test]
    fn nested_vec_counts_children() {
        let v: Vec<Vec<u8>> = vec![Vec::with_capacity(10), Vec::with_capacity(20)];
        let expected = v.capacity() * std::mem::size_of::<Vec<u8>>() + 10 + 20;
        assert_eq!(v.heap_size(), expected);
    }

    #[test]
    fn boxed_slice_counts_len() {
        let b: Box<[u64]> = vec![1u64, 2, 3].into_boxed_slice();
        assert_eq!(b.heap_size(), 24);
    }

    #[test]
    fn option_none_is_free() {
        let o: Option<Vec<u8>> = None;
        assert_eq!(o.heap_size(), 0);
        let s: Option<Vec<u8>> = Some(Vec::with_capacity(8));
        assert_eq!(s.heap_size(), 8);
    }

    #[test]
    fn total_size_adds_inline_size() {
        let v: Vec<u8> = Vec::with_capacity(8);
        assert_eq!(v.total_size(), 8 + std::mem::size_of::<Vec<u8>>());
    }

    #[test]
    fn format_bytes_units() {
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(2048), "2.00 KiB");
        assert_eq!(format_bytes(4 * 1024 * 1024), "4.00 MiB");
    }
}
