//! Delta-encoded compressed-database versions.
//!
//! Each compress/recycle round produces a new [`CompressedDb`]; an
//! incremental workflow produces a *chain* of them over a database that
//! changes a little between rounds. Persisting every round in full
//! would store the nearly-identical plain residue and group bodies over
//! and over, so the version store writes **version 0 in full** and each
//! later version as a **delta** against its predecessor:
//!
//! * **groups** — identified by their (unique) pattern: patterns present
//!   before but not after are *removed*; groups that are new or whose
//!   members changed are *added* in full, each carrying its position in
//!   the new group list so utility order is reproduced exactly;
//! * **plain residue** — an edit script of `Copy { start, len }` ranges
//!   from the previous residue interleaved with `Insert` rows, replayed
//!   in order, so unchanged runs cost 9 bytes regardless of length.
//!
//! A delta is *verified at write time*: it is applied to the in-memory
//! predecessor and the result compared against the new database; if
//! reproduction fails (e.g. a pure reorder the group keying cannot
//! express) or the delta would be larger than a full encoding, a full
//! version is written instead. Either way `VersionStore::push` is exact
//! by construction — [`VersionStore::current`] equals the pushed
//! database bit for bit, whichever encoding landed on disk.
//!
//! Files are `v-NNNN.ggd` under the store directory: a 16-byte header
//! (magic `"GGDV"`, format version, kind, payload CRC-32) followed by
//! the payload. Deltas are in *item* space (not rank space): the F-list
//! changes between rounds, so rank encodings of different versions are
//! not comparable, while item space is stable.

use crate::codec::{get_list, put_list, ByteReader, DecodeError};
use crate::crc::crc32;
use gogreen_core::cdb::{CompressedDb, Group};
use gogreen_data::{CsrTuples, Item};
use gogreen_obs::metrics;
use gogreen_util::FxHashMap;
use std::fs::File;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: [u8; 4] = *b"GGDV";
const FORMAT_VERSION: u32 = 1;
const KIND_FULL: u32 = 0;
const KIND_DELTA: u32 = 1;
const HEADER_BYTES: usize = 16;

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn decode_err(path: &Path, e: DecodeError) -> io::Error {
    bad_data(format!("{}: {e}", path.display()))
}

fn version_file_name(v: usize) -> String {
    format!("v-{v:04}.ggd")
}

fn parse_version_id(name: &str) -> Option<usize> {
    name.strip_prefix("v-")?.strip_suffix(".ggd")?.parse().ok()
}

/// One plain-residue edit operation.
#[derive(Debug, Clone, PartialEq, Eq)]
enum PlainOp {
    /// Copy `len` rows of the previous residue starting at `start`.
    Copy { start: u32, len: u32 },
    /// Insert one row (item ids, ascending).
    Insert(Vec<u32>),
}

/// A decoded delta payload.
#[derive(Debug, Default)]
struct Delta {
    original_items: u64,
    /// Patterns (item ids) of groups to drop from the predecessor.
    removed: Vec<Vec<u32>>,
    /// Groups to insert, with their index in the new group list.
    added: Vec<(u32, Group)>,
    /// Edit script rebuilding the new plain residue.
    plain_ops: Vec<PlainOp>,
}

fn items_to_ids(items: &[Item]) -> Vec<u32> {
    items.iter().map(|it| it.id()).collect()
}

fn ids_to_items(ids: &[u32]) -> Vec<Item> {
    ids.iter().map(|&id| Item(id)).collect()
}

fn put_group(buf: &mut Vec<u8>, g: &Group) {
    put_list(buf, &items_to_ids(g.pattern()));
    buf.extend_from_slice(&g.bare().to_le_bytes());
    buf.extend_from_slice(&(g.outliers().len() as u32).to_le_bytes());
    let mut ids = Vec::new();
    for o in g.outliers().iter() {
        ids.clear();
        ids.extend(o.iter().map(|it| it.id()));
        put_list(buf, &ids);
    }
}

fn get_group(r: &mut ByteReader<'_>) -> Result<Group, DecodeError> {
    let pattern = ids_to_items(&get_list(r)?);
    let bare = r.get_u32_le()?;
    let n = r.get_u32_le()? as usize;
    let mut outliers: CsrTuples<Item> = CsrTuples::new();
    for _ in 0..n {
        let m = r.get_u32_le()? as usize;
        for _ in 0..m {
            outliers.push_elem(Item(r.get_u32_le()?));
        }
        outliers.commit_row();
    }
    Ok(Group::from_csr(pattern, outliers, bare))
}

fn encode_full(cdb: &CompressedDb) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&(cdb.stats().original_size as u64).to_le_bytes());
    buf.extend_from_slice(&(cdb.groups().len() as u32).to_le_bytes());
    for g in cdb.groups() {
        put_group(&mut buf, g);
    }
    buf.extend_from_slice(&(cdb.plain().len() as u32).to_le_bytes());
    let mut ids = Vec::new();
    for row in cdb.plain().iter() {
        ids.clear();
        ids.extend(row.iter().map(|it| it.id()));
        put_list(&mut buf, &ids);
    }
    buf
}

fn decode_full(r: &mut ByteReader<'_>) -> Result<CompressedDb, DecodeError> {
    let original_items = r.get_u64_le()? as usize;
    let n_groups = r.get_u32_le()? as usize;
    let mut groups = Vec::with_capacity(n_groups);
    for _ in 0..n_groups {
        groups.push(get_group(r)?);
    }
    let n_plain = r.get_u32_le()? as usize;
    let mut plain: CsrTuples<Item> = CsrTuples::new();
    for _ in 0..n_plain {
        let m = r.get_u32_le()? as usize;
        for _ in 0..m {
            plain.push_elem(Item(r.get_u32_le()?));
        }
        plain.commit_row();
    }
    Ok(CompressedDb::new(groups, plain, original_items))
}

fn encode_delta(d: &Delta) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&d.original_items.to_le_bytes());
    buf.extend_from_slice(&(d.removed.len() as u32).to_le_bytes());
    for p in &d.removed {
        put_list(&mut buf, p);
    }
    buf.extend_from_slice(&(d.added.len() as u32).to_le_bytes());
    for (pos, g) in &d.added {
        buf.extend_from_slice(&pos.to_le_bytes());
        put_group(&mut buf, g);
    }
    buf.extend_from_slice(&(d.plain_ops.len() as u32).to_le_bytes());
    for op in &d.plain_ops {
        match op {
            PlainOp::Copy { start, len } => {
                buf.push(0);
                buf.extend_from_slice(&start.to_le_bytes());
                buf.extend_from_slice(&len.to_le_bytes());
            }
            PlainOp::Insert(row) => {
                buf.push(1);
                put_list(&mut buf, row);
            }
        }
    }
    buf
}

fn decode_delta(r: &mut ByteReader<'_>) -> Result<Delta, DecodeError> {
    let original_items = r.get_u64_le()?;
    let n_removed = r.get_u32_le()? as usize;
    let mut removed = Vec::with_capacity(n_removed);
    for _ in 0..n_removed {
        removed.push(get_list(r)?);
    }
    let n_added = r.get_u32_le()? as usize;
    let mut added = Vec::with_capacity(n_added);
    for _ in 0..n_added {
        let pos = r.get_u32_le()?;
        added.push((pos, get_group(r)?));
    }
    let n_ops = r.get_u32_le()? as usize;
    let mut plain_ops = Vec::with_capacity(n_ops);
    for _ in 0..n_ops {
        match r.get_u8()? {
            0 => {
                let start = r.get_u32_le()?;
                let len = r.get_u32_le()?;
                plain_ops.push(PlainOp::Copy { start, len });
            }
            1 => plain_ops.push(PlainOp::Insert(get_list(r)?)),
            tag => return Err(DecodeError::BadTag { offset: r.pos - 1, tag }),
        }
    }
    Ok(Delta { original_items, removed, added, plain_ops })
}

/// Computes the delta turning `prev` into `next`.
fn diff(prev: &CompressedDb, next: &CompressedDb) -> Delta {
    // Groups, keyed by pattern (unique within a CDB).
    let next_by_pattern: FxHashMap<&[Item], &Group> =
        next.groups().iter().map(|g| (g.pattern(), g)).collect();
    let prev_by_pattern: FxHashMap<&[Item], &Group> =
        prev.groups().iter().map(|g| (g.pattern(), g)).collect();
    let mut removed = Vec::new();
    for g in prev.groups() {
        match next_by_pattern.get(g.pattern()) {
            Some(ng) if *ng == g => {}
            _ => removed.push(items_to_ids(g.pattern())),
        }
    }
    let mut added = Vec::new();
    for (pos, g) in next.groups().iter().enumerate() {
        match prev_by_pattern.get(g.pattern()) {
            Some(pg) if *pg == g => {}
            _ => added.push((pos as u32, g.clone())),
        }
    }
    // Plain residue: greedy monotone matching against the previous
    // rows. A match extends the open Copy run when contiguous;
    // unmatched rows become Inserts.
    let mut old_at: FxHashMap<&[Item], Vec<u32>> = FxHashMap::default();
    for (i, row) in prev.plain().iter().enumerate() {
        old_at.entry(row).or_default().push(i as u32);
    }
    let mut plain_ops: Vec<PlainOp> = Vec::new();
    let mut cursor = 0u32; // next unmatched previous row
    for row in next.plain().iter() {
        let matched = old_at
            .get(row)
            .and_then(|ix| ix[ix.partition_point(|&i| i < cursor)..].first().copied());
        match matched {
            Some(i) => {
                cursor = i + 1;
                match plain_ops.last_mut() {
                    Some(PlainOp::Copy { start, len }) if *start + *len == i => *len += 1,
                    _ => plain_ops.push(PlainOp::Copy { start: i, len: 1 }),
                }
            }
            None => plain_ops.push(PlainOp::Insert(row.iter().map(|it| it.id()).collect())),
        }
    }
    Delta { original_items: next.stats().original_size as u64, removed, added, plain_ops }
}

/// Applies `delta` to `prev`; `None` when the delta cannot be replayed
/// (out-of-range copy or insert position — a corrupt or inapplicable
/// delta).
fn apply(prev: &CompressedDb, delta: &Delta) -> Option<CompressedDb> {
    let removed: std::collections::HashSet<Vec<u32>> = delta.removed.iter().cloned().collect();
    let mut groups: Vec<Group> = prev
        .groups()
        .iter()
        .filter(|g| !removed.contains(&items_to_ids(g.pattern())))
        .cloned()
        .collect();
    let mut added = delta.added.clone();
    added.sort_by_key(|(pos, _)| *pos);
    for (pos, g) in added {
        if pos as usize > groups.len() {
            return None;
        }
        groups.insert(pos as usize, g);
    }
    let prev_plain = prev.plain();
    let mut plain: CsrTuples<Item> = CsrTuples::new();
    for op in &delta.plain_ops {
        match op {
            PlainOp::Copy { start, len } => {
                let (start, len) = (*start as usize, *len as usize);
                if start + len > prev_plain.len() {
                    return None;
                }
                for i in start..start + len {
                    plain.push_row(prev_plain.row(i));
                }
            }
            PlainOp::Insert(row) => {
                for &id in row {
                    plain.push_elem(Item(id));
                }
                plain.commit_row();
            }
        }
    }
    Some(CompressedDb::new(groups, plain, delta.original_items as usize))
}

fn write_version_file(path: &Path, kind: u32, payload: &[u8]) -> io::Result<u64> {
    let mut header = Vec::with_capacity(HEADER_BYTES);
    header.extend_from_slice(&MAGIC);
    header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    header.extend_from_slice(&kind.to_le_bytes());
    header.extend_from_slice(&crc32(payload).to_le_bytes());
    let mut f = File::create(path)?;
    f.write_all(&header)?;
    f.write_all(payload)?;
    f.flush()?;
    Ok((header.len() + payload.len()) as u64)
}

fn read_version_file(path: &Path) -> io::Result<(u32, Vec<u8>)> {
    let mut f = File::open(path)?;
    let mut bytes = Vec::new();
    f.read_to_end(&mut bytes)?;
    if bytes.len() < HEADER_BYTES || bytes[0..4] != MAGIC {
        return Err(bad_data(format!("{}: not a version file", path.display())));
    }
    let word = |i: usize| u32::from_le_bytes(bytes[i..i + 4].try_into().unwrap());
    if word(4) != FORMAT_VERSION {
        return Err(bad_data(format!(
            "{}: unsupported version-file format {}",
            path.display(),
            word(4)
        )));
    }
    let kind = word(8);
    let stored = word(12);
    let payload = bytes.split_off(HEADER_BYTES);
    let computed = crc32(&payload);
    if stored != computed {
        return Err(bad_data(format!(
            "{}: payload checksum mismatch (stored {stored:#010x}, computed {computed:#010x})",
            path.display()
        )));
    }
    Ok((kind, payload))
}

/// A chain of compressed-database versions on disk, the latest
/// materialized in memory.
#[derive(Debug)]
pub struct VersionStore {
    dir: PathBuf,
    versions: usize,
    current: Option<CompressedDb>,
}

impl VersionStore {
    /// Opens (or creates) the version chain under `dir`, replaying any
    /// existing versions to materialize the latest.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        let dir = dir.as_ref().to_owned();
        std::fs::create_dir_all(&dir)?;
        let mut ids: Vec<usize> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok()?.file_name().to_str().and_then(parse_version_id))
            .collect();
        ids.sort_unstable();
        let mut current: Option<CompressedDb> = None;
        for (expect, &v) in ids.iter().enumerate() {
            let path = dir.join(version_file_name(v));
            if v != expect {
                return Err(bad_data(format!(
                    "{}: version chain has a gap (expected v-{expect:04})",
                    path.display()
                )));
            }
            let (kind, payload) = read_version_file(&path)?;
            let mut r = ByteReader::new(&payload);
            current = Some(match kind {
                KIND_FULL => decode_full(&mut r).map_err(|e| decode_err(&path, e))?,
                KIND_DELTA => {
                    let delta = decode_delta(&mut r).map_err(|e| decode_err(&path, e))?;
                    let prev = current.ok_or_else(|| {
                        bad_data(format!("{}: delta with no predecessor", path.display()))
                    })?;
                    apply(&prev, &delta).ok_or_else(|| {
                        bad_data(format!("{}: delta does not apply", path.display()))
                    })?
                }
                k => return Err(bad_data(format!("{}: unknown kind {k}", path.display()))),
            });
        }
        Ok(VersionStore { dir, versions: ids.len(), current })
    }

    /// Number of persisted versions.
    pub fn version_count(&self) -> usize {
        self.versions
    }

    /// The latest materialized version, if any.
    pub fn current(&self) -> Option<&CompressedDb> {
        self.current.as_ref()
    }

    /// Persists `cdb` as the next version — a verified delta against
    /// the predecessor when one exists and the delta both reproduces
    /// `cdb` exactly and is smaller than a full encoding; a full
    /// version otherwise. Returns the bytes written; delta bytes also
    /// accumulate into the `storage.delta_bytes` counter.
    pub fn push(&mut self, cdb: &CompressedDb) -> io::Result<u64> {
        let full = encode_full(cdb);
        let path = self.dir.join(version_file_name(self.versions));
        let written = match &self.current {
            Some(prev) => {
                let delta = diff(prev, cdb);
                let payload = encode_delta(&delta);
                let reproduces = apply(prev, &delta).is_some_and(|got| got == *cdb);
                if reproduces && payload.len() < full.len() {
                    let bytes = write_version_file(&path, KIND_DELTA, &payload)?;
                    metrics::add("storage.delta_bytes", bytes);
                    bytes
                } else {
                    write_version_file(&path, KIND_FULL, &full)?
                }
            }
            None => write_version_file(&path, KIND_FULL, &full)?,
        };
        self.versions += 1;
        self.current = Some(cdb.clone());
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gogreen_core::{Compressor, Strategy};
    use gogreen_data::{MinSupport, TransactionDb};
    use gogreen_miners::mine_hmine;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gogreen-version-{tag}-{}", std::process::id()));
        if dir.exists() {
            std::fs::remove_dir_all(&dir).unwrap();
        }
        dir
    }

    fn paper_cdb(minsup: u64) -> CompressedDb {
        let db = TransactionDb::paper_example();
        let fp = mine_hmine(&db, MinSupport::Absolute(minsup));
        Compressor::new(Strategy::Mcp).compress(&db, &fp)
    }

    #[test]
    fn full_round_trip_through_reopen() {
        let dir = temp_dir("full");
        let cdb = paper_cdb(3);
        let mut store = VersionStore::open(&dir).unwrap();
        assert_eq!(store.version_count(), 0);
        assert!(store.current().is_none());
        store.push(&cdb).unwrap();
        let reopened = VersionStore::open(&dir).unwrap();
        assert_eq!(reopened.version_count(), 1);
        assert_eq!(reopened.current(), Some(&cdb));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chain_of_versions_replays_to_the_latest() {
        let dir = temp_dir("chain");
        let mut store = VersionStore::open(&dir).unwrap();
        let v0 = paper_cdb(4);
        let v1 = paper_cdb(3);
        let v2 = paper_cdb(2);
        store.push(&v0).unwrap();
        store.push(&v1).unwrap();
        store.push(&v2).unwrap();
        assert_eq!(store.current(), Some(&v2));
        let reopened = VersionStore::open(&dir).unwrap();
        assert_eq!(reopened.version_count(), 3);
        assert_eq!(reopened.current(), Some(&v2));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn near_identical_versions_store_small_deltas() {
        let dir = temp_dir("delta");
        let rows: Vec<Vec<u32>> = (0..200u32).map(|k| vec![k % 5, 5 + k % 3, 10 + k]).collect();
        let refs: Vec<&[u32]> = rows.iter().map(|r| r.as_slice()).collect();
        let db = TransactionDb::from_rows(&refs);
        let fp = mine_hmine(&db, MinSupport::Absolute(30));
        let cdb = Compressor::new(Strategy::Mcp).compress(&db, &fp);
        let mut store = VersionStore::open(&dir).unwrap();
        let full_bytes = store.push(&cdb).unwrap();
        // Same CDB again: the delta is a header plus one Copy op.
        let delta_bytes = store.push(&cdb).unwrap();
        assert!(
            delta_bytes * 4 < full_bytes,
            "delta {delta_bytes} B not small vs full {full_bytes} B"
        );
        let reopened = VersionStore::open(&dir).unwrap();
        assert_eq!(reopened.current(), Some(&cdb));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_version_payload_is_rejected() {
        let dir = temp_dir("corrupt");
        let mut store = VersionStore::open(&dir).unwrap();
        store.push(&paper_cdb(3)).unwrap();
        let path = dir.join(version_file_name(0));
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = VersionStore::open(&dir).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
