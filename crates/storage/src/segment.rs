//! Immutable on-disk CSR segments — the out-of-core database substrate.
//!
//! A *segment* is one sealed, checksummed file holding a contiguous run
//! of database tuples in exactly the [`CsrTuples`] layout: a flat
//! element array plus an offsets array, written verbatim. Loading a
//! segment is therefore two bulk array reads straight into the in-memory
//! CSR container — no per-row parsing — and a loaded segment hands the
//! engines the same [`gogreen_data::TupleSlices`] windows an in-memory
//! database would (the layout is mmap-friendly by construction; this
//! implementation reads, it does not map, since the workspace takes no
//! mmap dependency).
//!
//! Each segment additionally carries an **item-support sidecar**: the
//! per-item occurrence counts of its own rows, written at seal time.
//! Whole-database supports — what F-list construction and the cover
//! index need — are the sum of the sidecars, so a mining round reads
//! every *sidecar* cheaply and then makes exactly **one full pass per
//! segment** (the encode or cover pass), which `storage.segments_read`
//! counts. `storage.resident_peak` tracks the largest payload resident
//! at once: segments are loaded one at a time and dropped before the
//! next, so the peak stays bounded by the largest segment, not the
//! database.
//!
//! Lifecycle: **append** rows through a [`SegmentWriter`] (rows
//! accumulate in memory up to the configured segment size) → **seal**
//! (the writer flushes a finished file; sealed files are never modified)
//! → **compact** ([`compact`] merges undersized sealed segments into
//! full-sized ones, e.g. after many small incremental appends).
//!
//! ## Wire format
//!
//! All integers little-endian. A 24-byte header:
//!
//! | bytes | field |
//! |------:|-------|
//! | 0..4  | magic `"GGSG"` |
//! | 4..8  | format version (1) |
//! | 8..12 | row count `r` |
//! | 12..16| element count `e` |
//! | 16..20| sidecar entry count `s` |
//! | 20..24| CRC-32 of the payload |
//!
//! followed by the payload: `offsets[r+1] : u32`, `data[e] : u32`,
//! then `s` sidecar pairs `(item : u32, count : u32)`.

use crate::budget::MemoryBudget;
use crate::crc::crc32;
use gogreen_data::{CsrTuples, Item, TransactionDb};
use gogreen_obs::{histogram, metrics};
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Segment file magic.
const MAGIC: [u8; 4] = *b"GGSG";
/// Current format version.
const FORMAT_VERSION: u32 = 1;
/// Header size in bytes.
const HEADER_BYTES: usize = 24;

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn segment_file_name(id: u32) -> String {
    format!("seg-{id:06}.ggs")
}

/// Parses `seg-NNNNNN.ggs` back to its id.
fn parse_segment_id(name: &str) -> Option<u32> {
    name.strip_prefix("seg-")?.strip_suffix(".ggs")?.parse().ok()
}

/// One segment's header, read without touching the payload.
#[derive(Debug, Clone)]
struct SegmentMeta {
    path: PathBuf,
    rows: u32,
    elems: u32,
    sidecar_entries: u32,
    /// Payload bytes (file size minus header) — the resident cost of
    /// loading this segment.
    payload_bytes: usize,
}

fn read_header(path: &Path) -> io::Result<(SegmentMeta, u32)> {
    let mut f = File::open(path)?;
    let mut header = [0u8; HEADER_BYTES];
    f.read_exact(&mut header)
        .map_err(|_| bad_data(format!("{}: truncated segment header", path.display())))?;
    if header[0..4] != MAGIC {
        return Err(bad_data(format!("{}: not a segment file (bad magic)", path.display())));
    }
    let word = |i: usize| u32::from_le_bytes(header[i..i + 4].try_into().unwrap());
    if word(4) != FORMAT_VERSION {
        return Err(bad_data(format!(
            "{}: unsupported segment format version {}",
            path.display(),
            word(4)
        )));
    }
    let (rows, elems, sidecar_entries, crc) = (word(8), word(12), word(16), word(20));
    let payload_bytes = (rows as usize + 1) * 4 + elems as usize * 4 + sidecar_entries as usize * 8;
    let meta = SegmentMeta { path: path.to_owned(), rows, elems, sidecar_entries, payload_bytes };
    Ok((meta, crc))
}

/// Builds rows into sealed, immutable segment files under a directory.
///
/// Rows accumulate in an in-memory CSR buffer; when the buffer's
/// payload reaches the configured segment size it is sealed to disk and
/// the buffer restarts empty — the writer's residency is bounded by one
/// segment regardless of how many rows stream through it.
#[derive(Debug)]
pub struct SegmentWriter {
    dir: PathBuf,
    segment_bytes: usize,
    next_id: u32,
    rows: CsrTuples<u32>,
    counts: Vec<u32>,
    sealed: usize,
}

impl SegmentWriter {
    /// Default segment payload size: 4 MiB, the paper's §5.3 machine
    /// budget.
    pub const DEFAULT_SEGMENT_BYTES: usize = 4 << 20;

    /// Opens `dir` for appending, creating it if needed. New segments
    /// continue after the highest existing id, so appending to a
    /// non-empty store never clobbers sealed files.
    pub fn create(dir: impl AsRef<Path>, segment_bytes: usize) -> io::Result<Self> {
        let dir = dir.as_ref().to_owned();
        std::fs::create_dir_all(&dir)?;
        let next_id = scan_segment_ids(&dir)?.last().map_or(0, |&id| id + 1);
        Ok(SegmentWriter {
            dir,
            segment_bytes: segment_bytes.max(1),
            next_id,
            rows: CsrTuples::new(),
            counts: Vec::new(),
            sealed: 0,
        })
    }

    /// Appends one tuple (item ids, sorted ascending, duplicate-free),
    /// sealing the open segment first if this row would overflow it.
    pub fn push_row(&mut self, items: &[u32]) -> io::Result<()> {
        debug_assert!(items.windows(2).all(|w| w[0] < w[1]), "rows must be sorted item ids");
        let row_bytes = (items.len() + 1) * 4;
        if !self.rows.is_empty() && self.open_payload_bytes() + row_bytes > self.segment_bytes {
            self.seal()?;
        }
        for &it in items {
            if it as usize >= self.counts.len() {
                self.counts.resize(it as usize + 1, 0);
            }
            self.counts[it as usize] += 1;
        }
        self.rows.push_row(items);
        Ok(())
    }

    /// Payload bytes the open (unsealed) buffer would serialize to.
    fn open_payload_bytes(&self) -> usize {
        let sidecar = self.counts.iter().filter(|&&c| c > 0).count();
        (self.rows.len() + 1) * 4 + self.rows.total_elems() * 4 + sidecar * 8
    }

    /// Rows currently buffered in the open segment.
    pub fn open_rows(&self) -> usize {
        self.rows.len()
    }

    /// Seals the open buffer into a new segment file (no-op when empty).
    pub fn seal(&mut self) -> io::Result<()> {
        if self.rows.is_empty() {
            return Ok(());
        }
        let rows = std::mem::take(&mut self.rows);
        let counts = std::mem::take(&mut self.counts);
        let path = self.dir.join(segment_file_name(self.next_id));
        let bytes = write_segment(&path, &rows, &counts)?;
        self.next_id += 1;
        self.sealed += 1;
        metrics::add("storage.segments_written", 1);
        histogram::observe("storage.segment_bytes", bytes as u64);
        Ok(())
    }

    /// Seals any buffered rows and returns how many segments this
    /// writer sealed in total.
    pub fn finish(mut self) -> io::Result<usize> {
        self.seal()?;
        Ok(self.sealed)
    }
}

/// Serializes one segment file; returns its total size in bytes.
fn write_segment(path: &Path, rows: &CsrTuples<u32>, counts: &[u32]) -> io::Result<u64> {
    let mut payload: Vec<u8> =
        Vec::with_capacity((rows.len() + 1) * 4 + rows.total_elems() * 4 + counts.len() * 8);
    for &off in rows.offsets() {
        payload.extend_from_slice(&off.to_le_bytes());
    }
    for &x in rows.flat() {
        payload.extend_from_slice(&x.to_le_bytes());
    }
    let mut sidecar_entries = 0u32;
    for (item, &count) in counts.iter().enumerate() {
        if count > 0 {
            payload.extend_from_slice(&(item as u32).to_le_bytes());
            payload.extend_from_slice(&count.to_le_bytes());
            sidecar_entries += 1;
        }
    }
    let mut header = Vec::with_capacity(HEADER_BYTES);
    header.extend_from_slice(&MAGIC);
    header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    header.extend_from_slice(&(rows.len() as u32).to_le_bytes());
    header.extend_from_slice(&(rows.total_elems() as u32).to_le_bytes());
    header.extend_from_slice(&sidecar_entries.to_le_bytes());
    header.extend_from_slice(&crc32(&payload).to_le_bytes());
    let mut f = File::create(path)?;
    f.write_all(&header)?;
    f.write_all(&payload)?;
    f.flush()?;
    Ok((header.len() + payload.len()) as u64)
}

fn scan_segment_ids(dir: &Path) -> io::Result<Vec<u32>> {
    let mut ids = Vec::new();
    match std::fs::read_dir(dir) {
        Ok(entries) => {
            for entry in entries {
                let entry = entry?;
                if let Some(id) = entry.file_name().to_str().and_then(parse_segment_id) {
                    ids.push(id);
                }
            }
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    ids.sort_unstable();
    Ok(ids)
}

/// A read view over a directory of sealed segments.
///
/// Opening reads only headers — row/element counts and payload sizes —
/// so the database's shape (`total_rows`, `total_elems`) is known
/// without touching any payload. Payloads are loaded one segment at a
/// time through [`SegmentedDb::load`] under the configured resident
/// budget; summed item supports come from the sidecars alone.
#[derive(Debug)]
pub struct SegmentedDb {
    segments: Vec<SegmentMeta>,
    budget: MemoryBudget,
}

impl SegmentedDb {
    /// Opens the segment store under `dir` with an unlimited resident
    /// budget.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        let dir = dir.as_ref();
        let mut segments = Vec::new();
        for id in scan_segment_ids(dir)? {
            let (meta, _) = read_header(&dir.join(segment_file_name(id)))?;
            segments.push(meta);
        }
        Ok(SegmentedDb { segments, budget: MemoryBudget::unlimited() })
    }

    /// Sets the resident budget: [`SegmentedDb::load`] refuses any
    /// single segment whose payload exceeds it.
    pub fn with_budget(mut self, budget: MemoryBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Number of sealed segments.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Total rows across all segments.
    pub fn total_rows(&self) -> usize {
        self.segments.iter().map(|s| s.rows as usize).sum()
    }

    /// Total elements across all segments.
    pub fn total_elems(&self) -> usize {
        self.segments.iter().map(|s| s.elems as usize).sum()
    }

    /// Total on-disk payload bytes across all segments.
    pub fn total_payload_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.payload_bytes as u64).sum()
    }

    /// Largest single-segment payload — the minimum workable resident
    /// budget.
    pub fn max_segment_bytes(&self) -> usize {
        self.segments.iter().map(|s| s.payload_bytes).max().unwrap_or(0)
    }

    /// Whole-database per-item supports, summed from the per-segment
    /// sidecars. Reads headers and sidecar tails only — **not** counted
    /// as a segment pass.
    pub fn item_supports(&self) -> io::Result<Vec<u64>> {
        let mut counts: Vec<u64> = Vec::new();
        for seg in &self.segments {
            let mut f = File::open(&seg.path)?;
            let sidecar_start =
                HEADER_BYTES as u64 + (seg.rows as u64 + 1) * 4 + seg.elems as u64 * 4;
            f.seek(SeekFrom::Start(sidecar_start))?;
            let mut buf = vec![0u8; seg.sidecar_entries as usize * 8];
            f.read_exact(&mut buf)
                .map_err(|_| bad_data(format!("{}: truncated sidecar", seg.path.display())))?;
            for pair in buf.chunks_exact(8) {
                let item = u32::from_le_bytes(pair[0..4].try_into().unwrap()) as usize;
                let count = u32::from_le_bytes(pair[4..8].try_into().unwrap()) as u64;
                if item >= counts.len() {
                    counts.resize(item + 1, 0);
                }
                counts[item] += count;
            }
        }
        Ok(counts)
    }

    /// Loads segment `i` fully: verifies the payload checksum, bumps
    /// `storage.segments_read`, tracks `storage.resident_peak`, and
    /// reassembles the rows as a [`TransactionDb`] via
    /// [`CsrTuples::from_raw_parts`].
    pub fn load(&self, i: usize) -> io::Result<TransactionDb> {
        let seg = &self.segments[i];
        if !self.budget.fits(seg.payload_bytes) {
            return Err(bad_data(format!(
                "{}: segment payload ({} bytes) exceeds the resident budget ({} bytes)",
                seg.path.display(),
                seg.payload_bytes,
                self.budget.limit()
            )));
        }
        let (_, stored_crc) = read_header(&seg.path)?;
        let mut f = File::open(&seg.path)?;
        f.seek(SeekFrom::Start(HEADER_BYTES as u64))?;
        let mut payload = vec![0u8; seg.payload_bytes];
        f.read_exact(&mut payload)
            .map_err(|_| bad_data(format!("{}: truncated payload", seg.path.display())))?;
        let computed = crc32(&payload);
        if computed != stored_crc {
            return Err(bad_data(format!(
                "{}: payload checksum mismatch (stored {stored_crc:#010x}, computed \
                 {computed:#010x})",
                seg.path.display()
            )));
        }
        let offsets_end = (seg.rows as usize + 1) * 4;
        let data_end = offsets_end + seg.elems as usize * 4;
        let offsets: Vec<u32> = payload[..offsets_end]
            .chunks_exact(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
            .collect();
        let data: Vec<Item> = payload[offsets_end..data_end]
            .chunks_exact(4)
            .map(|b| Item(u32::from_le_bytes(b.try_into().unwrap())))
            .collect();
        if offsets.first() != Some(&0)
            || offsets.last().map(|&o| o as usize) != Some(data.len())
            || offsets.windows(2).any(|w| w[0] > w[1])
        {
            return Err(bad_data(format!("{}: corrupt offsets array", seg.path.display())));
        }
        metrics::add("storage.segments_read", 1);
        metrics::set_max("storage.resident_peak", seg.payload_bytes as u64);
        Ok(TransactionDb::from_csr(CsrTuples::from_raw_parts(data, offsets)))
    }

    /// Loads each segment in turn (one resident at a time) and hands it
    /// to `f` with its index.
    pub fn for_each_segment(
        &self,
        mut f: impl FnMut(usize, &TransactionDb) -> io::Result<()>,
    ) -> io::Result<()> {
        for i in 0..self.segments.len() {
            let db = self.load(i)?;
            f(i, &db)?;
        }
        Ok(())
    }

    /// Materializes the entire store as one in-memory database —
    /// test/compat convenience, not an out-of-core path (residency is
    /// the whole database).
    pub fn to_transaction_db(&self) -> io::Result<TransactionDb> {
        let mut csr = CsrTuples::with_capacity(self.total_rows(), self.total_elems());
        self.for_each_segment(|_, db| {
            for t in db.iter() {
                csr.push_row(t);
            }
            Ok(())
        })?;
        Ok(TransactionDb::from_csr(csr))
    }
}

/// Outcome of a [`compact`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactReport {
    /// Segment count before compaction.
    pub segments_before: usize,
    /// Segment count after compaction.
    pub segments_after: usize,
    /// Total rows (unchanged by compaction).
    pub rows: usize,
}

/// Rewrites the store so every segment (except possibly the last)
/// reaches the target payload size — merging the undersized tails that
/// accumulate from incremental appends. Row order is preserved exactly;
/// new files are written alongside the old ones and swapped in only
/// after every new segment sealed cleanly.
pub fn compact(dir: impl AsRef<Path>, segment_bytes: usize) -> io::Result<CompactReport> {
    let dir = dir.as_ref();
    let db = SegmentedDb::open(dir)?;
    let before = db.num_segments();
    let rows = db.total_rows();
    let tmp = dir.join("compact-tmp");
    if tmp.exists() {
        std::fs::remove_dir_all(&tmp)?;
    }
    let mut writer = SegmentWriter::create(&tmp, segment_bytes)?;
    let mut row_ids: Vec<u32> = Vec::new();
    db.for_each_segment(|_, seg_db| {
        for t in seg_db.iter() {
            row_ids.clear();
            row_ids.extend(t.iter().map(|it| it.id()));
            writer.push_row(&row_ids)?;
        }
        Ok(())
    })?;
    let after = writer.finish()?;
    // Swap: drop the old sealed files, move the new ones into place.
    for id in scan_segment_ids(dir)? {
        std::fs::remove_file(dir.join(segment_file_name(id)))?;
    }
    for id in scan_segment_ids(&tmp)? {
        let name = segment_file_name(id);
        std::fs::rename(tmp.join(&name), dir.join(&name))?;
    }
    std::fs::remove_dir_all(&tmp)?;
    Ok(CompactReport { segments_before: before, segments_after: after, rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gogreen-segment-{tag}-{}", std::process::id()));
        if dir.exists() {
            std::fs::remove_dir_all(&dir).unwrap();
        }
        dir
    }

    fn fill(dir: &Path, rows: &[&[u32]], segment_bytes: usize) -> usize {
        let mut w = SegmentWriter::create(dir, segment_bytes).unwrap();
        for r in rows {
            w.push_row(r).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn round_trip_single_segment() {
        let dir = temp_dir("single");
        let rows: &[&[u32]] = &[&[0, 2, 5], &[1], &[2, 3, 4, 9]];
        assert_eq!(fill(&dir, rows, 1 << 20), 1);
        let db = SegmentedDb::open(&dir).unwrap();
        assert_eq!(db.num_segments(), 1);
        assert_eq!(db.total_rows(), 3);
        assert_eq!(db.total_elems(), 8);
        let loaded = db.load(0).unwrap();
        assert_eq!(loaded, TransactionDb::from_rows(rows));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rolls_over_at_the_byte_budget_and_preserves_order() {
        let dir = temp_dir("roll");
        let rows: Vec<Vec<u32>> = (0..100u32).map(|k| vec![k, k + 1, k + 200]).collect();
        let refs: Vec<&[u32]> = rows.iter().map(|r| r.as_slice()).collect();
        // ~16 bytes per row payload; a 64-byte budget forces many segments.
        let sealed = fill(&dir, &refs, 64);
        assert!(sealed > 10, "expected many segments, got {sealed}");
        let db = SegmentedDb::open(&dir).unwrap();
        assert_eq!(db.num_segments(), sealed);
        assert_eq!(db.total_rows(), 100);
        assert_eq!(db.to_transaction_db().unwrap(), TransactionDb::from_rows(&refs));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sidecar_supports_match_full_scan() {
        let dir = temp_dir("sidecar");
        let rows: Vec<Vec<u32>> = (0..50u32).map(|k| vec![k % 7, 7 + k % 3, 20]).collect();
        let refs: Vec<&[u32]> = rows.iter().map(|r| r.as_slice()).collect();
        fill(&dir, &refs, 128);
        let db = SegmentedDb::open(&dir).unwrap();
        let from_sidecars = db.item_supports().unwrap();
        let from_scan = TransactionDb::from_rows(&refs).item_supports();
        assert_eq!(from_sidecars, from_scan);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_continues_numbering() {
        let dir = temp_dir("append");
        fill(&dir, &[&[1, 2]], 1 << 20);
        fill(&dir, &[&[3, 4]], 1 << 20);
        let db = SegmentedDb::open(&dir).unwrap();
        assert_eq!(db.num_segments(), 2);
        assert_eq!(db.to_transaction_db().unwrap(), TransactionDb::from_rows(&[&[1, 2], &[3, 4]]));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn budget_refuses_oversized_segment() {
        let dir = temp_dir("budget");
        fill(&dir, &[&[1, 2, 3, 4, 5, 6, 7, 8]], 1 << 20);
        let db = SegmentedDb::open(&dir).unwrap().with_budget(MemoryBudget::bytes(8));
        let err = db.load(0).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("resident budget"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let dir = temp_dir("corrupt");
        fill(&dir, &[&[1, 2, 3]], 1 << 20);
        let path = dir.join(segment_file_name(0));
        let mut bytes = std::fs::read(&path).unwrap();
        let k = bytes.len() - 3;
        bytes[k] ^= 0x40; // flip a payload bit
        std::fs::write(&path, &bytes).unwrap();
        let db = SegmentedDb::open(&dir).unwrap();
        let err = db.load(0).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_merges_small_segments() {
        let dir = temp_dir("compact");
        let rows: Vec<Vec<u32>> = (0..60u32).map(|k| vec![k, k + 100]).collect();
        let refs: Vec<&[u32]> = rows.iter().map(|r| r.as_slice()).collect();
        let sealed = fill(&dir, &refs, 48);
        assert!(sealed > 5);
        let report = compact(&dir, 1 << 20).unwrap();
        assert_eq!(report.segments_before, sealed);
        assert_eq!(report.segments_after, 1);
        assert_eq!(report.rows, 60);
        let db = SegmentedDb::open(&dir).unwrap();
        assert_eq!(db.num_segments(), 1);
        assert_eq!(db.to_transaction_db().unwrap(), TransactionDb::from_rows(&refs));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn non_segment_files_are_ignored() {
        let dir = temp_dir("ignore");
        fill(&dir, &[&[1]], 1 << 20);
        std::fs::write(dir.join("notes.txt"), b"hi").unwrap();
        let db = SegmentedDb::open(&dir).unwrap();
        assert_eq!(db.num_segments(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
