//! Partition files for parallel projection.
//!
//! A [`SpillManager`] owns one temporary directory holding one file per
//! frequent item (rank). Writers buffer per partition and flush in large
//! appends; readers stream records through a bounded buffer so loading a
//! partition for inspection never materializes more than one record
//! beyond the decode buffer. Everything is deleted on drop.

use crate::codec::{ByteReader, SpillRecord};
use gogreen_obs::{histogram, metrics};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Flush threshold per partition buffer.
const FLUSH_BYTES: usize = 256 * 1024;

static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

struct Partition {
    buf: Vec<u8>,
    created: bool,
    bytes: u64,
    records: u64,
    tuples: u64,
    est_memory: usize,
}

/// One level of disk-resident projected partitions.
pub struct SpillManager {
    dir: PathBuf,
    partitions: Vec<Partition>,
}

impl SpillManager {
    /// Creates a manager with `num_ranks` partitions under a fresh
    /// process-private temp directory.
    pub fn new(num_ranks: usize) -> std::io::Result<Self> {
        let seq = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("gogreen-spill-{}-{}", std::process::id(), seq));
        std::fs::create_dir_all(&dir)?;
        let partitions = (0..num_ranks)
            .map(|_| Partition {
                buf: Vec::new(),
                created: false,
                bytes: 0,
                records: 0,
                tuples: 0,
                est_memory: 0,
            })
            .collect();
        Ok(SpillManager { dir, partitions })
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Appends a record to partition `rank`.
    pub fn append(&mut self, rank: u32, record: &SpillRecord) -> std::io::Result<()> {
        let p = &mut self.partitions[rank as usize];
        let before = p.buf.len();
        record.encode(&mut p.buf);
        histogram::observe("storage.spill_record_bytes", (p.buf.len() - before) as u64);
        p.records += 1;
        p.tuples += record.tuple_count();
        p.est_memory += record.estimated_memory();
        if p.buf.len() >= FLUSH_BYTES {
            Self::flush_partition(&self.dir, rank, p)?;
        }
        Ok(())
    }

    /// Flushes all buffered data; must be called before reading.
    pub fn finish(&mut self) -> std::io::Result<()> {
        for rank in 0..self.partitions.len() {
            let p = &mut self.partitions[rank];
            if !p.buf.is_empty() {
                Self::flush_partition(&self.dir, rank as u32, p)?;
            }
        }
        Ok(())
    }

    fn flush_partition(dir: &std::path::Path, rank: u32, p: &mut Partition) -> std::io::Result<()> {
        let path = dir.join(format!("part-{rank}.bin"));
        let mut f = OpenOptions::new().create(true).append(true).open(path)?;
        f.write_all(&p.buf)?;
        metrics::add("storage.spill_bytes", p.buf.len() as u64);
        if !p.created {
            metrics::add("storage.spill_partitions", 1);
        }
        p.bytes += p.buf.len() as u64;
        p.buf.clear();
        p.created = true;
        Ok(())
    }

    /// Bytes written to partition `rank`.
    pub fn partition_bytes(&self, rank: u32) -> u64 {
        self.partitions[rank as usize].bytes + self.partitions[rank as usize].buf.len() as u64
    }

    /// Records written to partition `rank`.
    pub fn partition_records(&self, rank: u32) -> u64 {
        self.partitions[rank as usize].records
    }

    /// Tuples represented in partition `rank`.
    pub fn partition_tuples(&self, rank: u32) -> u64 {
        self.partitions[rank as usize].tuples
    }

    /// Estimated in-memory structure bytes if partition `rank` were
    /// loaded and mined in memory — the paper's `EM(D)`.
    pub fn estimated_memory(&self, rank: u32) -> usize {
        self.partitions[rank as usize].est_memory
    }

    /// Total bytes written across partitions (the disk cost of parallel
    /// projection).
    pub fn total_bytes(&self) -> u64 {
        (0..self.partitions.len() as u32).map(|r| self.partition_bytes(r)).sum()
    }

    /// Streams every record of partition `rank` through `f`. Call
    /// [`SpillManager::finish`] first.
    pub fn for_each_record(
        &self,
        rank: u32,
        mut f: impl FnMut(SpillRecord),
    ) -> std::io::Result<()> {
        let p = &self.partitions[rank as usize];
        assert!(p.buf.is_empty(), "finish() must run before reading");
        if !p.created {
            return Ok(());
        }
        let path = self.dir.join(format!("part-{rank}.bin"));
        // Spill files are modest per partition; read whole then decode.
        // (Records never span our flush boundaries incorrectly because
        // flushing always writes whole encoded records.)
        let mut raw = Vec::with_capacity(p.bytes as usize);
        File::open(path)?.read_to_end(&mut raw)?;
        let mut reader = ByteReader::new(&raw);
        // A decode failure means the partition file is corrupt; surface
        // it as InvalidData so the caller can fail this one partition
        // instead of the whole process.
        while let Some(rec) = SpillRecord::decode(&mut reader)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?
        {
            f(rec);
        }
        Ok(())
    }
}

impl Drop for SpillManager {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_finish_read_round_trip() {
        let mut mgr = SpillManager::new(3).unwrap();
        mgr.append(0, &SpillRecord::Plain(vec![1, 2])).unwrap();
        mgr.append(0, &SpillRecord::Plain(vec![3])).unwrap();
        mgr.append(
            2,
            &SpillRecord::Group {
                pattern: vec![4],
                bare: 1,
                outliers: gogreen_data::CsrTuples::new(),
            },
        )
        .unwrap();
        mgr.finish().unwrap();
        let mut got = Vec::new();
        mgr.for_each_record(0, |r| got.push(r)).unwrap();
        assert_eq!(got, vec![SpillRecord::Plain(vec![1, 2]), SpillRecord::Plain(vec![3])]);
        let mut got2 = Vec::new();
        mgr.for_each_record(2, |r| got2.push(r)).unwrap();
        assert_eq!(got2.len(), 1);
        assert_eq!(mgr.partition_records(0), 2);
        assert_eq!(mgr.partition_tuples(2), 1);
    }

    #[test]
    fn empty_partition_reads_nothing() {
        let mut mgr = SpillManager::new(2).unwrap();
        mgr.finish().unwrap();
        let mut n = 0;
        mgr.for_each_record(1, |_| n += 1).unwrap();
        assert_eq!(n, 0);
        assert_eq!(mgr.partition_bytes(1), 0);
    }

    #[test]
    fn accounting_accumulates() {
        let mut mgr = SpillManager::new(1).unwrap();
        for k in 0..100u32 {
            mgr.append(0, &SpillRecord::Plain(vec![k, k + 1])).unwrap();
        }
        assert_eq!(mgr.partition_records(0), 100);
        assert!(mgr.estimated_memory(0) > 0);
        assert!(mgr.partition_bytes(0) > 0);
        mgr.finish().unwrap();
        assert!(mgr.total_bytes() > 0);
    }

    #[test]
    fn corrupted_partition_file_reads_as_invalid_data() {
        let mut mgr = SpillManager::new(1).unwrap();
        mgr.append(0, &SpillRecord::Plain(vec![1, 2])).unwrap();
        mgr.finish().unwrap();
        // Append a record with an unknown tag behind the valid one.
        let path = mgr.dir.join("part-0.bin");
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[9u8, 0, 0, 0, 0]).unwrap();
        drop(f);
        let mut seen = Vec::new();
        let err = mgr.for_each_record(0, |r| seen.push(r)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("tag 9"), "{err}");
        // The valid prefix decoded before the corruption surfaced.
        assert_eq!(seen, vec![SpillRecord::Plain(vec![1, 2])]);
    }

    #[test]
    fn temp_dir_removed_on_drop() {
        let dir;
        {
            let mut mgr = SpillManager::new(1).unwrap();
            mgr.append(0, &SpillRecord::Plain(vec![1])).unwrap();
            mgr.finish().unwrap();
            dir = mgr.dir.clone();
            assert!(dir.exists());
        }
        assert!(!dir.exists());
    }

    #[test]
    fn large_volume_triggers_intermediate_flushes() {
        let mut mgr = SpillManager::new(1).unwrap();
        let fat: Vec<u32> = (0..2000).collect();
        for _ in 0..100 {
            mgr.append(0, &SpillRecord::Plain(fat.clone())).unwrap();
        }
        mgr.finish().unwrap();
        let mut n = 0;
        mgr.for_each_record(0, |r| {
            assert_eq!(r, SpillRecord::Plain(fat.clone()));
            n += 1;
        })
        .unwrap();
        assert_eq!(n, 100);
    }
}
