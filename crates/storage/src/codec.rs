//! Binary encoding of spilled records.
//!
//! A partition file is a sequence of records. Two record kinds exist,
//! mirroring the two populations of a compressed database:
//!
//! * **Plain** — a rank list (an uncovered tuple, or a member whose
//!   residual pattern emptied out).
//! * **Group** — a residual pattern, a bare-member count, and the
//!   outlier lists of members that still have outlying items. Writing
//!   one group record per (partition, group) preserves the compression
//!   saving across the spill: the pattern is stored once.
//!
//! Encoding is little-endian `u32`s with `u32` length prefixes — dense,
//! alignment-free, and trivially seekable record by record. Every record
//! ends with the CRC-32 of its own body, so a flipped bit anywhere in a
//! spill file is caught at the record that carries it. Buffers are
//! plain `Vec<u8>`; [`ByteReader`] is the matching decode cursor.
//! Decoding is fallible: truncation, unknown tags and checksum
//! mismatches surface as [`DecodeError`] rather than tearing down the
//! process.
//!
//! In memory a group's outlier lists live in one [`CsrTuples`] slab —
//! decode writes straight into it (no per-member `Vec`), and encode
//! walks its rows. The wire format is unchanged.

use crate::crc::crc32;
use gogreen_data::CsrTuples;

/// Why an encoded spill buffer failed to decode.
///
/// Spill files are private to the process, so either variant indicates
/// a bug or on-disk corruption — but the reader surfaces it as a
/// structured error (propagated as `io::ErrorKind::InvalidData` by the
/// spill layer) instead of tearing the process down, so a driver can
/// fail the one partition and report which byte went bad.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended mid-record: `needed` more bytes at `offset`.
    Truncated {
        /// Byte offset of the read that ran off the end.
        offset: usize,
        /// Bytes the read required.
        needed: usize,
    },
    /// An unknown record tag at `offset`.
    BadTag {
        /// Byte offset of the tag.
        offset: usize,
        /// The tag found (valid tags are 0 and 1).
        tag: u8,
    },
    /// The record starting at `offset` decoded structurally but its
    /// trailing CRC-32 disagreed with the recomputed body checksum —
    /// some bit inside the record flipped on disk.
    BadChecksum {
        /// Byte offset of the record whose checksum failed.
        offset: usize,
        /// The checksum stored after the record body.
        stored: u32,
        /// The checksum recomputed over the decoded body bytes.
        computed: u32,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated { offset, needed } => {
                write!(f, "spill record truncated at byte {offset} (needed {needed} more bytes)")
            }
            DecodeError::BadTag { offset, tag } => {
                write!(f, "corrupt spill record tag {tag} at byte {offset}")
            }
            DecodeError::BadChecksum { offset, stored, computed } => {
                write!(
                    f,
                    "spill record at byte {offset} failed its checksum \
                     (stored {stored:#010x}, computed {computed:#010x})"
                )
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// A forward-only cursor over an encoded byte buffer.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    pub(crate) data: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wraps `data` with the cursor at the start.
    pub fn new(data: &'a [u8]) -> Self {
        ByteReader { data, pos: 0 }
    }

    /// True while bytes remain.
    pub fn has_remaining(&self) -> bool {
        self.pos < self.data.len()
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.data.len() - self.pos < n {
            return Err(DecodeError::Truncated { offset: self.pos, needed: n });
        }
        let raw = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(raw)
    }

    pub(crate) fn get_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn get_u32_le(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn get_u64_le(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// One spilled record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpillRecord {
    /// An uncovered tuple (ascending ranks, non-empty).
    Plain(Vec<u32>),
    /// A (possibly partial) group.
    Group {
        /// Residual pattern ranks (ascending, non-empty).
        pattern: Vec<u32>,
        /// Members with no relevant outlying items.
        bare: u64,
        /// Outlier lists of the remaining members (each non-empty),
        /// one CSR row per member.
        outliers: CsrTuples<u32>,
    },
}

impl SpillRecord {
    /// Number of member tuples this record represents.
    pub fn tuple_count(&self) -> u64 {
        match self {
            SpillRecord::Plain(_) => 1,
            SpillRecord::Group { bare, outliers, .. } => bare + outliers.len() as u64,
        }
    }

    /// Estimated bytes of the in-memory RP-Struct share this record
    /// expands to (used for load-vs-respill decisions).
    pub fn estimated_memory(&self) -> usize {
        const PER_ENTRY: usize = 12;
        const PER_TAIL: usize = 12;
        const PER_GROUP: usize = 60;
        match self {
            SpillRecord::Plain(items) => (items.len() + 1) * PER_ENTRY + PER_TAIL,
            SpillRecord::Group { pattern, outliers, .. } => {
                PER_GROUP
                    + pattern.len() * 4
                    + outliers
                        .iter()
                        .map(|o| (o.len() + 1) * PER_ENTRY + PER_TAIL + 4)
                        .sum::<usize>()
            }
        }
    }

    /// Serializes into `buf`: the record body followed by the CRC-32 of
    /// the body bytes.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        let body_start = buf.len();
        match self {
            SpillRecord::Plain(items) => {
                buf.push(0);
                put_list(buf, items);
            }
            SpillRecord::Group { pattern, bare, outliers } => {
                buf.push(1);
                put_list(buf, pattern);
                buf.extend_from_slice(&bare.to_le_bytes());
                buf.extend_from_slice(&(outliers.len() as u32).to_le_bytes());
                for o in outliers.iter() {
                    put_list(buf, o);
                }
            }
        }
        let crc = crc32(&buf[body_start..]);
        buf.extend_from_slice(&crc.to_le_bytes());
    }

    /// Deserializes one record from the front of `buf`; `Ok(None)` when
    /// the buffer is exhausted, [`DecodeError`] on a truncated or
    /// corrupt buffer.
    pub fn decode(buf: &mut ByteReader<'_>) -> Result<Option<SpillRecord>, DecodeError> {
        if !buf.has_remaining() {
            return Ok(None);
        }
        let tag_offset = buf.pos;
        let record = match buf.get_u8()? {
            0 => SpillRecord::Plain(get_list(buf)?),
            1 => {
                let pattern = get_list(buf)?;
                let bare = buf.get_u64_le()?;
                let n = buf.get_u32_le()? as usize;
                let mut outliers = CsrTuples::new();
                for _ in 0..n {
                    let m = buf.get_u32_le()? as usize;
                    for _ in 0..m {
                        outliers.push_elem(buf.get_u32_le()?);
                    }
                    outliers.commit_row();
                }
                SpillRecord::Group { pattern, bare, outliers }
            }
            tag => return Err(DecodeError::BadTag { offset: tag_offset, tag }),
        };
        let body_end = buf.pos;
        let stored = buf.get_u32_le()?;
        let computed = crc32(&buf.data[tag_offset..body_end]);
        if stored != computed {
            return Err(DecodeError::BadChecksum { offset: tag_offset, stored, computed });
        }
        Ok(Some(record))
    }
}

pub(crate) fn put_list(buf: &mut Vec<u8>, items: &[u32]) {
    buf.extend_from_slice(&(items.len() as u32).to_le_bytes());
    for &x in items {
        buf.extend_from_slice(&x.to_le_bytes());
    }
}

pub(crate) fn get_list(buf: &mut ByteReader<'_>) -> Result<Vec<u32>, DecodeError> {
    let n = buf.get_u32_le()? as usize;
    (0..n).map(|_| buf.get_u32_le()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn csr(rows: &[&[u32]]) -> CsrTuples<u32> {
        let mut c = CsrTuples::new();
        for r in rows {
            c.push_row(r);
        }
        c
    }

    fn round_trip(records: &[SpillRecord]) {
        let mut buf = Vec::new();
        for r in records {
            r.encode(&mut buf);
        }
        let mut reader = ByteReader::new(&buf);
        let mut back = Vec::new();
        while let Some(r) = SpillRecord::decode(&mut reader).unwrap() {
            back.push(r);
        }
        assert_eq!(back, records);
    }

    #[test]
    fn plain_round_trip() {
        round_trip(&[SpillRecord::Plain(vec![1, 5, 9]), SpillRecord::Plain(vec![0])]);
    }

    #[test]
    fn group_round_trip() {
        round_trip(&[SpillRecord::Group {
            pattern: vec![2, 3],
            bare: 7,
            outliers: csr(&[&[4], &[5, 6]]),
        }]);
    }

    #[test]
    fn mixed_stream_round_trip() {
        round_trip(&[
            SpillRecord::Plain(vec![1]),
            SpillRecord::Group { pattern: vec![0], bare: 0, outliers: csr(&[&[9]]) },
            SpillRecord::Plain(vec![2, 3]),
        ]);
    }

    #[test]
    fn decode_empty_is_none() {
        let mut b = ByteReader::new(&[]);
        assert_eq!(SpillRecord::decode(&mut b), Ok(None));
    }

    #[test]
    fn tuple_counts() {
        assert_eq!(SpillRecord::Plain(vec![1]).tuple_count(), 1);
        let g = SpillRecord::Group { pattern: vec![1], bare: 2, outliers: csr(&[&[2]]) };
        assert_eq!(g.tuple_count(), 3);
    }

    #[test]
    fn corrupt_tag_is_an_error() {
        let raw = [7u8, 0, 0, 0, 0];
        let mut b = ByteReader::new(&raw);
        assert_eq!(SpillRecord::decode(&mut b), Err(DecodeError::BadTag { offset: 0, tag: 7 }));
    }

    #[test]
    fn truncated_record_is_an_error() {
        // A Plain record whose length prefix promises more u32s than
        // the buffer holds.
        let mut buf = Vec::new();
        SpillRecord::Plain(vec![1, 2, 3]).encode(&mut buf);
        for cut in 1..buf.len() {
            let mut b = ByteReader::new(&buf[..cut]);
            let got = SpillRecord::decode(&mut b);
            assert!(matches!(got, Err(DecodeError::Truncated { .. })), "cut={cut}: {got:?}");
        }
        // A Group record cut at every interior byte — exercises the CSR
        // decode path at each list boundary.
        let mut gbuf = Vec::new();
        SpillRecord::Group { pattern: vec![2], bare: 1, outliers: csr(&[&[4, 5], &[6]]) }
            .encode(&mut gbuf);
        for cut in 1..gbuf.len() {
            let mut b = ByteReader::new(&gbuf[..cut]);
            let got = SpillRecord::decode(&mut b);
            assert!(matches!(got, Err(DecodeError::Truncated { .. })), "cut={cut}: {got:?}");
        }
    }

    #[test]
    fn bit_flip_anywhere_is_detected() {
        // Flipping any single bit of an encoded stream must surface a
        // DecodeError — usually BadChecksum, but flips inside a length
        // prefix or tag may fail structurally first. What must never
        // happen is a silent wrong decode.
        let records = [
            SpillRecord::Plain(vec![1, 5, 9]),
            SpillRecord::Group { pattern: vec![2, 3], bare: 7, outliers: csr(&[&[4], &[5, 6]]) },
        ];
        let mut buf = Vec::new();
        for r in &records {
            r.encode(&mut buf);
        }
        for byte in 0..buf.len() {
            for bit in 0..8 {
                let mut corrupt = buf.clone();
                corrupt[byte] ^= 1 << bit;
                let mut reader = ByteReader::new(&corrupt);
                let mut outcome = Ok(());
                loop {
                    match SpillRecord::decode(&mut reader) {
                        Ok(Some(_)) => continue,
                        Ok(None) => break,
                        Err(e) => {
                            outcome = Err(e);
                            break;
                        }
                    }
                }
                assert!(outcome.is_err(), "byte {byte} bit {bit} decoded cleanly");
            }
        }
    }

    #[test]
    fn checksum_mismatch_reports_record_offset() {
        let mut buf = Vec::new();
        SpillRecord::Plain(vec![1]).encode(&mut buf);
        let second_start = buf.len();
        SpillRecord::Plain(vec![2, 3]).encode(&mut buf);
        // Flip a payload bit inside the second record's item data.
        buf[second_start + 5] ^= 0x10;
        let mut reader = ByteReader::new(&buf);
        assert!(SpillRecord::decode(&mut reader).unwrap().is_some());
        match SpillRecord::decode(&mut reader) {
            Err(DecodeError::BadChecksum { offset, stored, computed }) => {
                assert_eq!(offset, second_start);
                assert_ne!(stored, computed);
            }
            other => panic!("expected BadChecksum, got {other:?}"),
        }
    }

    #[test]
    fn decode_errors_render_offsets() {
        let msg = DecodeError::BadTag { offset: 9, tag: 7 }.to_string();
        assert!(msg.contains("tag 7") && msg.contains("byte 9"), "{msg}");
        let msg = DecodeError::Truncated { offset: 3, needed: 4 }.to_string();
        assert!(msg.contains("byte 3"), "{msg}");
        let msg = DecodeError::BadChecksum { offset: 4, stored: 1, computed: 2 }.to_string();
        assert!(msg.contains("byte 4") && msg.contains("checksum"), "{msg}");
    }

    #[test]
    fn memory_estimate_grows_with_content() {
        let small = SpillRecord::Plain(vec![1]);
        let big =
            SpillRecord::Group { pattern: vec![1, 2, 3], bare: 0, outliers: csr(&[&[4, 5], &[6]]) };
        assert!(big.estimated_memory() > small.estimated_memory());
    }
}
