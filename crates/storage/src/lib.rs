#![warn(missing_docs)]

//! Disk spill and memory-limited mining (paper §3.3 and §5.3).
//!
//! When the mining structure for a (projected) database would exceed the
//! memory budget, Algorithm *Recycling* (paper Figure 3) projects the
//! database onto its frequent items **on disk** and mines each partition
//! independently. The paper adopts *parallel projection*: one scan writes
//! every tuple into all of its first-level projected databases, trading
//! disk space for speed (§3.3).
//!
//! * [`codec`] — compact binary encoding of spilled records (plain
//!   tuples and compressed groups).
//! * [`spill`] — partition files under a private temp directory, with
//!   in-memory size accounting so the drivers can decide load-vs-respill
//!   *before* touching a partition.
//! * [`budget`] — the memory budget (the paper enforces 4 MiB / 8 MiB).
//! * [`limited`] — memory-limited drivers for the H-Mine pair
//!   (the paper's §5.3 compares exactly H-Mine vs HM-MCP because
//!   H-Mine-style structures are the ones whose memory is reliably
//!   estimable).
//! * [`crc`] — the CRC-32 every on-disk record and file carries.
//! * [`segment`] — immutable on-disk CSR segments with item-support
//!   sidecars: the out-of-core database substrate.
//! * [`version`] — delta-encoded persistence of compressed-database
//!   versions across incremental rounds.
//! * [`ooc`] — out-of-core mining drivers: raw engines and the
//!   segmented incremental miner over the two layers above.

pub mod budget;
pub mod codec;
pub mod crc;
pub mod limited;
pub mod ooc;
pub mod segment;
pub mod spill;
pub mod version;

pub use budget::MemoryBudget;
pub use codec::SpillRecord;
pub use limited::{LimitedHMine, LimitedRecycleHm, LimitedReport};
pub use ooc::{OocEngine, OocMiner, SegmentedIncrementalMiner};
pub use segment::{compact, CompactReport, SegmentWriter, SegmentedDb};
pub use spill::SpillManager;
pub use version::VersionStore;
