//! Memory-limited mining drivers (paper Figure 3 + §5.3).
//!
//! Both drivers implement Algorithm *Recycling*'s outer loop: estimate
//! the in-memory structure (`EM(D)`), mine in memory when it fits the
//! budget, otherwise *parallel-project* the database onto its frequent
//! items on disk and recurse per partition. The paper's §5.3 compares
//! H-Mine against HM-MCP under 4 MiB and 8 MiB budgets; these drivers
//! are that pair:
//!
//! * [`LimitedHMine`] — plain databases, H-Mine in memory.
//! * [`LimitedRecycleHm`] — compressed databases, Recycle-HM in memory.
//!   Spilled partitions keep their group structure (one group record per
//!   partition), so the recycling savings survive the disk round-trip.

use crate::budget::MemoryBudget;
use crate::codec::SpillRecord;
use crate::spill::SpillManager;
use gogreen_core::cdb::{CompressedDb, CompressedRankDb};
use gogreen_core::memory::{estimate_hmine_bytes, estimate_rp_struct_bytes};
use gogreen_core::recycle_hm::RecycleHm;
use gogreen_data::{
    CollectSink, CsrTuples, FList, Item, MinSupport, PatternSet, PatternSink, TransactionDb,
};
use gogreen_miners::HMine;
use gogreen_obs::metrics;
use gogreen_util::FxHashMap;

/// I/O metrics of one memory-limited run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LimitedReport {
    /// Times a (sub-)database was projected to disk instead of mined in
    /// memory.
    pub spills: usize,
    /// Partitions mined after loading from disk.
    pub loads: usize,
    /// Total bytes written by parallel projection.
    pub disk_bytes: u64,
    /// Deepest spill nesting reached (0 = everything fit in memory).
    pub max_depth: usize,
}

/// Memory-limited plain H-Mine.
#[derive(Debug, Clone, Copy)]
pub struct LimitedHMine {
    budget: MemoryBudget,
}

impl LimitedHMine {
    /// A driver with the given budget.
    pub fn new(budget: MemoryBudget) -> Self {
        LimitedHMine { budget }
    }

    /// Mines `db`, spilling as the budget demands.
    pub fn mine_into(
        &self,
        db: &TransactionDb,
        min_support: MinSupport,
        sink: &mut dyn PatternSink,
    ) -> std::io::Result<LimitedReport> {
        let minsup = min_support.to_absolute(db.len());
        let flist = FList::from_db(db, minsup);
        let mut report = LimitedReport::default();
        if flist.is_empty() {
            return Ok(report);
        }
        let mut tuples: CsrTuples<u32> = CsrTuples::with_capacity(db.len(), 0);
        for t in db.iter() {
            let enc = flist.encode(t);
            if !enc.is_empty() {
                tuples.push_row(&enc);
            }
        }
        let occurrences = tuples.total_elems();
        let est = estimate_hmine_bytes(occurrences, tuples.len());
        metrics::set_max("storage.budget_high_water", est as u64);
        if self.budget.fits(est) {
            HMine.mine_encoded(tuples.as_slices(), &flist, &[], minsup, sink);
            return Ok(report);
        }
        // Parallel projection of the root (paper §3.3).
        report.spills += 1;
        report.max_depth = 1;
        let mut mgr = SpillManager::new(flist.len())?;
        for t in tuples.iter() {
            for (i, &r) in t.iter().enumerate() {
                if i + 1 < t.len() {
                    mgr.append(r, &SpillRecord::Plain(t[i + 1..].to_vec()))?;
                }
            }
        }
        mgr.finish()?;
        report.disk_bytes += mgr.total_bytes();
        let mut prefix = Vec::with_capacity(8);
        for r in 0..flist.len() as u32 {
            sink.emit(&[flist.item(r)], flist.support(r));
            prefix.push(flist.item(r));
            self.mine_partition(&mgr, r, &mut prefix, &flist, minsup, sink, &mut report, 1)?;
            prefix.pop();
        }
        Ok(report)
    }

    /// Collects into a [`PatternSet`] alongside the report.
    pub fn mine(
        &self,
        db: &TransactionDb,
        min_support: MinSupport,
    ) -> std::io::Result<(PatternSet, LimitedReport)> {
        let mut sink = CollectSink::new();
        let report = self.mine_into(db, min_support, &mut sink)?;
        Ok((sink.into_set(), report))
    }

    #[allow(clippy::too_many_arguments)]
    fn mine_partition(
        &self,
        mgr: &SpillManager,
        r: u32,
        prefix: &mut Vec<Item>,
        flist: &FList,
        minsup: u64,
        sink: &mut dyn PatternSink,
        report: &mut LimitedReport,
        depth: usize,
    ) -> std::io::Result<()> {
        if mgr.partition_records(r) == 0 {
            return Ok(());
        }
        metrics::set_max("storage.budget_high_water", mgr.estimated_memory(r) as u64);
        if self.budget.fits(mgr.estimated_memory(r)) {
            let mut tuples: CsrTuples<u32> =
                CsrTuples::with_capacity(mgr.partition_records(r) as usize, 0);
            mgr.for_each_record(r, |rec| {
                if let SpillRecord::Plain(v) = rec {
                    tuples.push_row(&v);
                }
            })?;
            report.loads += 1;
            HMine.mine_encoded(tuples.as_slices(), flist, prefix, minsup, sink);
            return Ok(());
        }
        // Too big: respill one level deeper.
        report.spills += 1;
        report.max_depth = report.max_depth.max(depth + 1);
        let mut counts = vec![0u64; flist.len()];
        mgr.for_each_record(r, |rec| {
            if let SpillRecord::Plain(v) = rec {
                for &x in &v {
                    counts[x as usize] += 1;
                }
            }
        })?;
        let frequent: Vec<(u32, u64)> = counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c >= minsup)
            .map(|(x, &c)| (x as u32, c))
            .collect();
        if frequent.is_empty() {
            return Ok(());
        }
        let keep: Vec<bool> = counts.iter().map(|&c| c >= minsup).collect();
        let mut sub = SpillManager::new(flist.len())?;
        let mut filtered: Vec<u32> = Vec::new();
        let mut io_err: Option<std::io::Error> = None;
        mgr.for_each_record(r, |rec| {
            if io_err.is_some() {
                return;
            }
            if let SpillRecord::Plain(v) = rec {
                filtered.clear();
                filtered.extend(v.iter().filter(|&&x| keep[x as usize]));
                for i in 0..filtered.len().saturating_sub(1) {
                    let x = filtered[i];
                    if let Err(e) = sub.append(x, &SpillRecord::Plain(filtered[i + 1..].to_vec())) {
                        io_err = Some(e);
                        return;
                    }
                }
            }
        })?;
        if let Some(e) = io_err {
            return Err(e);
        }
        sub.finish()?;
        report.disk_bytes += sub.total_bytes();
        for (x, c) in frequent {
            prefix.push(flist.item(x));
            sink.emit(prefix, c);
            self.mine_partition(&sub, x, prefix, flist, minsup, sink, report, depth + 1)?;
            prefix.pop();
        }
        Ok(())
    }
}

/// Memory-limited Recycle-HM over a compressed database.
#[derive(Debug, Clone, Copy)]
pub struct LimitedRecycleHm {
    budget: MemoryBudget,
}

impl LimitedRecycleHm {
    /// A driver with the given budget.
    pub fn new(budget: MemoryBudget) -> Self {
        LimitedRecycleHm { budget }
    }

    /// Mines `cdb`, spilling as the budget demands.
    pub fn mine_into(
        &self,
        cdb: &CompressedDb,
        min_support: MinSupport,
        sink: &mut dyn PatternSink,
    ) -> std::io::Result<LimitedReport> {
        let minsup = min_support.to_absolute(cdb.num_tuples());
        let flist = cdb.flist(minsup);
        let mut report = LimitedReport::default();
        if flist.is_empty() {
            return Ok(report);
        }
        let rdb = cdb.to_ranks(&flist);
        let est = estimate_rp_struct_bytes(&rdb);
        metrics::set_max("storage.budget_high_water", est as u64);
        if self.budget.fits(est) {
            RecycleHm.mine_rank_db(&rdb, &flist, &[], minsup, sink);
            return Ok(report);
        }
        report.spills += 1;
        report.max_depth = 1;
        let mut mgr = SpillManager::new(flist.len())?;
        for g in 0..rdb.num_groups() {
            let mut outliers = CsrTuples::new();
            for o in rdb.group_outliers(g) {
                outliers.push_row(o);
            }
            let rec = SpillRecord::Group {
                pattern: rdb.group_pattern(g).to_vec(),
                bare: rdb.group_bare(g),
                outliers,
            };
            project_record(&rec, None, &mut mgr)?;
        }
        for t in rdb.plain() {
            project_record(&SpillRecord::Plain(t.to_vec()), None, &mut mgr)?;
        }
        mgr.finish()?;
        report.disk_bytes += mgr.total_bytes();
        let mut prefix = Vec::with_capacity(8);
        for r in 0..flist.len() as u32 {
            sink.emit(&[flist.item(r)], flist.support(r));
            prefix.push(flist.item(r));
            self.mine_partition(&mgr, r, &mut prefix, &flist, minsup, sink, &mut report, 1)?;
            prefix.pop();
        }
        Ok(report)
    }

    /// Collects into a [`PatternSet`] alongside the report.
    pub fn mine(
        &self,
        cdb: &CompressedDb,
        min_support: MinSupport,
    ) -> std::io::Result<(PatternSet, LimitedReport)> {
        let mut sink = CollectSink::new();
        let report = self.mine_into(cdb, min_support, &mut sink)?;
        Ok((sink.into_set(), report))
    }

    #[allow(clippy::too_many_arguments)]
    fn mine_partition(
        &self,
        mgr: &SpillManager,
        r: u32,
        prefix: &mut Vec<Item>,
        flist: &FList,
        minsup: u64,
        sink: &mut dyn PatternSink,
        report: &mut LimitedReport,
        depth: usize,
    ) -> std::io::Result<()> {
        if mgr.partition_records(r) == 0 {
            return Ok(());
        }
        metrics::set_max("storage.budget_high_water", mgr.estimated_memory(r) as u64);
        if self.budget.fits(mgr.estimated_memory(r)) {
            let mut rdb = CompressedRankDb::empty(flist.len());
            mgr.for_each_record(r, |rec| match rec {
                SpillRecord::Plain(v) => rdb.push_plain(&v),
                SpillRecord::Group { pattern, bare, outliers } => {
                    rdb.push_group(&pattern, outliers.iter(), bare)
                }
            })?;
            report.loads += 1;
            RecycleHm.mine_rank_db(&rdb, flist, prefix, minsup, sink);
            return Ok(());
        }
        report.spills += 1;
        report.max_depth = report.max_depth.max(depth + 1);
        // Streaming support count of the partition.
        let mut counts = vec![0u64; flist.len()];
        mgr.for_each_record(r, |rec| match rec {
            SpillRecord::Plain(v) => {
                for &x in &v {
                    counts[x as usize] += 1;
                }
            }
            SpillRecord::Group { pattern, bare, outliers } => {
                let c = bare + outliers.len() as u64;
                for &x in &pattern {
                    counts[x as usize] += c;
                }
                for &x in outliers.flat() {
                    counts[x as usize] += 1;
                }
            }
        })?;
        let frequent: Vec<(u32, u64)> = counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c >= minsup)
            .map(|(x, &c)| (x as u32, c))
            .collect();
        if frequent.is_empty() {
            return Ok(());
        }
        let keep: Vec<bool> = counts.iter().map(|&c| c >= minsup).collect();
        let mut sub = SpillManager::new(flist.len())?;
        let mut io_err: Option<std::io::Error> = None;
        mgr.for_each_record(r, |rec| {
            if io_err.is_none() {
                if let Err(e) = project_record(&rec, Some(&keep), &mut sub) {
                    io_err = Some(e);
                }
            }
        })?;
        if let Some(e) = io_err {
            return Err(e);
        }
        sub.finish()?;
        report.disk_bytes += sub.total_bytes();
        for (x, c) in frequent {
            prefix.push(flist.item(x));
            sink.emit(prefix, c);
            self.mine_partition(&sub, x, prefix, flist, minsup, sink, report, depth + 1)?;
            prefix.pop();
        }
        Ok(())
    }
}

/// Parallel projection of one record: writes the record's projection
/// onto *every* rank it contains into `mgr`, optionally filtering items
/// through `keep` (locally frequent ranks) first.
fn project_record(
    rec: &SpillRecord,
    keep: Option<&[bool]>,
    mgr: &mut SpillManager,
) -> std::io::Result<()> {
    let keeps = |x: u32| keep.is_none_or(|k| k[x as usize]);
    match rec {
        SpillRecord::Plain(v) => {
            let filtered: Vec<u32> = v.iter().copied().filter(|&x| keeps(x)).collect();
            for i in 0..filtered.len().saturating_sub(1) {
                mgr.append(filtered[i], &SpillRecord::Plain(filtered[i + 1..].to_vec()))?;
            }
        }
        SpillRecord::Group { pattern, bare, outliers } => {
            let pattern_f: Vec<u32> = pattern.iter().copied().filter(|&x| keeps(x)).collect();
            // Filter each member's outliers into one CSR slab; members
            // whose lists empty out fold straight into the bare count
            // (every surviving row is non-empty by construction).
            let mut outliers_f: CsrTuples<u32> = CsrTuples::new();
            let mut base_bare = *bare;
            for o in outliers.iter() {
                for &x in o {
                    if keeps(x) {
                        outliers_f.push_elem(x);
                    }
                }
                if outliers_f.open_len() > 0 {
                    outliers_f.commit_row();
                } else {
                    base_bare += 1;
                }
            }
            // Projections on pattern items: the whole group follows.
            for (k, &p) in pattern_f.iter().enumerate() {
                let residual = pattern_f[k + 1..].to_vec();
                if residual.is_empty() {
                    for o in outliers_f.iter() {
                        let cut = o.partition_point(|&x| x <= p);
                        if cut < o.len() {
                            mgr.append(p, &SpillRecord::Plain(o[cut..].to_vec()))?;
                        }
                    }
                } else {
                    let mut g_bare = base_bare;
                    let mut g_outliers: CsrTuples<u32> = CsrTuples::new();
                    for o in outliers_f.iter() {
                        let cut = o.partition_point(|&x| x <= p);
                        if cut < o.len() {
                            g_outliers.push_row(&o[cut..]);
                        } else {
                            g_bare += 1;
                        }
                    }
                    mgr.append(
                        p,
                        &SpillRecord::Group {
                            pattern: residual,
                            bare: g_bare,
                            outliers: g_outliers,
                        },
                    )?;
                }
            }
            // Projections on outlier items: only the members holding the
            // item follow, carrying the residual pattern. Members of the
            // same group are aggregated into ONE record per partition so
            // the pattern is written once per (partition, group) — not
            // once per member occurrence, which would balloon the spill.
            let mut by_rank: FxHashMap<u32, (u64, CsrTuples<u32>)> = FxHashMap::default();
            for o in outliers_f.iter() {
                for (j, &x) in o.iter().enumerate() {
                    let slot = by_rank.entry(x).or_default();
                    let rest = &o[j + 1..];
                    if rest.is_empty() {
                        slot.0 += 1;
                    } else {
                        slot.1.push_row(rest);
                    }
                }
            }
            let mut ranks: Vec<u32> = by_rank.keys().copied().collect();
            ranks.sort_unstable();
            for x in ranks {
                let (bare, members) = by_rank.remove(&x).expect("collected above");
                let cut = pattern_f.partition_point(|&p| p <= x);
                let residual = pattern_f[cut..].to_vec();
                if residual.is_empty() {
                    for rest in members.iter() {
                        mgr.append(x, &SpillRecord::Plain(rest.to_vec()))?;
                    }
                } else {
                    mgr.append(
                        x,
                        &SpillRecord::Group { pattern: residual, bare, outliers: members },
                    )?;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gogreen_core::compress::Compressor;
    use gogreen_core::utility::Strategy;
    use gogreen_miners::mine_apriori;

    fn budgets() -> Vec<MemoryBudget> {
        vec![
            MemoryBudget::unlimited(),
            MemoryBudget::bytes(400), // forces one spill level
            MemoryBudget::bytes(120), // forces nested spills
        ]
    }

    #[test]
    fn limited_hmine_exact_under_any_budget() {
        let db = TransactionDb::paper_example();
        for budget in budgets() {
            for minsup in 1..=4 {
                let (got, report) =
                    LimitedHMine::new(budget).mine(&db, MinSupport::Absolute(minsup)).unwrap();
                let want = mine_apriori(&db, MinSupport::Absolute(minsup));
                assert!(
                    got.same_patterns_as(&want),
                    "budget {budget:?} minsup {minsup}: {} vs {} ({report:?})",
                    got.len(),
                    want.len()
                );
            }
        }
    }

    #[test]
    fn limited_recycle_hm_exact_under_any_budget() {
        let db = TransactionDb::paper_example();
        let fp_old = mine_apriori(&db, MinSupport::Absolute(3));
        let cdb = Compressor::new(Strategy::Mcp).compress(&db, &fp_old);
        for budget in budgets() {
            for minsup in 1..=4 {
                let (got, report) =
                    LimitedRecycleHm::new(budget).mine(&cdb, MinSupport::Absolute(minsup)).unwrap();
                let want = mine_apriori(&db, MinSupport::Absolute(minsup));
                assert!(
                    got.same_patterns_as(&want),
                    "budget {budget:?} minsup {minsup}: {} vs {} ({report:?})",
                    got.len(),
                    want.len()
                );
            }
        }
    }

    #[test]
    fn unlimited_budget_never_spills() {
        let db = TransactionDb::paper_example();
        let (_, report) = LimitedHMine::new(MemoryBudget::unlimited())
            .mine(&db, MinSupport::Absolute(2))
            .unwrap();
        assert_eq!(report, LimitedReport::default());
    }

    #[test]
    fn tight_budget_reports_spills_and_disk_traffic() {
        let db = TransactionDb::paper_example();
        let (_, report) =
            LimitedHMine::new(MemoryBudget::bytes(64)).mine(&db, MinSupport::Absolute(2)).unwrap();
        assert!(report.spills >= 1);
        assert!(report.disk_bytes > 0);
        assert!(report.max_depth >= 1);
    }

    #[test]
    fn spilled_groups_preserve_structure() {
        // A compressed DB whose spill produces group records; nested
        // budget forces the group-projection code paths.
        let db = TransactionDb::from_rows(&[
            &[1, 2, 3, 4],
            &[1, 2, 3, 5],
            &[1, 2, 3],
            &[1, 2, 3, 4, 5],
            &[4, 5],
            &[2, 4, 5],
        ]);
        let fp_old = mine_apriori(&db, MinSupport::Absolute(3));
        let cdb = Compressor::new(Strategy::Mcp).compress(&db, &fp_old);
        assert!(!cdb.groups().is_empty());
        for budget in [MemoryBudget::bytes(300), MemoryBudget::bytes(100)] {
            for minsup in 1..=3 {
                let (got, _) =
                    LimitedRecycleHm::new(budget).mine(&cdb, MinSupport::Absolute(minsup)).unwrap();
                let want = mine_apriori(&db, MinSupport::Absolute(minsup));
                assert!(got.same_patterns_as(&want), "budget {budget:?} minsup {minsup}");
            }
        }
    }

    #[test]
    fn empty_database() {
        let db = TransactionDb::new();
        let (got, _) =
            LimitedHMine::new(MemoryBudget::bytes(10)).mine(&db, MinSupport::Absolute(1)).unwrap();
        assert!(got.is_empty());
    }
}
