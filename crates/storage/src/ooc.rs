//! Out-of-core mining drivers over the segmented store.
//!
//! [`OocMiner`] runs the raw (non-recycling) engine family over a
//! [`SegmentedDb`] without ever holding the raw database in memory: the
//! F-list comes from the summed per-segment sidecars, and the one full
//! pass per segment rank-encodes each segment's rows — loaded one at a
//! time under the resident budget — into the frequent projection the
//! engines mine. The emitted pattern stream is **byte-identical** to
//! the in-memory miner at any thread count, because every stage
//! reproduces the in-memory pipeline exactly: `minsup` from the same
//! total row count, the F-list from identical global counts, and the
//! per-segment `encode_push` appends in segment order — which *is* the
//! whole-database encode pass, just chunked.
//!
//! What stays resident is the frequent-rank projection (the paper's
//! H-Mine memory model — §3's hyper-structure holds the frequent
//! projection by design) plus at most one raw segment; the raw database
//! itself never is.
//!
//! [`SegmentedIncrementalMiner`] is the out-of-core counterpart of
//! [`gogreen_core::incremental::IncrementalMiner`]: updates append
//! through a [`SegmentWriter`], each round compresses the store
//! segment-at-a-time with the previous round's patterns
//! ([`gogreen_core::Compressor::stream`]) and mines the compressed
//! database with the recycling H-Mine, and every round's compressed
//! database persists into a [`VersionStore`] as a delta against its
//! predecessor. Round for round it returns exactly what the in-memory
//! incremental miner returns on the same update sequence.

use crate::budget::MemoryBudget;
use crate::segment::{SegmentWriter, SegmentedDb};
use crate::version::VersionStore;
use gogreen_core::cdb::CompressedDb;
use gogreen_core::recycle_hm::RecycleHm;
use gogreen_core::store::PatternStore;
use gogreen_core::{CompressionStats, Compressor, RecyclingMiner, Strategy};
use gogreen_data::{
    CollectSink, CsrTuples, FList, MinSupport, PatternSet, PatternSink, PlainRanks,
};
use gogreen_miners::engine::vt::VtRepr;
use gogreen_miners::engine::{fp, hm, tp, vt};
use gogreen_util::pool::Parallelism;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Which unified mining engine an [`OocMiner`] run drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OocEngine {
    /// H-Mine hyper-structure traversal (the default).
    #[default]
    HMine,
    /// FP-Growth conditional trees.
    FpGrowth,
    /// Tree Projection lexicographic matrices.
    TreeProjection,
    /// Vertical Eclat with density-adaptive representations.
    Eclat(VtRepr),
}

impl OocEngine {
    /// Parses a CLI engine key, accepting the same spellings as the
    /// in-memory `--algo` registry (`hmine`/`hm`, `fp`, `tp`,
    /// `vt`/`eclat`).
    pub fn from_key(key: &str) -> Option<Self> {
        match key {
            "hmine" | "hm" => Some(OocEngine::HMine),
            "fp" => Some(OocEngine::FpGrowth),
            "tp" => Some(OocEngine::TreeProjection),
            "vt" | "eclat" => Some(OocEngine::Eclat(VtRepr::Auto)),
            _ => None,
        }
    }
}

/// Raw out-of-core mining over a segmented store.
#[derive(Debug)]
pub struct OocMiner<'a> {
    db: &'a SegmentedDb,
    engine: OocEngine,
    parallelism: Parallelism,
}

impl<'a> OocMiner<'a> {
    /// A miner over `db` using H-Mine, single-threaded.
    pub fn new(db: &'a SegmentedDb) -> Self {
        OocMiner { db, engine: OocEngine::default(), parallelism: Parallelism::serial() }
    }

    /// Selects the engine.
    pub fn with_engine(mut self, engine: OocEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the worker-thread budget. The emitted stream is identical
    /// for every setting.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Mines the store at `min_support` into `sink`.
    pub fn mine_into(&self, min_support: MinSupport, sink: &mut dyn PatternSink) -> io::Result<()> {
        let minsup = min_support.to_absolute(self.db.total_rows());
        let flist = FList::from_counts(&self.db.item_supports()?, minsup);
        if flist.is_empty() {
            return Ok(());
        }
        // The whole-database encode pass, one segment resident at a
        // time. Appending per-segment encodes in segment order yields
        // the exact rank CSR the in-memory encode of the concatenated
        // database would build.
        let mut tuples: CsrTuples<u32> = CsrTuples::new();
        self.db.for_each_segment(|_, seg| {
            for t in seg.iter() {
                if flist.encode_push(t, &mut tuples) == 0 {
                    tuples.discard_row();
                } else {
                    tuples.commit_row();
                }
            }
            Ok(())
        })?;
        let src = PlainRanks::new(tuples.as_slices(), flist.len());
        let par = self.parallelism;
        match self.engine {
            OocEngine::HMine => hm::mine_source_par(&src, &flist, &[], minsup, par, sink),
            OocEngine::FpGrowth => fp::mine_source_par(&src, &flist, minsup, par, sink),
            OocEngine::TreeProjection => tp::mine_source_par(&src, &flist, minsup, par, sink),
            OocEngine::Eclat(repr) => {
                vt::mine_source_par_repr(&src, &flist, minsup, par, repr, sink)
            }
        }
        Ok(())
    }

    /// [`OocMiner::mine_into`] collected into a [`PatternSet`].
    pub fn mine(&self, min_support: MinSupport) -> io::Result<PatternSet> {
        let mut sink = CollectSink::new();
        self.mine_into(min_support, &mut sink)?;
        Ok(sink.into_set())
    }

    /// Compresses the store with recycled `patterns` segment by
    /// segment, never holding more than one raw segment plus the
    /// (compressed) output resident. The result is identical to
    /// [`gogreen_core::Compressor::compress_with_stats`] over the
    /// materialized database.
    pub fn compress(
        &self,
        patterns: &PatternSet,
        strategy: Strategy,
    ) -> io::Result<(CompressedDb, CompressionStats)> {
        let supports = self.db.item_supports()?;
        let compressor = Compressor::new(strategy).with_parallelism(self.parallelism);
        let mut stream = compressor.stream(patterns.as_slice(), supports, self.db.total_rows());
        self.db.for_each_segment(|_, seg| {
            stream.feed(seg.csr().as_slices());
            Ok(())
        })?;
        Ok(stream.finish())
    }
}

/// Out-of-core incremental mining with versioned compressed databases.
///
/// The round-for-round behavior mirrors
/// [`gogreen_core::incremental::IncrementalMiner::mine`] exactly: the
/// first round (or any round with an empty recycled set) mines the
/// trivial all-plain compression; later rounds compress with the
/// previous round's patterns first. Each round's compressed database is
/// pushed into the version chain under `<dir>/versions`, so reopening
/// the miner later finds both the data (segments) and the newest
/// compressed form (versions) on disk.
#[derive(Debug)]
pub struct SegmentedIncrementalMiner {
    dir: PathBuf,
    segment_bytes: usize,
    budget: MemoryBudget,
    strategy: Strategy,
    parallelism: Parallelism,
    versions: VersionStore,
    recycled: Option<PatternSet>,
    store: Option<(Arc<PatternStore>, String)>,
}

impl SegmentedIncrementalMiner {
    /// Opens (or creates) the segmented database under `dir`, sealing
    /// appended rows into segments of at most `segment_bytes` payload.
    pub fn create(dir: impl AsRef<Path>, segment_bytes: usize) -> io::Result<Self> {
        let dir = dir.as_ref().to_owned();
        std::fs::create_dir_all(&dir)?;
        let versions = VersionStore::open(dir.join("versions"))?;
        Ok(SegmentedIncrementalMiner {
            dir,
            segment_bytes,
            budget: MemoryBudget::unlimited(),
            strategy: Strategy::Mcp,
            parallelism: Parallelism::serial(),
            versions,
            recycled: None,
            store: None,
        })
    }

    /// Selects the compression strategy.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the worker-thread budget for the cover and mining passes.
    /// The result is identical for every setting.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Caps the raw-segment resident budget enforced on every load.
    pub fn with_budget(mut self, budget: MemoryBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Publishes every round's pattern set into `store` under
    /// `dataset`, and seeds the first round's recycled set from the
    /// store's best prior entry when this miner has none of its own —
    /// the paper's multi-user recycling, out of core.
    pub fn with_store(mut self, store: Arc<PatternStore>, dataset: impl Into<String>) -> Self {
        self.store = Some((store, dataset.into()));
        self
    }

    /// Appends tuples (item ids, each row sorted ascending) to the
    /// store, sealing full segments as they fill.
    pub fn insert<R: AsRef<[u32]>>(&mut self, rows: impl IntoIterator<Item = R>) -> io::Result<()> {
        let mut writer = SegmentWriter::create(&self.dir, self.segment_bytes)?;
        for row in rows {
            writer.push_row(row.as_ref())?;
        }
        writer.finish()?;
        Ok(())
    }

    /// Read view of the current segments under the configured budget.
    pub fn db(&self) -> io::Result<SegmentedDb> {
        Ok(SegmentedDb::open(&self.dir)?.with_budget(self.budget))
    }

    /// Number of persisted compressed-database versions.
    pub fn version_count(&self) -> usize {
        self.versions.version_count()
    }

    /// The latest persisted compressed database, if any round ran.
    pub fn current_version(&self) -> Option<&CompressedDb> {
        self.versions.current()
    }

    /// Mines the current store at `min_support`, recycling the previous
    /// round's patterns, and persists the round's compressed database
    /// as a new version. Returns exactly what
    /// [`gogreen_core::incremental::IncrementalMiner::mine`] returns on
    /// the same database and update sequence.
    pub fn mine(&mut self, min_support: MinSupport) -> io::Result<PatternSet> {
        let db = self.db()?;
        if self.recycled.is_none() {
            if let Some((store, dataset)) = &self.store {
                if let Some((_, seeded)) = store.best_for(dataset) {
                    self.recycled = Some((*seeded).clone());
                }
            }
        }
        let cdb = match &self.recycled {
            Some(old) if !old.is_empty() => {
                OocMiner::new(&db)
                    .with_parallelism(self.parallelism)
                    .compress(old, self.strategy)?
                    .0
            }
            _ => {
                // Nothing to recycle: the trivial all-plain compression,
                // streamed out of the segments. Content-equal to
                // `CompressedDb::uncompressed` of the materialized
                // database.
                let mut plain: CsrTuples<gogreen_data::Item> =
                    CsrTuples::with_capacity(db.total_rows(), db.total_elems());
                db.for_each_segment(|_, seg| {
                    for t in seg.iter() {
                        plain.push_row(t);
                    }
                    Ok(())
                })?;
                let original_items = plain.total_elems();
                CompressedDb::new(Vec::new(), plain, original_items)
            }
        };
        let result = RecycleHm.mine_par(&cdb, min_support, self.parallelism);
        self.versions.push(&cdb)?;
        if let Some((store, dataset)) = &self.store {
            store.publish(dataset, min_support.to_absolute(db.total_rows()), result.clone());
        }
        self.recycled = Some(result.clone());
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gogreen_data::TransactionDb;
    use gogreen_miners::mine_hmine;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gogreen-ooc-{tag}-{}", std::process::id()));
        if dir.exists() {
            std::fs::remove_dir_all(&dir).unwrap();
        }
        dir
    }

    fn synthetic_rows(n: u32) -> Vec<Vec<u32>> {
        // Overlapping cliques so recycling has something to chew on.
        (0..n).map(|k| vec![k % 4, 4 + k % 6, 10 + k % 3, 20 + k % 17]).collect()
    }

    fn fill(dir: &Path, rows: &[Vec<u32>], segment_bytes: usize) {
        let mut w = SegmentWriter::create(dir, segment_bytes).unwrap();
        for r in rows {
            w.push_row(r).unwrap();
        }
        w.finish().unwrap();
    }

    #[test]
    fn every_engine_matches_in_memory_mining() {
        let dir = temp_dir("engines");
        let rows = synthetic_rows(300);
        fill(&dir, &rows, 256); // many segments
        let refs: Vec<&[u32]> = rows.iter().map(|r| r.as_slice()).collect();
        let expected = mine_hmine(&TransactionDb::from_rows(&refs), MinSupport::Absolute(20));
        let db = SegmentedDb::open(&dir).unwrap();
        assert!(db.num_segments() > 4);
        for engine in [
            OocEngine::HMine,
            OocEngine::FpGrowth,
            OocEngine::TreeProjection,
            OocEngine::Eclat(VtRepr::Auto),
        ] {
            for threads in [1, 4] {
                let got = OocMiner::new(&db)
                    .with_engine(engine)
                    .with_parallelism(Parallelism::threads(threads))
                    .mine(MinSupport::Absolute(20))
                    .unwrap();
                assert!(
                    got.same_patterns_as(&expected),
                    "{engine:?} threads={threads} diverged from in-memory mining"
                );
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mining_respects_a_tight_resident_budget() {
        let dir = temp_dir("budget");
        let rows = synthetic_rows(400);
        fill(&dir, &rows, 512);
        let db = SegmentedDb::open(&dir).unwrap();
        let total = db.total_payload_bytes() as usize;
        // A budget a quarter of the database still fits every segment.
        let budget = MemoryBudget::bytes(total / 4);
        assert!(db.max_segment_bytes() <= total / 4);
        let db = db.with_budget(budget);
        let got = OocMiner::new(&db).mine(MinSupport::Absolute(30)).unwrap();
        let refs: Vec<&[u32]> = rows.iter().map(|r| r.as_slice()).collect();
        let expected = mine_hmine(&TransactionDb::from_rows(&refs), MinSupport::Absolute(30));
        assert!(got.same_patterns_as(&expected));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segmented_compression_matches_whole_database_compression() {
        let dir = temp_dir("compress");
        let rows = synthetic_rows(250);
        fill(&dir, &rows, 300);
        let refs: Vec<&[u32]> = rows.iter().map(|r| r.as_slice()).collect();
        let mem_db = TransactionDb::from_rows(&refs);
        let fp = mine_hmine(&mem_db, MinSupport::Absolute(25));
        let db = SegmentedDb::open(&dir).unwrap();
        for strategy in [Strategy::Mcp, Strategy::Mlp] {
            let expected = Compressor::new(strategy).compress(&mem_db, &fp);
            let (got, _) = OocMiner::new(&db).compress(&fp, strategy).unwrap();
            assert_eq!(got, expected, "{strategy:?}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn incremental_rounds_persist_versions_and_reopen() {
        let dir = temp_dir("inc");
        let mut inc = SegmentedIncrementalMiner::create(&dir, 512).unwrap();
        inc.insert(synthetic_rows(120)).unwrap();
        let r1 = inc.mine(MinSupport::Absolute(12)).unwrap();
        assert!(!r1.is_empty());
        assert_eq!(inc.version_count(), 1);
        inc.insert(synthetic_rows(60)).unwrap();
        let r2 = inc.mine(MinSupport::Absolute(12)).unwrap();
        assert_eq!(inc.version_count(), 2);
        // The persisted version chain replays to the round's CDB.
        let reopened = SegmentedIncrementalMiner::create(&dir, 512).unwrap();
        assert_eq!(reopened.version_count(), 2);
        assert_eq!(reopened.current_version(), inc.current_version());
        // And mining is exact: the recycled round equals a from-scratch run.
        let db = inc.db().unwrap();
        let flat = db.to_transaction_db().unwrap();
        let expected = mine_hmine(&flat, MinSupport::Absolute(12));
        assert!(r2.same_patterns_as(&expected));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pattern_store_seeds_and_receives_rounds() {
        let dir_a = temp_dir("store-a");
        let dir_b = temp_dir("store-b");
        let store = Arc::new(PatternStore::new());
        let rows = synthetic_rows(100);
        let mut first = SegmentedIncrementalMiner::create(&dir_a, 1 << 20)
            .unwrap()
            .with_store(Arc::clone(&store), "synth");
        first.insert(rows.clone()).unwrap();
        first.mine(MinSupport::Absolute(10)).unwrap();
        assert_eq!(store.thresholds("synth"), vec![10]);
        // A second session over the same data seeds its first round from
        // the store (so it compresses instead of mining all-plain) and
        // still gets the exact answer.
        let mut second = SegmentedIncrementalMiner::create(&dir_b, 1 << 20)
            .unwrap()
            .with_store(Arc::clone(&store), "synth");
        second.insert(rows.clone()).unwrap();
        let r = second.mine(MinSupport::Absolute(15)).unwrap();
        let refs: Vec<&[u32]> = rows.iter().map(|r| r.as_slice()).collect();
        let expected = mine_hmine(&TransactionDb::from_rows(&refs), MinSupport::Absolute(15));
        assert!(r.same_patterns_as(&expected));
        let cdb = second.current_version().unwrap();
        assert!(!cdb.groups().is_empty(), "seeded round should actually compress");
        std::fs::remove_dir_all(&dir_a).unwrap();
        std::fs::remove_dir_all(&dir_b).unwrap();
    }
}
