//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the checksum
//! guarding every spill record and segment payload.
//!
//! Hand-rolled byte-at-a-time table implementation: the workspace takes
//! no external dependencies, and the checksum sits on cold paths (file
//! seal, record decode) where a 256-entry table is plenty fast. The
//! table is built in a `const` so it costs nothing at runtime.

/// The reflected CRC-32 lookup table, one entry per byte value.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `data` (IEEE, as produced by zlib's `crc32`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Reference values from the zlib crc32 implementation.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn sensitive_to_every_bit() {
        let base = b"gogreen segment payload".to_vec();
        let reference = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "byte {byte} bit {bit}");
            }
        }
    }
}
