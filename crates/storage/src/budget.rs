//! Memory budgets.

/// A cap on the estimated size of in-memory mining structures.
///
/// The paper imitates machine-memory limits of 4 MiB and 8 MiB (§5.3);
/// the budget applies to the *estimated* structure size, exactly as the
/// paper's Figure 3 line 1 (`EM(D) > M`) does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryBudget {
    bytes: usize,
}

impl MemoryBudget {
    /// A budget of `bytes` bytes.
    pub fn bytes(bytes: usize) -> Self {
        MemoryBudget { bytes }
    }

    /// A budget of `mib` mebibytes.
    pub fn mib(mib: usize) -> Self {
        MemoryBudget { bytes: mib << 20 }
    }

    /// Effectively no limit.
    pub fn unlimited() -> Self {
        MemoryBudget { bytes: usize::MAX }
    }

    /// The cap in bytes.
    pub fn limit(&self) -> usize {
        self.bytes
    }

    /// True when an estimated size fits.
    pub fn fits(&self, estimated_bytes: usize) -> bool {
        estimated_bytes <= self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mib_conversion() {
        assert_eq!(MemoryBudget::mib(4).limit(), 4 * 1024 * 1024);
    }

    #[test]
    fn fits_is_inclusive() {
        let b = MemoryBudget::bytes(100);
        assert!(b.fits(100));
        assert!(!b.fits(101));
        assert!(MemoryBudget::unlimited().fits(usize::MAX));
    }
}
