//! Metric-level contract of the out-of-core datapath, checked in its
//! own process so the global metrics registry sees only this test's
//! activity: mining a segmented store makes exactly one full payload
//! pass per segment per round, the resident peak is bounded by the
//! largest segment, and writes/deltas land in their declared counters.

use gogreen_core::Strategy;
use gogreen_data::MinSupport;
use gogreen_obs::{histogram, metrics};
use gogreen_storage::{MemoryBudget, OocMiner, SegmentWriter, SegmentedDb, VersionStore};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gogreen-oocmet-{tag}-{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    dir
}

#[test]
fn one_pass_per_segment_bounded_residency_and_declared_counters() {
    metrics::reset();
    histogram::reset();
    metrics::set_enabled(true);

    let dir = temp_dir("passes");
    let rows: Vec<Vec<u32>> =
        (0..600u32).map(|k| vec![k % 4, 4 + k % 6, 10 + k % 3, 20 + k % 17]).collect();
    let mut w = SegmentWriter::create(&dir, 1024).unwrap();
    for r in &rows {
        w.push_row(r).unwrap();
    }
    let sealed = w.finish().unwrap();
    assert!(sealed > 4, "want many segments, got {sealed}");
    assert_eq!(metrics::get("storage.segments_written"), Some(sealed as u64));
    let h = histogram::get("storage.segment_bytes").expect("segment size histogram recorded");
    assert_eq!(h.count, sealed as u64);

    let db = SegmentedDb::open(&dir).unwrap();
    let budget = db.total_payload_bytes() as usize / 4;
    assert!(
        db.max_segment_bytes() <= budget,
        "dataset must be >= 4x the resident budget for this test to mean anything"
    );
    let db = db.with_budget(MemoryBudget::bytes(budget));

    // Round 1: raw out-of-core mining — one encode pass per segment.
    let fp = OocMiner::new(&db).mine(MinSupport::Absolute(40)).unwrap();
    assert!(!fp.is_empty());
    assert_eq!(metrics::get("storage.segments_read"), Some(db.num_segments() as u64));

    // Round 2: cover/compress pass — again one pass per segment.
    let (cdb, _) = OocMiner::new(&db).compress(&fp, Strategy::Mcp).unwrap();
    assert_eq!(metrics::get("storage.segments_read"), Some(2 * db.num_segments() as u64));

    // Residency stayed bounded by the largest single segment.
    let peak = metrics::get("storage.resident_peak").unwrap();
    assert!(peak <= db.max_segment_bytes() as u64);
    assert!(peak as usize <= budget);

    // Version persistence: the second push of a near-identical CDB is a
    // delta and accounts its bytes.
    let vdir = temp_dir("versions");
    let mut versions = VersionStore::open(&vdir).unwrap();
    versions.push(&cdb).unwrap();
    assert_eq!(metrics::get("storage.delta_bytes"), None, "first version is a full write");
    versions.push(&cdb).unwrap();
    let delta = metrics::get("storage.delta_bytes").unwrap();
    assert!(delta > 0);

    metrics::set_enabled(false);
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&vdir).unwrap();
}
