//! The Apriori algorithm (Agrawal & Srikant, VLDB 1994).
//!
//! Level-wise candidate generation with the Apriori pruning rule: every
//! `(k−1)`-subset of a `k`-candidate must itself be frequent. Candidate
//! supports are counted with transaction-id lists carried from the previous
//! level (the Apriori-TID refinement from the same paper), which keeps the
//! oracle usably fast on the randomized databases the property tests throw
//! at it.
//!
//! Apriori is the workspace's *correctness oracle*: its structure is simple
//! enough to audit, and every other miner — baselines and recycling
//! variants alike — is tested for pattern-for-pattern agreement with it.

use crate::Miner;
use gogreen_data::{Item, MinSupport, PatternSink, TransactionDb};
use gogreen_obs::metrics;
use gogreen_util::FxHashSet;

/// Apriori miner configuration. The default is the plain algorithm.
#[derive(Debug, Default, Clone)]
pub struct Apriori;

/// A frequent itemset at the current level: items plus the ids of the
/// tuples containing it (sorted ascending).
struct LevelEntry {
    items: Vec<Item>,
    tids: Vec<u32>,
}

impl Miner for Apriori {
    fn name(&self) -> &'static str {
        "Apriori"
    }

    fn mine_into(&self, db: &TransactionDb, min_support: MinSupport, sink: &mut dyn PatternSink) {
        let minsup = min_support.to_absolute(db.len());
        // L1: frequent items with their tidlists.
        let supports = db.item_supports();
        metrics::add("mine.candidate_tests", supports.len() as u64);
        let mut level: Vec<LevelEntry> = Vec::new();
        for (id, &sup) in supports.iter().enumerate() {
            if sup >= minsup {
                level.push(LevelEntry { items: vec![Item(id as u32)], tids: Vec::new() });
            }
        }
        if level.is_empty() {
            return;
        }
        // One scan fills the L1 tidlists.
        {
            let mut pos: Vec<i64> = vec![-1; supports.len()];
            for (slot, e) in level.iter().enumerate() {
                pos[e.items[0].index()] = slot as i64;
            }
            let mut touches = 0u64;
            for (tid, t) in db.iter().enumerate() {
                for &it in t {
                    let p = pos[it.index()];
                    if p >= 0 {
                        level[p as usize].tids.push(tid as u32);
                        touches += 1;
                    }
                }
            }
            metrics::add("mine.tuple_touches", touches);
        }
        for e in &level {
            sink.emit(&e.items, e.tids.len() as u64);
        }

        // Level-wise loop: join, prune, count via tidlist intersection.
        while level.len() > 1 {
            let prev: FxHashSet<&[Item]> = level.iter().map(|e| e.items.as_slice()).collect();
            let mut next: Vec<LevelEntry> = Vec::new();
            // Entries are generated in lexicographic order, so candidates
            // join entries sharing the first k-1 items.
            let mut block_start = 0;
            while block_start < level.len() {
                let k = level[block_start].items.len();
                let prefix = &level[block_start].items[..k - 1];
                let mut block_end = block_start + 1;
                while block_end < level.len() && level[block_end].items[..k - 1] == *prefix {
                    block_end += 1;
                }
                for a in block_start..block_end {
                    for b in (a + 1)..block_end {
                        let mut cand = level[a].items.clone();
                        cand.push(*level[b].items.last().unwrap());
                        if !all_subsets_frequent(&cand, &prev) {
                            continue;
                        }
                        metrics::add("mine.candidate_tests", 1);
                        let tids = intersect(&level[a].tids, &level[b].tids);
                        if tids.len() as u64 >= minsup {
                            sink.emit(&cand, tids.len() as u64);
                            next.push(LevelEntry { items: cand, tids });
                        }
                    }
                }
                block_start = block_end;
            }
            level = next;
        }
    }
}

/// Apriori pruning: every (k−1)-subset of `cand` must be in `prev`.
/// The two subsets obtained by dropping the last two positions are the
/// join's parents and need no re-check.
fn all_subsets_frequent(cand: &[Item], prev: &FxHashSet<&[Item]>) -> bool {
    if cand.len() <= 2 {
        return true;
    }
    let mut sub = Vec::with_capacity(cand.len() - 1);
    for drop in 0..cand.len() - 2 {
        sub.clear();
        sub.extend_from_slice(&cand[..drop]);
        sub.extend_from_slice(&cand[drop + 1..]);
        if !prev.contains(sub.as_slice()) {
            return false;
        }
    }
    true
}

/// Sorted-list intersection.
fn intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gogreen_data::PatternSet;

    fn mine(db: &TransactionDb, minsup: u64) -> PatternSet {
        Apriori.mine(db, MinSupport::Absolute(minsup))
    }

    #[test]
    fn empty_db_yields_nothing() {
        assert!(mine(&TransactionDb::new(), 1).is_empty());
    }

    #[test]
    fn single_transaction_at_support_one() {
        let db = TransactionDb::from_rows(&[&[1, 2, 3]]);
        let fp = mine(&db, 1);
        // All 7 non-empty subsets.
        assert_eq!(fp.len(), 7);
        assert_eq!(fp.support_of(&[Item(1), Item(2), Item(3)]), Some(1));
    }

    #[test]
    fn threshold_above_everything_yields_nothing() {
        let db = TransactionDb::from_rows(&[&[1, 2], &[2, 3]]);
        assert!(mine(&db, 3).is_empty());
    }

    #[test]
    fn identical_transactions() {
        let db = TransactionDb::from_rows(&[&[4, 5], &[4, 5], &[4, 5]]);
        let fp = mine(&db, 3);
        assert_eq!(fp.len(), 3);
        assert_eq!(fp.support_of(&[Item(4), Item(5)]), Some(3));
    }

    #[test]
    fn paper_example_at_three() {
        let fp = mine(&TransactionDb::paper_example(), 3);
        // 11 patterns: the paper's Example 1 omits fc:3 (subset of fgc:3).
        assert_eq!(fp.len(), 11);
        assert_eq!(fp.max_len(), 3);
        assert_eq!(fp.support_of(&[Item(2), Item(5)]), Some(3));
    }

    #[test]
    fn paper_example_at_two_contains_dcfg() {
        let fp = mine(&TransactionDb::paper_example(), 2);
        assert_eq!(fp.support_of(&[Item(2), Item(3), Item(5), Item(6)]), Some(2));
        // Example 2 of the paper: fgce? f,g,c,e -> tuples 100,300 -> support 2.
        assert_eq!(fp.support_of(&[Item(2), Item(4), Item(5), Item(6)]), Some(2));
    }

    #[test]
    fn intersect_basic() {
        assert_eq!(intersect(&[1, 3, 5], &[2, 3, 5, 7]), vec![3, 5]);
        assert_eq!(intersect(&[], &[1]), Vec::<u32>::new());
    }

    #[test]
    fn prune_rejects_candidate_with_infrequent_subset() {
        let mut prev: FxHashSet<&[Item]> = FxHashSet::default();
        let ab = [Item(0), Item(1)];
        let ac = [Item(0), Item(2)];
        prev.insert(&ab);
        prev.insert(&ac);
        // abc requires bc too.
        assert!(!all_subsets_frequent(&[Item(0), Item(1), Item(2)], &prev));
        let bc = [Item(1), Item(2)];
        prev.insert(&bc);
        assert!(all_subsets_frequent(&[Item(0), Item(1), Item(2)], &prev));
    }
}
