//! Tree Projection (Agarwal, Aggarwal, Prasad — J. Parallel Distrib.
//! Comput. 2001), depth-first variant, as used by the paper (§4.2).
//!
//! The lexicographic tree of itemsets is explored depth-first. At each
//! node, transactions are *projected* onto the node's frequent extensions
//! and a triangular counting matrix tallies the supports of all pairs of
//! extensions in one pass — producing every child node's extension set
//! (two levels of the tree from one counting pass).
//!
//! The traversal lives in [`crate::engine::tp`], shared with the
//! recycling Tree Projection in `gogreen-core`; this type instantiates it
//! on the degenerate [`gogreen_data::PlainRanks`] substrate, where every
//! transaction sits in the single pattern-free partition and the search
//! is the classic depth-first algorithm. [`PairMatrix`] stays public
//! here: it is the node counting structure both substrates share.

use crate::common::encode_db;
use crate::Miner;
use gogreen_data::{FList, MinSupport, PatternSink, PlainRanks, TransactionDb};
use gogreen_util::pool::Parallelism;
use gogreen_util::FxHashMap;

/// Above this many extensions the pair matrix switches from a dense
/// triangular array to a hash map (the dense form would need
/// `k·(k−1)/2` counters).
const DENSE_LIMIT: usize = 3000;

/// The depth-first Tree Projection algorithm.
#[derive(Debug, Default, Clone)]
pub struct TreeProjection;

impl Miner for TreeProjection {
    fn name(&self) -> &'static str {
        "TreeProjection"
    }

    fn mine_into(&self, db: &TransactionDb, min_support: MinSupport, sink: &mut dyn PatternSink) {
        self.mine_into_par(db, min_support, Parallelism::serial(), sink);
    }

    fn mine_into_par(
        &self,
        db: &TransactionDb,
        min_support: MinSupport,
        par: Parallelism,
        sink: &mut dyn PatternSink,
    ) {
        let minsup = min_support.to_absolute(db.len());
        let flist = FList::from_db(db, minsup);
        if flist.is_empty() {
            return;
        }
        let tuples = encode_db(db, &flist);
        let src = PlainRanks::from_csr(&tuples, flist.len());
        crate::engine::tp::mine_source_par(&src, &flist, minsup, par, sink);
    }
}

/// The pair-support matrix of one lexicographic-tree node: counts the
/// support of every extension pair `(a, b)`, `a < b`, in one pass.
///
/// Public because the Tree Projection recycling adaptation in
/// `gogreen-core` reuses it with weighted bumps (a whole group's pattern
/// pairs are counted once with the group count).
pub enum PairMatrix {
    /// Flat upper-triangular array, used while the extension count
    /// stays within the dense limit (3000).
    Dense {
        /// Number of extensions.
        k: usize,
        /// Triangular counters.
        counts: Vec<u64>,
    },
    /// Hash-backed fallback for very wide nodes.
    Sparse(FxHashMap<(u32, u32), u64>),
}

impl PairMatrix {
    /// Creates a matrix over `k ≥ 2` extensions.
    pub fn new(k: usize) -> Self {
        if k <= DENSE_LIMIT {
            PairMatrix::Dense { k, counts: vec![0; k * (k - 1) / 2] }
        } else {
            PairMatrix::Sparse(FxHashMap::default())
        }
    }

    #[inline]
    fn dense_index(k: usize, a: usize, b: usize) -> usize {
        debug_assert!(a < b && b < k);
        a * k - a * (a + 1) / 2 + (b - a - 1)
    }

    /// Adds 1 to pair `(a, b)`; requires `a < b`.
    #[inline]
    pub fn bump(&mut self, a: u32, b: u32) {
        self.bump_by(a, b, 1);
    }

    /// Adds `w` to pair `(a, b)`; requires `a < b`.
    #[inline]
    pub fn bump_by(&mut self, a: u32, b: u32, w: u64) {
        match self {
            PairMatrix::Dense { k, counts } => {
                counts[Self::dense_index(*k, a as usize, b as usize)] += w
            }
            PairMatrix::Sparse(m) => *m.entry((a, b)).or_insert(0) += w,
        }
    }

    /// The count of pair `(a, b)`; requires `a < b`.
    #[inline]
    pub fn get(&self, a: u32, b: u32) -> u64 {
        match self {
            PairMatrix::Dense { k, counts } => {
                counts[Self::dense_index(*k, a as usize, b as usize)]
            }
            PairMatrix::Sparse(m) => m.get(&(a, b)).copied().unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mine_apriori;
    use gogreen_data::Item;

    #[test]
    fn dense_index_is_a_bijection() {
        let k = 5;
        let mut seen = std::collections::BTreeSet::new();
        for a in 0..k {
            for b in (a + 1)..k {
                assert!(seen.insert(PairMatrix::dense_index(k, a, b)));
            }
        }
        assert_eq!(seen.len(), k * (k - 1) / 2);
        assert_eq!(*seen.iter().max().unwrap(), k * (k - 1) / 2 - 1);
    }

    #[test]
    fn sparse_and_dense_agree() {
        let mut d = PairMatrix::new(4);
        let mut s = PairMatrix::Sparse(FxHashMap::default());
        for &(a, b) in &[(0u32, 1u32), (0, 1), (2, 3), (1, 3)] {
            d.bump(a, b);
            s.bump(a, b);
        }
        for a in 0..4u32 {
            for b in (a + 1)..4 {
                assert_eq!(d.get(a, b), s.get(a, b), "({a},{b})");
            }
        }
    }

    #[test]
    fn matches_oracle_on_paper_example_all_thresholds() {
        let db = TransactionDb::paper_example();
        for minsup in 1..=5 {
            let tp = TreeProjection.mine(&db, MinSupport::Absolute(minsup));
            let oracle = mine_apriori(&db, MinSupport::Absolute(minsup));
            assert!(tp.same_patterns_as(&oracle), "minsup={minsup}");
        }
    }

    #[test]
    fn pairs_below_support_prune_children() {
        // 1 and 2 are each frequent but never co-occur.
        let db = TransactionDb::from_rows(&[&[1, 3], &[2, 3], &[1, 3], &[2, 3]]);
        let fp = TreeProjection.mine(&db, MinSupport::Absolute(2));
        assert_eq!(fp.support_of(&[Item(1), Item(2)]), None);
        assert_eq!(fp.support_of(&[Item(1), Item(3)]), Some(2));
        let oracle = mine_apriori(&db, MinSupport::Absolute(2));
        assert!(fp.same_patterns_as(&oracle));
    }

    #[test]
    fn empty_and_singleton() {
        assert!(TreeProjection.mine(&TransactionDb::new(), MinSupport::Absolute(1)).is_empty());
        let db = TransactionDb::from_rows(&[&[9]]);
        let fp = TreeProjection.mine(&db, MinSupport::Absolute(1));
        assert_eq!(fp.len(), 1);
    }
}
