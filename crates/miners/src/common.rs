//! Shared plumbing for rank-space miners: the DFS emitter, subset
//! enumeration, scratch counting, and the parallel first-level fan-out
//! driver every projected-database miner routes its root loop through.

use gogreen_data::{CsrTuples, FList, Item, PatternSink, TransactionDb};
use gogreen_util::pool::Parallelism;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Encodes `db` against `flist` straight into flat CSR rank storage,
/// dropping tuples with no frequent item — one pass, no intermediate
/// per-tuple vectors. Every baseline front-end funnels through this
/// before handing the engines a [`gogreen_data::PlainRanks`] view.
pub fn encode_db(db: &TransactionDb, flist: &FList) -> CsrTuples<u32> {
    let mut tuples = CsrTuples::with_capacity(db.len(), db.csr().total_elems());
    for t in db.iter() {
        if flist.encode_push(t, &mut tuples) == 0 {
            tuples.discard_row();
        } else {
            tuples.commit_row();
        }
    }
    tuples
}

/// [`encode_db`] with constraint pushdown: ranks whose `allowed` slot is
/// `false` never enter the row, and rows left empty are discarded. Used
/// by the pruned miner entry points.
pub fn encode_db_pruned(db: &TransactionDb, flist: &FList, allowed: &[bool]) -> CsrTuples<u32> {
    let mut tuples = CsrTuples::new();
    for t in db.iter() {
        for &it in t {
            if let Some(r) = flist.rank_of(it) {
                if allowed[r as usize] {
                    tuples.push_elem(r);
                }
            }
        }
        if tuples.open_len() == 0 {
            tuples.discard_row();
        } else {
            tuples.open_row_mut().sort_unstable();
            tuples.commit_row();
        }
    }
    tuples
}

/// Maintains the current prefix pattern during a depth-first search over
/// the F-list, translating ranks back to items on emission.
///
/// Every projected-database miner in the workspace (baselines here, the
/// recycling miners in `gogreen-core`) shares this emitter so that output
/// behaviour — one emission per frequent pattern, items decoded from
/// ranks — is identical across algorithms.
pub struct RankEmitter<'a> {
    flist: &'a FList,
    /// Current prefix as items (unsorted: DFS push order).
    prefix: Vec<Item>,
    /// Reusable buffer for [`Self::emit_with`]: subset enumeration emits
    /// once per subset, and a fresh allocation per emission dominates the
    /// single-path/single-group shortcut paths.
    scratch: Vec<Item>,
}

impl<'a> RankEmitter<'a> {
    /// Creates an emitter with an empty prefix.
    pub fn new(flist: &'a FList) -> Self {
        RankEmitter { flist, prefix: Vec::with_capacity(16), scratch: Vec::new() }
    }

    /// The F-list being decoded against.
    pub fn flist(&self) -> &FList {
        self.flist
    }

    /// Pushes rank `r` onto the prefix.
    pub fn push(&mut self, r: u32) {
        self.prefix.push(self.flist.item(r));
    }

    /// Pushes an item directly (used when resuming from a spilled
    /// partition whose pattern prefix is known in item space).
    pub fn push_item(&mut self, item: Item) {
        self.prefix.push(item);
    }

    /// Pops the most recent rank.
    pub fn pop(&mut self) {
        self.prefix.pop();
    }

    /// Current prefix depth.
    pub fn depth(&self) -> usize {
        self.prefix.len()
    }

    /// The current prefix items (DFS push order, not sorted).
    pub fn prefix(&self) -> &[Item] {
        &self.prefix
    }

    /// Emits the current prefix with `support`.
    pub fn emit(&self, sink: &mut dyn PatternSink, support: u64) {
        debug_assert!(!self.prefix.is_empty());
        sink.emit(&self.prefix, support);
    }

    /// Emits `prefix + extra_ranks` (used by single-path/single-group
    /// combination enumeration) without mutating the prefix. Reuses an
    /// internal scratch buffer, so repeated calls allocate at most once.
    pub fn emit_with(&mut self, sink: &mut dyn PatternSink, extra_ranks: &[u32], support: u64) {
        self.scratch.clear();
        self.scratch.extend_from_slice(&self.prefix);
        self.scratch.extend(extra_ranks.iter().map(|&r| self.flist.item(r)));
        sink.emit(&self.scratch, support);
    }
}

/// A flat, append-only pattern buffer used as the thread-local sink
/// during parallel fan-out: items from all emissions live in one `Vec`
/// with a `(len, support)` side array, so buffering a subtree costs two
/// amortized appends per pattern and replay is a linear sweep.
#[derive(Debug, Default)]
pub struct PatternBuffer {
    items: Vec<Item>,
    meta: Vec<(u32, u64)>,
}

impl PatternSink for PatternBuffer {
    fn emit(&mut self, items: &[Item], support: u64) {
        self.items.extend_from_slice(items);
        self.meta.push((items.len() as u32, support));
    }
}

impl PatternBuffer {
    /// Number of buffered patterns.
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// True when nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    /// Re-emits every buffered pattern, in emission order, into `sink`.
    pub fn replay(&self, sink: &mut dyn PatternSink) {
        let mut off = 0usize;
        for &(len, support) in &self.meta {
            let end = off + len as usize;
            sink.emit(&self.items[off..end], support);
            off = end;
        }
    }
}

/// The first-level fan-out driver shared by every miner and recycler.
///
/// Runs `unit(state, i, sink)` for `i in 0..n` and delivers the emitted
/// patterns to `sink` **in unit order**, regardless of thread count:
///
/// * Serial (or `n < 2`): one `init()` state, units run in order directly
///   against the real sink — no buffering, no overhead.
/// * Parallel: workers steal unit indices from a shared atomic cursor
///   (skewed prefixes don't straggle behind a static partition), emit
///   each unit into a private [`PatternBuffer`], and the buffers are
///   replayed in index order after the scoped join.
///
/// Because the serial path runs the *same* per-unit code as each worker,
/// the output stream is byte-identical at any thread count, and every
/// commutative metrics counter (`metrics::is_thread_invariant`) sums to
/// the same total. `init()` builds per-worker scratch state (emitters,
/// count arrays, DFS arenas) once per worker, not once per unit.
pub fn fan_out_ordered<S, I, F>(
    par: Parallelism,
    n: usize,
    sink: &mut dyn PatternSink,
    init: I,
    unit: F,
) where
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &mut dyn PatternSink) + Sync,
{
    let workers = par.for_items(n);
    if workers <= 1 {
        let mut state = init();
        for i in 0..n {
            unit(&mut state, i, sink);
        }
        return;
    }
    let cursor = AtomicUsize::new(0);
    let mut parts: Vec<Vec<(usize, PatternBuffer)>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(|| {
                let mut state = init();
                let mut done: Vec<(usize, PatternBuffer)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let mut buf = PatternBuffer::default();
                    unit(&mut state, i, &mut buf);
                    done.push((i, buf));
                }
                done
            }));
        }
        for h in handles {
            parts.push(h.join().expect("mining worker panicked"));
        }
    });
    let mut slots: Vec<Option<PatternBuffer>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    for (i, buf) in parts.into_iter().flatten() {
        slots[i] = Some(buf);
    }
    for slot in slots {
        slot.expect("every unit index visited exactly once").replay(sink);
    }
}

/// Enumerates every non-empty subset of `elems` (ranks paired with a
/// support), invoking `f(subset_ranks, support)` where `support` is the
/// minimum support among chosen elements.
///
/// This drives both FP-growth's single-path shortcut and the paper's
/// Lemma 3.1 (single-group pattern generation), where all elements share
/// one support.
pub fn for_each_subset(elems: &[(u32, u64)], f: &mut impl FnMut(&[u32], u64)) {
    assert!(elems.len() <= 62, "subset enumeration over >62 elements");
    let mut ranks = Vec::with_capacity(elems.len());
    fn rec(
        elems: &[(u32, u64)],
        from: usize,
        ranks: &mut Vec<u32>,
        support: u64,
        f: &mut impl FnMut(&[u32], u64),
    ) {
        for k in from..elems.len() {
            let (r, s) = elems[k];
            ranks.push(r);
            let sup = support.min(s);
            f(ranks, sup);
            rec(elems, k + 1, ranks, sup, f);
            ranks.pop();
        }
    }
    rec(elems, 0, &mut ranks, u64::MAX, f);
}

/// A scratch counting vector with O(touched) reset.
///
/// Mining recounts supports at every recursion level; zeroing a dense
/// vector each time would be O(num_ranks). `ScratchCounts` tracks which
/// slots were touched and clears only those.
#[derive(Debug)]
pub struct ScratchCounts {
    counts: Vec<u64>,
    touched: Vec<u32>,
}

impl ScratchCounts {
    /// Creates a counter over `n` rank slots.
    pub fn new(n: usize) -> Self {
        ScratchCounts { counts: vec![0; n], touched: Vec::new() }
    }

    /// Adds `w` to slot `r`.
    #[inline]
    pub fn add(&mut self, r: u32, w: u64) {
        let slot = &mut self.counts[r as usize];
        if *slot == 0 {
            self.touched.push(r);
        }
        *slot += w;
    }

    /// Current count of slot `r`.
    #[inline]
    pub fn get(&self, r: u32) -> u64 {
        self.counts[r as usize]
    }

    /// Ranks touched since the last clear, in touch order.
    pub fn touched(&self) -> &[u32] {
        &self.touched
    }

    /// Clears all touched slots.
    pub fn clear(&mut self) {
        for &r in &self.touched {
            self.counts[r as usize] = 0;
        }
        self.touched.clear();
    }

    /// Collects `(rank, count)` of touched slots with `count >= min`,
    /// sorted ascending by rank, then clears.
    pub fn drain_frequent(&mut self, min: u64) -> Vec<(u32, u64)> {
        let mut out: Vec<(u32, u64)> = self
            .touched
            .iter()
            .map(|&r| (r, self.counts[r as usize]))
            .filter(|&(_, c)| c >= min)
            .collect();
        out.sort_unstable_by_key(|&(r, _)| r);
        self.clear();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gogreen_data::{CollectSink, TransactionDb};

    #[test]
    fn emitter_decodes_ranks() {
        let db = TransactionDb::paper_example();
        let fl = FList::from_db(&db, 2);
        let mut em = RankEmitter::new(&fl);
        let mut sink = CollectSink::new();
        em.push(0); // d
        em.emit(&mut sink, 2);
        em.push(2); // f
        em.emit(&mut sink, 2);
        em.pop();
        assert_eq!(em.depth(), 1);
        let set = sink.into_set();
        assert_eq!(set.support_of(&[Item(3)]), Some(2));
        assert_eq!(set.support_of(&[Item(3), Item(5)]), Some(2));
    }

    #[test]
    fn emit_with_appends_without_mutation() {
        let db = TransactionDb::paper_example();
        let fl = FList::from_db(&db, 2);
        let mut em = RankEmitter::new(&fl);
        let mut sink = CollectSink::new();
        em.push(0);
        em.emit_with(&mut sink, &[2, 3], 2);
        assert_eq!(em.depth(), 1);
        let set = sink.into_set();
        // d(0) + f(5) + g(6) -> items {3,5,6}
        assert_eq!(set.support_of(&[Item(3), Item(5), Item(6)]), Some(2));
    }

    #[test]
    fn subsets_of_three_elements() {
        let elems = [(1u32, 5u64), (2, 4), (3, 6)];
        let mut seen = Vec::new();
        for_each_subset(&elems, &mut |ranks, sup| seen.push((ranks.to_vec(), sup)));
        assert_eq!(seen.len(), 7);
        assert!(seen.contains(&(vec![1], 5)));
        assert!(seen.contains(&(vec![1, 2], 4)));
        assert!(seen.contains(&(vec![1, 2, 3], 4)));
        assert!(seen.contains(&(vec![2, 3], 4)));
        assert!(seen.contains(&(vec![3], 6)));
    }

    #[test]
    fn subsets_of_empty_is_nothing() {
        let mut n = 0;
        for_each_subset(&[], &mut |_, _| n += 1);
        assert_eq!(n, 0);
    }

    #[test]
    fn scratch_counts_touch_and_clear() {
        let mut c = ScratchCounts::new(10);
        c.add(3, 2);
        c.add(3, 1);
        c.add(7, 1);
        assert_eq!(c.get(3), 3);
        assert_eq!(c.touched(), &[3, 7]);
        c.clear();
        assert_eq!(c.get(3), 0);
        assert!(c.touched().is_empty());
    }

    #[test]
    fn pattern_buffer_replays_in_emission_order() {
        let mut buf = PatternBuffer::default();
        buf.emit(&[Item(3), Item(5)], 7);
        buf.emit(&[Item(1)], 2);
        assert_eq!(buf.len(), 2);
        let mut seen: Vec<(Vec<Item>, u64)> = Vec::new();
        {
            let mut sink = gogreen_data::FnSink(|items: &[Item], s| seen.push((items.to_vec(), s)));
            buf.replay(&mut sink);
        }
        assert_eq!(seen, vec![(vec![Item(3), Item(5)], 7), (vec![Item(1)], 2)]);
    }

    #[test]
    fn fan_out_ordered_is_thread_invariant() {
        // Unit i emits i+1 patterns tagged with its index; the merged
        // stream must equal the serial one at any thread count.
        let run = |par: Parallelism| {
            let mut seen: Vec<(Vec<Item>, u64)> = Vec::new();
            {
                let mut sink =
                    gogreen_data::FnSink(|items: &[Item], s| seen.push((items.to_vec(), s)));
                fan_out_ordered(
                    par,
                    9,
                    &mut sink,
                    || 0u32,
                    |state, i, sink| {
                        *state += 1;
                        for k in 0..=i {
                            sink.emit(&[Item(i as u32), Item(k as u32)], (i * 100 + k) as u64);
                        }
                    },
                );
            }
            seen
        };
        let serial = run(Parallelism::serial());
        for t in [2, 4, 8] {
            assert_eq!(run(Parallelism::threads(t)), serial, "threads={t}");
        }
    }

    #[test]
    fn drain_frequent_filters_and_sorts() {
        let mut c = ScratchCounts::new(10);
        c.add(9, 5);
        c.add(1, 1);
        c.add(4, 3);
        let freq = c.drain_frequent(3);
        assert_eq!(freq, vec![(4, 3), (9, 5)]);
        assert_eq!(c.get(9), 0);
    }
}
