//! The plain recursive projected-database miner.
//!
//! This is the skeleton framework of the paper's Definitions 3.1–3.3 with
//! no data-structure cleverness at all: encode the database into rank
//! space, then depth-first over the F-list, materializing each
//! `i`-projected database as a fresh vector of rank suffixes. H-Mine,
//! FP-growth and Tree Projection are progressively smarter realizations of
//! exactly this recursion, which is why this miner doubles as readable
//! documentation and as a second oracle.

use crate::common::{encode_db_pruned, RankEmitter, ScratchCounts};
use crate::Miner;
use gogreen_data::projected::RankDb;
use gogreen_data::{FList, MinSupport, NoPrune, PatternSink, SearchPrune, TransactionDb};
use gogreen_obs::metrics;

/// Reference projected-database miner.
#[derive(Debug, Default, Clone)]
pub struct NaiveProjection;

impl Miner for NaiveProjection {
    fn name(&self) -> &'static str {
        "NaiveProjection"
    }

    fn mine_into(&self, db: &TransactionDb, min_support: MinSupport, sink: &mut dyn PatternSink) {
        self.mine_pruned(db, min_support, &NoPrune, sink);
    }
}

impl NaiveProjection {
    /// Constrained mining: like [`Miner::mine_into`] but consulting
    /// `prune` to skip disallowed items and abandon subtrees whose
    /// prefix violates a pushed anti-monotone predicate. Emits exactly
    /// the frequent patterns passing the pushed checks.
    pub fn mine_pruned(
        &self,
        db: &TransactionDb,
        min_support: MinSupport,
        prune: &dyn SearchPrune,
        sink: &mut dyn PatternSink,
    ) {
        let minsup = min_support.to_absolute(db.len());
        let flist = FList::from_db(db, minsup);
        if flist.is_empty() {
            return;
        }
        // Succinct pushdown: strip disallowed items from the search
        // space. Supports of the remaining items are unaffected.
        let allowed: Vec<bool> =
            (0..flist.len() as u32).map(|r| prune.item_allowed(flist.item(r))).collect();
        let rdb = RankDb::from_csr(encode_db_pruned(db, &flist, &allowed), flist.len());
        let mut emitter = RankEmitter::new(&flist);
        let mut scratch = ScratchCounts::new(flist.len());
        let root: Vec<(u32, u64)> = (0..flist.len() as u32)
            .filter(|&r| allowed[r as usize])
            .map(|r| (r, flist.support(r)))
            .collect();
        mine_rec(&rdb, &root, minsup, prune, &mut emitter, &mut scratch, sink);
    }
}

/// Depth-first recursion: for each locally frequent rank (ascending =
/// F-list order), emit, project, recurse.
fn mine_rec(
    rdb: &RankDb,
    frequent: &[(u32, u64)],
    minsup: u64,
    prune: &dyn SearchPrune,
    emitter: &mut RankEmitter<'_>,
    scratch: &mut ScratchCounts,
    sink: &mut dyn PatternSink,
) {
    for &(r, support) in frequent {
        emitter.push(r);
        // Anti-monotone pushdown: a violating prefix dooms the subtree.
        if !prune.prefix_ok(emitter.prefix()) {
            emitter.pop();
            continue;
        }
        emitter.emit(sink, support);
        if prune.may_extend(emitter.depth()) {
            let proj = rdb.project(r);
            if !proj.is_empty() {
                metrics::add("mine.projected_dbs", 1);
                metrics::set_max("mine.max_depth", emitter.depth() as u64);
                // Count extensions (ranks > r survive projection).
                let mut touches = 0u64;
                for t in proj.tuples() {
                    for &x in t {
                        scratch.add(x, 1);
                        touches += 1;
                    }
                }
                metrics::add("mine.tuple_touches", touches);
                metrics::add("mine.candidate_tests", scratch.touched().len() as u64);
                let sub = scratch.drain_frequent(minsup);
                if !sub.is_empty() {
                    mine_rec(&proj, &sub, minsup, prune, emitter, scratch, sink);
                }
            }
        }
        emitter.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mine_apriori;
    use gogreen_data::{Item, MinSupport};

    #[test]
    fn matches_oracle_on_paper_example() {
        let db = TransactionDb::paper_example();
        for minsup in 1..=5 {
            let naive = NaiveProjection.mine(&db, MinSupport::Absolute(minsup));
            let oracle = mine_apriori(&db, MinSupport::Absolute(minsup));
            assert!(
                naive.same_patterns_as(&oracle),
                "minsup={minsup}: naive {} vs oracle {}",
                naive.len(),
                oracle.len()
            );
        }
    }

    #[test]
    fn empty_db() {
        assert!(NaiveProjection.mine(&TransactionDb::new(), MinSupport::Absolute(1)).is_empty());
    }

    #[test]
    fn single_item_db() {
        let db = TransactionDb::from_rows(&[&[7], &[7]]);
        let fp = NaiveProjection.mine(&db, MinSupport::Absolute(2));
        assert_eq!(fp.len(), 1);
        assert_eq!(fp.support_of(&[Item(7)]), Some(2));
    }

    #[test]
    fn disjoint_transactions_produce_only_singletons() {
        let db = TransactionDb::from_rows(&[&[1, 2], &[3, 4], &[1, 2], &[3, 4]]);
        let fp = NaiveProjection.mine(&db, MinSupport::Absolute(2));
        assert_eq!(fp.len(), 6); // 4 singletons + {1,2} + {3,4}
    }
}
