#![warn(missing_docs)]

//! Baseline frequent-pattern miners.
//!
//! The paper adapts three representative *projected-database* miners —
//! H-Mine, FP-tree (FP-growth) and Tree Projection — to run on compressed
//! databases. This crate implements those three baselines faithfully, plus
//! two reference miners:
//!
//! * [`apriori`] — the classic level-wise algorithm, used across the
//!   workspace as the correctness oracle;
//! * [`naive`] — the plain recursive projected-database miner, the
//!   skeleton the paper's Definition 3.2/3.3 framework describes.
//!
//! A fourth *vertical* family, [`eclat`], mines tidset bitmaps by
//! word-wise AND + popcount instead of walking tuples, with extension
//! levels pre-sized and terminated by the Kruskal–Katona candidate
//! upper bound of [`bound`].
//!
//! All miners implement [`Miner`] and produce the *complete* set of
//! frequent patterns; the test suites assert they agree pattern-for-pattern
//! on random databases.
//!
//! The three projected-database traversals live in [`engine`], written
//! once per family over the `GroupedSource` substrate abstraction; the
//! types here instantiate them on the degenerate all-plain view, and the
//! recycling miners in `gogreen-core` instantiate the same code on real
//! compressed databases. The `mine_*` free functions below are thin
//! convenience wrappers over those unified engines and are kept stable
//! for examples and external callers.

pub mod apriori;
pub mod bound;
pub mod common;
pub mod eclat;
pub mod engine;
pub mod fpgrowth;
pub mod hmine;
pub mod naive;
pub mod treeproj;

use gogreen_data::{CollectSink, MinSupport, PatternSet, PatternSink, TransactionDb};
use gogreen_util::pool::Parallelism;

pub use apriori::Apriori;
pub use eclat::Eclat;
pub use fpgrowth::FpGrowth;
pub use hmine::HMine;
pub use naive::NaiveProjection;
pub use treeproj::TreeProjection;

/// A frequent-pattern mining algorithm over plain transaction databases.
///
/// ```
/// use gogreen_miners::{Miner, HMine, FpGrowth};
/// use gogreen_data::{MinSupport, TransactionDb};
///
/// let db = TransactionDb::paper_example();
/// let a = HMine.mine(&db, MinSupport::Absolute(3));
/// let b = FpGrowth.mine(&db, MinSupport::Absolute(3));
/// assert!(a.same_patterns_as(&b));
/// assert_eq!(a.len(), 11);
/// ```
pub trait Miner {
    /// Short algorithm name for reports ("H-Mine", "FP-growth", …).
    fn name(&self) -> &'static str;

    /// Mines the complete set of frequent patterns of `db` at
    /// `min_support`, emitting each pattern exactly once into `sink`.
    fn mine_into(&self, db: &TransactionDb, min_support: MinSupport, sink: &mut dyn PatternSink);

    /// Like [`Miner::mine_into`], mining the first-level projections on
    /// `par` scoped threads where the algorithm supports it. The emitted
    /// stream is byte-identical to the serial run at any thread count;
    /// miners without a parallel driver (Apriori, the naive baseline)
    /// fall back to the serial path.
    fn mine_into_par(
        &self,
        db: &TransactionDb,
        min_support: MinSupport,
        par: Parallelism,
        sink: &mut dyn PatternSink,
    ) {
        let _ = par;
        self.mine_into(db, min_support, sink);
    }

    /// Convenience wrapper collecting the result into a [`PatternSet`].
    fn mine(&self, db: &TransactionDb, min_support: MinSupport) -> PatternSet {
        self.mine_par(db, min_support, Parallelism::serial())
    }

    /// Parallel convenience wrapper collecting into a [`PatternSet`].
    fn mine_par(
        &self,
        db: &TransactionDb,
        min_support: MinSupport,
        par: Parallelism,
    ) -> PatternSet {
        let mut sp = gogreen_obs::span("mine");
        let mut sink = CollectSink::new();
        self.mine_into_par(db, min_support, par, &mut sink);
        let set = sink.into_set();
        sp.field("engine", self.name()).field("patterns", set.len());
        set
    }
}

/// Mines with [`Apriori`] (correctness oracle; slowest).
pub fn mine_apriori(db: &TransactionDb, min_support: MinSupport) -> PatternSet {
    Apriori.mine(db, min_support)
}

/// Mines with [`HMine`] (a thin wrapper over the unified
/// [`engine::hm`] traversal on the plain substrate).
pub fn mine_hmine(db: &TransactionDb, min_support: MinSupport) -> PatternSet {
    HMine.mine(db, min_support)
}

/// Mines with [`FpGrowth`] (a thin wrapper over the unified
/// [`engine::fp`] traversal on the plain substrate).
pub fn mine_fpgrowth(db: &TransactionDb, min_support: MinSupport) -> PatternSet {
    FpGrowth.mine(db, min_support)
}

/// Mines with [`TreeProjection`] (a thin wrapper over the unified
/// [`engine::tp`] traversal on the plain substrate).
pub fn mine_treeproj(db: &TransactionDb, min_support: MinSupport) -> PatternSet {
    TreeProjection.mine(db, min_support)
}

/// Mines with [`Eclat`] (a thin wrapper over the unified vertical
/// [`engine::vt`] traversal on the plain substrate).
pub fn mine_eclat(db: &TransactionDb, min_support: MinSupport) -> PatternSet {
    Eclat::new().mine(db, min_support)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every miner on the paper's Table 1 example at ξ = 3 must produce
    /// exactly the `FP` set of the paper's Example 1.
    #[test]
    fn all_miners_reproduce_paper_example_1() {
        // a=0,b=1,c=2,d=3,e=4,f=5,g=6,h=7,i=8
        let db = TransactionDb::paper_example();
        let miners: Vec<Box<dyn Miner>> = vec![
            Box::new(Apriori),
            Box::new(NaiveProjection),
            Box::new(HMine),
            Box::new(FpGrowth),
            Box::new(TreeProjection),
            Box::new(Eclat::new()),
        ];
        for m in &miners {
            let fp = m.mine(&db, MinSupport::Absolute(3));
            // The paper's Example 1 lists 10 patterns but omits fc:3 — a
            // typo, since fc ⊂ fgc:3 must be frequent by anti-monotonicity.
            // The complete set has 11 patterns.
            assert_eq!(fp.len(), 11, "{} pattern count", m.name());
            let expect: &[(&[u32], u64)] = &[
                (&[5], 3),       // f
                (&[5, 6], 3),    // fg
                (&[2, 5], 3),    // fc (omitted in the paper's Example 1)
                (&[2, 5, 6], 3), // fgc
                (&[6], 3),       // g
                (&[2, 6], 3),    // gc
                (&[0], 3),       // a
                (&[0, 4], 3),    // ae
                (&[4], 4),       // e
                (&[2, 4], 3),    // ec
                (&[2], 4),       // c
            ];
            for &(ids, sup) in expect {
                let items: Vec<_> = ids.iter().map(|&i| gogreen_data::Item(i)).collect();
                assert_eq!(fp.support_of(&items), Some(sup), "{}: {:?}", m.name(), ids);
            }
        }
    }

    /// At ξ = 2 the miners must agree with the oracle on the full set,
    /// including the d-extensions the paper's Example 3 walks through.
    #[test]
    fn all_miners_agree_at_support_two() {
        let db = TransactionDb::paper_example();
        let oracle = mine_apriori(&db, MinSupport::Absolute(2));
        // Spot-check Example 3 step (1): dcfg:2 and friends.
        let it = |ids: &[u32]| ids.iter().map(|&i| gogreen_data::Item(i)).collect::<Vec<_>>();
        assert_eq!(oracle.support_of(&it(&[2, 3, 5, 6])), Some(2)); // dcfg
        assert_eq!(oracle.support_of(&it(&[3, 5])), Some(2)); // df
        assert_eq!(oracle.support_of(&it(&[0, 2, 4])), Some(2)); // ace
        for m in [
            mine_hmine(&db, MinSupport::Absolute(2)),
            mine_fpgrowth(&db, MinSupport::Absolute(2)),
            mine_treeproj(&db, MinSupport::Absolute(2)),
            mine_eclat(&db, MinSupport::Absolute(2)),
            NaiveProjection.mine(&db, MinSupport::Absolute(2)),
        ] {
            assert!(m.same_patterns_as(&oracle));
        }
    }
}
