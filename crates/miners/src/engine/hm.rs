//! The H-Mine family engine: hyper-structure search over the RP-Struct
//! arena (paper §4.1, Figures 4–8), generic over [`GroupedSource`].
//!
//! H-Mine's defining trait is **pseudo-projection**: tuples are loaded
//! once into an entry arena and never copied; a projected database is a
//! set of references into that arena. The paper's *RP-Struct* extends
//! this with group heads (pattern + member count + member tails), group
//! tails (the members' outlying items as arena entries), and per-node
//! RP-Header tables whose *item-links* reach tails and whose
//! *group-links* reach whole groups.
//!
//! Our realization keeps all of that, with one engineering deviation
//! that matters for *partial* groups — groups projected through an
//! outlying item, so that only some members remain. The paper's figures
//! only exercise whole groups; threading each partial member through the
//! header tables individually (one link hop per remaining pattern item
//! per member) degenerates to per-member × per-pattern-item work and is
//! measurably slower than plain H-Mine on dense data. Instead, each
//! search node holds its groups as **projected group views**: the source
//! group id, an offset into its pattern, the surviving members as
//! `(tail, entry position)` pairs, and a bare-member count. Projection
//! through a pattern item advances the offset and keeps the member list
//! (the whole group follows — the paper's group-link move); projection
//! through an outlying item collects the members holding that entry (the
//! paper's item-link move). Item data is never copied; only member
//! reference lists are.
//!
//! On the degenerate [`gogreen_data::PlainRanks`] substrate there are no
//! groups at all: every tuple is a plain tail, the group-view machinery
//! is never entered, and the search is exactly classic H-Mine (per-rank
//! queues realized as buckets, queue relinks as bucket hops). Savings on
//! the real substrate (paper §3.1): counting touches each group view
//! once per pattern item — weight = member count — instead of once per
//! member tuple; projecting on a pattern item moves the whole view in
//! one step; and Lemma 3.1 (single-group pattern generation) prunes
//! entire subtrees into subset enumeration.
//!
//! The classic H-Mine economies survive the genericity. In the generic
//! search, queued members are anchored *at* the entry of their queue
//! rank, so hops and projections resume in place instead of rescanning
//! the tail, and the last locally frequent rank of a node is emitted
//! without building its child, which anti-monotonicity proves empty.
//! Beyond that, the group-free substrate dispatches each first-level
//! unit to a *classic* H-Mine fast path ([`RawUnit`]): the unit's
//! suffixes are compacted into a private arena threaded by intrusive
//! hyperlinks — one reusable link per entry, the original algorithm's
//! trick — so queue hops write a single index and no per-node structures
//! are materialized at all. The fast path is a static specialization
//! (`GroupedSource::GROUPED` is `false`), emits the byte-identical
//! stream the generic search produces on a degenerately grouped
//! database, and keeps the degenerate instantiation at parity with a
//! hand-written H-Mine.

use crate::common::{fan_out_ordered, for_each_subset, RankEmitter, ScratchCounts};
use gogreen_data::{FList, GroupedSource, Item, NoPrune, PatternSink, SearchPrune};
use gogreen_obs::{histogram, metrics};
use gogreen_util::pool::Parallelism;

/// Entry item marking the end of a tail.
const SENT: u32 = u32::MAX;
/// `tail_group` value for plain (uncovered) tuples.
const GNONE: u32 = u32::MAX;

const SRC_NONE: u32 = u32::MAX;
const SRC_MIXED: u32 = u32::MAX - 1;

/// The RP-Struct arenas: all tuple data, loaded once, never copied.
///
/// Public so the memory estimator in `gogreen-core` can budget against
/// [`RpStruct::arena_bytes`]; mining code never needs it directly.
pub struct RpStruct {
    /// Entry items (ranks, ascending within a tail); `SENT` terminates
    /// each tail.
    eitem: Vec<u32>,
    /// First entry of each tail.
    tail_first: Vec<u32>,
    /// Owning group of each tail (`GNONE` for plain tuples).
    tail_group: Vec<u32>,
    /// Group patterns (ranks ascending).
    gpat: Vec<Vec<u32>>,
    /// Group member counts (including bare members).
    gcount: Vec<u64>,
    /// Tails of each group (members with outlying items).
    gtails: Vec<Vec<u32>>,
}

impl RpStruct {
    /// Loads `src` into the arena. On a group-free substrate this is a
    /// plain H-Mine hyper-structure: one tail per tuple, no group rows.
    pub fn build<S: GroupedSource>(src: &S) -> Self {
        let num_groups = src.num_groups();
        let total_entries: usize = (0..num_groups)
            .flat_map(|g| src.group_outliers(g))
            .chain(src.plain())
            .map(|t| t.len() + 1)
            .sum();
        let num_tails: usize =
            (0..num_groups).map(|g| src.group_outliers(g).len()).sum::<usize>() + src.plain().len();
        let mut s = RpStruct {
            eitem: Vec::with_capacity(total_entries),
            tail_first: Vec::with_capacity(num_tails),
            tail_group: Vec::with_capacity(num_tails),
            gpat: Vec::with_capacity(num_groups),
            gcount: Vec::with_capacity(num_groups),
            gtails: Vec::with_capacity(num_groups),
        };
        fn push_tail(s: &mut RpStruct, items: &[u32], group: u32) -> u32 {
            let t = s.tail_first.len() as u32;
            s.tail_first.push(s.eitem.len() as u32);
            s.tail_group.push(group);
            s.eitem.extend_from_slice(items);
            s.eitem.push(SENT);
            t
        }
        if S::GROUPED {
            for g in 0..num_groups {
                let gid = s.gpat.len() as u32;
                s.gpat.push(src.group_pattern(g).to_vec());
                s.gcount.push(src.group_count(g));
                let tails: Vec<u32> =
                    src.group_outliers(g).into_iter().map(|o| push_tail(&mut s, o, gid)).collect();
                s.gtails.push(tails);
            }
        }
        for t in src.plain() {
            push_tail(&mut s, t, GNONE);
        }
        s
    }

    /// Arena bytes — the base quantity the paper's memory estimator
    /// (§3.3) budgets against.
    pub fn arena_bytes(&self) -> usize {
        self.eitem.capacity() * 4
            + (self.tail_first.capacity() + self.tail_group.capacity()) * 4
            + self.gcount.capacity() * 8
            + self.gpat.iter().map(|p| p.capacity() * 4).sum::<usize>()
            + self.gtails.iter().map(|t| t.capacity() * 4).sum::<usize>()
    }
}

/// A member reference: a tail plus the first arena entry still relevant
/// (anchors advance as projections consume entries, so no entry is
/// re-skipped by descendant nodes).
type Member = (u32, u32);

/// Marks a bucketed member as belonging to the plain partition.
const VNONE: u32 = u32::MAX;

/// One group's presence in the current projection.
struct GroupView {
    /// Source group.
    gid: u32,
    /// Residual pattern = `gpat[gid][pat_from..]` (every rank greater
    /// than the node's projection bound, maintained by construction).
    pat_from: u32,
    /// Members with (possibly) relevant outlying items.
    members: Vec<Member>,
    /// Members known to have no relevant outliers (counted only).
    bare: u64,
    /// The locally frequent pattern rank this view currently queues at
    /// (its group-link position); `u32::MAX` once the residual pattern
    /// has no locally frequent item left.
    cur: u32,
}

impl GroupView {
    fn count(&self) -> u64 {
        self.members.len() as u64 + self.bare
    }
}

/// One node of the depth-first search: the paper's RP-Header scope.
struct Node {
    views: Vec<GroupView>,
    plain: Vec<Member>,
}

/// One header row's queues: the RP-Header's group-link (whole views) and
/// item-link (individual members; `VNONE` view = plain tuple) chains.
#[derive(Default)]
struct Bucket {
    views: Vec<u32>,
    members: Vec<(u32, Member)>,
}

/// Reusable per-depth scratch of the DFS: the bucket array of one node,
/// the member grouping buffer, and the bucket currently being processed.
/// Kept in a depth-indexed arena on [`Ctx`] so sibling nodes at the same
/// depth recycle each other's allocations instead of growing fresh
/// `Vec<Bucket>`s per node.
#[derive(Default)]
struct LevelScratch {
    buckets: Vec<Bucket>,
    member_run: Vec<(u32, Member)>,
    cur: Bucket,
}

impl LevelScratch {
    /// Clears all queues and guarantees at least `n` buckets, preserving
    /// every inner capacity.
    fn reset(&mut self, n: usize) {
        for b in &mut self.buckets {
            b.views.clear();
            b.members.clear();
        }
        if self.buckets.len() < n {
            self.buckets.resize_with(n, Bucket::default);
        }
        self.cur.views.clear();
        self.cur.members.clear();
        self.member_run.clear();
    }
}

/// Per-worker mining state. The RP-Struct arena is shared by reference:
/// it is read-only once built, so parallel first-level units each carry
/// their own `Ctx` over the same arena.
struct Ctx<'s> {
    s: &'s RpStruct,
    scratch: ScratchCounts,
    src: Vec<u32>,
    /// Local-frequency tags: `lf_tag[rank] == lf_gen` ⇔ rank is locally
    /// frequent at the node currently being processed; `lf_pos` then
    /// holds its bucket index.
    lf_tag: Vec<u32>,
    lf_pos: Vec<u32>,
    lf_gen: u32,
    minsup: u64,
    /// Apply the Lemma 3.1 subset shortcut (disabled under constraint
    /// pushdown: enumeration would bypass the per-prefix checks).
    shortcut: bool,
    /// Depth-indexed scratch arenas (index = recursion depth below this
    /// context's root).
    levels: Vec<LevelScratch>,
    depth: usize,
}

impl<'s> Ctx<'s> {
    fn new(s: &'s RpStruct, num_ranks: usize, minsup: u64, shortcut: bool) -> Self {
        Ctx {
            s,
            scratch: ScratchCounts::new(num_ranks),
            src: vec![SRC_NONE; num_ranks],
            lf_tag: vec![0; num_ranks],
            lf_pos: vec![0; num_ranks],
            lf_gen: 0,
            minsup,
            shortcut,
            levels: Vec::new(),
            depth: 0,
        }
    }

    /// Finds the entry of rank `r` in `member`'s remaining outliers,
    /// exploiting the ascending entry order for early exit.
    #[inline]
    fn find_entry(&self, (_, pos): Member, r: u32) -> Option<u32> {
        let mut e = pos as usize;
        loop {
            let x = self.s.eitem[e];
            if x == SENT || x > r {
                return None;
            }
            if x == r {
                return Some(e as u32);
            }
            e += 1;
        }
    }

    /// First entry of `member` with rank > `r`, or `None` when the
    /// remaining outliers are exhausted.
    #[inline]
    fn advance_past(&self, (_, pos): Member, r: u32) -> Option<u32> {
        let mut e = pos as usize;
        loop {
            let x = self.s.eitem[e];
            if x == SENT {
                return None;
            }
            if x > r {
                return Some(e as u32);
            }
            e += 1;
        }
    }

    /// First *locally frequent* outlier rank of `member` strictly greater
    /// than `after` (`-1` = no bound), with its arena entry index so the
    /// caller can queue the member anchored *at* that entry. Re-anchoring
    /// on every queue hop is what keeps relinking linear: every scan
    /// (this one, [`Ctx::find_entry`], the next relink) resumes from the
    /// previous queue position instead of the node's original anchor.
    #[inline]
    fn first_lf_outlier(&self, (_, pos): Member, after: i64) -> Option<(u32, u32)> {
        let mut e = pos as usize;
        loop {
            let x = self.s.eitem[e];
            if x == SENT {
                return None;
            }
            if (x as i64) > after && self.lf_tag[x as usize] == self.lf_gen {
                return Some((x, e as u32));
            }
            e += 1;
        }
    }

    /// First locally frequent entry at or after arena position `e`, with
    /// no rank bound: the plain-path variant of [`Ctx::first_lf_outlier`]
    /// for exact anchors, where ascending entry order already guarantees
    /// every entry from `e` on is past the consumed rank.
    #[inline]
    fn first_lf_from(&self, mut e: usize) -> Option<(u32, u32)> {
        loop {
            let x = self.s.eitem[e];
            if x == SENT {
                return None;
            }
            if self.lf_tag[x as usize] == self.lf_gen {
                return Some((x, e as u32));
            }
            e += 1;
        }
    }

    /// First locally frequent residual pattern rank of `view` strictly
    /// greater than `after`.
    #[inline]
    fn first_lf_pattern(&self, view: &GroupView, after: i64) -> Option<u32> {
        self.s.gpat[view.gid as usize][view.pat_from as usize..]
            .iter()
            .copied()
            .find(|&x| (x as i64) > after && self.lf_tag[x as usize] == self.lf_gen)
    }

    /// Adds +1 for each remaining outlier rank of `member` (anchors
    /// guarantee every remaining entry is in scope); returns the number
    /// of entries touched. `track_src` marks each rank as multi-source
    /// for the Lemma 3.1 test — pointless (and skipped) on nodes with no
    /// group views, where the lemma can never fire.
    #[inline]
    fn count_member(&mut self, (_, pos): Member, track_src: bool) -> u64 {
        let mut e = pos as usize;
        let mut touched = 0u64;
        loop {
            let x = self.s.eitem[e];
            if x == SENT {
                return touched;
            }
            self.scratch.add(x, 1);
            if track_src {
                self.src[x as usize] = SRC_MIXED;
            }
            touched += 1;
            e += 1;
        }
    }

    fn merge_src(&mut self, x: u32, view_idx: u32) {
        let s = &mut self.src[x as usize];
        *s = match *s {
            SRC_NONE => view_idx,
            cur if cur == view_idx => cur,
            _ => SRC_MIXED,
        };
    }

    /// Installs `frequent` as the current node's local-frequency tags.
    fn tag_lf(&mut self, frequent: &[(u32, u64)]) {
        self.lf_gen = self.lf_gen.wrapping_add(1);
        for (k, &(x, _)) in frequent.iter().enumerate() {
            self.lf_tag[x as usize] = self.lf_gen;
            self.lf_pos[x as usize] = k as u32;
        }
    }
}

/// Mines `src` against `flist` at the absolute threshold `minsup`,
/// emitting every pattern prefixed by `prefix_items`, with the root
/// header table fanned out over `par` scoped threads.
///
/// This is the resumable entry point the memory-limited driver uses: a
/// spilled `i`-projected partition is mined by passing it with
/// `prefix_items = [item(i)]`. Supports are counted from the partition
/// itself (group counts for pattern items, per occurrence for outliers),
/// not taken from the global F-list.
///
/// The root node is counted once on the caller thread; each locally
/// frequent rank then becomes an independent unit. The serial search
/// discovers a rank's root bucket incrementally (H-Mine queue relinks),
/// but the bucket contents at rank `r`'s processing time are a pure
/// function of the node: a view is queued at `r` iff `r` is in its
/// locally frequent residual pattern, and a member is queued at `r` iff
/// `r` is one of its locally frequent outliers (relinks walk each tuple
/// through exactly those positions in rank order, and the `cur` coverage
/// rule only defers a queueing, never cancels it). One sweep therefore
/// precomputes every unit's bucket, and workers share the read-only
/// RP-Struct and root views.
pub fn mine_source_par<S: GroupedSource>(
    src: &S,
    flist: &FList,
    prefix_items: &[Item],
    minsup: u64,
    par: Parallelism,
    sink: &mut dyn PatternSink,
) {
    let s = RpStruct::build(src);
    let node = root_views(&s);
    let num_ranks = flist.len();
    metrics::set_max("mine.max_depth", prefix_items.len() as u64);
    let mut root_ctx = Ctx::new(&s, num_ranks, minsup, true);
    let counted = count_node(&node, &mut root_ctx);
    if counted.frequent.is_empty() {
        return;
    }
    if counted.single_group && counted.frequent.len() <= 62 {
        let mut emitter = RankEmitter::new(flist);
        for &it in prefix_items {
            emitter.push_item(it);
        }
        for_each_subset(&counted.frequent, &mut |ranks, sup| emitter.emit_with(sink, ranks, sup));
        return;
    }
    let frequent = counted.frequent;
    root_ctx.tag_lf(&frequent);
    // Root plan sweep (see above): bucket every view at each locally
    // frequent residual pattern rank, every member at each locally
    // frequent outlier rank — anchored at that rank's own entry, so the
    // unit's projection resumes in O(1) instead of rescanning the tail.
    let mut plan: Vec<Bucket> = (0..frequent.len()).map(|_| Bucket::default()).collect();
    for (vi, v) in node.views.iter().enumerate() {
        for &x in &s.gpat[v.gid as usize][v.pat_from as usize..] {
            if root_ctx.lf_tag[x as usize] == root_ctx.lf_gen {
                plan[root_ctx.lf_pos[x as usize] as usize].views.push(vi as u32);
            }
        }
        for &m in &v.members {
            push_lf_outliers(&root_ctx, vi as u32, m, &mut plan);
        }
    }
    for &m in &node.plain {
        push_lf_outliers(&root_ctx, VNONE, m, &mut plan);
    }
    drop(root_ctx);
    let (s, node, frequent, plan) = (&s, &node, &frequent, &plan);
    fan_out_ordered(
        par,
        frequent.len(),
        sink,
        || {
            let mut emitter = RankEmitter::new(flist);
            for &it in prefix_items {
                emitter.push_item(it);
            }
            let state = if S::GROUPED {
                UnitState::Grouped { ctx: Ctx::new(s, num_ranks, minsup, true), run: Vec::new() }
            } else {
                UnitState::Raw(RawUnit::new(num_ranks))
            };
            (state, emitter)
        },
        |(state, emitter), li, sink| {
            let (r, c) = frequent[li];
            emitter.push(r);
            emitter.emit(sink, c);
            // Last-cell skip: the last root-frequent rank has no
            // frequent extension (anti-monotone), so its unit is pure
            // emission.
            if li + 1 < frequent.len() {
                match state {
                    UnitState::Grouped { ctx, run } => {
                        let child = build_child(&node.views, &plan[li], r, run, ctx);
                        if !child.views.is_empty() || !child.plain.is_empty() {
                            metrics::add("mine.projected_dbs", 1);
                            histogram::observe(
                                "mine.projected_db_size",
                                (child.views.len() + child.plain.len()) as u64,
                            );
                            mine_node(child, ctx, &NoPrune, emitter, sink);
                        }
                    }
                    UnitState::Raw(raw) => {
                        raw.mine_unit(s, &plan[li].members, minsup, emitter, sink);
                    }
                }
            }
            emitter.pop();
        },
    );
}

/// Per-worker state of one first-level fan-out unit. The substrate picks
/// the variant statically, so each monomorphization constructs only one.
enum UnitState<'s> {
    /// The generic engine over group views.
    Grouped { ctx: Ctx<'s>, run: Vec<(u32, Member)> },
    /// The classic H-Mine fast path of the group-free substrate.
    Raw(RawUnit),
}

/// Serial constrained mining: `prune` abandons subtrees whose prefix
/// violates a pushed anti-monotone predicate and bounds the extension
/// depth (disallowed *items* are the caller's job — strip them from the
/// substrate before encoding). The Lemma 3.1 shortcut is disabled, since
/// subset enumeration would bypass the per-prefix checks; the [`NoPrune`]
/// instantiation used by the unpruned paths monomorphizes the checks
/// away entirely.
pub fn mine_source_pruned<S: GroupedSource, P: SearchPrune + ?Sized>(
    src: &S,
    flist: &FList,
    prefix_items: &[Item],
    minsup: u64,
    prune: &P,
    sink: &mut dyn PatternSink,
) {
    let s = RpStruct::build(src);
    let node = root_views(&s);
    metrics::set_max("mine.max_depth", prefix_items.len() as u64);
    let mut ctx = Ctx::new(&s, flist.len(), minsup, false);
    let mut emitter = RankEmitter::new(flist);
    for &it in prefix_items {
        emitter.push_item(it);
    }
    mine_node(node, &mut ctx, prune, &mut emitter, sink);
}

/// Builds the root node's group views and plain member list over `s`.
fn root_views(s: &RpStruct) -> Node {
    let mut views = Vec::with_capacity(s.gpat.len());
    let mut plain = Vec::new();
    let mut group_tail_count = 0usize;
    for gid in 0..s.gpat.len() as u32 {
        let members: Vec<Member> =
            s.gtails[gid as usize].iter().map(|&t| (t, s.tail_first[t as usize])).collect();
        let bare = s.gcount[gid as usize] - members.len() as u64;
        group_tail_count += members.len();
        views.push(GroupView { gid, pat_from: 0, members, bare, cur: u32::MAX });
    }
    for t in group_tail_count as u32..s.tail_first.len() as u32 {
        debug_assert_eq!(s.tail_group[t as usize], GNONE);
        plain.push((t, s.tail_first[t as usize]));
    }
    Node { views, plain }
}

/// Queues `m` (of view `vi`, or plain when `VNONE`) at every locally
/// frequent outlier rank — the root plan sweep's member rule. The queued
/// anchor is the matching entry itself, so the consuming unit's
/// projection finds it without rescanning.
fn push_lf_outliers(ctx: &Ctx<'_>, vi: u32, m: Member, plan: &mut [Bucket]) {
    let mut e = m.1 as usize;
    loop {
        let x = ctx.s.eitem[e];
        if x == SENT {
            return;
        }
        if ctx.lf_tag[x as usize] == ctx.lf_gen {
            plan[ctx.lf_pos[x as usize] as usize].members.push((vi, (m.0, e as u32)));
        }
        e += 1;
    }
}

/// Counting outcome of one node.
struct Counted {
    frequent: Vec<(u32, u64)>,
    /// Lemma 3.1: every occurrence of every frequent rank lies in a
    /// single group view's pattern.
    single_group: bool,
}

/// Counts candidate extensions of the node: residual pattern items once
/// per view (weight = member count), outliers and plain tuples per
/// occurrence.
fn count_node(node: &Node, ctx: &mut Ctx<'_>) -> Counted {
    let track_src = !node.views.is_empty();
    let mut group_hits = 0u64;
    let mut touches = 0u64;
    for (vi, v) in node.views.iter().enumerate() {
        let c = v.count();
        for k in v.pat_from as usize..ctx.s.gpat[v.gid as usize].len() {
            let x = ctx.s.gpat[v.gid as usize][k];
            ctx.scratch.add(x, c);
            ctx.merge_src(x, vi as u32);
            group_hits += 1;
        }
        for &m in &v.members {
            touches += ctx.count_member(m, true);
        }
    }
    for &m in &node.plain {
        touches += ctx.count_member(m, track_src);
    }
    if group_hits > 0 {
        metrics::add("mine.group_hits", group_hits);
    }
    metrics::add("mine.tuple_touches", touches);
    histogram::observe("mine.touches_per_projection", touches);
    metrics::add("mine.candidate_tests", ctx.scratch.touched().len() as u64);
    let mut frequent: Vec<(u32, u64)> = ctx
        .scratch
        .touched()
        .iter()
        .map(|&x| (x, ctx.scratch.get(x)))
        .filter(|&(_, c)| c >= ctx.minsup)
        .collect();
    frequent.sort_unstable_by_key(|&(x, _)| x);
    let single_group = track_src
        && match frequent.split_first() {
            Some((&(x0, _), rest)) => {
                let g0 = ctx.src[x0 as usize];
                g0 != SRC_MIXED && rest.iter().all(|&(x, _)| ctx.src[x as usize] == g0)
            }
            None => false,
        };
    if track_src {
        for &x in ctx.scratch.touched() {
            ctx.src[x as usize] = SRC_NONE;
        }
    }
    ctx.scratch.clear();
    Counted { frequent, single_group }
}

/// Queues a view on its first locally frequent pattern rank after
/// `after` (its group-link position), and queues its members whose first
/// locally frequent outlier precedes that rank on their item-links. A
/// view with no frequent pattern rank left dissolves: its members carry
/// on individually.
fn bucket_view(
    views: &mut [GroupView],
    vi: u32,
    after: i64,
    buckets: &mut [Bucket],
    ctx: &Ctx<'_>,
) {
    let v = &views[vi as usize];
    match ctx.first_lf_pattern(v, after) {
        Some(p) => {
            buckets[ctx.lf_pos[p as usize] as usize].views.push(vi);
            for &m in &v.members {
                if let Some((f, e)) = ctx.first_lf_outlier(m, after) {
                    if f < p {
                        buckets[ctx.lf_pos[f as usize] as usize].members.push((vi, (m.0, e)));
                    }
                }
            }
            views[vi as usize].cur = p;
        }
        None => {
            for &m in &v.members {
                if let Some((f, e)) = ctx.first_lf_outlier(m, after) {
                    buckets[ctx.lf_pos[f as usize] as usize].members.push((vi, (m.0, e)));
                }
            }
            views[vi as usize].cur = u32::MAX;
        }
    }
}

/// Queues an individual member (of view `vi`, or plain when `VNONE`) on
/// its first locally frequent outlier after `after` — unless that rank
/// is already covered by the owning view's queue position.
fn bucket_member(
    views: &[GroupView],
    vi: u32,
    m: Member,
    after: i64,
    buckets: &mut [Bucket],
    ctx: &Ctx<'_>,
) {
    if let Some((f, e)) = ctx.first_lf_outlier(m, after) {
        let covered_from = if vi == VNONE { u32::MAX } else { views[vi as usize].cur };
        if f < covered_from || covered_from == u32::MAX {
            buckets[ctx.lf_pos[f as usize] as usize].members.push((vi, (m.0, e)));
        }
    }
}

/// Depth-first search over one node (procedure Recycle-HM, Figure 8,
/// with Lemma 3.1 as lines 1–2). Tuples hop between per-rank buckets
/// exactly like H-Mine queue relinks, so each extension only pays for
/// its own projection. `prune` gates emission and descent; the queues
/// always relink so later ranks still see every tuple.
fn mine_node<P: SearchPrune + ?Sized>(
    mut node: Node,
    ctx: &mut Ctx<'_>,
    prune: &P,
    emitter: &mut RankEmitter<'_>,
    sink: &mut dyn PatternSink,
) {
    metrics::set_max("mine.max_depth", emitter.depth() as u64);
    let counted = count_node(&node, ctx);
    if counted.frequent.is_empty() {
        return;
    }
    if ctx.shortcut && counted.single_group && counted.frequent.len() <= 62 {
        for_each_subset(&counted.frequent, &mut |ranks, sup| emitter.emit_with(sink, ranks, sup));
        return;
    }
    let frequent = counted.frequent;
    // The *last* locally frequent rank cannot be extended: every rank
    // after it in any tail or residual pattern is locally infrequent
    // here, hence infrequent in its child too (anti-monotone). Its child
    // is never built and its queue never relinks — classic H-Mine's
    // last-cell skip, valid on both substrates. A single-rank node
    // therefore needs no header table at all.
    if let [(r, c)] = frequent[..] {
        emitter.push(r);
        if prune.prefix_ok(emitter.prefix()) {
            emitter.emit(sink, c);
        }
        emitter.pop();
        return;
    }
    ctx.tag_lf(&frequent);
    // Borrow this depth's scratch arena; the recursion below only uses
    // deeper slots, so taking it out of the context is conflict-free.
    let depth = ctx.depth;
    if ctx.levels.len() <= depth {
        ctx.levels.resize_with(depth + 1, LevelScratch::default);
    }
    let mut lvl = std::mem::take(&mut ctx.levels[depth]);
    lvl.reset(frequent.len());
    ctx.depth = depth + 1;
    if node.views.is_empty() {
        // Plain-only node: no group coverage to consult, and anchors are
        // exact, so queue each member straight from its anchor.
        for &m in &node.plain {
            if let Some((f, e)) = ctx.first_lf_from(m.1 as usize) {
                lvl.buckets[ctx.lf_pos[f as usize] as usize].members.push((VNONE, (m.0, e)));
            }
        }
    } else {
        for vi in 0..node.views.len() as u32 {
            bucket_view(&mut node.views, vi, -1, &mut lvl.buckets, ctx);
        }
        for &m in &node.plain {
            bucket_member(&node.views, VNONE, m, -1, &mut lvl.buckets, ctx);
        }
    }
    // Plain members live only in buckets from here on.
    node.plain.clear();

    for li in 0..frequent.len() {
        let (r, c) = frequent[li];
        emitter.push(r);
        // Anti-monotone pushdown: a violating prefix dooms the subtree
        // (but the queues must still relink for the later ranks).
        let prefix_ok = prune.prefix_ok(emitter.prefix());
        if prefix_ok {
            emitter.emit(sink, c);
        }
        if li + 1 == frequent.len() {
            // Last-cell skip (see above): no child, no relink.
            emitter.pop();
            break;
        }
        // `cur` is empty here (reset, or cleared by the previous
        // iteration), so the swap hands this bucket over while keeping
        // both allocations alive for reuse.
        std::mem::swap(&mut lvl.cur, &mut lvl.buckets[li]);

        if prefix_ok && prune.may_extend(emitter.depth()) {
            let child = build_child(&node.views, &lvl.cur, r, &mut lvl.member_run, ctx);
            if !child.views.is_empty() || !child.plain.is_empty() {
                metrics::add("mine.projected_dbs", 1);
                histogram::observe(
                    "mine.projected_db_size",
                    (child.views.len() + child.plain.len()) as u64,
                );
                mine_node(child, ctx, prune, emitter, sink);
                // The recursion reused the tag arrays; restore this node's.
                ctx.tag_lf(&frequent);
            }
        }

        // Relink forward (Fill-RPHeader on the items after r): everything
        // queued at r hops to its next locally frequent rank.
        if node.views.is_empty() {
            // Exact anchors sit *at* the `r` entry, so the hop resumes
            // one entry later with no rank comparison needed.
            for &(_, m) in &lvl.cur.members {
                if let Some((f, e)) = ctx.first_lf_from(m.1 as usize + 1) {
                    lvl.buckets[ctx.lf_pos[f as usize] as usize].members.push((VNONE, (m.0, e)));
                }
            }
        } else {
            for &vi in &lvl.cur.views {
                bucket_view(&mut node.views, vi, r as i64, &mut lvl.buckets, ctx);
            }
            for &(vi, m) in &lvl.cur.members {
                bucket_member(&node.views, vi, m, r as i64, &mut lvl.buckets, ctx);
            }
        }
        lvl.cur.views.clear();
        lvl.cur.members.clear();
        emitter.pop();
    }
    ctx.depth = depth;
    ctx.levels[depth] = lvl;
}

/// Builds the `r`-projection from one bucket: whole views advance past
/// `r` (the paper's group-link move), individual members are grouped by
/// owning view and projected through their `r` entry (the item-link
/// move). `member_run` is caller-provided grouping scratch. Shared by
/// the serial loop of [`mine_node`] and the root fan-out units.
fn build_child(
    views: &[GroupView],
    bucket: &Bucket,
    r: u32,
    member_run: &mut Vec<(u32, Member)>,
    ctx: &Ctx<'_>,
) -> Node {
    let mut child_views: Vec<GroupView> = Vec::new();
    let mut child_plain: Vec<Member> = Vec::new();
    // Degenerate fast path: with no views at all (the raw substrate)
    // every bucketed member is plain and anchored *at* its `r` entry, so
    // projection is one bounds-checked lookahead per member — no
    // grouping, no sort.
    if views.is_empty() {
        child_plain.reserve(bucket.members.len());
        for &(_, m) in &bucket.members {
            debug_assert_eq!(ctx.s.eitem[m.1 as usize], r);
            if ctx.s.eitem[m.1 as usize + 1] != SENT {
                child_plain.push((m.0, m.1 + 1));
            }
        }
        return Node { views: child_views, plain: child_plain };
    }
    for &vi in &bucket.views {
        let v = &views[vi as usize];
        let gpat = &ctx.s.gpat[v.gid as usize];
        // r is in the residual pattern (it is v's queue rank).
        let off = gpat[v.pat_from as usize..]
            .binary_search(&r)
            .expect("queued view contains its queue rank");
        let pat_from = v.pat_from + off as u32 + 1;
        let mut bare = v.bare;
        let mut members = Vec::with_capacity(v.members.len());
        for &m in &v.members {
            match ctx.advance_past(m, r) {
                Some(e) => members.push((m.0, e)),
                None => bare += 1,
            }
        }
        if (pat_from as usize) < gpat.len() {
            child_views.push(GroupView { gid: v.gid, pat_from, members, bare, cur: u32::MAX });
        } else {
            child_plain.extend(members);
        }
    }
    // Individual members: group by owning view to rebuild views.
    member_run.clear();
    member_run.extend(bucket.members.iter().copied());
    member_run.sort_unstable_by_key(|&(vi, _)| vi);
    let mut k = 0;
    while k < member_run.len() {
        let vi = member_run[k].0;
        let mut end = k + 1;
        while end < member_run.len() && member_run[end].0 == vi {
            end += 1;
        }
        if vi == VNONE {
            for &(_, m) in &member_run[k..end] {
                if let Some(e) = ctx.find_entry(m, r) {
                    if ctx.s.eitem[e as usize + 1] != SENT {
                        child_plain.push((m.0, e + 1));
                    }
                }
            }
        } else {
            let v = &views[vi as usize];
            let gpat = &ctx.s.gpat[v.gid as usize];
            let off = gpat[v.pat_from as usize..].partition_point(|&x| x <= r);
            let pat_from = v.pat_from + off as u32;
            let keep_pattern = (pat_from as usize) < gpat.len();
            let mut members = Vec::new();
            let mut bare = 0u64;
            for &(_, m) in &member_run[k..end] {
                let e = ctx.find_entry(m, r).expect("queued member contains its rank");
                if ctx.s.eitem[e as usize + 1] == SENT {
                    bare += 1;
                } else {
                    members.push((m.0, e + 1));
                }
            }
            if keep_pattern {
                if bare > 0 || !members.is_empty() {
                    child_views.push(GroupView {
                        gid: v.gid,
                        pat_from,
                        members,
                        bare,
                        cur: u32::MAX,
                    });
                }
            } else {
                child_plain.extend(members);
            }
        }
        k = end;
    }
    Node { views: child_views, plain: child_plain }
}

/// Queue-link sentinel of the classic fast path.
const NIL: u32 = u32::MAX;

/// One header cell of the classic fast path: an item (rank), its support
/// in the current projection, and the head of its tuple queue.
struct RawCell {
    rank: u32,
    count: u64,
    head: u32,
}

/// The classic H-Mine fast path of the group-free substrate (see the
/// module doc): per-worker buffers reused across first-level units.
///
/// `eitem`/`next` are the unit's private hyper-structure — suffix
/// entries compacted from the shared arena, threaded by one intrusive
/// hyperlink per entry. The single-link trick is sound for the same
/// reason as in the original algorithm: during the depth-first search an
/// entry is live in at most one queue at a time, and descendants' stale
/// links are dead by the time an ancestor relinks the entry forward.
/// `active[rank] == depth` ⇔ rank belongs to the current level's header
/// table (levels nest, so a depth number plus restore-on-exit suffices);
/// `cell_of` maps each active rank to its header cell.
struct RawUnit {
    eitem: Vec<u32>,
    next: Vec<u32>,
    firsts: Vec<u32>,
    active: Vec<u32>,
    cell_of: Vec<u32>,
    scratch: ScratchCounts,
    /// Slab-accounting mirror of [`gogreen_data::ProjectionArena`]: bytes
    /// *used* (not reserved) by each unit's compacted hyper-structure and
    /// the number of non-empty fills, flushed to the `alloc.*` counters
    /// on drop. Used-bytes, unlike capacity, is thread-invariant.
    used_bytes: u64,
    reuses: u64,
}

impl RawUnit {
    fn new(num_ranks: usize) -> Self {
        RawUnit {
            eitem: Vec::new(),
            next: Vec::new(),
            firsts: Vec::new(),
            active: vec![0; num_ranks],
            cell_of: vec![NIL; num_ranks],
            scratch: ScratchCounts::new(num_ranks),
            used_bytes: 0,
            reuses: 0,
        }
    }

    /// Mines one first-level unit: compact the suffixes past each
    /// member's anchor (counting them in the same pass), build the
    /// unit-local header table and queues, and run the classic level
    /// search. The whole subtree touches a working set sized to this
    /// unit, not to the full database.
    fn mine_unit(
        &mut self,
        s: &RpStruct,
        members: &[(u32, Member)],
        minsup: u64,
        emitter: &mut RankEmitter<'_>,
        sink: &mut dyn PatternSink,
    ) {
        self.eitem.clear();
        self.firsts.clear();
        let mut touches = 0u64;
        for &(_, m) in members {
            let mut e = m.1 as usize + 1;
            if s.eitem[e] == SENT {
                continue;
            }
            self.firsts.push(self.eitem.len() as u32);
            loop {
                let x = s.eitem[e];
                if x == SENT {
                    break;
                }
                self.eitem.push(x);
                self.scratch.add(x, 1);
                touches += 1;
                e += 1;
            }
            self.eitem.push(SENT);
        }
        metrics::add("mine.tuple_touches", touches);
        histogram::observe("mine.touches_per_projection", touches);
        metrics::add("mine.candidate_tests", self.scratch.touched().len() as u64);
        if !self.firsts.is_empty() {
            self.reuses += 1;
            self.used_bytes += (self.eitem.len() + self.firsts.len()) as u64 * 4;
        }
        let sub = self.scratch.drain_frequent(minsup);
        if sub.is_empty() {
            return;
        }
        metrics::add("mine.projected_dbs", 1);
        histogram::observe("mine.projected_db_size", self.firsts.len() as u64);
        self.next.clear();
        self.next.resize(self.eitem.len(), NIL);
        self.used_bytes += self.next.len() as u64 * 4;
        let mut cells: Vec<RawCell> =
            sub.iter().map(|&(x, c)| RawCell { rank: x, count: c, head: NIL }).collect();
        for (i, c) in cells.iter().enumerate() {
            self.active[c.rank as usize] = 1;
            self.cell_of[c.rank as usize] = i as u32;
        }
        // Queue each tuple on its first *active* entry (a tuple may
        // start with locally infrequent ranks).
        for fi in 0..self.firsts.len() {
            let mut e = self.firsts[fi] as usize;
            loop {
                let x = self.eitem[e];
                if x == SENT {
                    break;
                }
                if self.active[x as usize] == 1 {
                    let ci = self.cell_of[x as usize] as usize;
                    self.next[e] = cells[ci].head;
                    cells[ci].head = e as u32;
                    break;
                }
                e += 1;
            }
        }
        mine_level_raw(self, &mut cells, 1, minsup, emitter, sink);
        // Un-tag this unit's ranks so the next unit starts clean.
        for &(x, _) in &sub {
            self.active[x as usize] = 0;
            self.cell_of[x as usize] = NIL;
        }
    }
}

impl Drop for RawUnit {
    fn drop(&mut self) {
        if self.used_bytes > 0 {
            metrics::add("alloc.projection_bytes", self.used_bytes);
            metrics::add("alloc.arena_reuses", self.reuses);
        }
    }
}

/// Processes one header table of the classic fast path: for each cell in
/// ascending rank order, emit its pattern, count its locally frequent
/// extensions, thread its queue into the sub-header and recurse, then
/// relink the queue forward within this level. The last cell needs none
/// of that — every later rank is locally infrequent here, hence in the
/// child too (the same anti-monotone skip the generic search takes).
fn mine_level_raw(
    u: &mut RawUnit,
    cells: &mut [RawCell],
    depth: u32,
    minsup: u64,
    emitter: &mut RankEmitter<'_>,
    sink: &mut dyn PatternSink,
) {
    metrics::set_max("mine.max_depth", emitter.depth() as u64);
    for idx in 0..cells.len() {
        emitter.push(cells[idx].rank);
        emitter.emit(sink, cells[idx].count);
        if idx + 1 == cells.len() {
            emitter.pop();
            break;
        }
        // Pass 1 — count extensions of this cell among its queue's
        // tuples, filtered to this level's active ranks (nothing else
        // can be frequent deeper).
        let mut touches = 0u64;
        let mut e = cells[idx].head;
        let mut rows = 0u64;
        while e != NIL {
            rows += 1;
            let mut p = e as usize + 1;
            loop {
                let x = u.eitem[p];
                if x == SENT {
                    break;
                }
                if u.active[x as usize] == depth {
                    u.scratch.add(x, 1);
                    touches += 1;
                }
                p += 1;
            }
            e = u.next[e as usize];
        }
        metrics::add("mine.tuple_touches", touches);
        histogram::observe("mine.touches_per_projection", touches);
        metrics::add("mine.candidate_tests", u.scratch.touched().len() as u64);
        let sub = u.scratch.drain_frequent(minsup);
        if !sub.is_empty() {
            metrics::add("mine.projected_dbs", 1);
            histogram::observe("mine.projected_db_size", rows);
            // Enter sub-level: activate its ranks, saving parent state.
            let mut subcells: Vec<RawCell> =
                sub.iter().map(|&(x, c)| RawCell { rank: x, count: c, head: NIL }).collect();
            let saved: Vec<(u32, u32)> =
                sub.iter().map(|&(x, _)| (x, u.cell_of[x as usize])).collect();
            for (i, c) in subcells.iter().enumerate() {
                u.active[c.rank as usize] = depth + 1;
                u.cell_of[c.rank as usize] = i as u32;
            }
            // Pass 2 — thread each tuple into the queue of its first
            // sub-active entry after the cell's rank.
            let mut e = cells[idx].head;
            while e != NIL {
                let succ = u.next[e as usize];
                let mut p = e as usize + 1;
                loop {
                    let x = u.eitem[p];
                    if x == SENT {
                        break;
                    }
                    if u.active[x as usize] == depth + 1 {
                        let ci = u.cell_of[x as usize] as usize;
                        u.next[p] = subcells[ci].head;
                        subcells[ci].head = p as u32;
                        break;
                    }
                    p += 1;
                }
                e = succ;
            }
            mine_level_raw(u, &mut subcells, depth + 1, minsup, emitter, sink);
            // Exit sub-level: restore parent activity and cell map.
            for (x, old_cell) in saved {
                u.active[x as usize] = depth;
                u.cell_of[x as usize] = old_cell;
            }
        }
        // Pass 3 — relink: move each tuple of this queue to the queue of
        // its next item active at THIS level, so later cells see it.
        let mut e = cells[idx].head;
        while e != NIL {
            let succ = u.next[e as usize];
            let mut p = e as usize + 1;
            loop {
                let x = u.eitem[p];
                if x == SENT {
                    break;
                }
                if u.active[x as usize] == depth {
                    let ci = u.cell_of[x as usize] as usize;
                    u.next[p] = cells[ci].head;
                    cells[ci].head = p as u32;
                    break;
                }
                p += 1;
            }
            e = succ;
        }
        emitter.pop();
    }
}
