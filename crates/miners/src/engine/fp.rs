//! The FP-growth family engine: conditional-group forests over
//! [`FpTree`]s (paper §4.2), generic over [`GroupedSource`].
//!
//! The paper sketches the adaptation as "treat each group head as a
//! special item in the upper part of each prefix-tree branch" and defers
//! details to an unavailable technical report. Our realization keeps the
//! group head literally *above* the tree: the database becomes a forest
//! of **conditional groups**, each a `(residual pattern, member count,
//! FP-tree over the members' outlying items)` triple. The plain
//! (uncovered) tuples form one conditional group with an empty pattern —
//! on the degenerate [`gogreen_data::PlainRanks`] substrate that sole
//! group IS the database and the search is classic FP-growth: one tree,
//! conditional-pattern-base extraction per header row, and the
//! single-path subset shortcut.
//!
//! Both compression savings survive in this shape:
//!
//! * **Counting**: a group's pattern items are counted once with the
//!   group count; outlier supports are read off the per-group FP-tree
//!   header tables.
//! * **Projection**: on a pattern item, a group is projected in O(1) —
//!   the pattern shrinks and the (shared, reference-counted) outlier
//!   tree is kept with a raised *rank bound*, because discarded ranks
//!   live at the bottom of every branch (trees are built in descending
//!   rank order). Only projection through an *outlier* item pays for
//!   conditional-pattern-base extraction, exactly as in FP-growth.

use crate::common::{fan_out_ordered, for_each_subset, RankEmitter, ScratchCounts};
use crate::fpgrowth::{FpTree, FpTreeBuilder, FP_NIL};
use gogreen_data::{FList, GroupedSource, PatternSink, ProjectionArena, TupleSlices};
use gogreen_obs::{histogram, metrics};
use gogreen_util::pool::{par_chunks, Parallelism};
use std::sync::Arc;

const SRC_NONE: u32 = u32::MAX;
const SRC_MIXED: u32 = u32::MAX - 1;

/// One group in the current projection.
struct CondGroup {
    /// Residual pattern ranks (ascending). Empty for the plain partition.
    pattern: Vec<u32>,
    /// Members in this projection.
    count: u64,
    /// Outlier store; `None` when no member has relevant outliers.
    /// `Arc` rather than `Rc` so fan-out workers can share root trees.
    tree: Option<Arc<FpTree>>,
    /// Ranks ≤ `bound` in the tree are projected away (they sit below
    /// every relevant prefix, so climbs never see them; header rows with
    /// rank ≤ bound are skipped).
    bound: i64,
}

struct Ctx {
    scratch: ScratchCounts,
    src: Vec<u32>,
    /// Conditional-base slab. Every extraction resets it, fills it with
    /// the climbed prefix paths (one weighted row each), and fully
    /// consumes it building the child tree *before* recursing — so one
    /// arena per context suffices and steady-state DFS allocates nothing.
    arena: ProjectionArena,
    minsup: u64,
}

impl Ctx {
    fn new(num_ranks: usize, minsup: u64) -> Self {
        Ctx {
            scratch: ScratchCounts::new(num_ranks),
            src: vec![SRC_NONE; num_ranks],
            arena: ProjectionArena::new(),
            minsup,
        }
    }
}

/// Mines `src` against `flist` at the absolute threshold `minsup`, the
/// root's frequent ranks fanned out over `par` scoped threads.
///
/// With a non-serial `par`, the per-group outlier trees of the root
/// forest are also built on worker threads (the forest is embarrassingly
/// parallel — each tree reads only its own group; trees are shared via
/// `Arc`, read-only once built). The emitted stream is byte-identical
/// for any thread count.
pub fn mine_source_par<S: GroupedSource + Sync>(
    src: &S,
    flist: &FList,
    minsup: u64,
    par: Parallelism,
    sink: &mut dyn PatternSink,
) {
    let mut scratch = ScratchCounts::new(flist.len());
    let cgs = build_root(src, &mut scratch, par);
    mine_root(&cgs, !S::GROUPED, flist, minsup, par, sink);
}

/// Root dispatch: the single-path shortcut, the count, and the Lemma 3.1
/// check run once on the calling thread; each frequent root rank then
/// projects and mines over the shared conditional groups as one fan-out
/// unit. Pattern-item projections clone the group's `Arc` tree — the
/// underlying node arenas are never written after construction, so
/// sharing across workers is safe by construction.
///
/// `raw` marks the group-free substrate, where the node shape is known
/// statically: a sole pattern-free group forever (outlier projection of
/// such a group yields another one). Its units dispatch to the classic
/// FP-growth recursion ([`mine_sole_row`]), which reads local frequency
/// straight off header rows instead of running the generic counting
/// pass — the degenerate substrate promises the group machinery
/// vanishes, not merely that it tolerates empty groups.
fn mine_root(
    cgs: &[CondGroup],
    raw: bool,
    flist: &FList,
    minsup: u64,
    par: Parallelism,
    sink: &mut dyn PatternSink,
) {
    if cgs.is_empty() {
        return;
    }
    {
        let mut emitter = RankEmitter::new(flist);
        if try_single_path(cgs, minsup, &mut emitter, sink) {
            return;
        }
    }
    let mut root_ctx = Ctx::new(flist.len(), minsup);
    let (frequent, single_group) = count_cgs(cgs, &mut root_ctx);
    if frequent.is_empty() {
        return;
    }
    if single_group.is_some() && frequent.len() <= 62 {
        let mut emitter = RankEmitter::new(flist);
        for_each_subset(&frequent, &mut |ranks, sup| emitter.emit_with(sink, ranks, sup));
        return;
    }
    metrics::set_max("mine.max_depth", 1);
    let frequent = &frequent;
    let sole_tree = if raw { cgs.first().and_then(|cg| cg.tree.as_deref()) } else { None };
    fan_out_ordered(
        par,
        frequent.len(),
        sink,
        || (Ctx::new(flist.len(), minsup), RankEmitter::new(flist), Vec::with_capacity(16)),
        |(ctx, emitter, climb), k, sink| {
            let (r, _) = frequent[k];
            if let Some(tree) = sole_tree {
                let row = tree.headers().binary_search_by_key(&r, |h| h.rank).unwrap();
                mine_sole_row(tree, row, ctx, climb, emitter, sink);
                return;
            }
            let (r, c) = frequent[k];
            emitter.push(r);
            emitter.emit(sink, c);
            let children = project(cgs, r, frequent, ctx, climb);
            if !children.is_empty() {
                metrics::add("mine.projected_dbs", 1);
                histogram::observe("mine.projected_db_size", children.len() as u64);
                mine_node(&children, ctx, emitter, sink);
            }
            emitter.pop();
        },
    );
}

/// Classic FP-growth over one (conditional) tree of the raw substrate.
///
/// Reachable only through [`mine_sole_row`], whose conditional trees are
/// thresholded at `minsup` — so header rows ARE the locally frequent
/// ranks, ascending, and the generic per-node count/project machinery
/// (counting pass, source tracking, `CondGroup` vector, `Arc` wrap)
/// drops out. Emits the byte-identical stream the generic path produces
/// on a degenerately grouped database (pinned by the engine-unification
/// suite).
fn mine_sole_tree(
    tree: &FpTree,
    ctx: &mut Ctx,
    emitter: &mut RankEmitter<'_>,
    sink: &mut dyn PatternSink,
) {
    metrics::set_max("mine.max_depth", emitter.depth() as u64);
    if tree.headers().is_empty() {
        return;
    }
    if let Some(path) = tree.single_path() {
        let kept: Vec<(u32, u64)> = path.into_iter().filter(|&(_, c)| c >= ctx.minsup).collect();
        if kept.len() <= 62 {
            for_each_subset(&kept, &mut |ranks, sup| emitter.emit_with(sink, ranks, sup));
            return;
        }
    }
    let mut climb = Vec::with_capacity(16);
    for row in 0..tree.headers().len() {
        mine_sole_row(tree, row, ctx, &mut climb, emitter, sink);
    }
}

/// One header row of a raw-substrate tree: emit its pattern, extract the
/// conditional pattern base (no local-frequency retain — every climbed
/// rank has a header row, hence is locally frequent), build the
/// `minsup`-thresholded conditional tree, and recurse.
fn mine_sole_row(
    tree: &FpTree,
    row: usize,
    ctx: &mut Ctx,
    climb: &mut Vec<u32>,
    emitter: &mut RankEmitter<'_>,
    sink: &mut dyn PatternSink,
) {
    let hdr = tree.headers()[row];
    emitter.push(hdr.rank);
    emitter.emit(sink, hdr.count);
    ctx.arena.reset();
    let mut touches = 0u64;
    let mut node = hdr.head;
    while node != FP_NIL {
        let w = tree.count_of(node);
        tree.climb_into(node, climb);
        if !climb.is_empty() {
            for &x in climb.iter() {
                ctx.scratch.add(x, w);
            }
            touches += climb.len() as u64;
            ctx.arena.push_weighted(climb, w);
        }
        node = tree.next_same_rank(node);
    }
    metrics::add("mine.tuple_touches", touches);
    histogram::observe("mine.touches_per_projection", touches);
    metrics::add("mine.candidate_tests", ctx.scratch.touched().len() as u64);
    let freq = ctx.scratch.drain_frequent(ctx.minsup);
    if !freq.is_empty() {
        metrics::add("mine.projected_dbs", 1);
        histogram::observe("mine.projected_db_size", ctx.arena.rows().len() as u64);
        let mut b = FpTreeBuilder::new(&freq);
        let mut filtered: Vec<u32> = Vec::new();
        for (ranks, &w) in ctx.arena.rows().iter().zip(ctx.arena.weights()) {
            filtered.clear();
            filtered.extend(
                ranks.iter().filter(|&&x| freq.binary_search_by_key(&x, |&(f, _)| f).is_ok()),
            );
            if !filtered.is_empty() {
                b.insert_desc(filtered.iter().rev().copied(), w);
            }
        }
        mine_sole_tree(&b.finish(), ctx, emitter, sink);
    }
    emitter.pop();
}

/// The FP-growth single-path shortcut, lifted to the conditional-group
/// node shape: when the node is a sole pattern-free group whose tree is
/// one downward path, the complete pattern set of the sub-space is all
/// combinations of the path elements that are themselves frequent
/// (path counts are non-increasing root-downward, so any subset touching
/// a filtered element is infrequent too). Returns whether it fired.
fn try_single_path(
    cgs: &[CondGroup],
    minsup: u64,
    emitter: &mut RankEmitter<'_>,
    sink: &mut dyn PatternSink,
) -> bool {
    let [cg] = cgs else { return false };
    if !cg.pattern.is_empty() {
        return false;
    }
    let Some(tree) = &cg.tree else { return false };
    let Some(path) = tree.single_path() else { return false };
    let kept: Vec<(u32, u64)> =
        path.into_iter().filter(|&(x, c)| (x as i64) > cg.bound && c >= minsup).collect();
    if kept.len() > 62 {
        return false;
    }
    for_each_subset(&kept, &mut |ranks, sup| emitter.emit_with(sink, ranks, sup));
    true
}

/// Builds one group's outlier FP-tree (`None` when there is nothing to
/// store). Insertion order is the tuple order, so the tree shape is
/// deterministic wherever this runs. `min` is the header threshold: the
/// root of a degenerate (plain-only) source keeps only globally frequent
/// ranks — classic FP-growth — while grouped sources keep every rank
/// (an outlier that is locally rare may still combine with pattern items
/// into a frequent extension).
fn build_tree(tuples: TupleSlices<'_>, scratch: &mut ScratchCounts, min: u64) -> Option<FpTree> {
    if tuples.is_empty() {
        return None;
    }
    // Counting ignores row boundaries, so sweep the flat CSR buffer.
    for &x in tuples.flat() {
        scratch.add(x, 1);
    }
    let freq = scratch.drain_frequent(min);
    if freq.is_empty() {
        return None;
    }
    let mut b = FpTreeBuilder::new(&freq);
    if min > 1 {
        let mut filtered: Vec<u32> = Vec::new();
        for t in tuples {
            filtered.clear();
            filtered
                .extend(t.iter().filter(|&&x| freq.binary_search_by_key(&x, |&(f, _)| f).is_ok()));
            if !filtered.is_empty() {
                b.insert_desc(filtered.iter().rev().copied(), 1);
            }
        }
    } else {
        for t in tuples {
            b.insert_desc(t.iter().rev().copied(), 1);
        }
    }
    Some(b.finish())
}

/// Builds the root conditional groups from the source. The per-group
/// trees are independent, so with a non-serial `par` they are
/// constructed on worker threads ([`FpTree`] is plain data and `Send`;
/// the `Arc` sharing wrapper is applied after the join, on this thread).
fn build_root<S: GroupedSource + Sync>(
    src: &S,
    scratch: &mut ScratchCounts,
    par: Parallelism,
) -> Vec<CondGroup> {
    let num_groups = src.num_groups();
    let mut cgs = Vec::with_capacity(num_groups + 1);
    if S::GROUPED {
        if par.for_items(num_groups) <= 1 {
            for g in 0..num_groups {
                let tree = build_tree(src.group_outliers(g), scratch, 1).map(Arc::new);
                cgs.push(CondGroup {
                    pattern: src.group_pattern(g).to_vec(),
                    count: src.group_count(g),
                    tree,
                    bound: -1,
                });
            }
        } else {
            let gs: Vec<u32> = (0..num_groups as u32).collect();
            let parts = par_chunks(par, &gs, |_, chunk| {
                let mut scratch = ScratchCounts::new(src.num_ranks());
                chunk
                    .iter()
                    .map(|&g| build_tree(src.group_outliers(g as usize), &mut scratch, 1))
                    .collect::<Vec<_>>()
            });
            for (lo, trees) in parts {
                for (g, tree) in (lo..num_groups).zip(trees) {
                    cgs.push(CondGroup {
                        pattern: src.group_pattern(g).to_vec(),
                        count: src.group_count(g),
                        tree: tree.map(Arc::new),
                        bound: -1,
                    });
                }
            }
        }
    }
    if !src.plain().is_empty() {
        // Every rank survived global F-list encoding, so threshold 1 and
        // the real threshold build the identical root tree here.
        let tree = build_tree(src.plain(), scratch, 1).map(Arc::new);
        cgs.push(CondGroup {
            pattern: Vec::new(),
            count: src.plain().len() as u64,
            tree,
            bound: -1,
        });
    }
    cgs
}

/// Counts one node's conditional groups: pattern items via group counts,
/// outliers via tree headers. Both paths are group-at-a-time: one
/// weighted add stands in for a whole group (or header row) of member
/// tuples. Returns the locally frequent `(rank, count)` pairs (ascending)
/// and the single source group if Lemma 3.1 applies.
fn count_cgs(cgs: &[CondGroup], ctx: &mut Ctx) -> (Vec<(u32, u64)>, Option<u32>) {
    let mut group_hits = 0u64;
    for (ci, cg) in cgs.iter().enumerate() {
        for &x in &cg.pattern {
            ctx.scratch.add(x, cg.count);
            group_hits += 1;
            let s = &mut ctx.src[x as usize];
            *s = match *s {
                SRC_NONE => ci as u32,
                cur if cur == ci as u32 => cur,
                _ => SRC_MIXED,
            };
        }
        if let Some(tree) = &cg.tree {
            for h in tree.headers() {
                if (h.rank as i64) > cg.bound {
                    ctx.scratch.add(h.rank, h.count);
                    ctx.src[h.rank as usize] = SRC_MIXED;
                }
            }
        }
    }
    if group_hits > 0 {
        metrics::add("mine.group_hits", group_hits);
    }
    metrics::add("mine.candidate_tests", ctx.scratch.touched().len() as u64);
    let mut frequent: Vec<(u32, u64)> = ctx
        .scratch
        .touched()
        .iter()
        .map(|&x| (x, ctx.scratch.get(x)))
        .filter(|&(_, c)| c >= ctx.minsup)
        .collect();
    frequent.sort_unstable_by_key(|&(x, _)| x);
    let single_group = match frequent.split_first() {
        Some((&(x0, _), rest)) => {
            let g0 = ctx.src[x0 as usize];
            (g0 != SRC_MIXED && rest.iter().all(|&(x, _)| ctx.src[x as usize] == g0)).then_some(g0)
        }
        None => None,
    };
    for &x in ctx.scratch.touched() {
        ctx.src[x as usize] = SRC_NONE;
    }
    ctx.scratch.clear();
    (frequent, single_group)
}

/// Mines one node of the search: single-path and Lemma 3.1 shortcuts if
/// they fire, otherwise extend by every locally frequent rank.
fn mine_node(
    cgs: &[CondGroup],
    ctx: &mut Ctx,
    emitter: &mut RankEmitter<'_>,
    sink: &mut dyn PatternSink,
) {
    metrics::set_max("mine.max_depth", emitter.depth() as u64);
    if try_single_path(cgs, ctx.minsup, emitter, sink) {
        return;
    }
    let (frequent, single_group) = count_cgs(cgs, ctx);
    if frequent.is_empty() {
        return;
    }
    if single_group.is_some() && frequent.len() <= 62 {
        for_each_subset(&frequent, &mut |ranks, sup| emitter.emit_with(sink, ranks, sup));
        return;
    }
    let mut climb = Vec::with_capacity(16);
    for &(r, c) in &frequent {
        emitter.push(r);
        emitter.emit(sink, c);
        let children = project(cgs, r, &frequent, ctx, &mut climb);
        if !children.is_empty() {
            metrics::add("mine.projected_dbs", 1);
            histogram::observe("mine.projected_db_size", children.len() as u64);
            mine_node(&children, ctx, emitter, sink);
        }
        emitter.pop();
    }
}

/// Projects every conditional group on rank `r`. `node_frequent` (sorted)
/// pre-filters conditional bases: ranks infrequent at this node cannot
/// become frequent deeper (anti-monotonicity).
fn project(
    cgs: &[CondGroup],
    r: u32,
    node_frequent: &[(u32, u64)],
    ctx: &mut Ctx,
    climb: &mut Vec<u32>,
) -> Vec<CondGroup> {
    let is_node_frequent = |x: u32| node_frequent.binary_search_by_key(&x, |&(fr, _)| fr).is_ok();
    // A sole pattern-free group is classic FP-growth: its conditional
    // tree can be thresholded at `minsup` outright (nothing outside the
    // tree can ever lift a rare rank), which keeps child trees minimal
    // and the single-path shortcut firing exactly as in the baseline.
    let sole = matches!(cgs, [cg] if cg.pattern.is_empty());
    let tree_min = if sole { ctx.minsup } else { 1 };
    let mut out = Vec::new();
    // Per-path work of conditional-base extraction (the part compression
    // does NOT save — pattern-item projections above are O(1)).
    let mut touches = 0u64;
    for cg in cgs {
        match cg.pattern.binary_search(&r) {
            Ok(pos) => {
                // Pattern item: O(1) projection — every member follows,
                // the shared tree is kept with a raised bound.
                let pattern = cg.pattern[pos + 1..].to_vec();
                let tree_relevant = cg
                    .tree
                    .as_ref()
                    .is_some_and(|t| t.headers().last().is_some_and(|h| h.rank > r));
                if pattern.is_empty() && !tree_relevant {
                    continue;
                }
                out.push(CondGroup {
                    pattern,
                    count: cg.count,
                    tree: if tree_relevant { cg.tree.clone() } else { None },
                    bound: r as i64,
                });
            }
            Err(ppos) => {
                // Outlier item: extract r's conditional pattern base.
                let Some(tree) = &cg.tree else { continue };
                if (r as i64) <= cg.bound {
                    continue;
                }
                let Some(hdr) = tree.header_for(r) else { continue };
                let hdr = *hdr;
                let pattern = cg.pattern[ppos..].to_vec();
                // The base lives in the context arena only until the
                // child tree below is built — one generation per
                // extraction, no per-path allocation.
                ctx.arena.reset();
                let mut node = hdr.head;
                while node != FP_NIL {
                    let w = tree.count_of(node);
                    tree.climb_into(node, climb);
                    climb.retain(|&x| is_node_frequent(x));
                    if !climb.is_empty() {
                        for &x in climb.iter() {
                            ctx.scratch.add(x, w);
                        }
                        touches += climb.len() as u64;
                        ctx.arena.push_weighted(climb, w);
                    }
                    node = tree.next_same_rank(node);
                }
                let freq = ctx.scratch.drain_frequent(tree_min);
                let new_tree =
                    if freq.is_empty() {
                        None
                    } else {
                        let mut b = FpTreeBuilder::new(&freq);
                        let base = ctx.arena.rows().iter().zip(ctx.arena.weights());
                        if tree_min > 1 {
                            let mut filtered: Vec<u32> = Vec::new();
                            for (ranks, &w) in base {
                                filtered.clear();
                                filtered.extend(ranks.iter().filter(|&&x| {
                                    freq.binary_search_by_key(&x, |&(f, _)| f).is_ok()
                                }));
                                if !filtered.is_empty() {
                                    b.insert_desc(filtered.iter().rev().copied(), w);
                                }
                            }
                        } else {
                            for (ranks, &w) in base {
                                b.insert_desc(ranks.iter().rev().copied(), w);
                            }
                        }
                        Some(Arc::new(b.finish()))
                    };
                if pattern.is_empty() && new_tree.is_none() {
                    continue;
                }
                out.push(CondGroup { pattern, count: hdr.count, tree: new_tree, bound: -1 });
            }
        }
    }
    metrics::add("mine.tuple_touches", touches);
    histogram::observe("mine.touches_per_projection", touches);
    out
}
