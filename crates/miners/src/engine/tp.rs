//! The Tree Projection family engine: depth-first lexicographic-tree
//! search with triangular pair-count matrices (paper §4.2), generic over
//! [`GroupedSource`].
//!
//! As in the depth-first Tree Projection baseline, each lexicographic
//! node materializes its projected transactions and fills a triangular
//! matrix with the supports of all extension pairs in one pass. The
//! grouped substrate changes *what gets counted*:
//!
//! * pattern × pattern pairs of a group are bumped **once** with the
//!   group's member count instead of once per member;
//! * pattern × outlier and outlier × outlier pairs are bumped per member
//!   tuple, but only over the (short) outlier lists;
//! * projection moves group heads: on a pattern item the whole group
//!   moves with a shortened pattern; on an outlier item only the members
//!   containing it move, carrying the residual pattern.
//!
//! A node's member lists live in one flat CSR slab per search depth
//! ([`ProjectionArena`]): a [`TpGroup`] is a row *range* of that slab
//! plus its residual pattern, and projection writes the child's rows
//! into the next depth's arena — `reset()` between siblings — so
//! steady-state descent performs no allocation and a node's counting
//! pass is a linear walk of one buffer.
//!
//! On the degenerate [`gogreen_data::PlainRanks`] substrate every tuple
//! lands in the single pattern-free root partition, the group-at-a-time
//! arms never execute, and the search is exactly the classic depth-first
//! Tree Projection of Agarwal, Aggarwal & Prasad.

use crate::common::{fan_out_ordered, for_each_subset, RankEmitter};
use crate::treeproj::PairMatrix;
use gogreen_data::{CsrTuples, FList, GroupedSource, PatternSink, ProjectionArena, TupleSlices};
use gogreen_obs::{histogram, metrics};
use gogreen_util::pool::Parallelism;

/// A group at one lexicographic node, in node-local extension indices.
/// Its member outlier lists are rows `lo..hi` of the node's member slab.
struct TpGroup {
    /// Residual pattern (local indices, ascending; empty = plain
    /// partition).
    pattern: Vec<u32>,
    /// First member row in the node slab.
    lo: u32,
    /// One past the last member row.
    hi: u32,
    /// Members with no relevant outliers.
    bare: u64,
}

impl TpGroup {
    fn count(&self) -> u64 {
        (self.hi - self.lo) as u64 + self.bare
    }

    fn has_members(&self) -> bool {
        self.hi > self.lo
    }
}

/// Reusable per-depth scratch: the child node built by projecting on one
/// extension. Sibling extensions at the same depth recycle these buffers
/// (`reset()`/`clear()`), so after warm-up descent allocates nothing.
#[derive(Default)]
struct TpLevel {
    groups: Vec<TpGroup>,
    /// The child node's member rows.
    members: ProjectionArena,
    /// Buffer for rows of dissolved groups; appended to `members` last
    /// as the single pattern-free partition.
    plain: CsrTuples<u32>,
    exts: Vec<(u32, u64)>,
    remap: Vec<u32>,
}

/// Per-worker mining state: one [`TpLevel`] per depth below the root.
#[derive(Default)]
struct TpCtx {
    levels: Vec<TpLevel>,
    depth: usize,
}

/// Mines `src` against `flist` at the absolute threshold `minsup`, the
/// root extensions fanned out over `par` scoped threads. The emitted
/// stream is byte-identical for any thread count.
pub fn mine_source_par<S: GroupedSource>(
    src: &S,
    flist: &FList,
    minsup: u64,
    par: Parallelism,
    sink: &mut dyn PatternSink,
) {
    let (groups, members, exts) = root_node(src, flist);
    tp_root(&groups, members.as_slices(), &exts, minsup, flist, par, sink);
}

/// Root dispatch: the Lemma 3.1 shortcut, the root singletons, and the
/// root pair-counting pass run once on the caller thread; each
/// extension's subtree is then an independent fan-out unit reading only
/// the shared groups, member slab, and matrix.
fn tp_root(
    groups: &[TpGroup],
    members: TupleSlices<'_>,
    exts: &[(u32, u64)],
    minsup: u64,
    flist: &FList,
    par: Parallelism,
    sink: &mut dyn PatternSink,
) {
    if groups.len() == 1 && !groups[0].has_members() && exts.len() <= 62 {
        let mut emitter = RankEmitter::new(flist);
        for_each_subset(exts, &mut |locals, sup| emitter.emit_with(sink, locals, sup));
        return;
    }
    {
        let mut emitter = RankEmitter::new(flist);
        for &(rank, sup) in exts {
            emitter.push(rank);
            emitter.emit(sink, sup);
            emitter.pop();
        }
    }
    let k = exts.len();
    if k < 2 {
        return;
    }
    metrics::set_max("mine.max_depth", 1);
    let matrix = fill_group_matrix(groups, members, k);
    let matrix = &matrix;
    fan_out_ordered(
        par,
        k,
        sink,
        || (RankEmitter::new(flist), TpCtx::default()),
        |(emitter, ctx), i, sink| {
            tp_extend(groups, members, exts, i as u32, matrix, minsup, ctx, emitter, sink);
        },
    );
}

/// Builds the root node from the source: local index = rank. The root
/// member slab is an owned copy because projection rewrites index lists
/// at every node below anyway; groups land in source order with the
/// plain partition last, mirroring [`project`].
fn root_node<S: GroupedSource>(
    src: &S,
    flist: &FList,
) -> (Vec<TpGroup>, CsrTuples<u32>, Vec<(u32, u64)>) {
    let exts: Vec<(u32, u64)> = (0..flist.len() as u32).map(|r| (r, flist.support(r))).collect();
    let mut groups: Vec<TpGroup> = Vec::with_capacity(src.num_groups() + 1);
    let mut members = CsrTuples::new();
    if S::GROUPED {
        for g in 0..src.num_groups() {
            let lo = members.len() as u32;
            for m in src.group_outliers(g) {
                members.push_row(m);
            }
            groups.push(TpGroup {
                pattern: src.group_pattern(g).to_vec(),
                lo,
                hi: members.len() as u32,
                bare: src.group_bare(g),
            });
        }
    }
    if !src.plain().is_empty() {
        let lo = members.len() as u32;
        for m in src.plain() {
            members.push_row(m);
        }
        groups.push(TpGroup { pattern: Vec::new(), lo, hi: members.len() as u32, bare: 0 });
    }
    (groups, members, exts)
}

/// Processes one lexicographic node.
fn tp_node(
    groups: &[TpGroup],
    members: TupleSlices<'_>,
    exts: &[(u32, u64)],
    minsup: u64,
    ctx: &mut TpCtx,
    emitter: &mut RankEmitter<'_>,
    sink: &mut dyn PatternSink,
) {
    // Lemma 3.1 degenerate form: a single all-bare group means every
    // extension is a pattern item with identical support.
    if groups.len() == 1 && !groups[0].has_members() && exts.len() <= 62 {
        for_each_subset(exts, &mut |locals, sup| {
            // Local indices map to ranks through `exts`; `for_each_subset`
            // hands back the elements' first components, which here are
            // already the global ranks.
            emitter.emit_with(sink, locals, sup)
        });
        return;
    }
    for &(rank, sup) in exts {
        emitter.push(rank);
        emitter.emit(sink, sup);
        emitter.pop();
    }
    let k = exts.len();
    if k < 2 {
        return;
    }
    metrics::set_max("mine.max_depth", emitter.depth() as u64 + 1);
    let matrix = fill_group_matrix(groups, members, k);
    // Children, depth-first.
    for i in 0..k as u32 {
        tp_extend(groups, members, exts, i, &matrix, minsup, ctx, emitter, sink);
    }
}

/// One group-aware pass fills all pair supports. Pattern × pattern
/// bumps are group-at-a-time (weight = member count); everything
/// touching an outlier list is per-member work.
fn fill_group_matrix(groups: &[TpGroup], members: TupleSlices<'_>, k: usize) -> PairMatrix {
    let mut matrix = PairMatrix::new(k);
    let mut group_hits = 0u64;
    let mut touches = 0u64;
    for g in groups {
        let c = g.count();
        for (pi, &a) in g.pattern.iter().enumerate() {
            for &b in &g.pattern[pi + 1..] {
                matrix.bump_by(a, b, c);
                group_hits += 1;
            }
        }
        for m in members.range(g.lo as usize, g.hi as usize) {
            for (oi, &x) in m.iter().enumerate() {
                // Outlier × outlier.
                for &y in &m[oi + 1..] {
                    matrix.bump(x, y);
                }
                // Pattern × outlier (ordered by local index).
                for &p in &g.pattern {
                    if p < x {
                        matrix.bump(p, x);
                    } else {
                        matrix.bump(x, p);
                    }
                }
                touches += (m.len() - oi - 1) as u64 + g.pattern.len() as u64;
            }
        }
    }
    if group_hits > 0 {
        metrics::add("mine.group_hits", group_hits);
    }
    metrics::add("mine.tuple_touches", touches);
    histogram::observe("mine.touches_per_projection", touches);
    metrics::add("mine.candidate_tests", (k * (k - 1) / 2) as u64);
    matrix
}

/// Builds and recurses into the child node of extension `i`. This is
/// both the serial loop body of [`tp_node`] and the root fan-out unit.
/// The child's rows land in this depth's [`TpLevel`] arena, reset here —
/// the rows live exactly as long as the child subtree.
#[allow(clippy::too_many_arguments)]
fn tp_extend(
    groups: &[TpGroup],
    members: TupleSlices<'_>,
    exts: &[(u32, u64)],
    i: u32,
    matrix: &PairMatrix,
    minsup: u64,
    ctx: &mut TpCtx,
    emitter: &mut RankEmitter<'_>,
    sink: &mut dyn PatternSink,
) {
    let k = exts.len();
    let depth = ctx.depth;
    if ctx.levels.len() <= depth {
        ctx.levels.resize_with(depth + 1, TpLevel::default);
    }
    // Borrow this depth's scratch; the recursion below only uses deeper
    // slots, so taking it out of the context is conflict-free.
    let mut lvl = std::mem::take(&mut ctx.levels[depth]);
    lvl.exts.clear();
    for j in (i + 1)..k as u32 {
        let c = matrix.get(i, j);
        if c >= minsup {
            lvl.exts.push((exts[j as usize].0, c));
        }
    }
    if lvl.exts.is_empty() {
        ctx.levels[depth] = lvl;
        return;
    }
    lvl.remap.clear();
    lvl.remap.resize(k, u32::MAX);
    let mut next_local = 0u32;
    for j in (i + 1)..k as u32 {
        if matrix.get(i, j) >= minsup {
            lvl.remap[j as usize] = next_local;
            next_local += 1;
        }
    }
    project(groups, members, i, &lvl.remap, &mut lvl.groups, &mut lvl.members, &mut lvl.plain);
    metrics::add("mine.projected_dbs", 1);
    histogram::observe("mine.projected_db_size", (lvl.groups.len() + lvl.plain.len()) as u64);
    emitter.push(exts[i as usize].0);
    ctx.depth = depth + 1;
    tp_node(&lvl.groups, lvl.members.rows().as_slices(), &lvl.exts, minsup, ctx, emitter, sink);
    ctx.depth = depth;
    emitter.pop();
    ctx.levels[depth] = lvl;
}

/// Filters `list` through `remap` into the open row of `csr`. Surviving
/// local indices stay ascending because the remap is monotone.
fn map_push(list: &[u32], remap: &[u32], csr: &mut CsrTuples<u32>) {
    for &j in list {
        let l = remap[j as usize];
        if l != u32::MAX {
            csr.push_elem(l);
        }
    }
}

/// [`map_push`] into an owned vector, for residual patterns.
fn map_vec(list: &[u32], remap: &[u32]) -> Vec<u32> {
    list.iter()
        .filter_map(|&j| {
            let l = remap[j as usize];
            (l != u32::MAX).then_some(l)
        })
        .collect()
}

/// Projects the node's groups on local extension `i`, remapping surviving
/// indices through `remap`. Child member rows are written straight into
/// `out_members` (grouped rows first, then — via the `plain` buffer —
/// the rows of dissolved groups as one final pattern-free partition).
#[allow(clippy::too_many_arguments)]
fn project(
    groups: &[TpGroup],
    members: TupleSlices<'_>,
    i: u32,
    remap: &[u32],
    out_groups: &mut Vec<TpGroup>,
    out_members: &mut ProjectionArena,
    plain: &mut CsrTuples<u32>,
) {
    out_groups.clear();
    out_members.reset();
    plain.clear();
    for g in groups {
        let rows = members.range(g.lo as usize, g.hi as usize);
        match g.pattern.binary_search(&i) {
            Ok(pos) => {
                // Whole group follows.
                let pattern = map_vec(&g.pattern[pos + 1..], remap);
                if pattern.is_empty() {
                    // Dissolved: surviving member rows become plain
                    // tuples; bare members carry nothing and vanish.
                    for m in rows {
                        let cut = m.partition_point(|&x| x <= i);
                        map_push(&m[cut..], remap, plain);
                        if plain.open_len() == 0 {
                            plain.discard_row();
                        } else {
                            plain.commit_row();
                        }
                    }
                } else {
                    let mut bare = g.bare;
                    let lo = out_members.rows().len() as u32;
                    for m in rows {
                        let cut = m.partition_point(|&x| x <= i);
                        let csr = out_members.rows_mut();
                        map_push(&m[cut..], remap, csr);
                        if csr.open_len() == 0 {
                            csr.discard_row();
                            bare += 1;
                        } else {
                            csr.commit_row();
                        }
                    }
                    let hi = out_members.rows().len() as u32;
                    if bare > 0 || hi > lo {
                        out_groups.push(TpGroup { pattern, lo, hi, bare });
                    }
                }
            }
            Err(ppos) => {
                // Only members containing i follow.
                let pattern = map_vec(&g.pattern[ppos..], remap);
                if pattern.is_empty() {
                    for m in rows {
                        if let Ok(opos) = m.binary_search(&i) {
                            map_push(&m[opos + 1..], remap, plain);
                            if plain.open_len() == 0 {
                                plain.discard_row();
                            } else {
                                plain.commit_row();
                            }
                        }
                    }
                } else {
                    let mut bare = 0u64;
                    let lo = out_members.rows().len() as u32;
                    for m in rows {
                        if let Ok(opos) = m.binary_search(&i) {
                            let csr = out_members.rows_mut();
                            map_push(&m[opos + 1..], remap, csr);
                            if csr.open_len() == 0 {
                                csr.discard_row();
                                bare += 1;
                            } else {
                                csr.commit_row();
                            }
                        }
                    }
                    let hi = out_members.rows().len() as u32;
                    if bare > 0 || hi > lo {
                        out_groups.push(TpGroup { pattern, lo, hi, bare });
                    }
                }
            }
        }
    }
    if !plain.is_empty() {
        let lo = out_members.rows().len() as u32;
        for m in plain.iter() {
            out_members.rows_mut().push_row(m);
        }
        let hi = out_members.rows().len() as u32;
        out_groups.push(TpGroup { pattern: Vec::new(), lo, hi, bare: 0 });
    }
}
