//! The Tree Projection family engine: depth-first lexicographic-tree
//! search with triangular pair-count matrices (paper §4.2), generic over
//! [`GroupedSource`].
//!
//! As in the depth-first Tree Projection baseline, each lexicographic
//! node materializes its projected transactions and fills a triangular
//! matrix with the supports of all extension pairs in one pass. The
//! grouped substrate changes *what gets counted*:
//!
//! * pattern × pattern pairs of a group are bumped **once** with the
//!   group's member count instead of once per member;
//! * pattern × outlier and outlier × outlier pairs are bumped per member
//!   tuple, but only over the (short) outlier lists;
//! * projection moves group heads: on a pattern item the whole group
//!   moves with a shortened pattern; on an outlier item only the members
//!   containing it move, carrying the residual pattern.
//!
//! On the degenerate [`gogreen_data::PlainRanks`] substrate every tuple
//! lands in the single pattern-free root partition, the group-at-a-time
//! arms never execute, and the search is exactly the classic depth-first
//! Tree Projection of Agarwal, Aggarwal & Prasad.

use crate::common::{fan_out_ordered, for_each_subset, RankEmitter};
use crate::treeproj::PairMatrix;
use gogreen_data::{FList, GroupedSource, PatternSink};
use gogreen_obs::metrics;
use gogreen_util::pool::Parallelism;

/// A group at one lexicographic node, in node-local extension indices.
struct TpGroup {
    /// Residual pattern (local indices, ascending; empty = plain
    /// partition).
    pattern: Vec<u32>,
    /// Member outlier lists (local indices, ascending, non-empty).
    members: Vec<Vec<u32>>,
    /// Members with no relevant outliers.
    bare: u64,
}

impl TpGroup {
    fn count(&self) -> u64 {
        self.members.len() as u64 + self.bare
    }
}

/// Mines `src` against `flist` at the absolute threshold `minsup`, the
/// root extensions fanned out over `par` scoped threads. The emitted
/// stream is byte-identical for any thread count.
pub fn mine_source_par<S: GroupedSource>(
    src: &S,
    flist: &FList,
    minsup: u64,
    par: Parallelism,
    sink: &mut dyn PatternSink,
) {
    let (groups, exts) = root_node(src, flist);
    tp_root(&groups, &exts, minsup, flist, par, sink);
}

/// Root dispatch: the Lemma 3.1 shortcut, the root singletons, and the
/// root pair-counting pass run once on the caller thread; each
/// extension's subtree is then an independent fan-out unit reading only
/// the shared groups and matrix.
fn tp_root(
    groups: &[TpGroup],
    exts: &[(u32, u64)],
    minsup: u64,
    flist: &FList,
    par: Parallelism,
    sink: &mut dyn PatternSink,
) {
    if groups.len() == 1 && groups[0].members.is_empty() && exts.len() <= 62 {
        let mut emitter = RankEmitter::new(flist);
        for_each_subset(exts, &mut |locals, sup| emitter.emit_with(sink, locals, sup));
        return;
    }
    {
        let mut emitter = RankEmitter::new(flist);
        for &(rank, sup) in exts {
            emitter.push(rank);
            emitter.emit(sink, sup);
            emitter.pop();
        }
    }
    let k = exts.len();
    if k < 2 {
        return;
    }
    metrics::set_max("mine.max_depth", 1);
    let matrix = fill_group_matrix(groups, k);
    let matrix = &matrix;
    fan_out_ordered(
        par,
        k,
        sink,
        || (RankEmitter::new(flist), vec![u32::MAX; k]),
        |(emitter, remap), i, sink| {
            tp_extend(groups, exts, i as u32, matrix, minsup, remap, emitter, sink);
        },
    );
}

/// Builds the root node from the source: local index = rank. The root
/// partitions are owned copies because projection rewrites index lists
/// at every node below anyway.
fn root_node<S: GroupedSource>(src: &S, flist: &FList) -> (Vec<TpGroup>, Vec<(u32, u64)>) {
    let exts: Vec<(u32, u64)> = (0..flist.len() as u32).map(|r| (r, flist.support(r))).collect();
    let mut groups: Vec<TpGroup> = Vec::with_capacity(src.num_groups() + 1);
    if S::GROUPED {
        for g in 0..src.num_groups() {
            groups.push(TpGroup {
                pattern: src.group_pattern(g).to_vec(),
                members: src.group_outliers(g).to_vec(),
                bare: src.group_bare(g),
            });
        }
    }
    if !src.plain().is_empty() {
        groups.push(TpGroup { pattern: Vec::new(), members: src.plain().to_vec(), bare: 0 });
    }
    (groups, exts)
}

/// Processes one lexicographic node.
fn tp_node(
    groups: &[TpGroup],
    exts: &[(u32, u64)],
    minsup: u64,
    emitter: &mut RankEmitter<'_>,
    sink: &mut dyn PatternSink,
) {
    // Lemma 3.1 degenerate form: a single all-bare group means every
    // extension is a pattern item with identical support.
    if groups.len() == 1 && groups[0].members.is_empty() && exts.len() <= 62 {
        for_each_subset(exts, &mut |locals, sup| {
            // Local indices map to ranks through `exts`; `for_each_subset`
            // hands back the elements' first components, which here are
            // already the global ranks.
            emitter.emit_with(sink, locals, sup)
        });
        return;
    }
    for &(rank, sup) in exts {
        emitter.push(rank);
        emitter.emit(sink, sup);
        emitter.pop();
    }
    let k = exts.len();
    if k < 2 {
        return;
    }
    metrics::set_max("mine.max_depth", emitter.depth() as u64 + 1);
    let matrix = fill_group_matrix(groups, k);
    // Children, depth-first.
    let mut remap = vec![u32::MAX; k];
    for i in 0..k as u32 {
        tp_extend(groups, exts, i, &matrix, minsup, &mut remap, emitter, sink);
    }
}

/// One group-aware pass fills all pair supports. Pattern × pattern
/// bumps are group-at-a-time (weight = member count); everything
/// touching an outlier list is per-member work.
fn fill_group_matrix(groups: &[TpGroup], k: usize) -> PairMatrix {
    let mut matrix = PairMatrix::new(k);
    let mut group_hits = 0u64;
    let mut touches = 0u64;
    for g in groups {
        let c = g.count();
        for (pi, &a) in g.pattern.iter().enumerate() {
            for &b in &g.pattern[pi + 1..] {
                matrix.bump_by(a, b, c);
                group_hits += 1;
            }
        }
        for m in &g.members {
            for (oi, &x) in m.iter().enumerate() {
                // Outlier × outlier.
                for &y in &m[oi + 1..] {
                    matrix.bump(x, y);
                }
                // Pattern × outlier (ordered by local index).
                for &p in &g.pattern {
                    if p < x {
                        matrix.bump(p, x);
                    } else {
                        matrix.bump(x, p);
                    }
                }
                touches += (m.len() - oi - 1) as u64 + g.pattern.len() as u64;
            }
        }
    }
    if group_hits > 0 {
        metrics::add("mine.group_hits", group_hits);
    }
    metrics::add("mine.tuple_touches", touches);
    metrics::add("mine.candidate_tests", (k * (k - 1) / 2) as u64);
    matrix
}

/// Builds and recurses into the child node of extension `i`. This is
/// both the serial loop body of [`tp_node`] and the root fan-out unit.
#[allow(clippy::too_many_arguments)]
fn tp_extend(
    groups: &[TpGroup],
    exts: &[(u32, u64)],
    i: u32,
    matrix: &PairMatrix,
    minsup: u64,
    remap: &mut [u32],
    emitter: &mut RankEmitter<'_>,
    sink: &mut dyn PatternSink,
) {
    let k = exts.len();
    let child_exts: Vec<(u32, u64)> = ((i + 1)..k as u32)
        .filter_map(|j| {
            let c = matrix.get(i, j);
            (c >= minsup).then(|| (exts[j as usize].0, c))
        })
        .collect();
    if child_exts.is_empty() {
        return;
    }
    remap.iter_mut().for_each(|r| *r = u32::MAX);
    let mut next_local = 0u32;
    for j in (i + 1)..k as u32 {
        if matrix.get(i, j) >= minsup {
            remap[j as usize] = next_local;
            next_local += 1;
        }
    }
    let child_groups = project(groups, i, remap);
    metrics::add("mine.projected_dbs", 1);
    emitter.push(exts[i as usize].0);
    tp_node(&child_groups, &child_exts, minsup, emitter, sink);
    emitter.pop();
}

/// Projects the node's groups on local extension `i`, remapping surviving
/// indices through `remap`.
fn project(groups: &[TpGroup], i: u32, remap: &[u32]) -> Vec<TpGroup> {
    let map_list = |items: &[u32]| -> Vec<u32> {
        items
            .iter()
            .filter_map(|&j| {
                let l = remap[j as usize];
                (l != u32::MAX).then_some(l)
            })
            .collect()
    };
    let mut out = Vec::new();
    let mut plain_members: Vec<Vec<u32>> = Vec::new();
    for g in groups {
        match g.pattern.binary_search(&i) {
            Ok(pos) => {
                // Whole group follows.
                let pattern = map_list(&g.pattern[pos + 1..]);
                let mut bare = g.bare;
                let mut members = Vec::new();
                for m in &g.members {
                    let cut = m.partition_point(|&x| x <= i);
                    let rest = map_list(&m[cut..]);
                    if rest.is_empty() {
                        bare += 1;
                    } else {
                        members.push(rest);
                    }
                }
                if pattern.is_empty() {
                    plain_members.extend(members);
                } else if bare > 0 || !members.is_empty() {
                    out.push(TpGroup { pattern, members, bare });
                }
            }
            Err(ppos) => {
                // Only members containing i follow.
                let pattern = map_list(&g.pattern[ppos..]);
                let mut bare = 0u64;
                let mut members = Vec::new();
                for m in &g.members {
                    if let Ok(opos) = m.binary_search(&i) {
                        let rest = map_list(&m[opos + 1..]);
                        if pattern.is_empty() {
                            if !rest.is_empty() {
                                plain_members.push(rest);
                            }
                        } else if rest.is_empty() {
                            bare += 1;
                        } else {
                            members.push(rest);
                        }
                    }
                }
                if !pattern.is_empty() && (bare > 0 || !members.is_empty()) {
                    out.push(TpGroup { pattern, members, bare });
                }
            }
        }
    }
    if !plain_members.is_empty() {
        out.push(TpGroup { pattern: Vec::new(), members: plain_members, bare: 0 });
    }
    out
}
