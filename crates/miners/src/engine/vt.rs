//! The vertical (Eclat-style) family engine: tidset intersection mining
//! over per-rank `u64` bitmaps, generic over [`GroupedSource`].
//!
//! Where the three horizontal families walk tuples, this engine walks
//! *columns*: every rank owns a bitmap with one bit per database tuple,
//! support is a popcount, and a candidate test is a fused word-wise
//! AND + popcount ([`gogreen_data::bitmap`], the kernel module shared
//! with the compressor's cover sweep). The grouped substrate changes how
//! the root columns are *built*, never how the search runs:
//!
//! * a group's members occupy one contiguous tid run, so each pattern
//!   item of the group sets its whole run word-wise
//!   ([`gogreen_data::bitmap::set_run`]) — one O(count/64) fill per
//!   item instead of per-member work;
//! * outlier residues and plain tuples set individual bits.
//!
//! On the degenerate [`gogreen_data::PlainRanks`] substrate the run
//! arm vanishes statically and the build is the classic per-tuple
//! vertical conversion.
//!
//! Each lexicographic node counts all extension pairs with fused
//! AND + popcounts (no materialization), then prunes with two devices
//! before any child tidset is built:
//!
//! * **inclusion-chain shortcut** — when every pair support equals the
//!   smaller member's support the tidsets form a chain under ⊆, every
//!   subset's support is the minimum member support, and the node
//!   finishes by direct subset enumeration (the vertical analog of the
//!   paper's Lemma 3.1 single-group shortcut);
//! * **candidate-bound termination** — the Kruskal–Katona cascade of
//!   [`crate::bound`] applied to the realized pair level: when zero
//!   deeper candidates are possible the frequent pairs are emitted flat
//!   and the whole subtree below them is skipped
//!   (`mine.bound_prunes`).
//!
//! Surviving children materialize their tidsets into a per-depth
//! [`BitsetArena`] whose capacity is pre-reserved from the level bound
//! before the level is filled, and which `reset()`s between siblings —
//! steady-state descent allocates nothing.
//!
//! The root fans out over [`crate::common::fan_out_ordered`] like every
//! other family: each first-level extension is one unit computing its
//! own pair row against the shared read-only root columns, so the
//! stream is byte-identical and all `mine.*` counters (including the
//! new `mine.bitmap_words_scanned`, words fed through the AND kernels)
//! bit-identical at any thread count.

use crate::bound;
use crate::common::{fan_out_ordered, for_each_subset, RankEmitter};
use crate::treeproj::PairMatrix;
use gogreen_data::bitmap::{self, BitsetArena};
use gogreen_data::{FList, GroupedSource, PatternSink};
use gogreen_obs::{histogram, metrics};
use gogreen_util::pool::Parallelism;

/// Reusable per-depth scratch: the child tidsets materialized by one
/// extension at this depth. Sibling extensions recycle the buffers.
#[derive(Default)]
struct VtLevel {
    /// The child node's tidset columns, one generation per sibling.
    arena: BitsetArena,
    /// The child's frequent extensions: `(global rank, support)`.
    exts: Vec<(u32, u64)>,
    /// Parent-local column index of each child extension (parallel to
    /// `exts`), for the materialization pass.
    srcs: Vec<u32>,
}

/// Per-worker mining state: one [`VtLevel`] per depth below the root.
#[derive(Default)]
struct VtCtx {
    levels: Vec<VtLevel>,
    depth: usize,
}

/// Mines `src` against `flist` at the absolute threshold `minsup`, the
/// root extensions fanned out over `par` scoped threads. The emitted
/// stream is byte-identical for any thread count.
pub fn mine_source_par<S: GroupedSource>(
    src: &S,
    flist: &FList,
    minsup: u64,
    par: Parallelism,
    sink: &mut dyn PatternSink,
) {
    let k = flist.len();
    if k == 0 {
        return;
    }
    let (cols, words) = build_columns(src, k);
    let exts: Vec<(u32, u64)> = (0..k as u32).map(|r| (r, flist.support(r))).collect();
    {
        let mut emitter = RankEmitter::new(flist);
        for &(rank, sup) in &exts {
            emitter.push(rank);
            emitter.emit(sink, sup);
            emitter.pop();
        }
    }
    if k < 2 {
        return;
    }
    metrics::set_max("mine.max_depth", 1);
    let cols = &cols[..];
    let exts = &exts[..];
    fan_out_ordered(
        par,
        k,
        sink,
        || (RankEmitter::new(flist), VtCtx::default()),
        |(emitter, ctx), a, sink| {
            // At the root, column index == rank == extension position,
            // and each unit computes its own pair row with fused
            // popcounts against the shared columns.
            let col_a = &cols[a * words..][..words];
            metrics::add("mine.candidate_tests", (k - 1 - a) as u64);
            metrics::add("mine.bitmap_words_scanned", ((k - 1 - a) * words) as u64);
            vt_extend(
                exts,
                cols,
                words,
                a,
                |b| bitmap::and_popcount(col_a, &cols[b * words..][..words]),
                minsup,
                ctx,
                emitter,
                sink,
            );
        },
    );
}

/// Builds the root tid-bitmaps: one column of `words` words per rank.
///
/// Tids are assigned group-at-a-time — group `g`'s members occupy one
/// contiguous run (outlier members first, then bare members), so every
/// pattern item of the group is a single word-wise run fill. Plain
/// tuples follow, one bit each. Column popcounts are exact supports.
fn build_columns<S: GroupedSource>(src: &S, num_ranks: usize) -> (Vec<u64>, usize) {
    let mut n = src.plain().len();
    if S::GROUPED {
        for g in 0..src.num_groups() {
            n += src.group_count(g) as usize;
        }
    }
    let words = bitmap::words_for(n);
    let mut cols = vec![0u64; num_ranks * words];
    let mut tid = 0usize;
    let mut touches = 0u64;
    let mut group_hits = 0u64;
    if S::GROUPED {
        for g in 0..src.num_groups() {
            let count = src.group_count(g) as usize;
            for &r in src.group_pattern(g) {
                bitmap::set_run(&mut cols[r as usize * words..][..words], tid, count);
                group_hits += 1;
            }
            for (idx, m) in src.group_outliers(g).into_iter().enumerate() {
                for &r in m {
                    bitmap::set_bit(&mut cols[r as usize * words..][..words], tid + idx);
                }
                touches += m.len() as u64;
            }
            tid += count;
        }
    }
    for t in src.plain() {
        for &r in t {
            bitmap::set_bit(&mut cols[r as usize * words..][..words], tid);
        }
        touches += t.len() as u64;
        tid += 1;
    }
    if group_hits > 0 {
        metrics::add("mine.group_hits", group_hits);
    }
    metrics::add("mine.tuple_touches", touches);
    histogram::observe("mine.touches_per_projection", touches);
    histogram::observe("mine.tidset_words", cols.len() as u64);
    (cols, words)
}

/// Processes one lexicographic node whose extension singletons were
/// already emitted by the caller: counts all pairs, applies the chain
/// shortcut and the candidate-bound termination, then descends.
///
/// `cols` holds one materialized tidset per extension, in extension
/// order (ignored when there are fewer than two extensions).
fn vt_node(
    exts: &[(u32, u64)],
    cols: &[u64],
    words: usize,
    minsup: u64,
    ctx: &mut VtCtx,
    emitter: &mut RankEmitter<'_>,
    sink: &mut dyn PatternSink,
) {
    let k = exts.len();
    if k < 2 {
        return;
    }
    metrics::set_max("mine.max_depth", emitter.depth() as u64 + 1);
    // Pair pass: fused AND + popcount over all extension pairs — the
    // whole next level counted without materializing anything.
    let mut matrix = PairMatrix::new(k);
    let mut n2 = 0u64;
    for a in 0..k {
        let col_a = &cols[a * words..][..words];
        for b in (a + 1)..k {
            let c = bitmap::and_popcount(col_a, &cols[b * words..][..words]);
            if c > 0 {
                matrix.bump_by(a as u32, b as u32, c);
            }
            if c >= minsup {
                n2 += 1;
            }
        }
    }
    let pairs = (k * (k - 1) / 2) as u64;
    metrics::add("mine.candidate_tests", pairs);
    metrics::add("mine.bitmap_words_scanned", pairs * words as u64);
    if n2 == 0 {
        return;
    }
    // Inclusion-chain shortcut: if every pair support equals the
    // smaller member support, the tidsets are pairwise ⊆-comparable —
    // a chain — and any subset's support is its minimum member
    // support. Enumerate subsets directly (singletons were already
    // emitted by the caller).
    if k <= 62 && n2 == pairs && is_chain(exts, &matrix) {
        for_each_subset(exts, &mut |ranks, sup| {
            if ranks.len() >= 2 {
                emitter.emit_with(sink, ranks, sup);
            }
        });
        return;
    }
    // Candidate-bound termination: the Kruskal–Katona cascade of the
    // realized pair level. Zero means no 3-candidate — and hence
    // nothing deeper — can be frequent anywhere below this node, so
    // the frequent pairs are emitted flat and no tidset is built.
    let bound3 = bound::candidate_bound(n2, 2);
    if bound3 == 0 {
        metrics::add("mine.bound_prunes", 1);
        for a in 0..k {
            let mut pushed = false;
            for b in (a + 1)..k {
                let c = matrix.get(a as u32, b as u32);
                if c >= minsup {
                    if !pushed {
                        emitter.push(exts[a].0);
                        pushed = true;
                    }
                    emitter.push(exts[b].0);
                    emitter.emit(sink, c);
                    emitter.pop();
                }
            }
            if pushed {
                emitter.pop();
            }
        }
        return;
    }
    // Bound-driven pre-size: any child class at this node materializes
    // at most min(n₂, k−1) tidsets, so reserving that capacity up
    // front makes every child's fill allocation-free, first descent
    // included.
    let depth = ctx.depth;
    if ctx.levels.len() <= depth {
        ctx.levels.resize_with(depth + 1, VtLevel::default);
    }
    ctx.levels[depth].arena.reserve_words(n2.min((k - 1) as u64) as usize * words);
    for a in 0..k {
        vt_extend(
            exts,
            cols,
            words,
            a,
            |b| matrix.get(a as u32, b as u32),
            minsup,
            ctx,
            emitter,
            sink,
        );
    }
}

/// True when every pair support equals the smaller member support —
/// the tidsets are pairwise comparable under inclusion.
fn is_chain(exts: &[(u32, u64)], matrix: &PairMatrix) -> bool {
    let k = exts.len();
    for a in 0..k {
        for b in (a + 1)..k {
            if matrix.get(a as u32, b as u32) != exts[a].1.min(exts[b].1) {
                return false;
            }
        }
    }
    true
}

/// Builds and recurses into the child node of extension `a`: collects
/// the frequent pairs `(a, b)` from `pair_support`, emits the child's
/// extension singletons via the recursion, and materializes the child
/// tidsets only when the child can itself have pairs. This is both the
/// inner loop body of [`vt_node`] and the root fan-out unit.
#[allow(clippy::too_many_arguments)]
fn vt_extend(
    exts: &[(u32, u64)],
    cols: &[u64],
    words: usize,
    a: usize,
    pair_support: impl Fn(usize) -> u64,
    minsup: u64,
    ctx: &mut VtCtx,
    emitter: &mut RankEmitter<'_>,
    sink: &mut dyn PatternSink,
) {
    let depth = ctx.depth;
    if ctx.levels.len() <= depth {
        ctx.levels.resize_with(depth + 1, VtLevel::default);
    }
    // Borrow this depth's scratch; the recursion below only uses deeper
    // slots, so taking it out of the context is conflict-free.
    let mut lvl = std::mem::take(&mut ctx.levels[depth]);
    lvl.exts.clear();
    lvl.srcs.clear();
    for (b, &(rank, _)) in exts.iter().enumerate().skip(a + 1) {
        let c = pair_support(b);
        if c >= minsup {
            lvl.exts.push((rank, c));
            lvl.srcs.push(b as u32);
        }
    }
    if lvl.exts.is_empty() {
        ctx.levels[depth] = lvl;
        return;
    }
    emitter.push(exts[a].0);
    if lvl.exts.len() == 1 {
        // A single extension cannot pair: emit it without building its
        // (never-read) tidset.
        let (rank, sup) = lvl.exts[0];
        emitter.push(rank);
        emitter.emit(sink, sup);
        emitter.pop();
    } else {
        let col_a = &cols[a * words..][..words];
        lvl.arena.reset();
        lvl.arena.reserve_words(lvl.exts.len() * words);
        for &b in &lvl.srcs {
            lvl.arena.append_and(col_a, &cols[b as usize * words..][..words]);
        }
        metrics::add("mine.projected_dbs", 1);
        metrics::add("mine.bitmap_words_scanned", (lvl.exts.len() * words) as u64);
        histogram::observe("mine.projected_db_size", lvl.exts.len() as u64);
        histogram::observe("mine.tidset_words", (lvl.exts.len() * words) as u64);
        // Child extension singletons, then the child node proper.
        for &(rank, sup) in &lvl.exts {
            emitter.push(rank);
            emitter.emit(sink, sup);
            emitter.pop();
        }
        ctx.depth = depth + 1;
        vt_node(&lvl.exts, lvl.arena.words(), words, minsup, ctx, emitter, sink);
        ctx.depth = depth;
    }
    emitter.pop();
    ctx.levels[depth] = lvl;
}
