//! The vertical (Eclat-style) family engine: tidset intersection mining
//! with **per-node adaptive representations**, generic over
//! [`GroupedSource`].
//!
//! Where the three horizontal families walk tuples, this engine walks
//! *columns*: every rank owns a vertical set of the tids containing it,
//! support is the set's cardinality, and a candidate test is a set
//! intersection. What changed from the original dense engine is that a
//! column is no longer always a bitmap — each lexicographic node stores
//! its columns in whichever of three representations the node's shape
//! makes cheapest:
//!
//! * **bitmap** — `⌈n/64⌉` words per column, fused AND + popcount
//!   candidate tests ([`gogreen_data::bitmap::and_popcount`]). Best
//!   when columns are dense: cost is width, independent of support.
//! * **tid-list** — the sorted `u32` tids themselves, merge/galloping
//!   intersection ([`gogreen_data::bitmap::intersect_count`]). Cost is
//!   the support, independent of the universe width — the sparse
//!   regime's representation.
//! * **diffset** (dEclat, Zaki & Gouda) — the sorted tids the column
//!   *loses* against its parent node's tidset, so
//!   `sup(child) = sup(parent) − |diff|`. Deep dense chains, where a
//!   child keeps almost all of its parent, shrink toward empty columns
//!   instead of staying support-wide.
//!
//! The **switching policy** (`auto`) prices one node's column set in
//! bytes under each representation — `k·width·8` for bitmaps, `4·Σsup`
//! for tid-lists, `4·(k·sup_parent − Σsup)` for diffsets — and takes
//! the cheapest reachable one. Reachability is a one-way lattice
//! (bitmap → tid-list → diffset): density only falls with depth, every
//! transition kernel exists along those edges (a diffset cannot cheaply
//! turn back into an absolute set), and the decision depends only on
//! logical values (supports, widths), never on machine state — so the
//! choice, and every counter it drives, is bit-identical at any thread
//! count. Forced modes ([`VtRepr`], CLI `--vt-repr`) pin one
//! representation everywhere for ablation; `diffset` necessarily roots
//! as tid-lists (a root diffset would be a complement) and goes
//! differential from depth 1.
//!
//! The grouped substrate changes how root columns are *built*, never
//! how the search runs: a group's members occupy one contiguous tid
//! run, so each pattern item fills its whole run word-wise in a bitmap
//! ([`gogreen_data::bitmap::set_run`]) or pushes one `lo..hi` range
//! into a tid-list — O(count/64) and O(count) per item respectively —
//! while outlier residues and plain tuples pay per-bit/per-tid cost. On
//! the degenerate [`gogreen_data::PlainRanks`] substrate the run arm
//! vanishes statically.
//!
//! Each lexicographic node counts all extension pairs without
//! materializing anything, then prunes with two representation-agnostic
//! devices (both consume only pair supports):
//!
//! * **inclusion-chain shortcut** — when every pair support equals the
//!   smaller member's support the tidsets form a chain under ⊆ and the
//!   node finishes by direct subset enumeration;
//! * **candidate-bound termination** — the Kruskal–Katona cascade of
//!   [`crate::bound`]: when zero deeper candidates are possible the
//!   frequent pairs are emitted flat (`mine.bound_prunes`).
//!
//! Surviving children materialize their columns into a per-depth
//! [`BitsetArena`] carrying both a `u64` and a `u32` slab, pre-reserved
//! from the level bound *in the chosen representation's unit* and
//! `reset()` between siblings — steady-state descent allocates nothing.
//! Kernel traffic is accounted per representation:
//! `mine.bitmap_words_scanned` (words through the AND kernels),
//! `mine.tidlist_elems` / `mine.diffset_words` (u32 elements through
//! the list kernels on tid-list / diffset columns), plus
//! `mine.repr_switches` (nodes whose representation differs from their
//! parent's) and the `mine.node_density` histogram (average child
//! density in 1024ths at each materialized node). All are functions of
//! logical sizes only — thread-invariant like the rest of `mine.*`.
//!
//! The root fans out over [`crate::common::fan_out_ordered`] like every
//! other family: each first-level extension is one unit computing its
//! own pair row against the shared read-only root columns, so the
//! stream is byte-identical and all `mine.*` counters bit-identical at
//! any thread count — and byte-identical across all four forced modes,
//! since representation never changes which patterns exist.

use crate::bound;
use crate::common::{fan_out_ordered, for_each_subset, RankEmitter};
use crate::treeproj::PairMatrix;
use gogreen_data::bitmap::{self, BitsetArena};
use gogreen_data::{FList, GroupedSource, PatternSink};
use gogreen_obs::{histogram, metrics};
use gogreen_util::pool::Parallelism;

/// Vertical representation mode: the `--vt-repr` knob. `Auto` switches
/// per node along the bitmap → tid-list → diffset lattice; the other
/// three force one representation everywhere (ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VtRepr {
    /// Density-driven per-node switching (the default).
    #[default]
    Auto,
    /// Dense `u64` tid-bitmaps everywhere (the pre-adaptive engine).
    Bitmap,
    /// Sorted `u32` tid-lists everywhere.
    Tidlist,
    /// Diffsets below depth 1 (the root itself holds tid-lists; a root
    /// diffset would be a complement).
    Diffset,
}

impl VtRepr {
    /// All modes, in `--vt-repr` help order.
    pub const ALL: [VtRepr; 4] = [VtRepr::Auto, VtRepr::Bitmap, VtRepr::Tidlist, VtRepr::Diffset];

    /// The CLI spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            VtRepr::Auto => "auto",
            VtRepr::Bitmap => "bitmap",
            VtRepr::Tidlist => "tidlist",
            VtRepr::Diffset => "diffset",
        }
    }

    /// Parses a CLI spelling.
    pub fn parse(s: &str) -> Option<VtRepr> {
        VtRepr::ALL.into_iter().find(|r| r.as_str() == s)
    }
}

impl std::fmt::Display for VtRepr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The concrete representation one node's columns are stored in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Repr {
    Bitmap,
    Tidlist,
    Diffset,
}

/// Borrowed view of one node's materialized columns, in whichever
/// representation the node chose. `Copy` so the recursion and the root
/// fan-out closures can share it freely.
#[derive(Clone, Copy)]
enum Cols<'a> {
    /// `width` words per column, column `i` at `data[i*width..]`.
    Bitmap { data: &'a [u64], width: usize },
    /// Sorted absolute tids; column `i` spans `ends[i-1]..ends[i]`.
    Tidlist { data: &'a [u32], ends: &'a [u32] },
    /// Sorted tids lost vs the node's parent tidset, same layout.
    Diffset { data: &'a [u32], ends: &'a [u32] },
}

impl<'a> Cols<'a> {
    fn repr(&self) -> Repr {
        match self {
            Cols::Bitmap { .. } => Repr::Bitmap,
            Cols::Tidlist { .. } => Repr::Tidlist,
            Cols::Diffset { .. } => Repr::Diffset,
        }
    }

    /// Column `i` as a bitmap slice (bitmap nodes only).
    fn bm(&self, i: usize) -> &'a [u64] {
        match *self {
            Cols::Bitmap { data, width } => &data[i * width..][..width],
            _ => unreachable!("bitmap column requested from a list node"),
        }
    }

    /// Column `i` as a sorted `u32` slice (list nodes only).
    fn list(&self, i: usize) -> &'a [u32] {
        match *self {
            Cols::Tidlist { data, ends } | Cols::Diffset { data, ends } => {
                let lo = if i == 0 { 0 } else { ends[i - 1] as usize };
                &data[lo..ends[i] as usize]
            }
            Cols::Bitmap { .. } => unreachable!("list column requested from a bitmap node"),
        }
    }

    /// Support of the pair `(a, b)` at this node; `sup_a` is extension
    /// `a`'s own support (needed for diffset arithmetic).
    fn pair_support(&self, a: usize, b: usize, sup_a: u64) -> u64 {
        match self.repr() {
            Repr::Bitmap => bitmap::and_popcount(self.bm(a), self.bm(b)),
            Repr::Tidlist => bitmap::intersect_count(self.list(a), self.list(b)),
            // sup(Pab) = sup(Pa) − |d_b \ d_a| = sup_a + |d_a ∩ d_b| − |d_b|;
            // summed in that order so the intermediate never underflows.
            Repr::Diffset => {
                let (da, db) = (self.list(a), self.list(b));
                sup_a + bitmap::intersect_count(da, db) - db.len() as u64
            }
        }
    }

    /// The scan-counter name for this node's candidate tests and the
    /// cost of the pair `(a, b)` in that counter's unit.
    fn scan_counter(&self) -> &'static str {
        match self.repr() {
            Repr::Bitmap => "mine.bitmap_words_scanned",
            Repr::Tidlist => "mine.tidlist_elems",
            Repr::Diffset => "mine.diffset_words",
        }
    }

    fn pair_scan_cost(&self, a: usize, b: usize) -> u64 {
        match *self {
            Cols::Bitmap { width, .. } => width as u64,
            _ => (self.list(a).len() + self.list(b).len()) as u64,
        }
    }
}

/// Shared run parameters, fixed once at the root.
struct VtCfg {
    minsup: u64,
    forced: VtRepr,
    /// Tid-universe size (expanded tuple count) and its bitmap width.
    n: usize,
    width: usize,
}

/// Reusable per-depth scratch: the child columns materialized by one
/// extension at this depth. Sibling extensions recycle the buffers.
#[derive(Default)]
struct VtLevel {
    /// The child node's columns, one generation per sibling, in
    /// whichever representation the child chose.
    arena: BitsetArena,
    /// The child's frequent extensions: `(global rank, support)`.
    exts: Vec<(u32, u64)>,
    /// Parent-local column index of each child extension (parallel to
    /// `exts`), for the materialization pass.
    srcs: Vec<u32>,
}

/// Per-worker mining state: one [`VtLevel`] per depth below the root.
#[derive(Default)]
struct VtCtx {
    levels: Vec<VtLevel>,
    depth: usize,
}

/// Latency bias of the sorted-list kernels relative to the bitmap
/// kernels, applied when `Auto` weighs leaving the bitmap
/// representation: a byte of `u32` list data costs more wall-clock than
/// a byte of bitmap (two-pointer merges and galloping probes versus
/// straight-line AND+popcount), so a switch must buy at least this
/// factor in bytes before it pays. The two list forms share kernels, so
/// the tid-list/diffset comparison stays unbiased.
const LIST_BIAS: u64 = 6;

/// Picks the child node's representation. `Auto` takes the cheapest
/// byte cost among the representations reachable from `parent` on the
/// one-way lattice (list costs scaled by [`LIST_BIAS`] against the
/// bitmap cost); ties prefer the earlier lattice stage (bitmap, then
/// tid-list), which also means a tie never counts as a switch
/// needlessly. Depends only on supports and the bitmap width, so the
/// choice is thread-invariant.
fn choose_repr(forced: VtRepr, parent: Repr, sup_a: u64, kc: u64, sum: u64, width: usize) -> Repr {
    match forced {
        VtRepr::Bitmap => return Repr::Bitmap,
        VtRepr::Tidlist => return Repr::Tidlist,
        VtRepr::Diffset => return Repr::Diffset,
        VtRepr::Auto => {}
    }
    let bitmap_cost = kc * width as u64 * 8;
    let tidlist_cost = 4 * sum;
    let diffset_cost = 4 * (kc * sup_a - sum);
    match parent {
        Repr::Bitmap => {
            if bitmap_cost <= LIST_BIAS * tidlist_cost && bitmap_cost <= LIST_BIAS * diffset_cost {
                Repr::Bitmap
            } else if tidlist_cost <= diffset_cost {
                Repr::Tidlist
            } else {
                Repr::Diffset
            }
        }
        Repr::Tidlist => {
            if tidlist_cost <= diffset_cost {
                Repr::Tidlist
            } else {
                Repr::Diffset
            }
        }
        Repr::Diffset => Repr::Diffset,
    }
}

/// Mines `src` against `flist` at the absolute threshold `minsup` in
/// the default [`VtRepr::Auto`] mode. See [`mine_source_par_repr`].
pub fn mine_source_par<S: GroupedSource>(
    src: &S,
    flist: &FList,
    minsup: u64,
    par: Parallelism,
    sink: &mut dyn PatternSink,
) {
    mine_source_par_repr(src, flist, minsup, par, VtRepr::Auto, sink);
}

/// Mines `src` against `flist` at the absolute threshold `minsup` under
/// representation mode `repr`, the root extensions fanned out over
/// `par` scoped threads. The emitted stream is byte-identical for any
/// thread count and any `repr`.
pub fn mine_source_par_repr<S: GroupedSource>(
    src: &S,
    flist: &FList,
    minsup: u64,
    par: Parallelism,
    repr: VtRepr,
    sink: &mut dyn PatternSink,
) {
    let k = flist.len();
    if k == 0 {
        return;
    }
    let exts: Vec<(u32, u64)> = (0..k as u32).map(|r| (r, flist.support(r))).collect();
    {
        let mut emitter = RankEmitter::new(flist);
        for &(rank, sup) in &exts {
            emitter.push(rank);
            emitter.emit(sink, sup);
            emitter.pop();
        }
    }
    if k < 2 {
        return;
    }
    let n = expanded_len(src);
    let width = bitmap::words_for(n);
    let cfg = VtCfg { minsup, forced: repr, n, width };
    let sum: u64 = exts.iter().map(|&(_, s)| s).sum();
    // Root representation: the same byte-cost rule as the descent, with
    // the whole universe as the "parent". Forced diffset roots as
    // tid-lists — the differential encoding starts one level down.
    let root_bitmap = match repr {
        VtRepr::Bitmap => true,
        VtRepr::Tidlist | VtRepr::Diffset => false,
        VtRepr::Auto => (k * width * 8) as u64 <= LIST_BIAS * 4 * sum,
    };
    let (bm_cols, list_data, list_ends);
    let cols = if root_bitmap {
        bm_cols = build_bitmap_columns(src, k, n, width);
        Cols::Bitmap { data: &bm_cols, width }
    } else {
        (list_data, list_ends) = build_tidlist_columns(src, &exts);
        Cols::Tidlist { data: &list_data, ends: &list_ends }
    };
    if n > 0 {
        histogram::observe("mine.node_density", sum * 1024 / (k as u64 * n as u64));
    }
    metrics::set_max("mine.max_depth", 1);
    let exts = &exts[..];
    let cfg = &cfg;
    fan_out_ordered(
        par,
        k,
        sink,
        || (RankEmitter::new(flist), VtCtx::default()),
        |(emitter, ctx), a, sink| {
            // At the root, column index == rank == extension position,
            // and each unit computes its own pair row against the
            // shared columns.
            metrics::add("mine.candidate_tests", (k - 1 - a) as u64);
            let scanned: u64 = ((a + 1)..k).map(|b| cols.pair_scan_cost(a, b)).sum();
            metrics::add(cols.scan_counter(), scanned);
            let sup_a = exts[a].1;
            vt_extend(exts, cols, a, |b| cols.pair_support(a, b, sup_a), cfg, ctx, emitter, sink);
        },
    );
}

/// Expanded tuple count of the substrate (groups re-expanded).
fn expanded_len<S: GroupedSource>(src: &S) -> usize {
    let mut n = src.plain().len();
    if S::GROUPED {
        for g in 0..src.num_groups() {
            n += src.group_count(g) as usize;
        }
    }
    n
}

/// Builds the root tid-bitmaps: one column of `width` words per rank.
///
/// Tids are assigned group-at-a-time — group `g`'s members occupy one
/// contiguous run (outlier members first, then bare members), so every
/// pattern item of the group is a single word-wise run fill. Plain
/// tuples follow, one bit each. Column popcounts are exact supports.
fn build_bitmap_columns<S: GroupedSource>(
    src: &S,
    num_ranks: usize,
    n: usize,
    width: usize,
) -> Vec<u64> {
    debug_assert_eq!(width, bitmap::words_for(n));
    let mut cols = vec![0u64; num_ranks * width];
    let mut tid = 0usize;
    let mut touches = 0u64;
    let mut group_hits = 0u64;
    if S::GROUPED {
        for g in 0..src.num_groups() {
            let count = src.group_count(g) as usize;
            for &r in src.group_pattern(g) {
                bitmap::set_run(&mut cols[r as usize * width..][..width], tid, count);
                group_hits += 1;
            }
            for (idx, m) in src.group_outliers(g).into_iter().enumerate() {
                for &r in m {
                    bitmap::set_bit(&mut cols[r as usize * width..][..width], tid + idx);
                }
                touches += m.len() as u64;
            }
            tid += count;
        }
    }
    for t in src.plain() {
        for &r in t {
            bitmap::set_bit(&mut cols[r as usize * width..][..width], tid);
        }
        touches += t.len() as u64;
        tid += 1;
    }
    if group_hits > 0 {
        metrics::add("mine.group_hits", group_hits);
    }
    metrics::add("mine.tuple_touches", touches);
    histogram::observe("mine.touches_per_projection", touches);
    histogram::observe("mine.tidset_words", cols.len() as u64);
    debug_assert_eq!(tid, n);
    cols
}

/// Builds the root tid-lists: one sorted `u32` column per rank, flat in
/// `data` with per-column end offsets.
///
/// Column lengths are the F-list supports, so the flat slab and every
/// column boundary are laid out exactly before a single tid is written.
/// Tid assignment matches [`build_bitmap_columns`] — groups first, one
/// contiguous run each, so a group pattern item is one `lo..hi` range
/// push (the O(count) list analog of the word-wise run fill), and
/// processing order alone keeps every column sorted.
fn build_tidlist_columns<S: GroupedSource>(src: &S, exts: &[(u32, u64)]) -> (Vec<u32>, Vec<u32>) {
    let k = exts.len();
    let mut ends = vec![0u32; k];
    let mut total = 0u64;
    for (r, &(_, sup)) in exts.iter().enumerate() {
        total += sup;
        ends[r] = total as u32;
    }
    let mut data = vec![0u32; total as usize];
    // Write cursor per column, starting at each column's base offset.
    let mut cur: Vec<u32> = std::iter::once(0).chain(ends[..k - 1].iter().copied()).collect();
    let push = |cur: &mut [u32], data: &mut [u32], r: usize, t: u32| {
        data[cur[r] as usize] = t;
        cur[r] += 1;
    };
    let mut tid = 0u32;
    let mut touches = 0u64;
    let mut group_hits = 0u64;
    if S::GROUPED {
        for g in 0..src.num_groups() {
            let count = src.group_count(g) as u32;
            for &r in src.group_pattern(g) {
                let c = cur[r as usize] as usize;
                for (i, slot) in data[c..c + count as usize].iter_mut().enumerate() {
                    *slot = tid + i as u32;
                }
                cur[r as usize] += count;
                group_hits += 1;
            }
            for (idx, m) in src.group_outliers(g).into_iter().enumerate() {
                for &r in m {
                    push(&mut cur, &mut data, r as usize, tid + idx as u32);
                }
                touches += m.len() as u64;
            }
            tid += count;
        }
    }
    for t in src.plain() {
        for &r in t {
            push(&mut cur, &mut data, r as usize, tid);
        }
        touches += t.len() as u64;
        tid += 1;
    }
    debug_assert!(cur.iter().zip(&ends).all(|(c, e)| c == e), "supports must fill exactly");
    if group_hits > 0 {
        metrics::add("mine.group_hits", group_hits);
    }
    metrics::add("mine.tuple_touches", touches);
    histogram::observe("mine.touches_per_projection", touches);
    metrics::add("mine.tidlist_elems", total);
    (data, ends)
}

/// Processes one lexicographic node whose extension singletons were
/// already emitted by the caller: counts all pairs, applies the chain
/// shortcut and the candidate-bound termination, then descends.
///
/// `cols` holds one materialized column per extension, in extension
/// order (ignored when there are fewer than two extensions).
fn vt_node(
    exts: &[(u32, u64)],
    cols: Cols<'_>,
    cfg: &VtCfg,
    ctx: &mut VtCtx,
    emitter: &mut RankEmitter<'_>,
    sink: &mut dyn PatternSink,
) {
    let k = exts.len();
    if k < 2 {
        return;
    }
    metrics::set_max("mine.max_depth", emitter.depth() as u64 + 1);
    // Pair pass: the whole next level counted without materializing
    // anything, in whatever representation this node holds.
    let mut matrix = PairMatrix::new(k);
    let mut n2 = 0u64;
    let mut scanned = 0u64;
    for (a, &(_, sup_a)) in exts.iter().enumerate() {
        for b in (a + 1)..k {
            let c = cols.pair_support(a, b, sup_a);
            scanned += cols.pair_scan_cost(a, b);
            if c > 0 {
                matrix.bump_by(a as u32, b as u32, c);
            }
            if c >= cfg.minsup {
                n2 += 1;
            }
        }
    }
    let pairs = (k * (k - 1) / 2) as u64;
    metrics::add("mine.candidate_tests", pairs);
    metrics::add(cols.scan_counter(), scanned);
    if n2 == 0 {
        return;
    }
    // Inclusion-chain shortcut: if every pair support equals the
    // smaller member support, the tidsets are pairwise ⊆-comparable —
    // a chain — and any subset's support is its minimum member
    // support. Enumerate subsets directly (singletons were already
    // emitted by the caller).
    if k <= 62 && n2 == pairs && is_chain(exts, &matrix) {
        for_each_subset(exts, &mut |ranks, sup| {
            if ranks.len() >= 2 {
                emitter.emit_with(sink, ranks, sup);
            }
        });
        return;
    }
    // Candidate-bound termination: the Kruskal–Katona cascade of the
    // realized pair level. Zero means no 3-candidate — and hence
    // nothing deeper — can be frequent anywhere below this node, so
    // the frequent pairs are emitted flat and no column is built.
    let bound3 = bound::candidate_bound(n2, 2);
    if bound3 == 0 {
        metrics::add("mine.bound_prunes", 1);
        for a in 0..k {
            let mut pushed = false;
            for b in (a + 1)..k {
                let c = matrix.get(a as u32, b as u32);
                if c >= cfg.minsup {
                    if !pushed {
                        emitter.push(exts[a].0);
                        pushed = true;
                    }
                    emitter.push(exts[b].0);
                    emitter.emit(sink, c);
                    emitter.pop();
                }
            }
            if pushed {
                emitter.pop();
            }
        }
        return;
    }
    // Bound-driven pre-size, re-derived per representation: any child
    // class at this node materializes at most m = min(n₂, k−1)
    // columns. A bitmap child column is `width` words; a tid-list or
    // diffset column never exceeds the largest extension support in
    // u32 elements. Reserving that up front makes every child's fill
    // allocation-free, first descent included.
    let m = n2.min((k - 1) as u64) as usize;
    let depth = ctx.depth;
    if ctx.levels.len() <= depth {
        ctx.levels.resize_with(depth + 1, VtLevel::default);
    }
    match (cfg.forced, cols.repr()) {
        (VtRepr::Auto | VtRepr::Bitmap, Repr::Bitmap) => {
            ctx.levels[depth].arena.reserve_words(m * cfg.width);
        }
        _ => {
            let max_sup = exts.iter().map(|&(_, s)| s).max().unwrap_or(0);
            ctx.levels[depth].arena.reserve_tids(m * max_sup as usize);
        }
    }
    for a in 0..k {
        vt_extend(exts, cols, a, |b| matrix.get(a as u32, b as u32), cfg, ctx, emitter, sink);
    }
}

/// True when every pair support equals the smaller member support —
/// the tidsets are pairwise comparable under inclusion.
fn is_chain(exts: &[(u32, u64)], matrix: &PairMatrix) -> bool {
    let k = exts.len();
    for a in 0..k {
        for b in (a + 1)..k {
            if matrix.get(a as u32, b as u32) != exts[a].1.min(exts[b].1) {
                return false;
            }
        }
    }
    true
}

/// Builds and recurses into the child node of extension `a`: collects
/// the frequent pairs `(a, b)` from `pair_support`, emits the child's
/// extension singletons via the recursion, picks the child's
/// representation, and materializes the child columns only when the
/// child can itself have pairs. This is both the inner loop body of
/// [`vt_node`] and the root fan-out unit.
#[allow(clippy::too_many_arguments)]
fn vt_extend(
    exts: &[(u32, u64)],
    cols: Cols<'_>,
    a: usize,
    pair_support: impl Fn(usize) -> u64,
    cfg: &VtCfg,
    ctx: &mut VtCtx,
    emitter: &mut RankEmitter<'_>,
    sink: &mut dyn PatternSink,
) {
    let depth = ctx.depth;
    if ctx.levels.len() <= depth {
        ctx.levels.resize_with(depth + 1, VtLevel::default);
    }
    // Borrow this depth's scratch; the recursion below only uses deeper
    // slots, so taking it out of the context is conflict-free.
    let mut lvl = std::mem::take(&mut ctx.levels[depth]);
    lvl.exts.clear();
    lvl.srcs.clear();
    for (b, &(rank, _)) in exts.iter().enumerate().skip(a + 1) {
        let c = pair_support(b);
        if c >= cfg.minsup {
            lvl.exts.push((rank, c));
            lvl.srcs.push(b as u32);
        }
    }
    if lvl.exts.is_empty() {
        ctx.levels[depth] = lvl;
        return;
    }
    emitter.push(exts[a].0);
    if lvl.exts.len() == 1 {
        // A single extension cannot pair: emit it without building its
        // (never-read) column.
        let (rank, sup) = lvl.exts[0];
        emitter.push(rank);
        emitter.emit(sink, sup);
        emitter.pop();
    } else {
        let kc = lvl.exts.len();
        let sup_a = exts[a].1;
        let sum: u64 = lvl.exts.iter().map(|&(_, s)| s).sum();
        let child = choose_repr(cfg.forced, cols.repr(), sup_a, kc as u64, sum, cfg.width);
        if child != cols.repr() {
            metrics::add("mine.repr_switches", 1);
        }
        lvl.arena.reset();
        match child {
            Repr::Bitmap => {
                // Only reachable from a bitmap parent.
                let col_a = cols.bm(a);
                lvl.arena.reserve_words(kc * cfg.width);
                for &b in &lvl.srcs {
                    lvl.arena.append_and(col_a, cols.bm(b as usize));
                }
                metrics::add("mine.bitmap_words_scanned", (kc * cfg.width) as u64);
                histogram::observe("mine.tidset_words", (kc * cfg.width) as u64);
            }
            Repr::Tidlist => {
                lvl.arena.reserve_tids(sum as usize);
                match cols {
                    Cols::Bitmap { .. } => {
                        let col_a = cols.bm(a);
                        for &b in &lvl.srcs {
                            lvl.arena.push_tids(|out| {
                                bitmap::collect_and(col_a, cols.bm(b as usize), out)
                            });
                        }
                        metrics::add("mine.bitmap_words_scanned", (kc * cfg.width) as u64);
                    }
                    Cols::Tidlist { .. } => {
                        let ta = cols.list(a);
                        for &b in &lvl.srcs {
                            lvl.arena.push_tids(|out| {
                                bitmap::intersect_into(ta, cols.list(b as usize), out)
                            });
                        }
                    }
                    Cols::Diffset { .. } => unreachable!("diffset cannot re-absolutize"),
                }
                // Materialized elements == Σ child supports, a logical
                // quantity shared by every producing kernel.
                metrics::add("mine.tidlist_elems", sum);
            }
            Repr::Diffset => {
                // |d(child)| = sup_a − sup(child), summed over children.
                lvl.arena.reserve_tids((kc as u64 * sup_a - sum) as usize);
                match cols {
                    Cols::Bitmap { .. } => {
                        let col_a = cols.bm(a);
                        for &b in &lvl.srcs {
                            lvl.arena.push_tids(|out| {
                                bitmap::collect_andnot(col_a, cols.bm(b as usize), out)
                            });
                        }
                        metrics::add("mine.bitmap_words_scanned", (kc * cfg.width) as u64);
                    }
                    Cols::Tidlist { .. } => {
                        // d(child b) = t(Pa) \ t(Pb).
                        let ta = cols.list(a);
                        for &b in &lvl.srcs {
                            lvl.arena
                                .push_tids(|out| bitmap::diff_into(ta, cols.list(b as usize), out));
                        }
                    }
                    Cols::Diffset { .. } => {
                        // d(child b) = d(Pb) \ d(Pa).
                        let da = cols.list(a);
                        for &b in &lvl.srcs {
                            lvl.arena
                                .push_tids(|out| bitmap::diff_into(cols.list(b as usize), da, out));
                        }
                    }
                }
                metrics::add("mine.diffset_words", kc as u64 * sup_a - sum);
            }
        }
        metrics::add("mine.projected_dbs", 1);
        histogram::observe("mine.projected_db_size", kc as u64);
        if cfg.n > 0 {
            histogram::observe("mine.node_density", sum * 1024 / (kc as u64 * cfg.n as u64));
        }
        let ccols = match child {
            Repr::Bitmap => Cols::Bitmap { data: lvl.arena.words(), width: cfg.width },
            Repr::Tidlist => Cols::Tidlist { data: lvl.arena.tids(), ends: lvl.arena.tid_ends() },
            Repr::Diffset => Cols::Diffset { data: lvl.arena.tids(), ends: lvl.arena.tid_ends() },
        };
        // Child extension singletons, then the child node proper.
        for &(rank, sup) in &lvl.exts {
            emitter.push(rank);
            emitter.emit(sink, sup);
            emitter.pop();
        }
        ctx.depth = depth + 1;
        vt_node(&lvl.exts, ccols, cfg, ctx, emitter, sink);
        ctx.depth = depth;
    }
    emitter.pop();
    ctx.levels[depth] = lvl;
}
