//! One traversal implementation per algorithm family, generic over the
//! [`gogreen_data::GroupedSource`] substrate.
//!
//! The paper's central identity — a raw database is a compressed database
//! in which every group has an empty head and unit count — means the
//! baseline miners and their recycling adaptations differ only in *what
//! the root of the search is built from*, never in how the search runs.
//! Each submodule here is that single search implementation:
//!
//! * [`hm`] — H-Mine over the RP-Struct arena (paper §4.1, Figures 4–8);
//! * [`fp`] — FP-growth over a forest of conditional groups (§4.2);
//! * [`tp`] — depth-first Tree Projection over grouped partitions (§4.2);
//! * [`vt`] — vertical (Eclat-style) mining over per-rank tid-bitmaps,
//!   the fourth family: support counting is word-wise AND + popcount,
//!   with group runs filled word-at-a-time on the compressed substrate.
//!
//! The raw miners ([`crate::HMine`], [`crate::FpGrowth`],
//! [`crate::TreeProjection`]) instantiate these with
//! [`gogreen_data::PlainRanks`] (the degenerate, group-free view); the
//! recycling miners in `gogreen-core` instantiate them with the real
//! `CompressedRankDb`. Group handling is driven by the substrate's group
//! count (zero for the degenerate view), so the plain instantiations pay
//! nothing for the group machinery.
//!
//! Parallelism contract: each engine routes its first-level fan-out
//! through [`crate::common::fan_out_ordered`] exactly once, so the
//! emitted stream is byte-identical and every `mine.*` counter
//! thread-invariant at any thread count — for both substrates.

pub mod fp;
pub mod hm;
pub mod tp;
pub mod vt;
