//! FP-growth (Han, Pei, Yin — SIGMOD 2000).
//!
//! Transactions are inserted into a prefix tree (*FP-tree*) in descending
//! F-list order, so common frequent prefixes share nodes. Mining walks the
//! header table from the least frequent item upward: each item's
//! *conditional pattern base* (its prefix paths) becomes a smaller
//! conditional FP-tree, recursively. A tree that degenerates to a single
//! path short-circuits into subset enumeration — the structural ancestor
//! of the paper's Lemma 3.1.
//!
//! [`FpTree`] is public: the conditional-group engine
//! ([`crate::engine::fp`]) uses it both as the per-group outlier store of
//! a compressed database and, through the degenerate
//! [`gogreen_data::PlainRanks`] substrate this type instantiates it with,
//! as the classic global FP-tree.

use crate::common::encode_db;
use crate::Miner;
use gogreen_data::{FList, MinSupport, PatternSink, PlainRanks, TransactionDb};
use gogreen_obs::metrics;
use gogreen_util::pool::Parallelism;

/// Arena/link sentinel shared by all FP-tree fields.
pub const FP_NIL: u32 = u32::MAX;

/// The FP-growth algorithm.
#[derive(Debug, Default, Clone)]
pub struct FpGrowth;

/// One header-table row of an [`FpTree`].
#[derive(Debug, Clone, Copy)]
pub struct FpHeader {
    /// The item (rank).
    pub rank: u32,
    /// Its support in the tree's database.
    pub count: u64,
    /// First node of this rank (follow [`FpTree::next_same_rank`]).
    pub head: u32,
}

/// A weighted prefix tree over rank space. Node 0 is the root.
///
/// Ranks follow the workspace convention (position in the F-list,
/// ascending support); transactions are inserted in *descending* rank
/// order so that parents always carry larger ranks than children.
#[derive(Debug, Clone)]
pub struct FpTree {
    rank: Vec<u32>,
    count: Vec<u64>,
    parent: Vec<u32>,
    hlink: Vec<u32>,
    headers: Vec<FpHeader>,
}

impl FpTree {
    /// Creates a tree with header rows for `freq` — ascending `(rank,
    /// count)` pairs, which every transaction inserted later must draw
    /// its items from.
    pub fn with_headers(freq: &[(u32, u64)]) -> Self {
        debug_assert!(freq.windows(2).all(|w| w[0].0 < w[1].0));
        FpTree {
            rank: vec![FP_NIL],
            count: vec![0],
            parent: vec![FP_NIL],
            hlink: vec![FP_NIL],
            headers: freq
                .iter()
                .map(|&(r, c)| FpHeader { rank: r, count: c, head: FP_NIL })
                .collect(),
        }
    }

    /// The header rows, ascending by rank.
    pub fn headers(&self) -> &[FpHeader] {
        &self.headers
    }

    /// The header row for `rank`, if present.
    pub fn header_for(&self, rank: u32) -> Option<&FpHeader> {
        self.headers.binary_search_by_key(&rank, |h| h.rank).ok().map(|i| &self.headers[i])
    }

    /// Number of nodes, including the root.
    pub fn num_nodes(&self) -> usize {
        self.rank.len()
    }

    /// Rank of `node` (undefined for the root).
    #[inline]
    pub fn rank_of(&self, node: u32) -> u32 {
        self.rank[node as usize]
    }

    /// Weight of `node`.
    #[inline]
    pub fn count_of(&self, node: u32) -> u64 {
        self.count[node as usize]
    }

    /// Parent of `node` (0 = root, `FP_NIL` above the root).
    #[inline]
    pub fn parent_of(&self, node: u32) -> u32 {
        self.parent[node as usize]
    }

    /// Next node with the same rank (`FP_NIL` at chain end).
    #[inline]
    pub fn next_same_rank(&self, node: u32) -> u32 {
        self.hlink[node as usize]
    }

    /// Collects the prefix path of `node` — the ranks of its proper
    /// ancestors, ascending (climbing yields them in ascending order) —
    /// into `out`.
    pub fn climb_into(&self, node: u32, out: &mut Vec<u32>) {
        out.clear();
        let mut p = self.parent[node as usize];
        while p != 0 && p != FP_NIL {
            out.push(self.rank[p as usize]);
            p = self.parent[p as usize];
        }
    }

    /// If the tree is one downward path, returns its `(rank, count)`
    /// elements in path (descending-rank) order; otherwise `None`.
    pub fn single_path(&self) -> Option<Vec<(u32, u64)>> {
        let mut nodes = Vec::with_capacity(self.headers.len());
        for h in &self.headers {
            if h.head == FP_NIL {
                continue;
            }
            if self.hlink[h.head as usize] != FP_NIL {
                return None;
            }
            nodes.push(h.head);
        }
        // Parent rank > child rank, so descending node-rank order is the
        // path order; verify the chain root-downward.
        nodes.sort_unstable_by(|&a, &b| self.rank[b as usize].cmp(&self.rank[a as usize]));
        let mut prev = 0u32;
        for &n in &nodes {
            if self.parent[n as usize] != prev {
                return None;
            }
            prev = n;
        }
        Some(nodes.iter().map(|&n| (self.rank[n as usize], self.count[n as usize])).collect())
    }

    /// Heap bytes of the node arenas (memory-budget accounting).
    pub fn arena_bytes(&self) -> usize {
        self.rank.capacity() * 4
            + self.count.capacity() * 8
            + self.parent.capacity() * 4
            + self.hlink.capacity() * 4
            + self.headers.capacity() * std::mem::size_of::<FpHeader>()
    }
}

/// Incrementally builds an [`FpTree`]; holds the child/sibling chains
/// that are only needed during construction.
///
/// Child lookup is a linear scan of a first-child/next-sibling chain
/// rather than a hash map: fan-out per node is small in practice, and
/// the recycling FP miner builds *many* small conditional trees, where a
/// hash map's fixed construction cost dominates.
pub struct FpTreeBuilder {
    tree: FpTree,
    /// First child per node (parallel to the tree's node arrays).
    child: Vec<u32>,
    /// Next sibling per node.
    sibling: Vec<u32>,
}

impl FpTreeBuilder {
    /// Starts a tree with the given header rows (see
    /// [`FpTree::with_headers`]).
    pub fn new(freq: &[(u32, u64)]) -> Self {
        FpTreeBuilder {
            tree: FpTree::with_headers(freq),
            child: vec![FP_NIL],
            sibling: vec![FP_NIL],
        }
    }

    /// Inserts a transaction given in **descending** rank order with
    /// multiplicity `weight`. Every rank must have a header row.
    pub fn insert_desc(&mut self, ranks_desc: impl Iterator<Item = u32>, weight: u64) {
        let tree = &mut self.tree;
        let mut node = 0u32;
        for r in ranks_desc {
            // Scan the child chain for an existing branch.
            let mut found = FP_NIL;
            let mut c = self.child[node as usize];
            while c != FP_NIL {
                if tree.rank[c as usize] == r {
                    found = c;
                    break;
                }
                c = self.sibling[c as usize];
            }
            node = if found != FP_NIL {
                tree.count[found as usize] += weight;
                found
            } else {
                let c = tree.rank.len() as u32;
                tree.rank.push(r);
                tree.count.push(weight);
                tree.parent.push(node);
                let row = tree
                    .headers
                    .binary_search_by_key(&r, |h| h.rank)
                    .expect("rank has a header row");
                tree.hlink.push(tree.headers[row].head);
                tree.headers[row].head = c;
                // Prepend to the parent's child chain.
                self.child.push(FP_NIL);
                self.sibling.push(self.child[node as usize]);
                self.child[node as usize] = c;
                c
            };
        }
    }

    /// Finishes construction, dropping the child/sibling chains.
    pub fn finish(self) -> FpTree {
        // Every allocation site funnels through one builder, so this is
        // the single place FP-tree nodes are accounted (root excluded).
        metrics::add("mine.fp_nodes", self.tree.rank.len() as u64 - 1);
        self.tree
    }
}

impl Miner for FpGrowth {
    fn name(&self) -> &'static str {
        "FP-growth"
    }

    fn mine_into(&self, db: &TransactionDb, min_support: MinSupport, sink: &mut dyn PatternSink) {
        self.mine_into_par(db, min_support, Parallelism::serial(), sink);
    }

    fn mine_into_par(
        &self,
        db: &TransactionDb,
        min_support: MinSupport,
        par: Parallelism,
        sink: &mut dyn PatternSink,
    ) {
        let minsup = min_support.to_absolute(db.len());
        let flist = FList::from_db(db, minsup);
        if flist.is_empty() {
            return;
        }
        let tuples = encode_db(db, &flist);
        let src = PlainRanks::from_csr(&tuples, flist.len());
        crate::engine::fp::mine_source_par(&src, &flist, minsup, par, sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mine_apriori;
    use gogreen_data::Item;

    #[test]
    fn matches_oracle_on_paper_example_all_thresholds() {
        let db = TransactionDb::paper_example();
        for minsup in 1..=5 {
            let fp = FpGrowth.mine(&db, MinSupport::Absolute(minsup));
            let oracle = mine_apriori(&db, MinSupport::Absolute(minsup));
            assert!(fp.same_patterns_as(&oracle), "minsup={minsup}");
        }
    }

    #[test]
    fn single_path_shortcut_is_exact() {
        // Identical tuples build a single-path tree at the root.
        let db = TransactionDb::from_rows(&[&[1, 2, 3, 4], &[1, 2, 3, 4], &[1, 2, 3, 4]]);
        let fp = FpGrowth.mine(&db, MinSupport::Absolute(2));
        assert_eq!(fp.len(), 15);
        assert_eq!(fp.support_of(&[Item(1), Item(2), Item(3), Item(4)]), Some(3));
    }

    #[test]
    fn single_path_with_varying_counts() {
        // Path counts decrease down the tree: subset supports must take
        // the minimum along the chosen elements.
        let db = TransactionDb::from_rows(&[&[1, 2, 3], &[1, 2, 3], &[1, 2], &[1]]);
        let fp = FpGrowth.mine(&db, MinSupport::Absolute(1));
        assert_eq!(fp.support_of(&[Item(1)]), Some(4));
        assert_eq!(fp.support_of(&[Item(1), Item(2)]), Some(3));
        assert_eq!(fp.support_of(&[Item(1), Item(2), Item(3)]), Some(2));
        let oracle = mine_apriori(&db, MinSupport::Absolute(1));
        assert!(fp.same_patterns_as(&oracle));
    }

    #[test]
    fn branching_tree_regression() {
        let db = TransactionDb::from_rows(&[
            &[1, 2, 5],
            &[2, 4],
            &[2, 3],
            &[1, 2, 4],
            &[1, 3],
            &[2, 3],
            &[1, 3],
            &[1, 2, 3, 5],
            &[1, 2, 3],
        ]);
        for minsup in 1..=5 {
            let fp = FpGrowth.mine(&db, MinSupport::Absolute(minsup));
            let oracle = mine_apriori(&db, MinSupport::Absolute(minsup));
            assert!(fp.same_patterns_as(&oracle), "minsup={minsup}");
        }
    }

    #[test]
    fn empty_db() {
        assert!(FpGrowth.mine(&TransactionDb::new(), MinSupport::Absolute(1)).is_empty());
    }

    #[test]
    fn tree_structure_shares_prefixes() {
        let freq = [(0u32, 2u64), (1, 2), (2, 2)];
        let mut b = FpTreeBuilder::new(&freq);
        b.insert_desc([2, 1, 0].into_iter(), 1);
        b.insert_desc([2, 1].into_iter(), 1);
        let t = b.finish();
        // Root + 3 nodes (2, 1, 0): the second insert reuses 2 and 1.
        assert_eq!(t.num_nodes(), 4);
        let h2 = t.header_for(2).unwrap();
        assert_eq!(t.count_of(h2.head), 2);
        assert!(t.header_for(9).is_none());
    }

    #[test]
    fn climb_yields_ascending_prefix() {
        let freq = [(0u32, 1u64), (1, 1), (2, 1)];
        let mut b = FpTreeBuilder::new(&freq);
        b.insert_desc([2, 1, 0].into_iter(), 1);
        let t = b.finish();
        let leaf = t.header_for(0).unwrap().head;
        let mut out = Vec::new();
        t.climb_into(leaf, &mut out);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn single_path_detection() {
        let freq = [(0u32, 1u64), (1, 2), (2, 3)];
        let mut b = FpTreeBuilder::new(&freq);
        b.insert_desc([2, 1, 0].into_iter(), 1);
        b.insert_desc([2, 1].into_iter(), 1);
        b.insert_desc([2].into_iter(), 1);
        let t = b.finish();
        assert_eq!(t.single_path(), Some(vec![(2, 3), (1, 2), (0, 1)]));
        // A branch kills it.
        let mut b = FpTreeBuilder::new(&freq);
        b.insert_desc([2, 1].into_iter(), 1);
        b.insert_desc([2, 0].into_iter(), 1);
        assert_eq!(b.finish().single_path(), None);
    }
}
