//! Eclat (Zaki — IEEE TKDE 2000): vertical frequent-pattern mining over
//! tidset bitmaps.
//!
//! The database is transposed once into per-rank tid-bitmaps; from then
//! on support counting is word-wise AND + popcount and projection is
//! tidset intersection — no tuple is ever rescanned. This is the fourth
//! engine family, the one the paper's three horizontal baselines are
//! usually benchmarked against in the vertical-mining literature.
//!
//! The traversal lives in [`crate::engine::vt`], shared with the
//! recycling adaptation in `gogreen-core`; this type instantiates it on
//! the degenerate [`gogreen_data::PlainRanks`] substrate, where every
//! column is built from the encoded tuples and the search is classic
//! Eclat/dEclat with a pair-matrix counting pass, an inclusion-chain
//! shortcut, Kruskal–Katona candidate-bound termination, and per-node
//! representation switching between bitmaps, tid-lists and diffsets
//! ([`VtRepr`], forceable for ablation via [`Eclat::with_repr`]).

use crate::common::encode_db;
use crate::engine::vt::VtRepr;
use crate::Miner;
use gogreen_data::{FList, MinSupport, PatternSink, PlainRanks, TransactionDb};
use gogreen_util::pool::Parallelism;

/// The vertical tidset Eclat algorithm.
#[derive(Debug, Default, Clone)]
pub struct Eclat {
    repr: VtRepr,
}

impl Eclat {
    /// The default density-adaptive miner ([`VtRepr::Auto`]).
    pub fn new() -> Self {
        Eclat::default()
    }

    /// A miner pinned to one vertical representation (ablation and the
    /// CLI `--vt-repr` flag).
    pub fn with_repr(repr: VtRepr) -> Self {
        Eclat { repr }
    }
}

impl Miner for Eclat {
    fn name(&self) -> &'static str {
        "Eclat"
    }

    fn mine_into(&self, db: &TransactionDb, min_support: MinSupport, sink: &mut dyn PatternSink) {
        self.mine_into_par(db, min_support, Parallelism::serial(), sink);
    }

    fn mine_into_par(
        &self,
        db: &TransactionDb,
        min_support: MinSupport,
        par: Parallelism,
        sink: &mut dyn PatternSink,
    ) {
        let minsup = min_support.to_absolute(db.len());
        let flist = FList::from_db(db, minsup);
        if flist.is_empty() {
            return;
        }
        let tuples = encode_db(db, &flist);
        let src = PlainRanks::from_csr(&tuples, flist.len());
        crate::engine::vt::mine_source_par_repr(&src, &flist, minsup, par, self.repr, sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mine_apriori;
    use gogreen_data::{FnSink, Item, MinSupport, Transaction, TransactionDb};
    use gogreen_obs::metrics;
    use gogreen_util::rng::{Rng, SmallRng};
    use std::collections::BTreeSet;

    #[test]
    fn matches_oracle_on_paper_example_at_all_thresholds() {
        let db = TransactionDb::paper_example();
        for minsup in 1..=5 {
            let oracle = mine_apriori(&db, MinSupport::Absolute(minsup));
            let vt = Eclat::new().mine(&db, MinSupport::Absolute(minsup));
            assert!(vt.same_patterns_as(&oracle), "minsup={minsup}");
        }
    }

    #[test]
    fn bound_prune_fires_and_stays_exact() {
        // Rows chosen so the {1}-conditional node has exactly one
        // frequent pair whose support is below both member supports:
        // not an inclusion chain, and candidate_bound(1, 2) == 0
        // terminates the node without materializing a child tidset.
        let db = TransactionDb::from_rows(&[&[1, 2, 3][..], &[1, 2, 3], &[1, 2], &[1, 3], &[2, 3]]);
        let oracle = mine_apriori(&db, MinSupport::Absolute(2));
        metrics::reset();
        metrics::set_enabled(true);
        let vt = Eclat::new().mine(&db, MinSupport::Absolute(2));
        metrics::set_enabled(false);
        let prunes = metrics::get("mine.bound_prunes").unwrap_or(0);
        let words = metrics::get("mine.bitmap_words_scanned").unwrap_or(0);
        metrics::reset();
        assert!(vt.same_patterns_as(&oracle));
        assert!(prunes >= 1, "bound prune did not fire");
        assert!(words >= 1, "bitmap kernel counter missing");
    }

    /// Random databases: 1..40 tuples of 1..10 distinct items over 0..18.
    fn random_db(rng: &mut SmallRng) -> TransactionDb {
        let rows = 1 + rng.gen_index(39);
        let mut txs = Vec::with_capacity(rows);
        for _ in 0..rows {
            let len = 1 + rng.gen_index(9);
            let mut set = BTreeSet::new();
            for _ in 0..len {
                set.insert(rng.gen_below(18) as u32);
            }
            txs.push(Transaction::from_ids(set));
        }
        TransactionDb::from_transactions(txs)
    }

    #[test]
    fn matches_oracle_on_random_databases() {
        for case in 0..32u64 {
            let mut rng = SmallRng::seed_from_u64(0x7e5a_1000 + case);
            let db = random_db(&mut rng);
            let minsup = 1 + rng.gen_below(7);
            let oracle = mine_apriori(&db, MinSupport::Absolute(minsup));
            let vt = Eclat::new().mine(&db, MinSupport::Absolute(minsup));
            assert!(vt.same_patterns_as(&oracle), "case={case} minsup={minsup}");
        }
    }

    #[test]
    fn parallel_stream_is_byte_identical() {
        let mut rng = SmallRng::seed_from_u64(0x7e5a_2000);
        let db = random_db(&mut rng);
        let stream = |par: Parallelism| {
            let mut out: Vec<(Vec<Item>, u64)> = Vec::new();
            {
                let mut sink = FnSink(|items: &[Item], sup: u64| out.push((items.to_vec(), sup)));
                Eclat::new().mine_into_par(&db, MinSupport::Absolute(2), par, &mut sink);
            }
            out
        };
        let serial = stream(Parallelism::serial());
        assert!(!serial.is_empty());
        for threads in [2, 4, 8] {
            assert_eq!(serial, stream(Parallelism::threads(threads)), "{threads} threads");
        }
    }

    #[test]
    fn empty_and_singleton_databases() {
        let empty = TransactionDb::from_rows(&[]);
        assert_eq!(Eclat::new().mine(&empty, MinSupport::Absolute(1)).len(), 0);
        let one = TransactionDb::from_rows(&[&[4][..]]);
        let fp = Eclat::new().mine(&one, MinSupport::Absolute(1));
        assert_eq!(fp.len(), 1);
    }
}
