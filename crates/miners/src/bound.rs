//! The Geerts–Goethals–Van den Bussche candidate upper bound.
//!
//! "A Tight Upper Bound on the Number of Candidate Patterns" (ICDM
//! 2001) proves, via the Kruskal–Katona theorem, that if a level of the
//! search holds `n` frequent `k`-itemsets then the next level can hold
//! at most a cascade-computable number of `(k+1)`-candidates: write `n`
//! in its *k-canonical representation*
//!
//! ```text
//! n = C(m_k, k) + C(m_{k-1}, k-1) + … + C(m_r, r)
//! ```
//!
//! with `m_k > m_{k-1} > … > m_r ≥ r ≥ 1`, and then
//!
//! ```text
//! #candidates(k+1) ≤ C(m_k, k+1) + C(m_{k-1}, k) + … + C(m_r, r+1).
//! ```
//!
//! Iterating the bound over successive levels upper-bounds *everything
//! still to come*. The vertical engine uses both forms: a node whose
//! realized pair level admits zero deeper candidates terminates without
//! materializing any child tidset (`mine.bound_prunes`), and the level
//! bounds pre-size the tidset arenas before a level is filled.
//!
//! All arithmetic saturates at `u64::MAX` — the bound is an upper
//! bound, so saturation keeps it sound (never smaller than the truth).

/// Binomial coefficient `C(m, k)`, saturating at `u64::MAX`.
pub fn binomial(m: u64, k: u64) -> u64 {
    if k > m {
        return 0;
    }
    let k = k.min(m - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        // Multiply before dividing: the running product of i+1
        // consecutive ratios is always integral.
        acc = acc.saturating_mul((m - i) as u128) / (i + 1) as u128;
        if acc > u64::MAX as u128 {
            return u64::MAX;
        }
    }
    acc as u64
}

/// Largest `m` with `C(m, k) <= n` (for `n ≥ 1`, `k ≥ 1`).
fn canonical_m(n: u64, k: u64) -> u64 {
    debug_assert!(n >= 1 && k >= 1);
    if k == 1 {
        return n; // C(m, 1) = m
    }
    // Exponential search for an exclusive upper limit, then binary
    // search. Saturated binomials only compare `<= n` when `n` itself
    // is at the saturation point, where any such `m` is acceptable —
    // the caller's subtraction zeroes the remainder either way.
    let mut lo = k; // C(k, k) = 1 <= n
    let mut hi = k + 1;
    while binomial(hi, k) <= n {
        lo = hi;
        hi = match hi.checked_mul(2) {
            Some(h) => h,
            None => {
                hi = u64::MAX;
                break;
            }
        };
    }
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if binomial(mid, k) <= n {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// The Kruskal–Katona cascade: given `n` frequent `k`-itemsets, the
/// maximum possible number of `(k+1)`-itemsets whose every `k`-subset
/// is among them — i.e. the maximum number of candidates the next
/// level can hold.
pub fn candidate_bound(n: u64, k: u64) -> u64 {
    debug_assert!(k >= 1);
    let mut rem = n;
    let mut level = k;
    let mut bound = 0u64;
    while rem > 0 && level >= 1 {
        let m = canonical_m(rem, level);
        bound = bound.saturating_add(binomial(m, level + 1));
        rem -= binomial(m, level);
        level -= 1;
    }
    bound
}

/// Upper bound on the number of frequent itemsets at *all* levels
/// strictly above `k`, given `n` frequent `k`-itemsets: the cascade
/// iterated until it reaches zero. Saturates.
pub fn total_bound(n: u64, k: u64) -> u64 {
    let mut total = 0u64;
    let mut cur = n;
    let mut level = k;
    while cur > 0 {
        let next = candidate_bound(cur, level);
        total = total.saturating_add(next);
        if next == 0 || total == u64::MAX {
            break;
        }
        cur = next;
        level += 1;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomials() {
        assert_eq!(binomial(0, 0), 1);
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(10, 3), 120);
        assert_eq!(binomial(3, 5), 0);
        assert_eq!(binomial(64, 32), 1832624140942590534);
        // Saturates instead of overflowing.
        assert_eq!(binomial(200, 100), u64::MAX);
    }

    #[test]
    fn zero_sets_admit_nothing() {
        for k in 1..5 {
            assert_eq!(candidate_bound(0, k), 0);
            assert_eq!(total_bound(0, k), 0);
        }
    }

    #[test]
    fn pair_cascade_hand_values() {
        // n frequent 2-sets -> max frequent 3-sets.
        // 1 pair or 2 pairs can never close a triangle.
        assert_eq!(candidate_bound(1, 2), 0);
        assert_eq!(candidate_bound(2, 2), 0);
        // 3 = C(3,2): one triangle.
        assert_eq!(candidate_bound(3, 2), 1);
        // 4 = C(3,2) + C(1,1): still only the one triangle.
        assert_eq!(candidate_bound(4, 2), 1);
        // 6 = C(4,2): K4 has C(4,3) = 4 triangles.
        assert_eq!(candidate_bound(6, 2), 4);
        // 10 = C(5,2): C(5,3) = 10.
        assert_eq!(candidate_bound(10, 2), 10);
    }

    #[test]
    fn singleton_cascade_is_choose_two() {
        // n frequent 1-sets -> at most C(n, 2) pairs.
        for n in 1..20u64 {
            assert_eq!(candidate_bound(n, 1), n * (n - 1) / 2);
        }
    }

    #[test]
    fn triple_cascade_hand_values() {
        // 4 = C(4,3): the four faces of a tetrahedron allow C(4,4) = 1.
        assert_eq!(candidate_bound(4, 3), 1);
        // 3 triples can't close a 4-set.
        assert_eq!(candidate_bound(3, 3), 0);
    }

    #[test]
    fn total_bound_sums_the_cascade() {
        // 3 pairs -> 1 triple -> 0 quads: total 1.
        assert_eq!(total_bound(3, 2), 1);
        // 6 pairs (K4) -> 4 triples -> 1 quad -> 0: total 5.
        assert_eq!(total_bound(6, 2), 5);
        // n singletons: the whole powerset above level 1.
        assert_eq!(total_bound(4, 1), 6 + 4 + 1);
    }

    #[test]
    fn total_bound_saturates_gracefully() {
        assert_eq!(total_bound(u64::MAX, 1), u64::MAX);
        assert_eq!(total_bound(1 << 40, 2), u64::MAX);
    }

    #[test]
    fn bound_is_monotone_in_n() {
        let mut prev = 0;
        for n in 0..200 {
            let b = candidate_bound(n, 2);
            assert!(b >= prev, "n={n}");
            prev = b;
        }
    }
}
