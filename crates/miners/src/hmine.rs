//! H-Mine (Pei, Han, Lu, Nishio, Tang, Yang — ICDM 2001).
//!
//! H-Mine loads the frequent projection of the database into a
//! *hyper-structure*: every tuple is an array of rank-encoded entries, and
//! each entry carries one reusable hyperlink. A header table per search
//! node threads tuples into per-item queues through those links, so
//! projected databases are never materialized — "projection" is relinking
//! a queue.
//!
//! The traversal itself lives in [`crate::engine::hm`], shared with the
//! recycling H-Mine in `gogreen-core`: this type instantiates it on the
//! degenerate [`PlainRanks`] substrate (every tuple is its own group with
//! an empty head), which compiles down to the classic hyper-structure
//! search — group handling vanishes statically.

use crate::common::{encode_db, encode_db_pruned};
use crate::engine::hm;
use crate::Miner;
use gogreen_data::{
    FList, MinSupport, PatternSink, PlainRanks, SearchPrune, TransactionDb, TupleSlices,
};
use gogreen_util::pool::Parallelism;

/// The H-Mine algorithm.
#[derive(Debug, Default, Clone)]
pub struct HMine;

impl Miner for HMine {
    fn name(&self) -> &'static str {
        "H-Mine"
    }

    fn mine_into(&self, db: &TransactionDb, min_support: MinSupport, sink: &mut dyn PatternSink) {
        self.mine_into_par(db, min_support, Parallelism::serial(), sink);
    }

    fn mine_into_par(
        &self,
        db: &TransactionDb,
        min_support: MinSupport,
        par: Parallelism,
        sink: &mut dyn PatternSink,
    ) {
        let minsup = min_support.to_absolute(db.len());
        let flist = FList::from_db(db, minsup);
        if flist.is_empty() {
            return;
        }
        let tuples = encode_db(db, &flist);
        self.mine_encoded_par(tuples.as_slices(), &flist, &[], minsup, par, sink);
    }
}

impl HMine {
    /// Mines rank-encoded `tuples` against `flist` at the absolute
    /// threshold `minsup`, emitting every pattern prefixed by
    /// `prefix_items`.
    ///
    /// This is the resumable entry point the memory-limited driver uses:
    /// a spilled `i`-projected partition is mined by passing the
    /// partition's tuples with `prefix_items = [item(i)]`. Supports are
    /// counted from the tuples themselves (a partition's local supports
    /// differ from the F-list's global ones). Tuples come in as a CSR
    /// window, so a reloaded spill partition is handed over without
    /// re-boxing rows.
    pub fn mine_encoded(
        &self,
        tuples: TupleSlices<'_>,
        flist: &gogreen_data::FList,
        prefix_items: &[gogreen_data::Item],
        minsup: u64,
        sink: &mut dyn PatternSink,
    ) {
        self.mine_encoded_par(tuples, flist, prefix_items, minsup, Parallelism::serial(), sink);
    }

    /// [`HMine::mine_encoded`] with the root header table fanned out over
    /// `par` scoped threads; the emitted stream is byte-identical to the
    /// serial run at any thread count.
    pub fn mine_encoded_par(
        &self,
        tuples: TupleSlices<'_>,
        flist: &gogreen_data::FList,
        prefix_items: &[gogreen_data::Item],
        minsup: u64,
        par: Parallelism,
        sink: &mut dyn PatternSink,
    ) {
        let src = PlainRanks::new(tuples, flist.len());
        hm::mine_source_par(&src, flist, prefix_items, minsup, par, sink);
    }

    /// Constrained mining over a plain database: `prune` strips
    /// disallowed items from the search space, abandons subtrees whose
    /// prefix violates a pushed anti-monotone predicate, and bounds the
    /// extension depth. The output equals unconstrained mining filtered
    /// by the pushed checks.
    pub fn mine_pruned<P: SearchPrune + ?Sized>(
        &self,
        db: &TransactionDb,
        min_support: MinSupport,
        prune: &P,
        sink: &mut dyn PatternSink,
    ) {
        let minsup = min_support.to_absolute(db.len());
        let flist = FList::from_db(db, minsup);
        if flist.is_empty() {
            return;
        }
        let allowed: Vec<bool> =
            (0..flist.len() as u32).map(|r| prune.item_allowed(flist.item(r))).collect();
        let tuples = encode_db_pruned(db, &flist, &allowed);
        self.mine_encoded_pruned(tuples.as_slices(), &flist, &[], minsup, prune, sink);
    }

    /// [`HMine::mine_encoded`] with pruning hooks (serial; the
    /// engine's no-prune instantiation compiles to the unpruned search).
    pub fn mine_encoded_pruned<P: SearchPrune + ?Sized>(
        &self,
        tuples: TupleSlices<'_>,
        flist: &gogreen_data::FList,
        prefix_items: &[gogreen_data::Item],
        minsup: u64,
        prune: &P,
        sink: &mut dyn PatternSink,
    ) {
        let src = PlainRanks::new(tuples, flist.len());
        hm::mine_source_pruned(&src, flist, prefix_items, minsup, prune, sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mine_apriori;
    use gogreen_data::Item;

    #[test]
    fn matches_oracle_on_paper_example_all_thresholds() {
        let db = TransactionDb::paper_example();
        for minsup in 1..=5 {
            let hm = HMine.mine(&db, MinSupport::Absolute(minsup));
            let oracle = mine_apriori(&db, MinSupport::Absolute(minsup));
            assert!(
                hm.same_patterns_as(&oracle),
                "minsup={minsup}: hmine {} vs oracle {}",
                hm.len(),
                oracle.len()
            );
        }
    }

    #[test]
    fn empty_and_trivial_dbs() {
        assert!(HMine.mine(&TransactionDb::new(), MinSupport::Absolute(1)).is_empty());
        let db = TransactionDb::from_rows(&[&[1]]);
        let fp = HMine.mine(&db, MinSupport::Absolute(1));
        assert_eq!(fp.len(), 1);
        assert_eq!(fp.support_of(&[Item(1)]), Some(1));
    }

    #[test]
    fn long_shared_prefix_chain() {
        // All tuples share a long prefix: exercises deep recursion and the
        // relink invariant across many levels.
        let db = TransactionDb::from_rows(&[
            &[1, 2, 3, 4, 5, 6],
            &[1, 2, 3, 4, 5, 6],
            &[1, 2, 3, 4, 5, 7],
            &[1, 2, 3, 4, 8, 9],
        ]);
        let hm = HMine.mine(&db, MinSupport::Absolute(2));
        let oracle = mine_apriori(&db, MinSupport::Absolute(2));
        assert!(hm.same_patterns_as(&oracle));
    }

    #[test]
    fn interleaved_queues_regression() {
        // Tuples whose first frequent items differ force queue relinks in
        // every direction.
        let db = TransactionDb::from_rows(&[
            &[1, 3, 5],
            &[2, 3, 5],
            &[1, 2, 5],
            &[1, 2, 3],
            &[4, 5],
            &[1, 4],
        ]);
        for minsup in 1..=4 {
            let hm = HMine.mine(&db, MinSupport::Absolute(minsup));
            let oracle = mine_apriori(&db, MinSupport::Absolute(minsup));
            assert!(hm.same_patterns_as(&oracle), "minsup={minsup}");
        }
    }
}
