//! H-Mine (Pei, Han, Lu, Nishio, Tang, Yang — ICDM 2001).
//!
//! H-Mine loads the frequent projection of the database into a
//! *hyper-structure*: every tuple is an array of rank-encoded entries, and
//! each entry carries one reusable hyperlink. A header table per search
//! node threads tuples into per-item queues through those links, so
//! projected databases are never materialized — "projection" is relinking
//! a queue.
//!
//! The crucial invariant that lets a *single* link field per entry serve
//! every recursion level: during the depth-first search, an entry `(t, x)`
//! is live in at most one queue at a time. A tuple's membership in an
//! ancestor level is held by an entry of a *smaller* rank than anything the
//! descendant levels relink, and descendants' stale links are dead by the
//! time the ancestor relinks `(t, x)` forward.
//!
//! This implementation replaces raw pointers with `u32` indices into entry
//! arenas — same layout, memory-safe.

use crate::common::{fan_out_ordered, RankEmitter, ScratchCounts};
use crate::Miner;
use gogreen_data::{FList, MinSupport, NoPrune, PatternSink, SearchPrune, TransactionDb};
use gogreen_obs::metrics;
use gogreen_util::pool::Parallelism;

/// Link/arena sentinel.
const NIL: u32 = u32::MAX;
/// Item marker for tuple-terminating sentinel entries.
const SENT: u32 = u32::MAX;

/// The H-Mine algorithm.
#[derive(Debug, Default, Clone)]
pub struct HMine;

/// The hyper-structure: parallel arrays of entry items (ranks) and
/// hyperlinks. Tuples are contiguous runs terminated by a [`SENT`] entry.
pub(crate) struct HStruct {
    item: Vec<u32>,
    next: Vec<u32>,
}

impl HStruct {
    /// Builds the arena from rank-encoded tuples, returning the structure
    /// and the arena index of each tuple's first entry.
    pub(crate) fn build<'a>(
        tuples: impl Iterator<Item = &'a [u32]>,
        size_hint: usize,
    ) -> (Self, Vec<u32>) {
        let mut item = Vec::with_capacity(size_hint);
        let mut next = Vec::new();
        let mut firsts = Vec::new();
        for t in tuples {
            debug_assert!(!t.is_empty() && t.windows(2).all(|w| w[0] < w[1]));
            firsts.push(item.len() as u32);
            item.extend_from_slice(t);
            item.push(SENT);
        }
        next.resize(item.len(), NIL);
        (HStruct { item, next }, firsts)
    }

    /// Bytes of heap owned by the arena — the quantity the paper's memory
    /// estimator budgets (§3.3): H-Mine's footprint is proportional to the
    /// number of frequent-item occurrences.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn arena_bytes(&self) -> usize {
        (self.item.capacity() + self.next.capacity()) * std::mem::size_of::<u32>()
    }
}

/// One header-table row: an item (rank), its support in the current
/// projection, and the head of its tuple queue.
struct Cell {
    rank: u32,
    count: u64,
    head: u32,
}

struct Ctx {
    hs: HStruct,
    /// `active[rank] == depth` ⇔ rank belongs to the current level's
    /// header table. Levels nest (child item sets ⊆ parent extension
    /// sets), so a depth number plus restore-on-exit suffices.
    active: Vec<u32>,
    /// Header-cell index of each active rank at the current level.
    cell_of: Vec<u32>,
    scratch: ScratchCounts,
    minsup: u64,
}

impl Miner for HMine {
    fn name(&self) -> &'static str {
        "H-Mine"
    }

    fn mine_into(&self, db: &TransactionDb, min_support: MinSupport, sink: &mut dyn PatternSink) {
        self.mine_into_par(db, min_support, Parallelism::serial(), sink);
    }

    fn mine_into_par(
        &self,
        db: &TransactionDb,
        min_support: MinSupport,
        par: Parallelism,
        sink: &mut dyn PatternSink,
    ) {
        let minsup = min_support.to_absolute(db.len());
        let flist = FList::from_db(db, minsup);
        if flist.is_empty() {
            return;
        }
        let tuples: Vec<Vec<u32>> =
            db.iter().map(|t| flist.encode(t.items())).filter(|t| !t.is_empty()).collect();
        self.mine_encoded_par(&tuples, &flist, &[], minsup, par, sink);
    }
}

/// Per-worker reusable state for the first-level fan-out: count scratch,
/// the level-activity arrays (allocated once per worker, not once per
/// rank), the suffix-slice buffer, and the DFS emitter.
struct HmWorker<'a> {
    emitter: RankEmitter<'a>,
    scratch: ScratchCounts,
    active: Vec<u32>,
    cell_of: Vec<u32>,
    subs: Vec<&'a [u32]>,
}

impl HMine {
    /// Mines rank-encoded `tuples` against `flist` at the absolute
    /// threshold `minsup`, emitting every pattern prefixed by
    /// `prefix_items`.
    ///
    /// This is the resumable entry point the memory-limited driver uses:
    /// a spilled `i`-projected partition is mined by passing the
    /// partition's tuples with `prefix_items = [item(i)]`. Supports are
    /// counted from the tuples themselves (a partition's local supports
    /// differ from the F-list's global ones).
    pub fn mine_encoded(
        &self,
        tuples: &[Vec<u32>],
        flist: &gogreen_data::FList,
        prefix_items: &[gogreen_data::Item],
        minsup: u64,
        sink: &mut dyn PatternSink,
    ) {
        self.mine_encoded_par(tuples, flist, prefix_items, minsup, Parallelism::serial(), sink);
    }

    /// [`HMine::mine_encoded`] with the root header table fanned out over
    /// `par` scoped threads.
    ///
    /// Instead of threading one shared hyper-structure through a mutable
    /// root queue pass (inherently sequential), each top-level rank `r`
    /// becomes an independent work unit: the suffixes following `r` in
    /// every tuple form `r`'s projected database, and a per-worker arena
    /// is built over those suffix *slices* — the relink invariant then
    /// holds privately within each unit. Queue order never affects
    /// H-Mine's output (cells are processed in ascending rank order and
    /// supports are order-independent sums), so the per-unit streams
    /// concatenated in rank order are byte-identical to the serial run.
    pub fn mine_encoded_par(
        &self,
        tuples: &[Vec<u32>],
        flist: &gogreen_data::FList,
        prefix_items: &[gogreen_data::Item],
        minsup: u64,
        par: Parallelism,
        sink: &mut dyn PatternSink,
    ) {
        let n = flist.len();
        let mut scratch = ScratchCounts::new(n);
        let mut touches = 0u64;
        for t in tuples {
            for &r in t {
                scratch.add(r, 1);
                touches += 1;
            }
        }
        metrics::add("mine.tuple_touches", touches);
        metrics::add("mine.candidate_tests", scratch.touched().len() as u64);
        let frequent = scratch.drain_frequent(minsup);
        if frequent.is_empty() {
            return;
        }
        metrics::set_max("mine.max_depth", prefix_items.len() as u64 + 1);
        // Occurrence index: for each frequent rank, where its (non-empty)
        // suffixes start. One pass over the tuples replaces the per-rank
        // scans a naive fan-out would need, so the serial driver does no
        // more work than the queue-relink top level it replaces.
        let mut unit_of: Vec<u32> = vec![NIL; n];
        for (li, &(r, _)) in frequent.iter().enumerate() {
            unit_of[r as usize] = li as u32;
        }
        let mut occ: Vec<Vec<(u32, u32)>> = vec![Vec::new(); frequent.len()];
        for (ti, t) in tuples.iter().enumerate() {
            for (p, &r) in t.iter().enumerate() {
                let li = unit_of[r as usize];
                if li != NIL && p + 1 < t.len() {
                    occ[li as usize].push((ti as u32, p as u32 + 1));
                }
            }
        }
        let occ = &occ;
        let frequent = &frequent;
        fan_out_ordered(
            par,
            frequent.len(),
            sink,
            || {
                let mut emitter = RankEmitter::new(flist);
                for &it in prefix_items {
                    emitter.push_item(it);
                }
                HmWorker {
                    emitter,
                    scratch: ScratchCounts::new(n),
                    active: vec![0; n],
                    cell_of: vec![NIL; n],
                    subs: Vec::new(),
                }
            },
            |w, li, sink| {
                let (r, c) = frequent[li];
                w.emitter.push(r);
                w.emitter.emit(sink, c);
                w.subs.clear();
                w.subs.extend(occ[li].iter().map(|&(ti, o)| &tuples[ti as usize][o as usize..]));
                if !w.subs.is_empty() {
                    mine_suffixes(w, minsup, sink);
                }
                w.emitter.pop();
            },
        );
    }

    /// Constrained mining over a plain database: `prune` strips
    /// disallowed items from the search space, abandons subtrees whose
    /// prefix violates a pushed anti-monotone predicate, and bounds the
    /// extension depth. The output equals unconstrained mining filtered
    /// by the pushed checks.
    pub fn mine_pruned<P: SearchPrune>(
        &self,
        db: &TransactionDb,
        min_support: MinSupport,
        prune: &P,
        sink: &mut dyn PatternSink,
    ) {
        let minsup = min_support.to_absolute(db.len());
        let flist = FList::from_db(db, minsup);
        if flist.is_empty() {
            return;
        }
        let allowed: Vec<bool> =
            (0..flist.len() as u32).map(|r| prune.item_allowed(flist.item(r))).collect();
        let tuples: Vec<Vec<u32>> = db
            .iter()
            .map(|t| {
                let mut enc = flist.encode(t.items());
                enc.retain(|&r| allowed[r as usize]);
                enc
            })
            .filter(|t| !t.is_empty())
            .collect();
        self.mine_encoded_pruned(&tuples, &flist, &[], minsup, prune, sink);
    }

    /// [`HMine::mine_encoded`] with pruning hooks (monomorphized; the
    /// [`NoPrune`] instantiation compiles to the unpruned search).
    pub fn mine_encoded_pruned<P: SearchPrune>(
        &self,
        tuples: &[Vec<u32>],
        flist: &gogreen_data::FList,
        prefix_items: &[gogreen_data::Item],
        minsup: u64,
        prune: &P,
        sink: &mut dyn PatternSink,
    ) {
        let n = flist.len();
        let mut scratch = ScratchCounts::new(n);
        let mut touches = 0u64;
        for t in tuples {
            for &r in t {
                scratch.add(r, 1);
                touches += 1;
            }
        }
        metrics::add("mine.tuple_touches", touches);
        metrics::add("mine.candidate_tests", scratch.touched().len() as u64);
        let frequent = scratch.drain_frequent(minsup);
        if frequent.is_empty() {
            return;
        }
        let occurrences: usize = tuples.iter().map(Vec::len).sum();
        let (hs, firsts) =
            HStruct::build(tuples.iter().map(Vec::as_slice), occurrences + tuples.len());
        let mut ctx = Ctx { hs, active: vec![0; n], cell_of: vec![NIL; n], scratch, minsup };
        let mut cells: Vec<Cell> =
            frequent.iter().map(|&(r, c)| Cell { rank: r, count: c, head: NIL }).collect();
        for (i, c) in cells.iter().enumerate() {
            ctx.active[c.rank as usize] = 1;
            ctx.cell_of[c.rank as usize] = i as u32;
        }
        // Queue each tuple on its first *active* entry (a tuple may start
        // with locally infrequent ranks).
        for &first in &firsts {
            let mut e = first as usize;
            loop {
                let r = ctx.hs.item[e];
                if r == SENT {
                    break;
                }
                if ctx.active[r as usize] == 1 {
                    let ci = ctx.cell_of[r as usize] as usize;
                    ctx.hs.next[e] = cells[ci].head;
                    cells[ci].head = e as u32;
                    break;
                }
                e += 1;
            }
        }
        let mut emitter = RankEmitter::new(flist);
        for &it in prefix_items {
            emitter.push_item(it);
        }
        mine_level(&mut ctx, &mut cells, 1, prune, &mut emitter, sink);
    }
}

/// Mines one top-level rank's projected database (its suffix slices) in
/// a private arena, reusing the worker's scratch and activity buffers so
/// the per-unit cost is the arena build plus the usual level passes.
fn mine_suffixes(w: &mut HmWorker<'_>, minsup: u64, sink: &mut dyn PatternSink) {
    let mut touches = 0u64;
    for t in &w.subs {
        for &r in *t {
            w.scratch.add(r, 1);
            touches += 1;
        }
    }
    metrics::add("mine.tuple_touches", touches);
    metrics::add("mine.candidate_tests", w.scratch.touched().len() as u64);
    let sub = w.scratch.drain_frequent(minsup);
    if sub.is_empty() {
        return;
    }
    metrics::add("mine.projected_dbs", 1);
    let occurrences: usize = w.subs.iter().map(|t| t.len()).sum();
    let (hs, firsts) = HStruct::build(w.subs.iter().copied(), occurrences + w.subs.len());
    let mut ctx = Ctx {
        hs,
        active: std::mem::take(&mut w.active),
        cell_of: std::mem::take(&mut w.cell_of),
        scratch: std::mem::replace(&mut w.scratch, ScratchCounts::new(0)),
        minsup,
    };
    let mut cells: Vec<Cell> =
        sub.iter().map(|&(x, c)| Cell { rank: x, count: c, head: NIL }).collect();
    for (i, c) in cells.iter().enumerate() {
        ctx.active[c.rank as usize] = 1;
        ctx.cell_of[c.rank as usize] = i as u32;
    }
    for &first in &firsts {
        let mut e = first as usize;
        loop {
            let r = ctx.hs.item[e];
            if r == SENT {
                break;
            }
            if ctx.active[r as usize] == 1 {
                let ci = ctx.cell_of[r as usize] as usize;
                ctx.hs.next[e] = cells[ci].head;
                cells[ci].head = e as u32;
                break;
            }
            e += 1;
        }
    }
    mine_level(&mut ctx, &mut cells, 1, &NoPrune, &mut w.emitter, sink);
    // Return the buffers to the worker, un-tagging this unit's ranks so
    // the next unit starts from a clean activity map.
    for &(x, _) in &sub {
        ctx.active[x as usize] = 0;
        ctx.cell_of[x as usize] = NIL;
    }
    w.active = ctx.active;
    w.cell_of = ctx.cell_of;
    w.scratch = ctx.scratch;
}

/// Processes one header table: for each cell in ascending rank order, emit
/// its pattern, count its locally frequent extensions, build and recurse
/// into the sub-header, then relink its queue forward within this level.
fn mine_level<P: SearchPrune>(
    ctx: &mut Ctx,
    cells: &mut [Cell],
    depth: u32,
    prune: &P,
    emitter: &mut RankEmitter<'_>,
    sink: &mut dyn PatternSink,
) {
    metrics::set_max("mine.max_depth", emitter.depth() as u64 + 1);
    for idx in 0..cells.len() {
        let r = cells[idx].rank;
        emitter.push(r);
        // Anti-monotone pushdown: a violating prefix dooms the subtree
        // (but the queue must still relink for the later rows).
        let prefix_ok = prune.prefix_ok(emitter.prefix());
        if prefix_ok {
            emitter.emit(sink, cells[idx].count);
        }

        let is_last = idx + 1 == cells.len();
        let descend = prefix_ok && prune.may_extend(emitter.depth());
        if !is_last {
            // Pass 1 — count extensions of r among this queue's tuples
            // (skipped entirely when pruning forbids descending).
            if descend {
                let mut touches = 0u64;
                let mut e = cells[idx].head;
                while e != NIL {
                    let mut p = e as usize + 1;
                    loop {
                        let x = ctx.hs.item[p];
                        if x == SENT {
                            break;
                        }
                        if ctx.active[x as usize] == depth {
                            ctx.scratch.add(x, 1);
                            touches += 1;
                        }
                        p += 1;
                    }
                    e = ctx.hs.next[e as usize];
                }
                metrics::add("mine.tuple_touches", touches);
                metrics::add("mine.candidate_tests", ctx.scratch.touched().len() as u64);
            }
            let sub = ctx.scratch.drain_frequent(ctx.minsup);

            if !sub.is_empty() {
                metrics::add("mine.projected_dbs", 1);
                // Enter sub-level: activate items, saving parent state.
                let mut subcells: Vec<Cell> =
                    sub.iter().map(|&(x, c)| Cell { rank: x, count: c, head: NIL }).collect();
                let saved: Vec<(u32, u32)> =
                    sub.iter().map(|&(x, _)| (x, ctx.cell_of[x as usize])).collect();
                for (i, c) in subcells.iter().enumerate() {
                    ctx.active[c.rank as usize] = depth + 1;
                    ctx.cell_of[c.rank as usize] = i as u32;
                }
                // Pass 2 — thread each tuple into the queue of its first
                // sub-active entry after r.
                let mut e = cells[idx].head;
                while e != NIL {
                    let succ = ctx.hs.next[e as usize];
                    let mut p = e as usize + 1;
                    loop {
                        let x = ctx.hs.item[p];
                        if x == SENT {
                            break;
                        }
                        if ctx.active[x as usize] == depth + 1 {
                            let ci = ctx.cell_of[x as usize] as usize;
                            ctx.hs.next[p] = subcells[ci].head;
                            subcells[ci].head = p as u32;
                            break;
                        }
                        p += 1;
                    }
                    e = succ;
                }
                mine_level(ctx, &mut subcells, depth + 1, prune, emitter, sink);
                // Exit sub-level: restore parent activity and cell map.
                for (x, old_cell) in saved {
                    ctx.active[x as usize] = depth;
                    ctx.cell_of[x as usize] = old_cell;
                }
            }

            // Pass 3 — relink: move each tuple of r's queue to the queue
            // of its next item active at THIS level, so later cells see it.
            let mut e = cells[idx].head;
            while e != NIL {
                let succ = ctx.hs.next[e as usize];
                let mut p = e as usize + 1;
                loop {
                    let x = ctx.hs.item[p];
                    if x == SENT {
                        break;
                    }
                    if ctx.active[x as usize] == depth {
                        let ci = ctx.cell_of[x as usize] as usize;
                        ctx.hs.next[p] = cells[ci].head;
                        cells[ci].head = p as u32;
                        break;
                    }
                    p += 1;
                }
                e = succ;
            }
        }
        emitter.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mine_apriori;
    use gogreen_data::Item;

    #[test]
    fn matches_oracle_on_paper_example_all_thresholds() {
        let db = TransactionDb::paper_example();
        for minsup in 1..=5 {
            let hm = HMine.mine(&db, MinSupport::Absolute(minsup));
            let oracle = mine_apriori(&db, MinSupport::Absolute(minsup));
            assert!(
                hm.same_patterns_as(&oracle),
                "minsup={minsup}: hmine {} vs oracle {}",
                hm.len(),
                oracle.len()
            );
        }
    }

    #[test]
    fn empty_and_trivial_dbs() {
        assert!(HMine.mine(&TransactionDb::new(), MinSupport::Absolute(1)).is_empty());
        let db = TransactionDb::from_rows(&[&[1]]);
        let fp = HMine.mine(&db, MinSupport::Absolute(1));
        assert_eq!(fp.len(), 1);
        assert_eq!(fp.support_of(&[Item(1)]), Some(1));
    }

    #[test]
    fn long_shared_prefix_chain() {
        // All tuples share a long prefix: exercises deep recursion and the
        // relink invariant across many levels.
        let db = TransactionDb::from_rows(&[
            &[1, 2, 3, 4, 5, 6],
            &[1, 2, 3, 4, 5, 6],
            &[1, 2, 3, 4, 5, 7],
            &[1, 2, 3, 4, 8, 9],
        ]);
        let hm = HMine.mine(&db, MinSupport::Absolute(2));
        let oracle = mine_apriori(&db, MinSupport::Absolute(2));
        assert!(hm.same_patterns_as(&oracle));
    }

    #[test]
    fn interleaved_queues_regression() {
        // Tuples whose first frequent items differ force queue relinks in
        // every direction.
        let db = TransactionDb::from_rows(&[
            &[1, 3, 5],
            &[2, 3, 5],
            &[1, 2, 5],
            &[1, 2, 3],
            &[4, 5],
            &[1, 4],
        ]);
        for minsup in 1..=4 {
            let hm = HMine.mine(&db, MinSupport::Absolute(minsup));
            let oracle = mine_apriori(&db, MinSupport::Absolute(minsup));
            assert!(hm.same_patterns_as(&oracle), "minsup={minsup}");
        }
    }

    #[test]
    fn arena_accounts_entries_and_sentinels() {
        let tuples = [vec![0u32, 1], vec![2]];
        let (hs, firsts) = HStruct::build(tuples.iter().map(|t| t.as_slice()), 0);
        assert_eq!(firsts, vec![0, 3]);
        // 3 item entries + 2 sentinels.
        assert_eq!(hs.item.len(), 5);
        assert!(hs.arena_bytes() >= 5 * 8);
    }
}
