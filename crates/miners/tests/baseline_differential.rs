//! Randomized differential tests across the baseline miners: on any
//! database and threshold, H-Mine, FP-growth, Tree Projection, Eclat and
//! the naive projected-database miner must produce exactly Apriori's set.
//! Cases come from a seeded in-repo PRNG for deterministic replay.

use gogreen_data::{MinSupport, Transaction, TransactionDb};
use gogreen_miners::{
    mine_apriori, mine_eclat, mine_fpgrowth, mine_hmine, mine_treeproj, Miner, NaiveProjection,
};
use gogreen_util::rng::{Rng, SmallRng};
use std::collections::BTreeSet;

/// Random database: 1..40 tuples of 1..10 distinct items over 0..18.
fn random_db(rng: &mut SmallRng) -> TransactionDb {
    let rows = 1 + rng.gen_index(39);
    let mut txs = Vec::with_capacity(rows);
    for _ in 0..rows {
        let len = 1 + rng.gen_index(9);
        let mut set = BTreeSet::new();
        for _ in 0..len {
            set.insert(rng.gen_below(18) as u32);
        }
        txs.push(Transaction::from_ids(set));
    }
    TransactionDb::from_transactions(txs)
}

fn check_against_oracle(
    name: &str,
    seed_base: u64,
    mine: impl Fn(&TransactionDb, MinSupport) -> gogreen_data::PatternSet,
) {
    for case in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(seed_base + case);
        let db = random_db(&mut rng);
        let minsup = 1 + rng.gen_below(7);
        let want = mine_apriori(&db, MinSupport::Absolute(minsup));
        let got = mine(&db, MinSupport::Absolute(minsup));
        assert!(
            got.same_patterns_as(&want),
            "{name} case {case}: got {} want {}",
            got.len(),
            want.len()
        );
    }
}

#[test]
fn hmine_matches_oracle() {
    check_against_oracle("hmine", 0x6a3e_0001, mine_hmine);
}

#[test]
fn fpgrowth_matches_oracle() {
    check_against_oracle("fpgrowth", 0x6a3e_0002, mine_fpgrowth);
}

#[test]
fn treeproj_matches_oracle() {
    check_against_oracle("treeproj", 0x6a3e_0003, mine_treeproj);
}

#[test]
fn naive_matches_oracle() {
    check_against_oracle("naive", 0x6a3e_0004, |db, ms| NaiveProjection.mine(db, ms));
}

#[test]
fn eclat_matches_oracle() {
    check_against_oracle("eclat", 0x6a3e_0005, mine_eclat);
}

/// Anti-monotonicity of the output itself: every subset-closed property
/// the oracle guarantees must hold for the fast miners too.
#[test]
fn output_is_subset_closed() {
    for case in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(0x5b5e_7c10 + case);
        let db = random_db(&mut rng);
        let minsup = 1 + rng.gen_below(5);
        let got = mine_fpgrowth(&db, MinSupport::Absolute(minsup));
        for p in got.iter() {
            if p.len() >= 2 {
                // Dropping any one item keeps it frequent with >= support.
                let items = p.items();
                for drop in 0..items.len() {
                    let mut sub: Vec<_> = items.to_vec();
                    sub.remove(drop);
                    let sup = got.support_of(&sub);
                    assert!(sup.is_some(), "case {case}: missing subset of {p}");
                    assert!(sup.unwrap() >= p.support(), "case {case}");
                }
            }
        }
    }
}

/// Relative thresholds agree with their absolute equivalents.
#[test]
fn relative_threshold_equivalence() {
    for case in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(0x9e1a_71fe + case);
        let db = random_db(&mut rng);
        let pct = 1 + rng.gen_below(99);
        let rel = MinSupport::Relative(pct as f64 / 100.0);
        let abs = MinSupport::Absolute(rel.to_absolute(db.len()));
        let a = mine_hmine(&db, rel);
        let b = mine_hmine(&db, abs);
        assert!(a.same_patterns_as(&b), "case {case} pct={pct}");
    }
}
