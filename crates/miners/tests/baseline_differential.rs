//! Randomized differential tests across the four baseline miners: on any
//! database and threshold, H-Mine, FP-growth, Tree Projection and the
//! naive projected-database miner must produce exactly Apriori's set.

use gogreen_data::{MinSupport, Transaction, TransactionDb};
use gogreen_miners::{
    mine_apriori, mine_fpgrowth, mine_hmine, mine_treeproj, Miner, NaiveProjection,
};
use proptest::prelude::*;

fn db_strategy() -> impl proptest::strategy::Strategy<Value = TransactionDb> {
    prop::collection::vec(prop::collection::btree_set(0u32..18, 1..10), 1..40).prop_map(
        |rows| {
            TransactionDb::from_transactions(
                rows.into_iter()
                    .map(Transaction::from_ids)
                    .collect(),
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hmine_matches_oracle(db in db_strategy(), minsup in 1u64..8) {
        let want = mine_apriori(&db, MinSupport::Absolute(minsup));
        let got = mine_hmine(&db, MinSupport::Absolute(minsup));
        prop_assert!(got.same_patterns_as(&want), "got {} want {}", got.len(), want.len());
    }

    #[test]
    fn fpgrowth_matches_oracle(db in db_strategy(), minsup in 1u64..8) {
        let want = mine_apriori(&db, MinSupport::Absolute(minsup));
        let got = mine_fpgrowth(&db, MinSupport::Absolute(minsup));
        prop_assert!(got.same_patterns_as(&want), "got {} want {}", got.len(), want.len());
    }

    #[test]
    fn treeproj_matches_oracle(db in db_strategy(), minsup in 1u64..8) {
        let want = mine_apriori(&db, MinSupport::Absolute(minsup));
        let got = mine_treeproj(&db, MinSupport::Absolute(minsup));
        prop_assert!(got.same_patterns_as(&want), "got {} want {}", got.len(), want.len());
    }

    #[test]
    fn naive_matches_oracle(db in db_strategy(), minsup in 1u64..8) {
        let want = mine_apriori(&db, MinSupport::Absolute(minsup));
        let got = NaiveProjection.mine(&db, MinSupport::Absolute(minsup));
        prop_assert!(got.same_patterns_as(&want), "got {} want {}", got.len(), want.len());
    }

    /// Anti-monotonicity of the output itself: every subset-closed
    /// property the oracle guarantees must hold for the fast miners too.
    #[test]
    fn output_is_subset_closed(db in db_strategy(), minsup in 1u64..6) {
        let got = mine_fpgrowth(&db, MinSupport::Absolute(minsup));
        for p in got.iter() {
            if p.len() >= 2 {
                // Dropping any one item keeps it frequent with >= support.
                let items = p.items();
                for drop in 0..items.len() {
                    let mut sub: Vec<_> = items.to_vec();
                    sub.remove(drop);
                    let sup = got.support_of(&sub);
                    prop_assert!(sup.is_some(), "missing subset of {p}");
                    prop_assert!(sup.unwrap() >= p.support());
                }
            }
        }
    }

    /// Relative thresholds agree with their absolute equivalents.
    #[test]
    fn relative_threshold_equivalence(db in db_strategy(), pct in 1u32..100) {
        let rel = MinSupport::Relative(pct as f64 / 100.0);
        let abs = MinSupport::Absolute(rel.to_absolute(db.len()));
        let a = mine_hmine(&db, rel);
        let b = mine_hmine(&db, abs);
        prop_assert!(a.same_patterns_as(&b));
    }
}
