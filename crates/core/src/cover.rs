//! The indexed tuple-covering kernel.
//!
//! The seed compressor covered each tuple by scanning the *entire*
//! utility-ordered pattern list — O(|DB|·|FP|·|X|) — which on inputs
//! where many tuples match late (or never) makes compression the
//! dominant phase and eats the recycling win the paper promises.
//! [`CoverIndex`] replaces the scan with an index built once per
//! compression run. The eager part of the build is deliberately tiny —
//! the utility order, item rarity ranks, and a column slot per distinct
//! pattern item — so that on easy inputs (where the seed scan already
//! finds a cover within the first couple of candidates) the kernel costs
//! no more than the scan, while on hard inputs it wins by orders of
//! magnitude. Everything per-pattern is computed lazily, only for
//! patterns a query actually visits.
//!
//! # Two traversals, one index
//!
//! [`CoverIndex::cover_all`] — what whole-database compression uses —
//! is a **vertical sweep**: tuples become bits of per-item column
//! bitmaps (one column per distinct pattern item), and patterns are
//! visited in ascending utility-rank order, each claiming every
//! still-uncovered tuple that contains all its items with a short
//! AND-chain over its items' columns, rarest item first, aborting on the
//! first empty intersection. The sweep stops the moment every tuple is
//! claimed — on dense databases that is typically after a handful of
//! patterns, so the per-pattern work (ordering its items by rarity) is
//! paid only for those few. The assignment is identical to the seed
//! scan's: "tuple `t` gets the minimum-rank pattern containing it" and
//! "patterns in rank order claim all unclaimed tuples containing them"
//! describe the same greedy.
//!
//! [`CoverIndex::cover`] answers a *point query* — one tuple at a time —
//! for incremental callers. It lazily builds (once, on first use) an
//! **anchor-bucket** table: every pattern is assigned an anchor, its
//! rarest item under the database's item supports, and `buckets[item]`
//! lists the ranks anchored at that item, ascending. Covering a tuple
//! visits only the buckets of items the tuple contains, lazily merged in
//! ascending rank order through a small binary heap, testing containment
//! candidate by candidate (against a presence bitmap, non-anchor items
//! rarest first) and exiting on the first hit.
//!
//! **Equivalence to the linear scan.** Ranks are distinct and both
//! traversals consider candidates in strictly ascending rank. Any
//! pattern contained in tuple `t` has all its items (in particular its
//! anchor) in `t`, so the point query meets it in exactly one visited
//! bucket and the sweep's AND-chain keeps `t` in the claim set;
//! candidates not contained in `t` are rejected by the containment probe
//! / drop `t` during the AND-chain. The first accepted candidate is
//! therefore the minimum-rank pattern contained in `t` — precisely what
//! the seed scan (first hit in utility order) returns. The differential
//! test `cover_differential.rs` enforces this on random databases for
//! both strategies and any thread count.

use crate::utility::{order_by_utility, Strategy};
use gogreen_data::bitmap;
use gogreen_data::{Item, Pattern, PatternSet, TransactionDb, TupleSlices};
use gogreen_obs::{histogram, metrics};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A per-run index over a recycled pattern set, answering "which is the
/// highest-utility pattern contained in this tuple?" without scanning
/// patterns the tuple cannot contain.
///
/// Borrows the pattern list — the index is a per-run view, so callers
/// keep ownership and nothing is cloned.
#[derive(Debug)]
pub struct CoverIndex<'a> {
    patterns: &'a [Pattern],
    /// `order[rank]` = pattern index (descending utility).
    order: Vec<u32>,
    /// `rank[pattern index]` = position in `order`.
    rank: Vec<u32>,
    /// Per-item database supports; index = item id.
    supports: Vec<u64>,
    /// `rarity[item index]` = F-list position (ascending support, ties by
    /// id) — rarest items first, so rarity comparisons are plain `u32`s.
    rarity: Vec<u32>,
    /// Bitmap size: one slot per item id occurring in the database.
    num_items: usize,
    /// `slot_of_item[item index]` = column slot in the vertical sweep,
    /// [`SLOT_NONE`] for items no pattern uses (they never need a
    /// column).
    slot_of_item: Vec<u32>,
    /// Number of assigned column slots.
    num_slots: usize,
    /// Anchor-bucket tables for the per-tuple [`Self::cover`] path, built
    /// lazily on first use — whole-database compression goes through
    /// [`Self::cover_all`] and never pays for them.
    tables: std::sync::OnceLock<PointTables>,
}

/// Sentinel: "no column slot".
const SLOT_NONE: u32 = u32::MAX;

/// The per-pattern structures only [`CoverIndex::cover`] needs.
#[derive(Debug)]
struct PointTables {
    /// Non-anchor items of every pattern, rarest first, stored flat in
    /// rank order; `probe_start[rank]..probe_start[rank + 1]` slices out
    /// one pattern's probes (no per-pattern allocation).
    probe_items: Vec<Item>,
    probe_start: Vec<u32>,
    /// `lens[rank]` = pattern length (skip probes longer than the tuple).
    lens: Vec<u32>,
    /// `buckets[item index]` = ranks anchored at that item, ascending.
    buckets: Vec<Vec<u32>>,
}

impl PointTables {
    /// The non-anchor items of the rank-`k` pattern, rarest first.
    fn probes(&self, k: usize) -> &[Item] {
        &self.probe_items[self.probe_start[k] as usize..self.probe_start[k + 1] as usize]
    }
}

impl<'a> CoverIndex<'a> {
    /// Builds the index for compressing `db` with `fp` under `strategy`.
    pub fn new(db: &TransactionDb, fp: &'a PatternSet, strategy: Strategy) -> Self {
        Self::from_patterns(db, fp.as_slice(), strategy)
    }

    /// Builds the index from a pattern slice.
    pub fn from_patterns(db: &TransactionDb, patterns: &'a [Pattern], strategy: Strategy) -> Self {
        Self::from_supports(patterns, strategy, db.item_supports(), db.len())
    }

    /// Builds the index from explicit global item `supports` (index =
    /// item id) and database length, without touching the database
    /// itself. This is the out-of-core entry point: a segmented store
    /// supplies whole-database supports from its per-segment sidecars,
    /// and the resulting index covers tuples segment by segment with the
    /// *same* assignment a whole-database build would make — the cover
    /// choice is tuple-local once the utility order (a function of
    /// `db_len` under MLP) and rarity ranks are fixed globally.
    pub fn from_supports(
        patterns: &'a [Pattern],
        strategy: Strategy,
        supports: Vec<u64>,
        db_len: usize,
    ) -> Self {
        let num_items = supports.len();
        let order = order_by_utility(patterns, strategy, db_len);
        let mut rank = vec![0u32; patterns.len()];
        for (k, &pidx) in order.iter().enumerate() {
            rank[pidx as usize] = k as u32;
        }
        // Rarity ranks, computed once so anchor selection and item
        // ordering are plain u32 comparisons with no allocation.
        let mut by_support: Vec<u32> = (0..num_items as u32).collect();
        by_support.sort_unstable_by_key(|&i| (supports[i as usize], i));
        let mut rarity = vec![0u32; num_items];
        for (r, &i) in by_support.iter().enumerate() {
            rarity[i as usize] = r as u32;
        }
        // Column slots: one per distinct in-database pattern item, in
        // first-seen order. A single linear pass — everything else about
        // a pattern is computed lazily, only if a query visits it.
        let mut slot_of_item = vec![SLOT_NONE; num_items];
        let mut num_slots = 0usize;
        for p in patterns {
            for &it in p.items() {
                if let Some(s) = slot_of_item.get_mut(it.index()) {
                    if *s == SLOT_NONE {
                        *s = num_slots as u32;
                        num_slots += 1;
                    }
                }
            }
        }
        CoverIndex {
            patterns,
            order,
            rank,
            supports,
            rarity,
            num_items,
            slot_of_item,
            num_slots,
            tables: std::sync::OnceLock::new(),
        }
    }

    /// The anchor-bucket tables, built on the first per-tuple cover.
    fn tables(&self) -> &PointTables {
        self.tables.get_or_init(|| {
            let rarity_of = |it: Item| {
                if it.index() < self.num_items && self.supports[it.index()] > 0 {
                    Some(self.rarity[it.index()])
                } else {
                    None // never occurs in the database
                }
            };
            let mut probe_items: Vec<Item> = Vec::new();
            let mut probe_start = Vec::with_capacity(self.order.len() + 1);
            probe_start.push(0u32);
            let mut lens = Vec::with_capacity(self.order.len());
            let mut buckets = vec![Vec::new(); self.num_items];
            for (k, &pidx) in self.order.iter().enumerate() {
                let p = &self.patterns[pidx as usize];
                lens.push(p.len() as u32);
                let anchor = p.items().iter().copied().try_fold(None, |best, it| {
                    let r = rarity_of(it)?; // a zero-support item disqualifies
                    Some(match best {
                        Some((br, _)) if br <= r => best,
                        _ => Some((r, it)),
                    })
                });
                let Some(Some((_, anchor))) = anchor else {
                    // Some pattern item never occurs in the database (or
                    // the pattern is empty): it can cover nothing, so it
                    // gets no bucket — the seed scan rejects it on every
                    // tuple too.
                    probe_start.push(probe_items.len() as u32);
                    continue;
                };
                // Ranks arrive in ascending order by construction.
                buckets[anchor.index()].push(k as u32);
                // Probe items rarest first so failing probes die early.
                let lo = probe_items.len();
                probe_items.extend(p.items().iter().copied().filter(|&it| it != anchor));
                probe_items[lo..].sort_unstable_by_key(|&it| self.rarity[it.index()]);
                probe_start.push(probe_items.len() as u32);
            }
            PointTables { probe_items, probe_start, lens, buckets }
        })
    }

    /// The indexed patterns (indexable by the ids `cover` returns).
    pub fn pattern(&self, pidx: u32) -> &'a Pattern {
        &self.patterns[pidx as usize]
    }

    /// Number of indexed patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// True when no patterns are indexed (every tuple stays plain).
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Pattern indices in descending utility order.
    pub fn order(&self) -> &[u32] {
        &self.order
    }

    /// The utility rank of pattern `pidx` (0 = best).
    pub fn rank_of(&self, pidx: u32) -> u32 {
        self.rank[pidx as usize]
    }

    /// The highest-utility pattern contained in `t`, or `None`.
    ///
    /// Exactly equivalent to scanning `order()` and returning the first
    /// pattern whose items are all in `t` (see the module docs for the
    /// argument). `scratch` carries the presence bitmap and merge heap so
    /// per-tuple work allocates nothing.
    pub fn cover(&self, t: &[Item], scratch: &mut CoverScratch) -> Option<u32> {
        let tables = self.tables();
        let items = t;
        for &it in items {
            if it.index() < self.num_items {
                scratch.present[it.index()] = true;
            }
        }
        // Seed the lazy merge with each non-empty bucket's best rank.
        for &it in items {
            let Some(bucket) = tables.buckets.get(it.index()) else { continue };
            if let Some(&first) = bucket.first() {
                let slot = scratch.cursors.len() as u32;
                scratch.cursors.push(Cursor { item: it.id(), pos: 1 });
                scratch.heap.push(Reverse((first, slot)));
            }
        }
        let tuple_len = items.len() as u32;
        let mut found = None;
        while let Some(Reverse((rank, slot))) = scratch.heap.pop() {
            if tables.lens[rank as usize] <= tuple_len
                && tables.probes(rank as usize).iter().all(|it| scratch.present[it.index()])
            {
                found = Some(self.order[rank as usize]);
                break;
            }
            let cursor = &mut scratch.cursors[slot as usize];
            let bucket = &tables.buckets[cursor.item as usize];
            if let Some(&next) = bucket.get(cursor.pos as usize) {
                cursor.pos += 1;
                scratch.heap.push(Reverse((next, slot)));
            }
        }
        for &it in items {
            if it.index() < self.num_items {
                scratch.present[it.index()] = false;
            }
        }
        scratch.heap.clear();
        scratch.cursors.clear();
        found
    }

    /// Covers every tuple of `tuples` in one vertical sweep, returning
    /// `out[i]` = the pattern index covering `tuples[i]` (or `None`).
    ///
    /// Exactly equivalent to calling [`Self::cover`] per tuple: patterns
    /// are visited in ascending rank order and each claims every
    /// still-unclaimed tuple containing it, which assigns each tuple its
    /// minimum-rank containing pattern. Tuples are bits of per-item
    /// column bitmaps, so a pattern's claim is an AND-chain over its
    /// items' columns — rarest item first — restricted to the
    /// still-uncovered set, and the sweep exits as soon as that set
    /// drains. Per-pattern work (ordering its items by rarity) happens
    /// here, lazily, so a sweep that drains after a handful of patterns
    /// pays for just those.
    pub fn cover_all(&self, tuples: TupleSlices<'_, Item>) -> Vec<Option<u32>> {
        let n = tuples.len();
        let mut out = vec![None; n];
        if n == 0 || self.num_slots == 0 {
            return out;
        }
        let words = bitmap::words_for(n);
        let mut bits = vec![0u64; self.num_slots * words];
        for (i, t) in tuples.iter().enumerate() {
            for &it in t {
                let Some(&slot) = self.slot_of_item.get(it.index()) else { continue };
                if slot != SLOT_NONE {
                    bitmap::set_bit(&mut bits[slot as usize * words..][..words], i);
                }
            }
        }
        let mut uncovered = vec![!0u64; words];
        if !n.is_multiple_of(64) {
            uncovered[words - 1] = (1u64 << (n % 64)) - 1;
        }
        let mut remaining = n;
        let mut acc = vec![0u64; words];
        // Machine-work counter: AND-chain words touched. Chunked parallel
        // sweeps partition the work differently per thread count, so this
        // lives under the thread-*variant* `cover.*` prefix (see
        // `gogreen_obs::metrics::is_thread_invariant`).
        let mut words_scanned = 0u64;
        // Scratch for one pattern's (rarity, slot) pairs, rarest first.
        let mut chain: Vec<(u32, u32)> = Vec::new();
        'patterns: for k in 0..self.order.len() {
            let p = &self.patterns[self.order[k] as usize];
            if p.is_empty() {
                continue; // an empty pattern covers nothing
            }
            chain.clear();
            for &it in p.items() {
                if it.index() >= self.num_items {
                    continue 'patterns; // item never occurs in the database
                }
                // Every in-range pattern item was assigned a slot at
                // build time; a zero-support item's column is all-zero,
                // so the AND-chain rejects the pattern naturally.
                chain.push((self.rarity[it.index()], self.slot_of_item[it.index()]));
            }
            chain.sort_unstable();
            // The AND-chain runs on the shared bitmap kernels (the same
            // SIMD/unrolled code the vertical miner counts with), each
            // returning the OR of the result for the early-exit test.
            let col = &bits[chain[0].1 as usize * words..][..words];
            words_scanned += words as u64;
            if bitmap::select_and(&mut acc, &uncovered, col) == 0 {
                continue;
            }
            for &(_, slot) in &chain[1..] {
                let col = &bits[slot as usize * words..][..words];
                words_scanned += words as u64;
                if bitmap::and_into(&mut acc, col) == 0 {
                    continue 'patterns;
                }
            }
            let pidx = self.order[k];
            let before = remaining;
            for w in 0..words {
                let mut claimed = acc[w];
                uncovered[w] &= !claimed;
                while claimed != 0 {
                    out[w * 64 + claimed.trailing_zeros() as usize] = Some(pidx);
                    claimed &= claimed - 1;
                    remaining -= 1;
                }
            }
            histogram::observe("cover.run_len", (before - remaining) as u64);
            if remaining == 0 {
                break;
            }
        }
        metrics::add("cover.words_scanned", words_scanned);
        out
    }
}

/// One bucket's position in the lazy merge.
#[derive(Debug)]
struct Cursor {
    item: u32,
    pos: u32,
}

/// Reusable per-worker state for [`CoverIndex::cover`]: the tuple
/// presence bitmap plus the rank-merge heap. Each thread of a parallel
/// covering pass owns one.
#[derive(Debug)]
pub struct CoverScratch {
    present: Vec<bool>,
    heap: BinaryHeap<Reverse<(u32, u32)>>,
    cursors: Vec<Cursor>,
}

impl CoverScratch {
    /// Scratch sized for `index`.
    pub fn for_index(index: &CoverIndex) -> Self {
        CoverScratch {
            present: vec![false; index.num_items],
            heap: BinaryHeap::new(),
            cursors: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gogreen_data::MinSupport;
    use gogreen_miners::mine_apriori;

    /// The seed behaviour `cover` must replicate: first pattern in
    /// utility order contained in the tuple.
    fn linear_cover(index: &CoverIndex, t: &[Item]) -> Option<u32> {
        index.order().iter().copied().find(|&pidx| {
            let p = index.pattern(pidx);
            p.len() <= t.len() && p.items().iter().all(|it| t.binary_search(it).is_ok())
        })
    }

    #[test]
    fn matches_linear_scan_on_paper_example() {
        let db = TransactionDb::paper_example();
        let fp = mine_apriori(&db, MinSupport::Absolute(3));
        for strategy in [Strategy::Mcp, Strategy::Mlp] {
            let index = CoverIndex::new(&db, &fp, strategy);
            let mut scratch = CoverScratch::for_index(&index);
            for t in db.iter() {
                assert_eq!(index.cover(t, &mut scratch), linear_cover(&index, t));
            }
        }
    }

    #[test]
    fn picks_the_paper_table_2_groups() {
        let db = TransactionDb::paper_example();
        let fp = mine_apriori(&db, MinSupport::Absolute(3));
        let index = CoverIndex::new(&db, &fp, Strategy::Mcp);
        let mut scratch = CoverScratch::for_index(&index);
        // Tuples 100–300 go to fgc = {2,5,6}; 400–500 to ae = {0,4}.
        let picks: Vec<&[Item]> = db
            .iter()
            .map(|t| index.pattern(index.cover(t, &mut scratch).unwrap()).items())
            .collect();
        assert_eq!(picks[0], &[Item(2), Item(5), Item(6)]);
        assert_eq!(picks[1], &[Item(2), Item(5), Item(6)]);
        assert_eq!(picks[2], &[Item(2), Item(5), Item(6)]);
        assert_eq!(picks[3], &[Item(0), Item(4)]);
        assert_eq!(picks[4], &[Item(0), Item(4)]);
    }

    #[test]
    fn pattern_with_unknown_item_is_never_chosen() {
        let db = TransactionDb::from_rows(&[&[1, 2]]);
        let mut fp = PatternSet::new();
        fp.insert(Pattern::from_ids([1, 2, 500], 1));
        let index = CoverIndex::new(&db, &fp, Strategy::Mcp);
        let mut scratch = CoverScratch::for_index(&index);
        assert_eq!(index.cover(db.tuple(0), &mut scratch), None);
        assert_eq!(index.cover_all(db.tuples()), vec![None]);
    }

    #[test]
    fn empty_pattern_set_covers_nothing() {
        let db = TransactionDb::paper_example();
        let fp = PatternSet::new();
        let index = CoverIndex::new(&db, &fp, Strategy::Mcp);
        assert!(index.is_empty());
        let mut scratch = CoverScratch::for_index(&index);
        for t in db.iter() {
            assert_eq!(index.cover(t, &mut scratch), None);
        }
    }

    #[test]
    fn batch_sweep_matches_per_tuple_cover() {
        let db = TransactionDb::paper_example();
        let fp = mine_apriori(&db, MinSupport::Absolute(2));
        for strategy in [Strategy::Mcp, Strategy::Mlp] {
            let index = CoverIndex::new(&db, &fp, strategy);
            let mut scratch = CoverScratch::for_index(&index);
            let batch = index.cover_all(db.tuples());
            for (t, got) in db.iter().zip(batch) {
                assert_eq!(got, index.cover(t, &mut scratch), "{strategy:?}");
            }
        }
    }

    #[test]
    fn batch_sweep_crosses_word_boundaries() {
        // >64 tuples so the uncovered/claim bitmaps span multiple words,
        // with the tail word partially masked.
        let rows: Vec<Vec<u32>> = (0..150u32).map(|i| vec![i % 3, 3 + i % 5, 100]).collect();
        let row_refs: Vec<&[u32]> = rows.iter().map(|r| r.as_slice()).collect();
        let db = TransactionDb::from_rows(&row_refs);
        let mut fp = PatternSet::new();
        fp.insert(Pattern::from_ids([0, 100], 50));
        fp.insert(Pattern::from_ids([1, 3, 100], 10));
        fp.insert(Pattern::from_ids([100], 150));
        let index = CoverIndex::new(&db, &fp, Strategy::Mcp);
        let mut scratch = CoverScratch::for_index(&index);
        let batch = index.cover_all(db.tuples());
        for (t, got) in db.iter().zip(batch) {
            assert_eq!(got, index.cover(t, &mut scratch));
        }
    }

    /// Regression for the shared-kernel refactor: the sweep (now running
    /// on `gogreen_data::bitmap::select_and`/`and_into`) must still
    /// reproduce the seed linear scan exactly, across word boundaries
    /// and with patterns the AND-chain rejects at every position.
    #[test]
    fn batch_sweep_on_shared_kernels_matches_linear_scan() {
        let rows: Vec<Vec<u32>> = (0..200u32)
            .map(|i| {
                let mut r = vec![i % 7, 7 + i % 11, 50];
                if i % 13 == 0 {
                    r.push(60);
                }
                r.sort_unstable();
                r
            })
            .collect();
        let row_refs: Vec<&[u32]> = rows.iter().map(|r| r.as_slice()).collect();
        let db = TransactionDb::from_rows(&row_refs);
        let mut fp = PatternSet::new();
        fp.insert(Pattern::from_ids([0, 50], 29));
        fp.insert(Pattern::from_ids([1, 9, 50], 2));
        fp.insert(Pattern::from_ids([50, 60], 16));
        fp.insert(Pattern::from_ids([2, 3], 0)); // never contained
        fp.insert(Pattern::from_ids([50], 200));
        for strategy in [Strategy::Mcp, Strategy::Mlp] {
            let index = CoverIndex::new(&db, &fp, strategy);
            let batch = index.cover_all(db.tuples());
            for (t, got) in db.iter().zip(batch) {
                assert_eq!(got, linear_cover(&index, t), "{strategy:?}");
            }
        }
    }

    #[test]
    fn batch_sweep_handles_no_patterns_and_no_tuples() {
        let db = TransactionDb::paper_example();
        let none = PatternSet::new();
        let empty = CoverIndex::new(&db, &none, Strategy::Mcp);
        assert!(empty.cover_all(db.tuples()).iter().all(Option::is_none));
        let fp = mine_apriori(&db, MinSupport::Absolute(3));
        let index = CoverIndex::new(&db, &fp, Strategy::Mcp);
        assert!(index.cover_all(gogreen_data::CsrTuples::new().as_slices()).is_empty());
    }

    #[test]
    fn scratch_reuse_does_not_leak_state() {
        // Cover a wide tuple, then a disjoint one: stale presence bits or
        // heap entries would surface immediately.
        let db = TransactionDb::from_rows(&[&[1, 2, 3, 4, 5], &[8, 9]]);
        let mut fp = PatternSet::new();
        fp.insert(Pattern::from_ids([1, 2, 3], 1));
        fp.insert(Pattern::from_ids([8, 9], 1));
        let index = CoverIndex::new(&db, &fp, Strategy::Mcp);
        let mut scratch = CoverScratch::for_index(&index);
        let a = index.cover(db.tuple(0), &mut scratch).unwrap();
        let b = index.cover(db.tuple(1), &mut scratch).unwrap();
        assert_eq!(index.pattern(a).items(), &[Item(1), Item(2), Item(3)]);
        assert_eq!(index.pattern(b).items(), &[Item(8), Item(9)]);
    }
}
