//! FP-recycle: the FP-tree adaptation to compressed databases (paper
//! §4.2).
//!
//! The conditional-group search lives in `gogreen_miners::engine::fp`,
//! shared with the plain `FpGrowth` baseline: this type instantiates it
//! on the real [`CompressedRankDb`](crate::cdb::CompressedRankDb)
//! substrate, where the database becomes a forest of conditional groups
//! — `(residual pattern, member count, FP-tree over the members'
//! outlying items)` triples — and both compression savings survive
//! (group-at-a-time counting via group counts and header tables, O(1)
//! projection through pattern items via shared trees with rank bounds).
//! See the engine module docs for the realization details.

use crate::cdb::CompressedDb;
use crate::RecyclingMiner;
use gogreen_data::{MinSupport, PatternSink};
use gogreen_miners::engine::fp;
use gogreen_util::pool::Parallelism;

/// The FP-recycle miner.
///
/// With a non-serial [`Parallelism`], the per-group outlier trees of the
/// root forest are built on worker threads (the forest is embarrassingly
/// parallel — each tree reads only its own group), the F-list support
/// count is chunked, and the mining phase fans the root's frequent ranks
/// out over the shared conditional groups (trees are shared via `Arc`,
/// read-only once built). The emitted stream is byte-identical for any
/// thread count.
#[derive(Debug, Default, Clone)]
pub struct RecycleFp {
    parallelism: Parallelism,
}

impl RecycleFp {
    /// Sets the worker-thread budget for root-forest construction and
    /// support counting.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Convenience for [`Self::with_parallelism`] from a raw thread
    /// count (`0` = all cores).
    pub fn with_threads(self, threads: usize) -> Self {
        self.with_parallelism(Parallelism::threads(threads))
    }
}

impl RecyclingMiner for RecycleFp {
    fn name(&self) -> &'static str {
        "FP-recycle"
    }

    fn mine_into(&self, cdb: &CompressedDb, min_support: MinSupport, sink: &mut dyn PatternSink) {
        self.mine_into_par(cdb, min_support, self.parallelism, sink);
    }

    fn mine_into_par(
        &self,
        cdb: &CompressedDb,
        min_support: MinSupport,
        par: Parallelism,
        sink: &mut dyn PatternSink,
    ) {
        let minsup = min_support.to_absolute(cdb.num_tuples());
        let flist = cdb.flist_par(minsup, par);
        if flist.is_empty() {
            return;
        }
        let rdb = cdb.to_ranks(&flist);
        fp::mine_source_par(&rdb, &flist, minsup, par, sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::Compressor;
    use crate::rpmine::RpMine;
    use crate::utility::Strategy;
    use gogreen_data::TransactionDb;
    use gogreen_miners::mine_apriori;

    fn compressed(db: &TransactionDb, xi_old: u64, strategy: Strategy) -> CompressedDb {
        let fp = mine_apriori(db, MinSupport::Absolute(xi_old));
        Compressor::new(strategy).compress(db, &fp)
    }

    #[test]
    fn exact_on_paper_example() {
        let db = TransactionDb::paper_example();
        for strategy in [Strategy::Mcp, Strategy::Mlp] {
            for xi_old in [3, 4] {
                let cdb = compressed(&db, xi_old, strategy);
                for minsup in 1..=5 {
                    let fp = RecycleFp::default().mine(&cdb, MinSupport::Absolute(minsup));
                    let oracle = mine_apriori(&db, MinSupport::Absolute(minsup));
                    assert!(
                        fp.same_patterns_as(&oracle),
                        "{strategy:?} ξ_old={xi_old} ξ_new={minsup}: {} vs {}",
                        fp.len(),
                        oracle.len()
                    );
                }
            }
        }
    }

    #[test]
    fn uncompressed_cdb_is_plain_fpgrowth() {
        let db = TransactionDb::from_rows(&[
            &[1, 2, 5],
            &[2, 4],
            &[2, 3],
            &[1, 2, 4],
            &[1, 3],
            &[2, 3],
            &[1, 3],
            &[1, 2, 3, 5],
            &[1, 2, 3],
        ]);
        let cdb = CompressedDb::uncompressed(&db);
        for minsup in 1..=4 {
            let fp = RecycleFp::default().mine(&cdb, MinSupport::Absolute(minsup));
            let oracle = mine_apriori(&db, MinSupport::Absolute(minsup));
            assert!(fp.same_patterns_as(&oracle), "minsup={minsup}");
        }
    }

    #[test]
    fn shared_tree_bound_projection() {
        // Deep pattern chains force repeated O(1) pattern projections of
        // the same shared tree.
        let db = TransactionDb::from_rows(&[
            &[1, 2, 3, 4, 5, 6],
            &[1, 2, 3, 4, 5, 7],
            &[1, 2, 3, 4, 5],
            &[1, 2, 3, 4, 5, 6, 7],
            &[6, 7],
        ]);
        let cdb = compressed(&db, 4, Strategy::Mcp);
        for minsup in 1..=4 {
            let fp = RecycleFp::default().mine(&cdb, MinSupport::Absolute(minsup));
            let oracle = mine_apriori(&db, MinSupport::Absolute(minsup));
            assert!(fp.same_patterns_as(&oracle), "minsup={minsup}");
        }
    }

    #[test]
    fn agrees_with_rpmine() {
        let db = TransactionDb::from_rows(&[
            &[1, 8, 9],
            &[1, 2, 8, 9],
            &[2, 8, 9],
            &[8, 9],
            &[1, 2],
            &[1, 2, 3],
            &[2, 3, 8],
            &[1, 3, 9],
        ]);
        let cdb = compressed(&db, 2, Strategy::Mlp);
        for minsup in 1..=4 {
            let a = RecycleFp::default().mine(&cdb, MinSupport::Absolute(minsup));
            let b = RpMine::default().mine(&cdb, MinSupport::Absolute(minsup));
            assert!(a.same_patterns_as(&b), "minsup={minsup}");
        }
    }

    #[test]
    fn empty_cdb() {
        let cdb = CompressedDb::uncompressed(&TransactionDb::new());
        assert!(RecycleFp::default().mine(&cdb, MinSupport::Absolute(1)).is_empty());
    }
}
