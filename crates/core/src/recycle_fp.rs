//! FP-recycle: the FP-tree adaptation to compressed databases (paper
//! §4.2).
//!
//! The paper sketches the adaptation as "treat each group head as a
//! special item in the upper part of each prefix-tree branch" and defers
//! details to an unavailable technical report. Our realization keeps the
//! group head literally *above* the tree: the compressed database becomes
//! a forest of **conditional groups**, each a `(residual pattern, member
//! count, FP-tree over the members' outlying items)` triple. The plain
//! (uncovered) tuples form one conditional group with an empty pattern —
//! for them this degenerates to ordinary FP-growth.
//!
//! Both compression savings survive in this shape:
//!
//! * **Counting**: a group's pattern items are counted once with the
//!   group count; outlier supports are read off the per-group FP-tree
//!   header tables.
//! * **Projection**: on a pattern item, a group is projected in O(1) —
//!   the pattern shrinks and the (shared, reference-counted) outlier
//!   tree is kept with a raised *rank bound*, because discarded ranks
//!   live at the bottom of every branch (trees are built in descending
//!   rank order). Only projection through an *outlier* item pays for
//!   conditional-pattern-base extraction, exactly as in FP-growth.

use crate::cdb::{CompressedDb, CompressedRankDb};
use crate::RecyclingMiner;
use gogreen_data::{FList, MinSupport, PatternSink};
use gogreen_miners::common::{fan_out_ordered, for_each_subset, RankEmitter, ScratchCounts};
use gogreen_miners::fpgrowth::{FpTree, FpTreeBuilder, FP_NIL};
use gogreen_obs::metrics;
use gogreen_util::pool::{par_chunks, Parallelism};
use std::sync::Arc;

/// The FP-recycle miner.
///
/// With a non-serial [`Parallelism`], the per-group outlier trees of the
/// root forest are built on worker threads (the forest is embarrassingly
/// parallel — each tree reads only its own group), the F-list support
/// count is chunked, and the mining phase fans the root's frequent ranks
/// out over the shared conditional groups (trees are shared via `Arc`,
/// read-only once built). The emitted stream is byte-identical for any
/// thread count.
#[derive(Debug, Default, Clone)]
pub struct RecycleFp {
    parallelism: Parallelism,
}

impl RecycleFp {
    /// Sets the worker-thread budget for root-forest construction and
    /// support counting.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Convenience for [`Self::with_parallelism`] from a raw thread
    /// count (`0` = all cores).
    pub fn with_threads(self, threads: usize) -> Self {
        self.with_parallelism(Parallelism::threads(threads))
    }
}

const SRC_NONE: u32 = u32::MAX;
const SRC_MIXED: u32 = u32::MAX - 1;

/// One group in the current projection.
struct CondGroup {
    /// Residual pattern ranks (ascending). Empty for the plain partition.
    pattern: Vec<u32>,
    /// Members in this projection.
    count: u64,
    /// Outlier store; `None` when no member has relevant outliers.
    /// `Arc` rather than `Rc` so fan-out workers can share root trees.
    tree: Option<Arc<FpTree>>,
    /// Ranks ≤ `bound` in the tree are projected away (they sit below
    /// every relevant prefix, so climbs never see them; header rows with
    /// rank ≤ bound are skipped).
    bound: i64,
}

struct Ctx {
    scratch: ScratchCounts,
    src: Vec<u32>,
    minsup: u64,
}

impl RecyclingMiner for RecycleFp {
    fn name(&self) -> &'static str {
        "FP-recycle"
    }

    fn mine_into(&self, cdb: &CompressedDb, min_support: MinSupport, sink: &mut dyn PatternSink) {
        self.mine_into_par(cdb, min_support, self.parallelism, sink);
    }

    fn mine_into_par(
        &self,
        cdb: &CompressedDb,
        min_support: MinSupport,
        par: Parallelism,
        sink: &mut dyn PatternSink,
    ) {
        let minsup = min_support.to_absolute(cdb.num_tuples());
        let flist = cdb.flist_par(minsup, par);
        if flist.is_empty() {
            return;
        }
        let rdb = cdb.to_ranks(&flist);
        let mut ctx = Ctx {
            scratch: ScratchCounts::new(flist.len()),
            src: vec![SRC_NONE; flist.len()],
            minsup,
        };
        let cgs = build_root(&rdb, &mut ctx, par);
        mine_root(&cgs, &flist, minsup, par, sink);
    }
}

/// Root dispatch: count and the Lemma 3.1 check run once on the calling
/// thread; each frequent root rank then projects and mines over the
/// shared conditional groups as one fan-out unit. Pattern-item
/// projections clone the group's `Arc` tree — the underlying node arenas
/// are never written after construction, so sharing across workers is
/// safe by construction.
fn mine_root(
    cgs: &[CondGroup],
    flist: &FList,
    minsup: u64,
    par: Parallelism,
    sink: &mut dyn PatternSink,
) {
    let mut root_ctx =
        Ctx { scratch: ScratchCounts::new(flist.len()), src: vec![SRC_NONE; flist.len()], minsup };
    let (frequent, single_group) = count_cgs(cgs, &mut root_ctx);
    if frequent.is_empty() {
        return;
    }
    if single_group.is_some() && frequent.len() <= 62 {
        let mut emitter = RankEmitter::new(flist);
        for_each_subset(&frequent, &mut |ranks, sup| emitter.emit_with(sink, ranks, sup));
        return;
    }
    let frequent = &frequent;
    fan_out_ordered(
        par,
        frequent.len(),
        sink,
        || {
            let ctx = Ctx {
                scratch: ScratchCounts::new(flist.len()),
                src: vec![SRC_NONE; flist.len()],
                minsup,
            };
            (ctx, RankEmitter::new(flist), Vec::with_capacity(16))
        },
        |(ctx, emitter, climb), k, sink| {
            let (r, c) = frequent[k];
            emitter.push(r);
            emitter.emit(sink, c);
            let children = project(cgs, r, frequent, ctx, climb);
            if !children.is_empty() {
                metrics::add("mine.projected_dbs", 1);
                mine_node(&children, ctx, emitter, sink);
            }
            emitter.pop();
        },
    );
}

/// Builds one group's outlier FP-tree (`None` when there is nothing to
/// store). Insertion order is the tuple order, so the tree shape is
/// deterministic wherever this runs.
fn build_tree(tuples: &[Vec<u32>], scratch: &mut ScratchCounts) -> Option<FpTree> {
    if tuples.is_empty() {
        return None;
    }
    for t in tuples {
        for &x in t {
            scratch.add(x, 1);
        }
    }
    let freq = scratch.drain_frequent(1);
    let mut b = FpTreeBuilder::new(&freq);
    for t in tuples {
        b.insert_desc(t.iter().rev().copied(), 1);
    }
    Some(b.finish())
}

/// Builds the root conditional groups from the rank-space CDB. The
/// per-group trees are independent, so with a non-serial `par` they are
/// constructed on worker threads ([`FpTree`] is plain data and `Send`;
/// the `Arc` sharing wrapper is applied after the join, on this thread).
fn build_root(rdb: &CompressedRankDb, ctx: &mut Ctx, par: Parallelism) -> Vec<CondGroup> {
    let mut cgs = Vec::with_capacity(rdb.groups.len() + 1);
    if par.for_items(rdb.groups.len()) <= 1 {
        for g in &rdb.groups {
            let tree = build_tree(&g.outliers, &mut ctx.scratch).map(Arc::new);
            cgs.push(CondGroup { pattern: g.pattern.clone(), count: g.count(), tree, bound: -1 });
        }
    } else {
        let parts = par_chunks(par, &rdb.groups, |_, chunk| {
            let mut scratch = ScratchCounts::new(rdb.num_ranks);
            chunk.iter().map(|g| build_tree(&g.outliers, &mut scratch)).collect::<Vec<_>>()
        });
        for (lo, trees) in parts {
            for (g, tree) in rdb.groups[lo..].iter().zip(trees) {
                cgs.push(CondGroup {
                    pattern: g.pattern.clone(),
                    count: g.count(),
                    tree: tree.map(Arc::new),
                    bound: -1,
                });
            }
        }
    }
    if !rdb.plain.is_empty() {
        let tree = build_tree(&rdb.plain, &mut ctx.scratch).map(Arc::new);
        cgs.push(CondGroup { pattern: Vec::new(), count: rdb.plain.len() as u64, tree, bound: -1 });
    }
    cgs
}

/// Counts one node's conditional groups: pattern items via group counts,
/// outliers via tree headers. Both paths are group-at-a-time: one
/// weighted add stands in for a whole group (or header row) of member
/// tuples. Returns the locally frequent `(rank, count)` pairs (ascending)
/// and the single source group if Lemma 3.1 applies.
fn count_cgs(cgs: &[CondGroup], ctx: &mut Ctx) -> (Vec<(u32, u64)>, Option<u32>) {
    let mut group_hits = 0u64;
    for (ci, cg) in cgs.iter().enumerate() {
        for &x in &cg.pattern {
            ctx.scratch.add(x, cg.count);
            group_hits += 1;
            let s = &mut ctx.src[x as usize];
            *s = match *s {
                SRC_NONE => ci as u32,
                cur if cur == ci as u32 => cur,
                _ => SRC_MIXED,
            };
        }
        if let Some(tree) = &cg.tree {
            for h in tree.headers() {
                if (h.rank as i64) > cg.bound {
                    ctx.scratch.add(h.rank, h.count);
                    group_hits += 1;
                    ctx.src[h.rank as usize] = SRC_MIXED;
                }
            }
        }
    }
    metrics::add("mine.group_hits", group_hits);
    metrics::add("mine.candidate_tests", ctx.scratch.touched().len() as u64);
    let mut frequent: Vec<(u32, u64)> = ctx
        .scratch
        .touched()
        .iter()
        .map(|&x| (x, ctx.scratch.get(x)))
        .filter(|&(_, c)| c >= ctx.minsup)
        .collect();
    frequent.sort_unstable_by_key(|&(x, _)| x);
    let single_group = match frequent.split_first() {
        Some((&(x0, _), rest)) => {
            let g0 = ctx.src[x0 as usize];
            (g0 != SRC_MIXED && rest.iter().all(|&(x, _)| ctx.src[x as usize] == g0)).then_some(g0)
        }
        None => None,
    };
    for &x in ctx.scratch.touched() {
        ctx.src[x as usize] = SRC_NONE;
    }
    ctx.scratch.clear();
    (frequent, single_group)
}

/// Mines one node of the search: count, apply Lemma 3.1 if it fires,
/// otherwise extend by every locally frequent rank.
fn mine_node(
    cgs: &[CondGroup],
    ctx: &mut Ctx,
    emitter: &mut RankEmitter<'_>,
    sink: &mut dyn PatternSink,
) {
    metrics::set_max("mine.max_depth", emitter.depth() as u64);
    let (frequent, single_group) = count_cgs(cgs, ctx);
    if frequent.is_empty() {
        return;
    }
    if single_group.is_some() && frequent.len() <= 62 {
        for_each_subset(&frequent, &mut |ranks, sup| emitter.emit_with(sink, ranks, sup));
        return;
    }
    let mut climb = Vec::with_capacity(16);
    for &(r, c) in &frequent {
        emitter.push(r);
        emitter.emit(sink, c);
        let children = project(cgs, r, &frequent, ctx, &mut climb);
        if !children.is_empty() {
            metrics::add("mine.projected_dbs", 1);
            mine_node(&children, ctx, emitter, sink);
        }
        emitter.pop();
    }
}

/// Projects every conditional group on rank `r`. `node_frequent` (sorted)
/// pre-filters conditional bases: ranks infrequent at this node cannot
/// become frequent deeper (anti-monotonicity).
fn project(
    cgs: &[CondGroup],
    r: u32,
    node_frequent: &[(u32, u64)],
    ctx: &mut Ctx,
    climb: &mut Vec<u32>,
) -> Vec<CondGroup> {
    let is_node_frequent = |x: u32| node_frequent.binary_search_by_key(&x, |&(fr, _)| fr).is_ok();
    let mut out = Vec::new();
    // Per-path work of conditional-base extraction (the part compression
    // does NOT save — pattern-item projections above are O(1)).
    let mut touches = 0u64;
    for cg in cgs {
        match cg.pattern.binary_search(&r) {
            Ok(pos) => {
                // Pattern item: O(1) projection — every member follows,
                // the shared tree is kept with a raised bound.
                let pattern = cg.pattern[pos + 1..].to_vec();
                let tree_relevant = cg
                    .tree
                    .as_ref()
                    .is_some_and(|t| t.headers().last().is_some_and(|h| h.rank > r));
                if pattern.is_empty() && !tree_relevant {
                    continue;
                }
                out.push(CondGroup {
                    pattern,
                    count: cg.count,
                    tree: if tree_relevant { cg.tree.clone() } else { None },
                    bound: r as i64,
                });
            }
            Err(ppos) => {
                // Outlier item: extract r's conditional pattern base.
                let Some(tree) = &cg.tree else { continue };
                if (r as i64) <= cg.bound {
                    continue;
                }
                let Some(hdr) = tree.header_for(r) else { continue };
                let hdr = *hdr;
                let pattern = cg.pattern[ppos..].to_vec();
                let mut base: Vec<(Vec<u32>, u64)> = Vec::new();
                let mut node = hdr.head;
                while node != FP_NIL {
                    let w = tree.count_of(node);
                    tree.climb_into(node, climb);
                    climb.retain(|&x| is_node_frequent(x));
                    if !climb.is_empty() {
                        for &x in climb.iter() {
                            ctx.scratch.add(x, w);
                        }
                        touches += climb.len() as u64;
                        base.push((climb.clone(), w));
                    }
                    node = tree.next_same_rank(node);
                }
                let freq = ctx.scratch.drain_frequent(1);
                let new_tree = if freq.is_empty() {
                    None
                } else {
                    let mut b = FpTreeBuilder::new(&freq);
                    for (ranks, w) in &base {
                        b.insert_desc(ranks.iter().rev().copied(), *w);
                    }
                    Some(Arc::new(b.finish()))
                };
                if pattern.is_empty() && new_tree.is_none() {
                    continue;
                }
                out.push(CondGroup { pattern, count: hdr.count, tree: new_tree, bound: -1 });
            }
        }
    }
    metrics::add("mine.tuple_touches", touches);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::Compressor;
    use crate::rpmine::RpMine;
    use crate::utility::Strategy;
    use gogreen_data::TransactionDb;
    use gogreen_miners::mine_apriori;

    fn compressed(db: &TransactionDb, xi_old: u64, strategy: Strategy) -> CompressedDb {
        let fp = mine_apriori(db, MinSupport::Absolute(xi_old));
        Compressor::new(strategy).compress(db, &fp)
    }

    #[test]
    fn exact_on_paper_example() {
        let db = TransactionDb::paper_example();
        for strategy in [Strategy::Mcp, Strategy::Mlp] {
            for xi_old in [3, 4] {
                let cdb = compressed(&db, xi_old, strategy);
                for minsup in 1..=5 {
                    let fp = RecycleFp::default().mine(&cdb, MinSupport::Absolute(minsup));
                    let oracle = mine_apriori(&db, MinSupport::Absolute(minsup));
                    assert!(
                        fp.same_patterns_as(&oracle),
                        "{strategy:?} ξ_old={xi_old} ξ_new={minsup}: {} vs {}",
                        fp.len(),
                        oracle.len()
                    );
                }
            }
        }
    }

    #[test]
    fn uncompressed_cdb_is_plain_fpgrowth() {
        let db = TransactionDb::from_rows(&[
            &[1, 2, 5],
            &[2, 4],
            &[2, 3],
            &[1, 2, 4],
            &[1, 3],
            &[2, 3],
            &[1, 3],
            &[1, 2, 3, 5],
            &[1, 2, 3],
        ]);
        let cdb = CompressedDb::uncompressed(&db);
        for minsup in 1..=4 {
            let fp = RecycleFp::default().mine(&cdb, MinSupport::Absolute(minsup));
            let oracle = mine_apriori(&db, MinSupport::Absolute(minsup));
            assert!(fp.same_patterns_as(&oracle), "minsup={minsup}");
        }
    }

    #[test]
    fn shared_tree_bound_projection() {
        // Deep pattern chains force repeated O(1) pattern projections of
        // the same shared tree.
        let db = TransactionDb::from_rows(&[
            &[1, 2, 3, 4, 5, 6],
            &[1, 2, 3, 4, 5, 7],
            &[1, 2, 3, 4, 5],
            &[1, 2, 3, 4, 5, 6, 7],
            &[6, 7],
        ]);
        let cdb = compressed(&db, 4, Strategy::Mcp);
        for minsup in 1..=4 {
            let fp = RecycleFp::default().mine(&cdb, MinSupport::Absolute(minsup));
            let oracle = mine_apriori(&db, MinSupport::Absolute(minsup));
            assert!(fp.same_patterns_as(&oracle), "minsup={minsup}");
        }
    }

    #[test]
    fn agrees_with_rpmine() {
        let db = TransactionDb::from_rows(&[
            &[1, 8, 9],
            &[1, 2, 8, 9],
            &[2, 8, 9],
            &[8, 9],
            &[1, 2],
            &[1, 2, 3],
            &[2, 3, 8],
            &[1, 3, 9],
        ]);
        let cdb = compressed(&db, 2, Strategy::Mlp);
        for minsup in 1..=4 {
            let a = RecycleFp::default().mine(&cdb, MinSupport::Absolute(minsup));
            let b = RpMine::default().mine(&cdb, MinSupport::Absolute(minsup));
            assert!(a.same_patterns_as(&b), "minsup={minsup}");
        }
    }

    #[test]
    fn empty_cdb() {
        let cdb = CompressedDb::uncompressed(&TransactionDb::new());
        assert!(RecycleFp::default().mine(&cdb, MinSupport::Absolute(1)).is_empty());
    }
}
