//! The compressed database (paper §3.1, Table 2).
//!
//! A [`CompressedDb`] partitions the tuples of the original database into
//! *groups* — tuples covered by the same recycled pattern, stored as the
//! pattern (once) plus each member's *outlying items* — and a residue of
//! *plain* tuples no pattern covered. Compression is lossless:
//! [`CompressedDb::reconstruct`] returns the original tuple multiset.
//!
//! For mining, the item-space structure is re-encoded against an F-list
//! into a [`CompressedRankDb`], mirroring how plain databases become
//! [`gogreen_data::projected::RankDb`]s. Both representations keep their
//! tuple lists in flat CSR storage ([`CsrTuples`]): the rank database is
//! three CSR sections — group pattern heads, outlier member rows
//! (concatenated group by group, delimited by `outlier_start`), and the
//! plain residue — so engines receive `&[u32]` row slices of shared
//! buffers and whole-database counting sweeps one allocation per section.

use gogreen_data::{CsrTuples, FList, Item, Transaction, TransactionDb, TupleSlices};
use gogreen_util::pool::{par_chunks, Parallelism};
use gogreen_util::HeapSize;

/// One compression group: a pattern and its member tuples' outlying items.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    /// The covering pattern, sorted ascending by item id. Never empty.
    pattern: Box<[Item]>,
    /// Outlying items (sorted ascending) of members that have any.
    outliers: CsrTuples<Item>,
    /// Members whose tuple *is* the pattern (no outlying items).
    bare: u32,
}

impl Group {
    /// Creates a group. `pattern` and each outlier list must be sorted
    /// ascending; outlier lists must be non-empty and disjoint from the
    /// pattern.
    pub fn new(pattern: Vec<Item>, outliers: Vec<Vec<Item>>, bare: u32) -> Self {
        let outliers: CsrTuples<Item> = outliers.into_iter().collect::<CsrTuples<Item>>();
        Self::from_csr(pattern, outliers, bare)
    }

    /// [`Group::new`] from outlier rows already in CSR form.
    pub fn from_csr(pattern: Vec<Item>, outliers: CsrTuples<Item>, bare: u32) -> Self {
        debug_assert!(!pattern.is_empty());
        debug_assert!(pattern.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(outliers.iter().all(|o| {
            !o.is_empty()
                && o.windows(2).all(|w| w[0] < w[1])
                && o.iter().all(|it| pattern.binary_search(it).is_err())
        }));
        Group { pattern: pattern.into_boxed_slice(), outliers, bare }
    }

    /// The group pattern.
    pub fn pattern(&self) -> &[Item] {
        &self.pattern
    }

    /// Outlying-item rows of members that have any, as a CSR view.
    pub fn outliers(&self) -> TupleSlices<'_, Item> {
        self.outliers.as_slices()
    }

    /// Number of member tuples (the group count the miners exploit).
    pub fn count(&self) -> u64 {
        self.outliers.len() as u64 + u64::from(self.bare)
    }

    /// Members without outlying items.
    pub fn bare(&self) -> u32 {
        self.bare
    }
}

/// A database compressed with recycled frequent patterns.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompressedDb {
    groups: Vec<Group>,
    plain: CsrTuples<Item>,
    original_items: usize,
}

/// Size/ratio summary of a compressed database.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CdbStats {
    /// Tuples represented (groups' members + plain).
    pub num_tuples: usize,
    /// Number of groups.
    pub num_groups: usize,
    /// Tuples covered by some group.
    pub covered_tuples: usize,
    /// Item occurrences stored: each group pattern once, plus all
    /// outlying items, plus plain tuples.
    pub compressed_size: usize,
    /// Item occurrences of the original database.
    pub original_size: usize,
    /// Mean heap bytes per represented tuple of the compressed storage;
    /// 0 for the empty database. Compare against
    /// [`gogreen_data::DbStats::bytes_per_tuple`] of the source database
    /// for the in-memory (as opposed to item-count) compression ratio.
    pub bytes_per_tuple: f64,
}

impl CdbStats {
    /// `S_c / S_o` — the paper's Table 3 ratio. Smaller is better
    /// compression; 1.0 means nothing was compressed.
    pub fn ratio(&self) -> f64 {
        if self.original_size == 0 {
            1.0
        } else {
            self.compressed_size as f64 / self.original_size as f64
        }
    }
}

impl CompressedDb {
    /// Assembles a compressed database from parts. `original_items` is
    /// the item-occurrence count of the uncompressed database (for the
    /// compression ratio).
    pub fn new(groups: Vec<Group>, plain: CsrTuples<Item>, original_items: usize) -> Self {
        CompressedDb { groups, plain, original_items }
    }

    /// [`CompressedDb::new`] with the plain residue given as owned
    /// transactions.
    pub fn from_parts(groups: Vec<Group>, plain: Vec<Transaction>, original_items: usize) -> Self {
        let mut csr =
            CsrTuples::with_capacity(plain.len(), plain.iter().map(Transaction::len).sum());
        for t in &plain {
            csr.push_row(t.items());
        }
        CompressedDb { groups, plain: csr, original_items }
    }

    /// Wraps a plain database with no compression at all (every tuple in
    /// the plain residue). Recycling miners on such a "compressed"
    /// database behave exactly like their non-recycling counterparts —
    /// used as a correctness bridge in tests. The CSR tuple storage is
    /// cloned wholesale; no per-tuple work.
    pub fn uncompressed(db: &TransactionDb) -> Self {
        let plain = db.csr().clone();
        let original_items = plain.total_elems();
        CompressedDb { groups: Vec::new(), plain, original_items }
    }

    /// The groups.
    pub fn groups(&self) -> &[Group] {
        &self.groups
    }

    /// The uncovered tuples, as a CSR view.
    pub fn plain(&self) -> TupleSlices<'_, Item> {
        self.plain.as_slices()
    }

    /// Total number of tuples represented (= original `|DB|`).
    pub fn num_tuples(&self) -> usize {
        self.groups.iter().map(|g| g.count() as usize).sum::<usize>() + self.plain.len()
    }

    /// Size/ratio summary.
    pub fn stats(&self) -> CdbStats {
        let covered: usize = self.groups.iter().map(|g| g.count() as usize).sum();
        let compressed_size: usize =
            self.groups.iter().map(|g| g.pattern.len() + g.outliers.total_elems()).sum::<usize>()
                + self.plain.total_elems();
        let num_tuples = covered + self.plain.len();
        CdbStats {
            num_tuples,
            num_groups: self.groups.len(),
            covered_tuples: covered,
            compressed_size,
            original_size: self.original_items,
            bytes_per_tuple: if num_tuples == 0 {
                0.0
            } else {
                self.heap_size() as f64 / num_tuples as f64
            },
        }
    }

    /// Per-item supports, computed the compressed way (paper §3.1): each
    /// group pattern item is counted once with the group count; outlying
    /// and plain items per occurrence.
    pub fn item_supports(&self) -> Vec<u64> {
        self.item_supports_par(Parallelism::serial())
    }

    /// [`Self::item_supports`] with the counting pass chunked across
    /// worker threads. Summing per-chunk `u64` count vectors is exact
    /// and order-independent, so the result is identical to the serial
    /// pass for any thread count. The plain residue is chunked over the
    /// flat item buffer directly — occurrence counting ignores row
    /// boundaries, so the split needs no offset arithmetic at all.
    pub fn item_supports_par(&self, par: Parallelism) -> Vec<u64> {
        let mut max_id: Option<u32> = None;
        let mut consider = |id: Option<u32>| {
            if let Some(last) = id {
                max_id = Some(max_id.map_or(last, |m| m.max(last)));
            }
        };
        for g in &self.groups {
            consider(g.pattern.last().map(|it| it.id()));
            consider(g.outliers.flat().iter().map(|it| it.id()).max());
        }
        consider(self.plain.flat().iter().map(|it| it.id()).max());
        let slots = max_id.map_or(0, |m| m as usize + 1);
        let mut counts = vec![0u64; slots];
        if par.for_items(self.groups.len().max(self.plain.len())) <= 1 {
            for g in &self.groups {
                count_group(g, &mut counts);
            }
            for &it in self.plain.flat() {
                counts[it.index()] += 1;
            }
            return counts;
        }
        let group_parts = par_chunks(par, &self.groups, |_, chunk| {
            let mut local = vec![0u64; slots];
            for g in chunk {
                count_group(g, &mut local);
            }
            local
        });
        let plain_parts = par_chunks(par, self.plain.flat(), |_, chunk| {
            let mut local = vec![0u64; slots];
            for &it in chunk {
                local[it.index()] += 1;
            }
            local
        });
        for (_, local) in group_parts.into_iter().chain(plain_parts) {
            for (slot, c) in counts.iter_mut().zip(local) {
                *slot += c;
            }
        }
        counts
    }

    /// Builds the F-list of the represented database at `min_support`
    /// without decompressing.
    pub fn flist(&self, min_support: u64) -> FList {
        self.flist_par(min_support, Parallelism::serial())
    }

    /// [`Self::flist`] with the support count parallelized.
    pub fn flist_par(&self, min_support: u64, par: Parallelism) -> FList {
        FList::from_counts(&self.item_supports_par(par), min_support)
    }

    /// Decompresses back to the original tuple multiset (tuple order is
    /// not preserved). Compression must be lossless; the property tests
    /// assert `reconstruct()` equals the source database as a multiset.
    pub fn reconstruct(&self) -> TransactionDb {
        let mut out = Vec::with_capacity(self.num_tuples());
        for g in &self.groups {
            for o in g.outliers.iter() {
                let mut items = Vec::with_capacity(g.pattern.len() + o.len());
                items.extend_from_slice(&g.pattern);
                items.extend_from_slice(o);
                out.push(Transaction::new(items));
            }
            for _ in 0..g.bare {
                out.push(Transaction::new(g.pattern.to_vec()));
            }
        }
        out.extend(self.plain.iter().map(|t| Transaction::from_sorted_unchecked(t.to_vec())));
        TransactionDb::from_transactions(out)
    }

    /// Re-encodes into rank space against `flist` for mining — one pass,
    /// straight into the rank database's CSR sections. Each pattern /
    /// outlier / plain tuple is rank-encoded into an open CSR row and
    /// committed or discarded in place; no intermediate per-tuple `Vec`
    /// is ever allocated.
    pub fn to_ranks(&self, flist: &FList) -> CompressedRankDb {
        let mut out = CompressedRankDb::empty(flist.len());
        for g in &self.groups {
            if flist.encode_push(&g.pattern, &mut out.patterns) == 0 {
                // Every pattern item infrequent: members degrade to plain
                // tuples of their frequent outliers.
                out.patterns.discard_row();
                for o in g.outliers.iter() {
                    if flist.encode_push(o, &mut out.plain) == 0 {
                        out.plain.discard_row();
                    } else {
                        out.plain.commit_row();
                    }
                }
                continue;
            }
            out.patterns.commit_row();
            let mut bare = u64::from(g.bare);
            for o in g.outliers.iter() {
                if flist.encode_push(o, &mut out.outliers) == 0 {
                    out.outliers.discard_row();
                    bare += 1;
                } else {
                    out.outliers.commit_row();
                }
            }
            out.close_group(bare);
        }
        for t in self.plain.iter() {
            if flist.encode_push(t, &mut out.plain) == 0 {
                out.plain.discard_row();
            } else {
                out.plain.commit_row();
            }
        }
        out
    }
}

/// Counts one group into `counts`: pattern items once with the group
/// count, outlying items per occurrence.
fn count_group(g: &Group, counts: &mut [u64]) {
    let c = g.count();
    for it in g.pattern.iter() {
        counts[it.index()] += c;
    }
    for &it in g.outliers.flat() {
        counts[it.index()] += 1;
    }
}

impl HeapSize for CompressedDb {
    fn heap_size(&self) -> usize {
        let groups: usize = self
            .groups
            .iter()
            .map(|g| g.pattern.len() * std::mem::size_of::<Item>() + g.outliers.heap_size())
            .sum();
        groups + self.plain.heap_size() + self.groups.capacity() * std::mem::size_of::<Group>()
    }
}

/// A compressed database in rank space — the input of every recycling
/// miner.
///
/// Storage is three flat CSR sections plus two per-group scalars:
///
/// ```text
/// patterns      row g            = group g's pattern head (ranks, asc)
/// outliers      rows [s_g, s_{g+1})  where s = outlier_start
///                                = group g's outlier member rows
/// bare[g]                        = members with no frequent outliers
/// plain         rows             = tuples covered by no group
/// ```
///
/// Everything engines read comes out as `&[u32]` slices of these three
/// buffers (see [`gogreen_data::GroupedSource`]); a whole-section scan —
/// F-list counting, H-Mine struct sizing — walks one allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedRankDb {
    /// Group pattern heads, one row per group. Rows never empty.
    pub(crate) patterns: CsrTuples<u32>,
    /// All groups' outlier member rows, concatenated in group order.
    pub(crate) outliers: CsrTuples<u32>,
    /// Row partition of `outliers` by group: group `g` owns rows
    /// `outlier_start[g] .. outlier_start[g + 1]`. Length = groups + 1.
    pub(crate) outlier_start: Vec<u32>,
    /// Per-group count of members with no frequent outlying items.
    pub(crate) bare: Vec<u64>,
    /// Plain tuples (rank lists, ascending, non-empty).
    pub(crate) plain: CsrTuples<u32>,
    /// Rank-space size (F-list length).
    pub(crate) num_ranks: usize,
}

impl Default for CompressedRankDb {
    fn default() -> Self {
        Self::empty(0)
    }
}

impl CompressedRankDb {
    /// An empty rank database over `num_ranks` rank slots.
    pub fn empty(num_ranks: usize) -> Self {
        CompressedRankDb {
            patterns: CsrTuples::new(),
            outliers: CsrTuples::new(),
            outlier_start: vec![0],
            bare: Vec::new(),
            plain: CsrTuples::new(),
            num_ranks,
        }
    }

    /// Appends a group. `pattern` must be non-empty ascending ranks; each
    /// outlier row non-empty ascending ranks disjoint in meaning (the
    /// member's extra items). This is the public construction path for
    /// callers outside the crate (e.g. rebuilding from spilled records).
    pub fn push_group<'a>(
        &mut self,
        pattern: &[u32],
        outliers: impl IntoIterator<Item = &'a [u32]>,
        bare: u64,
    ) {
        debug_assert!(!pattern.is_empty() && pattern.windows(2).all(|w| w[0] < w[1]));
        self.patterns.push_row(pattern);
        for o in outliers {
            debug_assert!(!o.is_empty() && o.windows(2).all(|w| w[0] < w[1]));
            self.outliers.push_row(o);
        }
        self.close_group(bare);
    }

    /// Appends a plain tuple (non-empty ascending ranks).
    pub fn push_plain(&mut self, ranks: &[u32]) {
        debug_assert!(!ranks.is_empty() && ranks.windows(2).all(|w| w[0] < w[1]));
        self.plain.push_row(ranks);
    }

    /// Seals the group whose pattern row and outlier rows were just
    /// pushed: records the outlier partition boundary and the bare count.
    pub(crate) fn close_group(&mut self, bare: u64) {
        self.outlier_start.push(self.outliers.len() as u32);
        self.bare.push(bare);
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.patterns.len()
    }

    /// Rank-space size (F-list length at encoding time).
    pub fn num_ranks(&self) -> usize {
        self.num_ranks
    }

    /// The pattern head of group `g`.
    pub fn group_pattern(&self, g: usize) -> &[u32] {
        self.patterns.row(g)
    }

    /// The outlier member rows of group `g`, as a CSR window.
    pub fn group_outliers(&self, g: usize) -> TupleSlices<'_> {
        self.outliers
            .as_slices()
            .range(self.outlier_start[g] as usize, self.outlier_start[g + 1] as usize)
    }

    /// Members of group `g` with no frequent outlying items.
    pub fn group_bare(&self, g: usize) -> u64 {
        self.bare[g]
    }

    /// Member count of group `g`.
    pub fn group_count(&self, g: usize) -> u64 {
        (self.outlier_start[g + 1] - self.outlier_start[g]) as u64 + self.bare[g]
    }

    /// The plain residue, as a CSR window.
    pub fn plain(&self) -> TupleSlices<'_> {
        self.plain.as_slices()
    }

    /// Returns a copy keeping only ranks accepted by `keep` — the
    /// succinct-constraint pushdown over a compressed database. Groups
    /// whose pattern empties out degrade to plain tuples; supports of
    /// surviving ranks are unchanged (tuples are never removed, only
    /// shortened). One pass: filtered rows are built in place in the
    /// output CSR sections and committed or discarded.
    pub fn retain_ranks(&self, keep: impl Fn(u32) -> bool) -> CompressedRankDb {
        let filter_push = |src: &[u32], dst: &mut CsrTuples<u32>| -> usize {
            for &r in src {
                if keep(r) {
                    dst.push_elem(r);
                }
            }
            dst.open_len()
        };
        let mut out = CompressedRankDb::empty(self.num_ranks);
        for g in 0..self.num_groups() {
            if filter_push(self.group_pattern(g), &mut out.patterns) == 0 {
                out.patterns.discard_row();
                for o in self.group_outliers(g).iter() {
                    if filter_push(o, &mut out.plain) == 0 {
                        out.plain.discard_row();
                    } else {
                        out.plain.commit_row();
                    }
                }
                continue;
            }
            out.patterns.commit_row();
            let mut bare = self.bare[g];
            for o in self.group_outliers(g).iter() {
                if filter_push(o, &mut out.outliers) == 0 {
                    out.outliers.discard_row();
                    bare += 1;
                } else {
                    out.outliers.commit_row();
                }
            }
            out.close_group(bare);
        }
        for t in self.plain.iter() {
            if filter_push(t, &mut out.plain) == 0 {
                out.plain.discard_row();
            } else {
                out.plain.commit_row();
            }
        }
        out
    }

    /// Total item occurrences stored (patterns once + outliers + plain).
    pub fn stored_occurrences(&self) -> usize {
        self.patterns.total_elems() + self.outliers.total_elems() + self.plain.total_elems()
    }

    /// Total outlier member rows across all groups.
    pub fn group_outlier_rows(&self) -> usize {
        self.outliers.len()
    }

    /// Total outlier item occurrences across all groups.
    pub fn group_outlier_items(&self) -> usize {
        self.outliers.total_elems()
    }

    /// Total pattern-head item occurrences across all groups.
    pub fn pattern_items(&self) -> usize {
        self.patterns.total_elems()
    }
}

impl HeapSize for CompressedRankDb {
    fn heap_size(&self) -> usize {
        self.patterns.heap_size()
            + self.outliers.heap_size()
            + self.outlier_start.heap_size()
            + self.bare.heap_size()
            + self.plain.heap_size()
    }
}

/// The real grouped substrate of the unified mining engines: the
/// recycling miners instantiate `gogreen_miners::engine::{hm, fp, tp}`
/// with this, the raw miners with the degenerate
/// [`gogreen_data::PlainRanks`] view.
impl gogreen_data::GroupedSource for CompressedRankDb {
    const GROUPED: bool = true;

    fn num_ranks(&self) -> usize {
        self.num_ranks
    }

    fn num_groups(&self) -> usize {
        CompressedRankDb::num_groups(self)
    }

    fn group_pattern(&self, g: usize) -> &[u32] {
        CompressedRankDb::group_pattern(self, g)
    }

    fn group_outliers(&self, g: usize) -> TupleSlices<'_> {
        CompressedRankDb::group_outliers(self, g)
    }

    fn group_bare(&self, g: usize) -> u64 {
        CompressedRankDb::group_bare(self, g)
    }

    fn plain(&self) -> TupleSlices<'_> {
        CompressedRankDb::plain(self)
    }

    fn group_count(&self, g: usize) -> u64 {
        CompressedRankDb::group_count(self, g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gogreen_data::Item;

    fn items(ids: &[u32]) -> Vec<Item> {
        ids.iter().map(|&i| Item(i)).collect()
    }

    /// The paper's Table 2: groups fgc (tuples 100, 200, 300) and ae
    /// (tuples 400, 500).
    fn paper_cdb() -> CompressedDb {
        // fgc = {2,5,6}; outliers 100: a,d,e = {0,3,4}; 200: b,d = {1,3};
        // 300: e = {4}.
        let g1 =
            Group::new(items(&[2, 5, 6]), vec![items(&[0, 3, 4]), items(&[1, 3]), items(&[4])], 0);
        // ae = {0,4}; outliers 400: c,i = {2,8}; 500: h = {7}.
        let g2 = Group::new(items(&[0, 4]), vec![items(&[2, 8]), items(&[7])], 0);
        CompressedDb::new(vec![g1, g2], CsrTuples::new(), 22)
    }

    fn rows(v: TupleSlices<'_>) -> Vec<Vec<u32>> {
        v.iter().map(|r| r.to_vec()).collect()
    }

    #[test]
    fn group_count_includes_bare() {
        let g = Group::new(items(&[1, 2]), vec![items(&[3])], 2);
        assert_eq!(g.count(), 3);
        assert_eq!(g.bare(), 2);
    }

    #[test]
    fn paper_cdb_reconstructs_table_1() {
        let cdb = paper_cdb();
        let rebuilt = cdb.reconstruct();
        let original = TransactionDb::paper_example();
        let mut a: Vec<Vec<Item>> = rebuilt.iter().map(|t| t.to_vec()).collect();
        let mut b: Vec<Vec<Item>> = original.iter().map(|t| t.to_vec()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn item_supports_match_original() {
        let cdb = paper_cdb();
        let original = TransactionDb::paper_example();
        assert_eq!(cdb.item_supports(), original.item_supports());
    }

    #[test]
    fn parallel_item_supports_match_serial() {
        let cdb = paper_cdb();
        for threads in [2, 3, 8] {
            assert_eq!(
                cdb.item_supports_par(Parallelism::threads(threads)),
                cdb.item_supports(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn stats_count_compressed_units() {
        let cdb = paper_cdb();
        let s = cdb.stats();
        assert_eq!(s.num_tuples, 5);
        assert_eq!(s.num_groups, 2);
        assert_eq!(s.covered_tuples, 5);
        // fgc(3) + outliers(3+2+1) + ae(2) + outliers(2+1) = 14.
        assert_eq!(s.compressed_size, 14);
        assert_eq!(s.original_size, 22);
        assert!((s.ratio() - 14.0 / 22.0).abs() < 1e-12);
        assert!(s.bytes_per_tuple > 0.0);
    }

    #[test]
    fn uncompressed_has_no_groups_and_ratio_one() {
        let db = TransactionDb::paper_example();
        let cdb = CompressedDb::uncompressed(&db);
        assert!(cdb.groups().is_empty());
        assert_eq!(cdb.num_tuples(), 5);
        assert_eq!(cdb.stats().ratio(), 1.0);
        assert_eq!(cdb.item_supports(), db.item_supports());
    }

    #[test]
    fn to_ranks_reproduces_paper_table_2_fourth_column() {
        // ξ_new = 2: ranks by (support, id): d:2→0; a,f,g:3→1,2,3;
        // c,e:4→4,5 (c's id 2 < e's id 4). The paper's F-list order
        // differs only in tie-breaks, which do not affect results.
        let cdb = paper_cdb();
        let fl = cdb.flist(2);
        let r = cdb.to_ranks(&fl);
        assert_eq!(r.num_groups(), 2);
        // Group fgc -> ranks {f,g,c} = {2,3,4}.
        assert_eq!(r.group_pattern(0), &[2, 3, 4]);
        // Outliers: 100: d,a,e -> {0,1,5}; 200: d (b infrequent) -> {0};
        // 300: e -> {5}.
        assert_eq!(rows(r.group_outliers(0)), vec![vec![0, 1, 5], vec![0], vec![5]]);
        assert_eq!(r.group_bare(0), 0);
        // Group ae -> {1,5}; outliers 400: c -> {4}; 500: h infrequent ->
        // bare.
        assert_eq!(r.group_pattern(1), &[1, 5]);
        assert_eq!(rows(r.group_outliers(1)), vec![vec![4]]);
        assert_eq!(r.group_bare(1), 1);
        assert_eq!(r.group_count(1), 2);
        assert!(r.plain().is_empty());
        // fgc(3) + outliers(3+1+1) + ae(2) + outlier(1) = 11.
        assert_eq!(r.stored_occurrences(), 11);
    }

    #[test]
    fn retain_ranks_filters_and_degrades() {
        let mut rdb = CompressedRankDb::empty(4);
        rdb.push_group(&[1, 3], [&[0u32, 2] as &[u32], &[2]], 1);
        rdb.push_group(&[0], [&[2u32, 3] as &[u32]], 0);
        rdb.push_plain(&[0, 2]);
        rdb.push_plain(&[1]);
        // Drop rank 0 everywhere.
        let f = rdb.retain_ranks(|r| r != 0);
        assert_eq!(f.num_groups(), 1);
        assert_eq!(f.group_pattern(0), &[1, 3]);
        assert_eq!(rows(f.group_outliers(0)), vec![vec![2], vec![2]]);
        assert_eq!(f.group_bare(0), 1);
        // Second group's pattern emptied: its member became plain.
        let plain = rows(f.plain());
        assert!(plain.contains(&vec![2, 3]));
        // Plain tuple [0,2] -> [2]; [1] survives.
        assert!(plain.contains(&vec![2]));
        assert!(plain.contains(&vec![1]));
        assert_eq!(plain.len(), 3);
    }

    #[test]
    fn retain_ranks_can_empty_everything() {
        let mut rdb = CompressedRankDb::empty(1);
        rdb.push_group(&[0], std::iter::empty(), 3);
        rdb.push_plain(&[0]);
        let f = rdb.retain_ranks(|_| false);
        assert_eq!(f.num_groups(), 0);
        assert!(f.plain().is_empty());
    }

    #[test]
    fn retain_ranks_member_with_empty_filtered_outliers_becomes_bare() {
        let mut rdb = CompressedRankDb::empty(2);
        rdb.push_group(&[1], [&[0u32] as &[u32]], 0);
        let f = rdb.retain_ranks(|r| r == 1);
        assert_eq!(f.num_groups(), 1);
        assert!(f.group_outliers(0).is_empty());
        assert_eq!(f.group_bare(0), 1);
        assert_eq!(f.group_count(0), 1);
    }

    #[test]
    fn to_ranks_degrades_infrequent_patterns_to_plain() {
        // A group whose pattern is entirely infrequent at the new
        // threshold: members must survive as plain tuples.
        let g = Group::new(items(&[9]), vec![items(&[1, 2]), items(&[1])], 1);
        let cdb = CompressedDb::new(vec![g], CsrTuples::new(), 7);
        // Supports: 9 -> 3, 1 -> 2, 2 -> 1. At minsup 2: only item 1... and 9.
        let fl = cdb.flist(2);
        assert!(fl.is_frequent(Item(9)));
        // Force-pick an flist where 9 is infrequent: minsup 4.
        let fl4 = cdb.flist(4);
        assert!(!fl4.is_frequent(Item(9)));
        let r = cdb.to_ranks(&fl4);
        assert_eq!(r.num_groups(), 0);
        assert!(r.plain().is_empty()); // nothing else frequent either
                                       // At minsup 2 with 9 frequent: group survives.
        let r2 = cdb.to_ranks(&fl);
        assert_eq!(r2.num_groups(), 1);
        assert_eq!(r2.group_count(0), 3);
        // Outlier {1,2} keeps 1 (2 infrequent); outlier {1} stays; bare 1.
        assert_eq!(r2.group_outliers(0).len(), 2);
    }
}
