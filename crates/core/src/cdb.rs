//! The compressed database (paper §3.1, Table 2).
//!
//! A [`CompressedDb`] partitions the tuples of the original database into
//! *groups* — tuples covered by the same recycled pattern, stored as the
//! pattern (once) plus each member's *outlying items* — and a residue of
//! *plain* tuples no pattern covered. Compression is lossless:
//! [`CompressedDb::reconstruct`] returns the original tuple multiset.
//!
//! For mining, the item-space structure is re-encoded against an F-list
//! into a [`CompressedRankDb`], mirroring how plain databases become
//! [`gogreen_data::projected::RankDb`]s.

use gogreen_data::{FList, Item, Transaction, TransactionDb};
use gogreen_util::pool::{par_chunks, Parallelism};
use gogreen_util::HeapSize;

/// One compression group: a pattern and its member tuples' outlying items.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    /// The covering pattern, sorted ascending by item id. Never empty.
    pattern: Box<[Item]>,
    /// Outlying items (sorted ascending) of members that have any.
    outliers: Vec<Box<[Item]>>,
    /// Members whose tuple *is* the pattern (no outlying items).
    bare: u32,
}

impl Group {
    /// Creates a group. `pattern` and each outlier list must be sorted
    /// ascending; outlier lists must be non-empty and disjoint from the
    /// pattern.
    pub fn new(pattern: Vec<Item>, outliers: Vec<Vec<Item>>, bare: u32) -> Self {
        debug_assert!(!pattern.is_empty());
        debug_assert!(pattern.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(outliers.iter().all(|o| {
            !o.is_empty()
                && o.windows(2).all(|w| w[0] < w[1])
                && o.iter().all(|it| pattern.binary_search(it).is_err())
        }));
        Group {
            pattern: pattern.into_boxed_slice(),
            outliers: outliers.into_iter().map(Vec::into_boxed_slice).collect(),
            bare,
        }
    }

    /// The group pattern.
    pub fn pattern(&self) -> &[Item] {
        &self.pattern
    }

    /// Outlying-item lists of members that have any.
    pub fn outliers(&self) -> &[Box<[Item]>] {
        &self.outliers
    }

    /// Number of member tuples (the group count the miners exploit).
    pub fn count(&self) -> u64 {
        self.outliers.len() as u64 + u64::from(self.bare)
    }

    /// Members without outlying items.
    pub fn bare(&self) -> u32 {
        self.bare
    }
}

/// A database compressed with recycled frequent patterns.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompressedDb {
    groups: Vec<Group>,
    plain: Vec<Transaction>,
    original_items: usize,
}

/// Size/ratio summary of a compressed database.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CdbStats {
    /// Tuples represented (groups' members + plain).
    pub num_tuples: usize,
    /// Number of groups.
    pub num_groups: usize,
    /// Tuples covered by some group.
    pub covered_tuples: usize,
    /// Item occurrences stored: each group pattern once, plus all
    /// outlying items, plus plain tuples.
    pub compressed_size: usize,
    /// Item occurrences of the original database.
    pub original_size: usize,
}

impl CdbStats {
    /// `S_c / S_o` — the paper's Table 3 ratio. Smaller is better
    /// compression; 1.0 means nothing was compressed.
    pub fn ratio(&self) -> f64 {
        if self.original_size == 0 {
            1.0
        } else {
            self.compressed_size as f64 / self.original_size as f64
        }
    }
}

impl CompressedDb {
    /// Assembles a compressed database from parts. `original_items` is
    /// the item-occurrence count of the uncompressed database (for the
    /// compression ratio).
    pub fn new(groups: Vec<Group>, plain: Vec<Transaction>, original_items: usize) -> Self {
        CompressedDb { groups, plain, original_items }
    }

    /// Wraps a plain database with no compression at all (every tuple in
    /// the plain residue). Recycling miners on such a "compressed"
    /// database behave exactly like their non-recycling counterparts —
    /// used as a correctness bridge in tests.
    pub fn uncompressed(db: &TransactionDb) -> Self {
        let original_items = db.iter().map(Transaction::len).sum();
        CompressedDb { groups: Vec::new(), plain: db.iter().cloned().collect(), original_items }
    }

    /// The groups.
    pub fn groups(&self) -> &[Group] {
        &self.groups
    }

    /// The uncovered tuples.
    pub fn plain(&self) -> &[Transaction] {
        &self.plain
    }

    /// Total number of tuples represented (= original `|DB|`).
    pub fn num_tuples(&self) -> usize {
        self.groups.iter().map(|g| g.count() as usize).sum::<usize>() + self.plain.len()
    }

    /// Size/ratio summary.
    pub fn stats(&self) -> CdbStats {
        let covered: usize = self.groups.iter().map(|g| g.count() as usize).sum();
        let compressed_size: usize = self
            .groups
            .iter()
            .map(|g| g.pattern.len() + g.outliers.iter().map(|o| o.len()).sum::<usize>())
            .sum::<usize>()
            + self.plain.iter().map(Transaction::len).sum::<usize>();
        CdbStats {
            num_tuples: covered + self.plain.len(),
            num_groups: self.groups.len(),
            covered_tuples: covered,
            compressed_size,
            original_size: self.original_items,
        }
    }

    /// Per-item supports, computed the compressed way (paper §3.1): each
    /// group pattern item is counted once with the group count; outlying
    /// and plain items per occurrence.
    pub fn item_supports(&self) -> Vec<u64> {
        self.item_supports_par(Parallelism::serial())
    }

    /// [`Self::item_supports`] with the counting pass chunked across
    /// worker threads. Summing per-chunk `u64` count vectors is exact
    /// and order-independent, so the result is identical to the serial
    /// pass for any thread count.
    pub fn item_supports_par(&self, par: Parallelism) -> Vec<u64> {
        let mut max_id: Option<u32> = None;
        let mut consider = |items: &[Item]| {
            if let Some(&last) = items.last() {
                max_id = Some(max_id.map_or(last.id(), |m| m.max(last.id())));
            }
        };
        for g in &self.groups {
            consider(&g.pattern);
            for o in &g.outliers {
                consider(o);
            }
        }
        for t in &self.plain {
            consider(t.items());
        }
        let slots = max_id.map_or(0, |m| m as usize + 1);
        let mut counts = vec![0u64; slots];
        if par.for_items(self.groups.len().max(self.plain.len())) <= 1 {
            for g in &self.groups {
                count_group(g, &mut counts);
            }
            for t in &self.plain {
                for it in t.items() {
                    counts[it.index()] += 1;
                }
            }
            return counts;
        }
        let group_parts = par_chunks(par, &self.groups, |_, chunk| {
            let mut local = vec![0u64; slots];
            for g in chunk {
                count_group(g, &mut local);
            }
            local
        });
        let plain_parts = par_chunks(par, &self.plain, |_, chunk| {
            let mut local = vec![0u64; slots];
            for t in chunk {
                for it in t.items() {
                    local[it.index()] += 1;
                }
            }
            local
        });
        for (_, local) in group_parts.into_iter().chain(plain_parts) {
            for (slot, c) in counts.iter_mut().zip(local) {
                *slot += c;
            }
        }
        counts
    }

    /// Builds the F-list of the represented database at `min_support`
    /// without decompressing.
    pub fn flist(&self, min_support: u64) -> FList {
        self.flist_par(min_support, Parallelism::serial())
    }

    /// [`Self::flist`] with the support count parallelized.
    pub fn flist_par(&self, min_support: u64, par: Parallelism) -> FList {
        FList::from_counts(&self.item_supports_par(par), min_support)
    }

    /// Decompresses back to the original tuple multiset (tuple order is
    /// not preserved). Compression must be lossless; the property tests
    /// assert `reconstruct()` equals the source database as a multiset.
    pub fn reconstruct(&self) -> TransactionDb {
        let mut out = Vec::with_capacity(self.num_tuples());
        for g in &self.groups {
            for o in &g.outliers {
                let mut items = Vec::with_capacity(g.pattern.len() + o.len());
                items.extend_from_slice(&g.pattern);
                items.extend_from_slice(o);
                out.push(Transaction::new(items));
            }
            for _ in 0..g.bare {
                out.push(Transaction::new(g.pattern.to_vec()));
            }
        }
        out.extend(self.plain.iter().cloned());
        TransactionDb::from_transactions(out)
    }

    /// Re-encodes into rank space against `flist` for mining.
    pub fn to_ranks(&self, flist: &FList) -> CompressedRankDb {
        let mut groups = Vec::with_capacity(self.groups.len());
        let mut plain: Vec<Vec<u32>> = Vec::with_capacity(self.plain.len());
        for g in &self.groups {
            let pattern = flist.encode(&g.pattern);
            if pattern.is_empty() {
                // Every pattern item infrequent: members degrade to plain
                // tuples of their frequent outliers.
                for o in &g.outliers {
                    let enc = flist.encode(o);
                    if !enc.is_empty() {
                        plain.push(enc);
                    }
                }
                continue;
            }
            let mut bare = u64::from(g.bare);
            let mut outliers = Vec::with_capacity(g.outliers.len());
            for o in &g.outliers {
                let enc = flist.encode(o);
                if enc.is_empty() {
                    bare += 1;
                } else {
                    outliers.push(enc);
                }
            }
            groups.push(CrGroup { pattern, outliers, bare });
        }
        for t in &self.plain {
            let enc = flist.encode(t.items());
            if !enc.is_empty() {
                plain.push(enc);
            }
        }
        CompressedRankDb { groups, plain, num_ranks: flist.len() }
    }
}

/// Counts one group into `counts`: pattern items once with the group
/// count, outlying items per occurrence.
fn count_group(g: &Group, counts: &mut [u64]) {
    let c = g.count();
    for it in g.pattern.iter() {
        counts[it.index()] += c;
    }
    for o in &g.outliers {
        for it in o.iter() {
            counts[it.index()] += 1;
        }
    }
}

impl HeapSize for CompressedDb {
    fn heap_size(&self) -> usize {
        let groups: usize = self
            .groups
            .iter()
            .map(|g| {
                g.pattern.len() * std::mem::size_of::<Item>()
                    + g.outliers.iter().map(|o| o.heap_size()).sum::<usize>()
                    + g.outliers.capacity() * std::mem::size_of::<Box<[Item]>>()
            })
            .sum();
        groups + self.plain.heap_size() + self.groups.capacity() * std::mem::size_of::<Group>()
    }
}

/// A group re-encoded into rank space (ascending ranks everywhere).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrGroup {
    /// Pattern ranks, ascending. Never empty.
    pub pattern: Vec<u32>,
    /// Non-empty outlier rank lists.
    pub outliers: Vec<Vec<u32>>,
    /// Members with no frequent outlying items.
    pub bare: u64,
}

impl CrGroup {
    /// Member count.
    pub fn count(&self) -> u64 {
        self.outliers.len() as u64 + self.bare
    }
}

/// A compressed database in rank space — the input of every recycling
/// miner.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompressedRankDb {
    /// Groups with non-empty patterns.
    pub groups: Vec<CrGroup>,
    /// Plain tuples (rank lists, ascending, non-empty).
    pub plain: Vec<Vec<u32>>,
    /// Rank-space size (F-list length).
    pub num_ranks: usize,
}

impl CompressedRankDb {
    /// Returns a copy keeping only ranks accepted by `keep` — the
    /// succinct-constraint pushdown over a compressed database. Groups
    /// whose pattern empties out degrade to plain tuples; supports of
    /// surviving ranks are unchanged (tuples are never removed, only
    /// shortened).
    pub fn retain_ranks(&self, keep: impl Fn(u32) -> bool) -> CompressedRankDb {
        let filter =
            |v: &Vec<u32>| -> Vec<u32> { v.iter().copied().filter(|&r| keep(r)).collect() };
        let mut groups = Vec::with_capacity(self.groups.len());
        let mut plain: Vec<Vec<u32>> = Vec::new();
        for g in &self.groups {
            let pattern = filter(&g.pattern);
            if pattern.is_empty() {
                for o in &g.outliers {
                    let f = filter(o);
                    if !f.is_empty() {
                        plain.push(f);
                    }
                }
                continue;
            }
            let mut bare = g.bare;
            let mut outliers = Vec::with_capacity(g.outliers.len());
            for o in &g.outliers {
                let f = filter(o);
                if f.is_empty() {
                    bare += 1;
                } else {
                    outliers.push(f);
                }
            }
            groups.push(CrGroup { pattern, outliers, bare });
        }
        for t in &self.plain {
            let f = filter(t);
            if !f.is_empty() {
                plain.push(f);
            }
        }
        CompressedRankDb { groups, plain, num_ranks: self.num_ranks }
    }

    /// Total item occurrences stored (patterns once + outliers + plain).
    pub fn stored_occurrences(&self) -> usize {
        self.groups
            .iter()
            .map(|g| g.pattern.len() + g.outliers.iter().map(Vec::len).sum::<usize>())
            .sum::<usize>()
            + self.plain.iter().map(Vec::len).sum::<usize>()
    }
}

/// The real grouped substrate of the unified mining engines: the
/// recycling miners instantiate `gogreen_miners::engine::{hm, fp, tp}`
/// with this, the raw miners with the degenerate
/// [`gogreen_data::PlainRanks`] view.
impl gogreen_data::GroupedSource for CompressedRankDb {
    const GROUPED: bool = true;

    fn num_ranks(&self) -> usize {
        self.num_ranks
    }

    fn num_groups(&self) -> usize {
        self.groups.len()
    }

    fn group_pattern(&self, g: usize) -> &[u32] {
        &self.groups[g].pattern
    }

    fn group_outliers(&self, g: usize) -> &[Vec<u32>] {
        &self.groups[g].outliers
    }

    fn group_bare(&self, g: usize) -> u64 {
        self.groups[g].bare
    }

    fn plain(&self) -> &[Vec<u32>] {
        &self.plain
    }

    fn group_count(&self, g: usize) -> u64 {
        self.groups[g].count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gogreen_data::Item;

    fn items(ids: &[u32]) -> Vec<Item> {
        ids.iter().map(|&i| Item(i)).collect()
    }

    /// The paper's Table 2: groups fgc (tuples 100, 200, 300) and ae
    /// (tuples 400, 500).
    fn paper_cdb() -> CompressedDb {
        // fgc = {2,5,6}; outliers 100: a,d,e = {0,3,4}; 200: b,d = {1,3};
        // 300: e = {4}.
        let g1 =
            Group::new(items(&[2, 5, 6]), vec![items(&[0, 3, 4]), items(&[1, 3]), items(&[4])], 0);
        // ae = {0,4}; outliers 400: c,i = {2,8}; 500: h = {7}.
        let g2 = Group::new(items(&[0, 4]), vec![items(&[2, 8]), items(&[7])], 0);
        CompressedDb::new(vec![g1, g2], vec![], 22)
    }

    #[test]
    fn group_count_includes_bare() {
        let g = Group::new(items(&[1, 2]), vec![items(&[3])], 2);
        assert_eq!(g.count(), 3);
        assert_eq!(g.bare(), 2);
    }

    #[test]
    fn paper_cdb_reconstructs_table_1() {
        let cdb = paper_cdb();
        let rebuilt = cdb.reconstruct();
        let original = TransactionDb::paper_example();
        let mut a: Vec<_> = rebuilt.iter().cloned().collect();
        let mut b: Vec<_> = original.iter().cloned().collect();
        a.sort_by(|x, y| x.items().cmp(y.items()));
        b.sort_by(|x, y| x.items().cmp(y.items()));
        assert_eq!(a, b);
    }

    #[test]
    fn item_supports_match_original() {
        let cdb = paper_cdb();
        let original = TransactionDb::paper_example();
        assert_eq!(cdb.item_supports(), original.item_supports());
    }

    #[test]
    fn parallel_item_supports_match_serial() {
        let cdb = paper_cdb();
        for threads in [2, 3, 8] {
            assert_eq!(
                cdb.item_supports_par(Parallelism::threads(threads)),
                cdb.item_supports(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn stats_count_compressed_units() {
        let cdb = paper_cdb();
        let s = cdb.stats();
        assert_eq!(s.num_tuples, 5);
        assert_eq!(s.num_groups, 2);
        assert_eq!(s.covered_tuples, 5);
        // fgc(3) + outliers(3+2+1) + ae(2) + outliers(2+1) = 14.
        assert_eq!(s.compressed_size, 14);
        assert_eq!(s.original_size, 22);
        assert!((s.ratio() - 14.0 / 22.0).abs() < 1e-12);
    }

    #[test]
    fn uncompressed_has_no_groups_and_ratio_one() {
        let db = TransactionDb::paper_example();
        let cdb = CompressedDb::uncompressed(&db);
        assert!(cdb.groups().is_empty());
        assert_eq!(cdb.num_tuples(), 5);
        assert_eq!(cdb.stats().ratio(), 1.0);
        assert_eq!(cdb.item_supports(), db.item_supports());
    }

    #[test]
    fn to_ranks_reproduces_paper_table_2_fourth_column() {
        // ξ_new = 2: ranks by (support, id): d:2→0; a,f,g:3→1,2,3;
        // c,e:4→4,5 (c's id 2 < e's id 4). The paper's F-list order
        // differs only in tie-breaks, which do not affect results.
        let cdb = paper_cdb();
        let fl = cdb.flist(2);
        let r = cdb.to_ranks(&fl);
        assert_eq!(r.groups.len(), 2);
        // Group fgc -> ranks {f,g,c} = {2,3,4}.
        assert_eq!(r.groups[0].pattern, vec![2, 3, 4]);
        // Outliers: 100: d,a,e -> {0,1,5}; 200: d (b infrequent) -> {0};
        // 300: e -> {5}.
        assert_eq!(r.groups[0].outliers, vec![vec![0, 1, 5], vec![0], vec![5]]);
        assert_eq!(r.groups[0].bare, 0);
        // Group ae -> {1,5}; outliers 400: c -> {4}; 500: h infrequent ->
        // bare.
        assert_eq!(r.groups[1].pattern, vec![1, 5]);
        assert_eq!(r.groups[1].outliers, vec![vec![4]]);
        assert_eq!(r.groups[1].bare, 1);
        assert!(r.plain.is_empty());
        // fgc(3) + outliers(3+1+1) + ae(2) + outlier(1) = 11.
        assert_eq!(r.stored_occurrences(), 11);
    }

    #[test]
    fn retain_ranks_filters_and_degrades() {
        let rdb = CompressedRankDb {
            groups: vec![
                CrGroup { pattern: vec![1, 3], outliers: vec![vec![0, 2], vec![2]], bare: 1 },
                CrGroup { pattern: vec![0], outliers: vec![vec![2, 3]], bare: 0 },
            ],
            plain: vec![vec![0, 2], vec![1]],
            num_ranks: 4,
        };
        // Drop rank 0 everywhere.
        let f = rdb.retain_ranks(|r| r != 0);
        assert_eq!(f.groups.len(), 1);
        assert_eq!(f.groups[0].pattern, vec![1, 3]);
        assert_eq!(f.groups[0].outliers, vec![vec![2], vec![2]]);
        assert_eq!(f.groups[0].bare, 1);
        // Second group's pattern emptied: its member became plain.
        assert!(f.plain.contains(&vec![2, 3]));
        // Plain tuple [0,2] -> [2]; [1] survives.
        assert!(f.plain.contains(&vec![2]));
        assert!(f.plain.contains(&vec![1]));
        assert_eq!(f.plain.len(), 3);
    }

    #[test]
    fn retain_ranks_can_empty_everything() {
        let rdb = CompressedRankDb {
            groups: vec![CrGroup { pattern: vec![0], outliers: vec![], bare: 3 }],
            plain: vec![vec![0]],
            num_ranks: 1,
        };
        let f = rdb.retain_ranks(|_| false);
        assert!(f.groups.is_empty());
        assert!(f.plain.is_empty());
    }

    #[test]
    fn retain_ranks_member_with_empty_filtered_outliers_becomes_bare() {
        let rdb = CompressedRankDb {
            groups: vec![CrGroup { pattern: vec![1], outliers: vec![vec![0]], bare: 0 }],
            plain: vec![],
            num_ranks: 2,
        };
        let f = rdb.retain_ranks(|r| r == 1);
        assert_eq!(f.groups.len(), 1);
        assert!(f.groups[0].outliers.is_empty());
        assert_eq!(f.groups[0].bare, 1);
        assert_eq!(f.groups[0].count(), 1);
    }

    #[test]
    fn to_ranks_degrades_infrequent_patterns_to_plain() {
        // A group whose pattern is entirely infrequent at the new
        // threshold: members must survive as plain tuples.
        let g = Group::new(items(&[9]), vec![items(&[1, 2]), items(&[1])], 1);
        let cdb = CompressedDb::new(vec![g], vec![], 7);
        // Supports: 9 -> 3, 1 -> 2, 2 -> 1. At minsup 2: only item 1... and 9.
        let fl = cdb.flist(2);
        assert!(fl.is_frequent(Item(9)));
        // Force-pick an flist where 9 is infrequent: minsup 4.
        let fl4 = cdb.flist(4);
        assert!(!fl4.is_frequent(Item(9)));
        let r = cdb.to_ranks(&fl4);
        assert!(r.groups.is_empty());
        assert!(r.plain.is_empty()); // nothing else frequent either
                                     // At minsup 2 with 9 frequent: group survives.
        let r2 = cdb.to_ranks(&fl);
        assert_eq!(r2.groups.len(), 1);
        assert_eq!(r2.groups[0].count(), 3);
        // Outlier {1,2} keeps 1 (2 infrequent); outlier {1} stays; bare 1.
        assert_eq!(r2.groups[0].outliers.len(), 2);
    }
}
