//! Pattern utility functions — which pattern should compress a tuple?
//!
//! Both strategies from the paper's §3.2 are implemented. Utilities are
//! only ever *compared*, so they are computed in `u128` to keep MCP's
//! exponential term exact for any pattern length the miners can emit.

use gogreen_data::Pattern;

/// The compression strategy (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Strategy {
    /// **Minimize Cost Principle**: `U(X) = (2^|X| − 1) · X.C`.
    ///
    /// `(2^|X| − 1) · X.C` estimates the search-space cost that was spent
    /// discovering `X` in the previous round — every subset of `X` is
    /// frequent with support ≥ `X.C` — and therefore the saving that
    /// reusing `X` can return. This is the strategy the paper finds
    /// superior for mining speed.
    #[default]
    Mcp,
    /// **Maximal Length Principle**: `U(X) = |X| · |DB| + X.C`.
    ///
    /// Prefers the longest pattern (best storage compression); among
    /// equal lengths, the most frequent. The `|X| · |DB|` term dominates
    /// the support term because `X.C ≤ |DB|`, so length always wins.
    Mlp,
    /// **Ablation (not in the paper)**: `U(X) = X.C` — support only,
    /// ignoring length. Isolates how much MCP's exponential length term
    /// contributes.
    SupportOnly,
    /// **Ablation (not in the paper)**: `U(X) = |X|` — length only,
    /// ignoring support. MLP without its frequency tie-break.
    LengthOnly,
}

impl Strategy {
    /// Strategy suffix used in algorithm names ("HM-MCP", "FP-MLP", …).
    pub fn suffix(self) -> &'static str {
        match self {
            Strategy::Mcp => "MCP",
            Strategy::Mlp => "MLP",
            Strategy::SupportOnly => "SUP",
            Strategy::LengthOnly => "LEN",
        }
    }

    /// The utility `U(X)` of a pattern with `len` items and support
    /// `support`, for a database of `db_len` tuples.
    pub fn utility(self, len: usize, support: u64, db_len: usize) -> u128 {
        match self {
            Strategy::Mcp => {
                // Exact below 63 items; beyond that the count is capped so
                // that multiplying by any u64 support cannot saturate and
                // ordering among such giants falls back to support.
                let subsets = if len >= 63 { 1u128 << 63 } else { (1u128 << len) - 1 };
                subsets * support as u128
            }
            Strategy::Mlp => (len as u128) * (db_len as u128) + support as u128,
            Strategy::SupportOnly => support as u128,
            Strategy::LengthOnly => len as u128,
        }
    }

    /// Utility of a [`Pattern`].
    pub fn utility_of(self, p: &Pattern, db_len: usize) -> u128 {
        self.utility(p.len(), p.support(), db_len)
    }
}

/// Sorts pattern indices by descending utility; ties broken by the
/// pattern itemsets so compression is deterministic across runs.
pub fn order_by_utility(patterns: &[Pattern], strategy: Strategy, db_len: usize) -> Vec<u32> {
    // Utilities are precomputed once — recomputing them inside the
    // comparator costs O(n log n) u128 multiplications on pattern sets
    // that reach tens of thousands. The comparator is a total order
    // (ties fully broken by the distinct itemsets), so the unstable sort
    // is deterministic.
    let keys: Vec<u128> = patterns.iter().map(|p| strategy.utility_of(p, db_len)).collect();
    let mut order: Vec<u32> = (0..patterns.len() as u32).collect();
    order.sort_unstable_by(|&a, &b| {
        keys[b as usize]
            .cmp(&keys[a as usize])
            .then_with(|| patterns[a as usize].items().cmp(patterns[b as usize].items()))
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mcp_matches_paper_example_2() {
        // fgc:3 → (2³−1)·3 = 21; fg:3 → 9; e:4 → 4; f:3 → 3.
        assert_eq!(Strategy::Mcp.utility(3, 3, 5), 21);
        assert_eq!(Strategy::Mcp.utility(2, 3, 5), 9);
        assert_eq!(Strategy::Mcp.utility(1, 4, 5), 4);
        assert_eq!(Strategy::Mcp.utility(1, 3, 5), 3);
    }

    #[test]
    fn mlp_length_always_dominates() {
        let db_len = 1000;
        // A length-3 pattern with minimal support beats any length-2.
        assert!(Strategy::Mlp.utility(3, 1, db_len) > Strategy::Mlp.utility(2, 1000, db_len));
        // Among equal lengths, higher support wins.
        assert!(Strategy::Mlp.utility(2, 30, db_len) > Strategy::Mlp.utility(2, 20, db_len));
    }

    #[test]
    fn mcp_can_prefer_short_frequent_over_long_rare() {
        // 2-pattern with support 100: 300. 4-pattern with support 10: 150.
        assert!(Strategy::Mcp.utility(2, 100, 1000) > Strategy::Mcp.utility(4, 10, 1000));
    }

    #[test]
    fn huge_lengths_do_not_overflow() {
        let u = Strategy::Mcp.utility(130, 5, 10);
        assert!(u > 0);
        assert!(Strategy::Mcp.utility(130, 6, 10) > u);
    }

    #[test]
    fn ordering_is_descending_and_deterministic() {
        let patterns = vec![
            Pattern::from_ids([1], 3),
            Pattern::from_ids([2, 3, 4], 3),
            Pattern::from_ids([5, 6], 3),
            Pattern::from_ids([7, 8], 3),
        ];
        let order = order_by_utility(&patterns, Strategy::Mcp, 5);
        // fgc-like first (21), then the two 2-patterns (9, tie broken by
        // items: {5,6} before {7,8}), then the singleton.
        assert_eq!(order, vec![1, 2, 3, 0]);
    }

    #[test]
    fn paper_example_2_full_ordering() {
        // FP at ξ_old=3 from the paper (+ fc, which the paper's Example 1
        // omits): utilities under MCP.
        let fp = vec![
            Pattern::from_ids([5], 3),       // f:3 -> 3
            Pattern::from_ids([5, 6], 3),    // fg -> 9
            Pattern::from_ids([2, 5, 6], 3), // fgc -> 21
            Pattern::from_ids([6], 3),       // g -> 3
            Pattern::from_ids([2, 6], 3),    // gc -> 9
            Pattern::from_ids([0], 3),       // a -> 3
            Pattern::from_ids([0, 4], 3),    // ae -> 9
            Pattern::from_ids([4], 4),       // e -> 4
            Pattern::from_ids([2, 4], 3),    // ec -> 9
            Pattern::from_ids([2], 4),       // c -> 4
            Pattern::from_ids([2, 5], 3),    // fc -> 9
        ];
        let order = order_by_utility(&fp, Strategy::Mcp, 5);
        // fgc first, as the paper's Example 2 requires.
        assert_eq!(order[0], 2);
        // Then the five 2-patterns (utility 9) before the singletons.
        let u9: Vec<u32> = order[1..6].to_vec();
        for idx in u9 {
            assert_eq!(fp[idx as usize].len(), 2);
        }
    }
}
