//! Two-step mining — the paper's stated future work (§5.2,
//! observation 1).
//!
//! > "This suggests the possibility that we could split a new mining
//! > task with low minimum support into two steps: (a) we first run it
//! > with a high minimum support; (b) we then compress the database with
//! > the strategy MCP and mine the compressed database with the actual
//! > low minimum support. We plan to explore this issue further."
//!
//! [`TwoStepMiner`] is that exploration: a *single* low-support mining
//! request, no prior patterns available, answered by bootstrapping its
//! own recycling fodder. Worth it whenever the high-support pre-pass +
//! compression costs less than the baseline's slowdown at the low
//! threshold — which the dense analogs satisfy comfortably (see the
//! `repro ablation` extension experiment).

use crate::compress::{CompressionStats, Compressor};
use crate::recycle_hm::RecycleHm;
use crate::utility::Strategy;
use crate::RecyclingMiner;
use gogreen_data::{CollectSink, MinSupport, PatternSet, PatternSink, TransactionDb};
use gogreen_miners::{mine_hmine, Miner};
use std::time::Duration;

/// Phase timings of a two-step run.
#[derive(Debug, Clone)]
pub struct TwoStepReport {
    /// The intermediate (high) threshold used for the pre-pass.
    pub intermediate: MinSupport,
    /// Patterns the pre-pass produced for recycling.
    pub bootstrap_patterns: usize,
    /// Pre-pass mining time.
    pub bootstrap_time: Duration,
    /// Compression metrics.
    pub compression: CompressionStats,
    /// Final (compressed) mining time.
    pub mining_time: Duration,
}

impl TwoStepReport {
    /// Total wall time of all phases.
    pub fn total(&self) -> Duration {
        self.bootstrap_time + self.compression.duration + self.mining_time
    }
}

/// Answers one low-support mining request via a self-bootstrapped
/// recycle: mine high, compress, mine low on the compressed database.
///
/// ```
/// use gogreen_core::twostep::TwoStepMiner;
/// use gogreen_data::{MinSupport, TransactionDb};
/// use gogreen_miners::mine_hmine;
///
/// let db = TransactionDb::paper_example();
/// let (patterns, report) = TwoStepMiner::new().mine(&db, MinSupport::Absolute(2));
/// assert!(patterns.same_patterns_as(&mine_hmine(&db, MinSupport::Absolute(2))));
/// assert!(report.intermediate.to_absolute(db.len()) > 2);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TwoStepMiner {
    strategy: Strategy,
    /// The intermediate threshold is `target × factor` (relative targets)
    /// — high enough to be cheap, low enough to yield useful patterns.
    factor: f64,
}

impl Default for TwoStepMiner {
    fn default() -> Self {
        TwoStepMiner { strategy: Strategy::Mcp, factor: 4.0 }
    }
}

impl TwoStepMiner {
    /// A two-step miner with the default MCP strategy and 4× factor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the compression strategy (the paper suggests MCP).
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the intermediate-threshold factor (> 1).
    pub fn with_factor(mut self, factor: f64) -> Self {
        assert!(factor > 1.0, "intermediate factor must exceed 1");
        self.factor = factor;
        self
    }

    /// The intermediate threshold for a given target on a given database:
    /// `target_abs × factor`, but never beyond halfway between the target
    /// and `|DB|` — on dense data the interesting thresholds sit near
    /// `|DB|`, where a multiplicative step would shoot past every
    /// pattern's support and leave nothing to recycle.
    pub fn intermediate_for(&self, target: MinSupport, db_len: usize) -> MinSupport {
        let abs = target.to_absolute(db_len);
        let scaled = (abs as f64 * self.factor) as u64;
        let halfway = abs + (db_len as u64).saturating_sub(abs) / 2;
        MinSupport::Absolute(scaled.min(halfway).max(abs + 1))
    }

    /// Mines `db` at `target` in two steps, emitting into `sink`.
    pub fn mine_into(
        &self,
        db: &TransactionDb,
        target: MinSupport,
        sink: &mut dyn PatternSink,
    ) -> TwoStepReport {
        let intermediate = self.intermediate_for(target, db.len());
        let start = std::time::Instant::now();
        let bootstrap = mine_hmine(db, intermediate);
        let bootstrap_time = start.elapsed();
        let (cdb, compression) = Compressor::new(self.strategy).compress_with_stats(db, &bootstrap);
        let start = std::time::Instant::now();
        RecycleHm.mine_into(&cdb, target, sink);
        let mining_time = start.elapsed();
        TwoStepReport {
            intermediate,
            bootstrap_patterns: bootstrap.len(),
            bootstrap_time,
            compression,
            mining_time,
        }
    }

    /// Collects into a [`PatternSet`] alongside the report.
    pub fn mine(&self, db: &TransactionDb, target: MinSupport) -> (PatternSet, TwoStepReport) {
        let mut sink = CollectSink::new();
        let report = self.mine_into(db, target, &mut sink);
        (sink.into_set(), report)
    }

    /// Single-step baseline for comparison (H-Mine straight at the
    /// target).
    pub fn single_step(db: &TransactionDb, target: MinSupport) -> (PatternSet, Duration) {
        let start = std::time::Instant::now();
        let fp = gogreen_miners::HMine.mine(db, target);
        (fp, start.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gogreen_miners::mine_apriori;

    #[test]
    fn two_step_is_exact() {
        let db = TransactionDb::paper_example();
        for target in 1..=4 {
            let (got, report) = TwoStepMiner::new().mine(&db, MinSupport::Absolute(target));
            let want = mine_apriori(&db, MinSupport::Absolute(target));
            assert!(
                got.same_patterns_as(&want),
                "target {target}: {} vs {}",
                got.len(),
                want.len()
            );
            assert!(report.intermediate.to_absolute(db.len()) > target);
        }
    }

    #[test]
    fn intermediate_respects_bounds() {
        let m = TwoStepMiner::new().with_factor(8.0);
        // 8× 10 = 80 on a 100-tuple db, but halfway(10, 100) = 55 caps it.
        assert_eq!(m.intermediate_for(MinSupport::Absolute(10), 100), MinSupport::Absolute(55));
        // Dense-style target near |DB|: halfway keeps headroom.
        assert_eq!(m.intermediate_for(MinSupport::Absolute(80), 100), MinSupport::Absolute(90));
        // Always strictly above the target.
        let m = TwoStepMiner::new().with_factor(1.01);
        assert_eq!(m.intermediate_for(MinSupport::Absolute(3), 100), MinSupport::Absolute(4));
        // Small multiplicative steps are kept when below halfway.
        let m = TwoStepMiner::new().with_factor(2.0);
        assert_eq!(m.intermediate_for(MinSupport::Absolute(10), 100), MinSupport::Absolute(20));
    }

    #[test]
    fn empty_prepass_degrades_gracefully() {
        // An intermediate threshold above every support yields no
        // bootstrap patterns: the compressed DB is all-plain and the
        // result must still be exact.
        let db = TransactionDb::from_rows(&[&[1], &[2], &[3], &[4]]);
        let m = TwoStepMiner::new().with_factor(50.0);
        let (got, report) = m.mine(&db, MinSupport::Absolute(1));
        assert_eq!(report.bootstrap_patterns, 0);
        let want = mine_apriori(&db, MinSupport::Absolute(1));
        assert!(got.same_patterns_as(&want));
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn factor_must_exceed_one() {
        TwoStepMiner::new().with_factor(1.0);
    }

    #[test]
    fn report_total_sums_phases() {
        let db = TransactionDb::paper_example();
        let (_, report) = TwoStepMiner::new().mine(&db, MinSupport::Absolute(2));
        assert!(report.total() >= report.mining_time);
        assert!(report.total() >= report.bootstrap_time);
    }
}
