//! Incremental mining via recycling — the paper's §2 extension case (1):
//! the constraints stay put (or change too), but the *database* gains or
//! loses tuples.
//!
//! Classic incremental miners (FUP and friends) carry negative borders or
//! other bookkeeping from the previous run and degrade when the database
//! changes a lot. Recycling needs none of that: the old frequent patterns
//! are *only* compression fodder, so correctness never depends on how
//! stale they are — staleness merely costs compression quality. This
//! module packages that workflow.

use crate::compress::Compressor;
use crate::recycle_hm::RecycleHm;
use crate::utility::Strategy;
use crate::RecyclingMiner;
use gogreen_data::{MinSupport, PatternSet, Transaction, TransactionDb};

/// An evolving database whose mining rounds recycle earlier rounds'
/// patterns across updates.
pub struct IncrementalMiner {
    db: TransactionDb,
    strategy: Strategy,
    /// Patterns from the most recent mining round (over whatever version
    /// of the database was current then).
    recycled: Option<PatternSet>,
}

impl IncrementalMiner {
    /// Starts from an initial database.
    pub fn new(db: TransactionDb) -> Self {
        IncrementalMiner { db, strategy: Strategy::Mcp, recycled: None }
    }

    /// Selects the compression strategy.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Current database.
    pub fn db(&self) -> &TransactionDb {
        &self.db
    }

    /// Appends tuples.
    pub fn insert(&mut self, tuples: impl IntoIterator<Item = Transaction>) {
        for t in tuples {
            self.db.push(t);
        }
    }

    /// Removes every tuple equal to `tuple` (multiset removal of all
    /// occurrences); returns how many were removed.
    pub fn remove_all(&mut self, tuple: &Transaction) -> usize {
        let before = self.db.len();
        let kept: Vec<Transaction> = self
            .db
            .iter()
            .filter(|t| *t != tuple.items())
            .map(|t| Transaction::from_sorted_unchecked(t.to_vec()))
            .collect();
        self.db = TransactionDb::from_transactions(kept);
        before - self.db.len()
    }

    /// Replaces the database wholesale (e.g. a fresh snapshot load).
    pub fn replace_db(&mut self, db: TransactionDb) {
        self.db = db;
    }

    /// Mines the *current* database at `min_support`, recycling the
    /// previous round's patterns when available, and stashes the result
    /// for the next round. Exact regardless of how much the database
    /// changed since the recycled patterns were mined.
    pub fn mine(&mut self, min_support: MinSupport) -> PatternSet {
        let result = match &self.recycled {
            Some(old) if !old.is_empty() => {
                let cdb = Compressor::new(self.strategy).compress(&self.db, old);
                RecycleHm.mine(&cdb, min_support)
            }
            _ => {
                // Nothing to recycle: mine the trivial compression (all
                // plain), which is plain H-Mine-style mining.
                let cdb = crate::cdb::CompressedDb::uncompressed(&self.db);
                RecycleHm.mine(&cdb, min_support)
            }
        };
        self.recycled = Some(result.clone());
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gogreen_miners::mine_apriori;

    #[test]
    fn growing_database_stays_exact() {
        let mut inc = IncrementalMiner::new(TransactionDb::paper_example());
        let r1 = inc.mine(MinSupport::Absolute(3));
        assert!(r1.same_patterns_as(&mine_apriori(inc.db(), MinSupport::Absolute(3))));

        // Add tuples that shift supports around.
        inc.insert([
            Transaction::from_ids([0, 2, 4]),
            Transaction::from_ids([2, 5, 6]),
            Transaction::from_ids([1, 3]),
        ]);
        let r2 = inc.mine(MinSupport::Absolute(3));
        assert!(r2.same_patterns_as(&mine_apriori(inc.db(), MinSupport::Absolute(3))));

        // And a relaxation on the grown database.
        let r3 = inc.mine(MinSupport::Absolute(2));
        assert!(r3.same_patterns_as(&mine_apriori(inc.db(), MinSupport::Absolute(2))));
    }

    #[test]
    fn shrinking_database_stays_exact() {
        // Existing incremental techniques "become awkward when the size
        // of the data set reduces" (paper §6); recycling does not care.
        let mut inc = IncrementalMiner::new(TransactionDb::paper_example());
        inc.mine(MinSupport::Absolute(2));
        let removed = inc.remove_all(&Transaction::from_ids([0u32, 4, 7])); // tuple 500
        assert_eq!(removed, 1);
        let r = inc.mine(MinSupport::Absolute(2));
        assert!(r.same_patterns_as(&mine_apriori(inc.db(), MinSupport::Absolute(2))));
    }

    #[test]
    fn drastic_replacement_stays_exact() {
        let mut inc = IncrementalMiner::new(TransactionDb::paper_example());
        inc.mine(MinSupport::Absolute(3));
        // Replace with a database sharing almost nothing.
        inc.replace_db(TransactionDb::from_rows(&[
            &[100, 101],
            &[100, 101, 102],
            &[100, 102],
            &[101, 102],
        ]));
        let r = inc.mine(MinSupport::Absolute(2));
        assert!(r.same_patterns_as(&mine_apriori(inc.db(), MinSupport::Absolute(2))));
    }

    #[test]
    fn first_round_without_recycled_patterns() {
        let mut inc = IncrementalMiner::new(TransactionDb::from_rows(&[&[1, 2], &[1, 2]]));
        let r = inc.mine(MinSupport::Absolute(2));
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn empty_database_round() {
        let mut inc = IncrementalMiner::new(TransactionDb::new());
        assert!(inc.mine(MinSupport::Absolute(1)).is_empty());
        inc.insert([Transaction::from_ids([1u32, 2])]);
        let r = inc.mine(MinSupport::Absolute(1));
        assert_eq!(r.len(), 3);
    }
}
