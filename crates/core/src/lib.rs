#![warn(missing_docs)]

//! Pattern recycling — the contribution of *"Go Green: Recycle and Reuse
//! Frequent Patterns"* (ICDE 2004).
//!
//! The pipeline has two phases:
//!
//! 1. **Compression** ([`compress`]): pick, for every tuple, the
//!    highest-utility pattern from a previous round's `FP` that the tuple
//!    contains, and factor the tuple into `(group pattern, outlying
//!    items)`. Utilities come from [`utility`]: the cost-minimizing MCP or
//!    the storage-minimizing MLP.
//! 2. **Mining the compressed database** ([`cdb`]): projected-database
//!    miners run directly on the grouped representation, saving work in
//!    support counting (group counts stand in for per-tuple scans) and in
//!    projection construction (group heads are touched once). Five miners
//!    are provided:
//!    * [`rpmine::RpMine`] — the paper's naive Algorithm *Recycling*
//!      (Fig. 3) with the Lemma 3.1 single-group shortcut;
//!    * [`recycle_hm::RecycleHm`] — the RP-Struct adaptation of H-Mine
//!      (Figs. 4–8);
//!    * [`recycle_fp::RecycleFp`] — the FP-tree adaptation (§4.2);
//!    * [`recycle_tp::RecycleTp`] — the Tree Projection adaptation (§4.2);
//!    * [`recycle_vt::RecycleVt`] — the vertical (Eclat) adaptation:
//!      group runs become word-wise bitmap fills, mining becomes tidset
//!      intersection.
//!
//! Each pair shares one generic traversal (`gogreen_miners::engine`)
//! instantiated on either the plain or the grouped substrate; the
//! [`engine`] registry pairs them up by name for every front end.
//!
//! On top of the pipeline sit the interactive pieces the paper motivates:
//! [`session::MiningSession`] (iterative constraint refinement with
//! automatic filter-vs-recycle dispatch), [`store::PatternStore`]
//! (multi-user pattern sharing), [`incremental`] (the §2 extension to
//! changed databases), and [`twostep`] (the paper's stated future work:
//! bootstrap a single low-support request through its own high-support
//! pre-pass).
//!
//! All recycling miners are *exact*: on any database, any recycled
//! pattern set, and any new threshold, they produce the identical pattern
//! set a from-scratch miner produces. The test suite enforces this
//! against the Apriori oracle.

pub mod batch;
pub mod cdb;
pub mod compress;
pub mod cover;
pub mod engine;
pub mod incremental;
pub mod memory;
pub mod recycle_fp;
pub mod recycle_hm;
pub mod recycle_tp;
pub mod recycle_vt;
pub mod rpmine;
pub mod session;
pub mod store;
pub mod twostep;
pub mod utility;

use gogreen_data::{CollectSink, MinSupport, PatternSet, PatternSink};
use gogreen_util::pool::Parallelism;

pub use batch::{BatchOutcome, BatchPlan, BatchQuery, BatchReport, QueryBatch};
pub use cdb::CompressedDb;
pub use compress::{CompressionStats, Compressor};
pub use cover::{CoverIndex, CoverScratch};
pub use utility::Strategy;

/// A frequent-pattern miner that operates on a [`CompressedDb`].
///
/// Implementations must be exact: the emitted set equals the complete
/// frequent-pattern set of the *original* database at `min_support`.
pub trait RecyclingMiner {
    /// Short algorithm name for reports ("HM-MCP" is this name plus the
    /// compression strategy).
    fn name(&self) -> &'static str;

    /// Mines the complete frequent-pattern set, emitting into `sink`.
    fn mine_into(&self, cdb: &CompressedDb, min_support: MinSupport, sink: &mut dyn PatternSink);

    /// Like [`RecyclingMiner::mine_into`], fanning the first-level
    /// projections out over `par` scoped threads. Group views are
    /// read-only once constructed, so workers share the CDB (and any
    /// derived structure — RP-Struct, group trees) by reference; the
    /// emitted stream is byte-identical to the serial run at any thread
    /// count.
    fn mine_into_par(
        &self,
        cdb: &CompressedDb,
        min_support: MinSupport,
        par: Parallelism,
        sink: &mut dyn PatternSink,
    ) {
        let _ = par;
        self.mine_into(cdb, min_support, sink);
    }

    /// Convenience wrapper collecting into a [`PatternSet`].
    fn mine(&self, cdb: &CompressedDb, min_support: MinSupport) -> PatternSet {
        self.mine_par(cdb, min_support, Parallelism::serial())
    }

    /// Parallel convenience wrapper collecting into a [`PatternSet`].
    fn mine_par(
        &self,
        cdb: &CompressedDb,
        min_support: MinSupport,
        par: Parallelism,
    ) -> PatternSet {
        let mut sp = gogreen_obs::span("mine");
        let mut sink = CollectSink::new();
        self.mine_into_par(cdb, min_support, par, &mut sink);
        let set = sink.into_set();
        sp.field("engine", self.name()).field("patterns", set.len());
        set
    }
}
