//! The compression algorithm (paper Figure 1).
//!
//! 1. Compute the utility of every recycled pattern under the chosen
//!    [`Strategy`].
//! 2. Sort patterns by descending utility.
//! 3. Cover each tuple with the first (highest-utility) pattern it
//!    contains; tuples with no matching pattern stay plain.
//!
//! Step 3 runs on the [`CoverIndex`] kernel (see [`crate::cover`]): one
//! vertical sweep claims every tuple for its minimum-rank containing
//! pattern through bit-parallel AND-chains — provably the same choice as
//! the seed's per-tuple full-list scan at a fraction of the work. With a
//! non-serial [`Parallelism`], the database is chunked across scoped
//! worker threads (one sweep per chunk) and the partial per-pattern
//! member lists are merged in chunk order, so the output is *identical*
//! to the serial pass for any thread count.

use crate::cdb::{CompressedDb, Group};
use crate::cover::CoverIndex;
use crate::utility::{order_by_utility, Strategy};
use gogreen_data::{
    difference_into, CsrTuples, Item, Pattern, PatternSet, TransactionDb, TupleSlices,
};
use gogreen_obs::{histogram, metrics, span};
use gogreen_util::pool::{par_ranges, Parallelism};
use gogreen_util::{FxHashMap, Stopwatch};
use std::time::{Duration, Instant};

/// Outcome metrics of one compression run (paper Table 3 columns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressionStats {
    /// Wall time of the compression pass itself (the paper's "pipeline"
    /// time: I/O excluded — this library compresses in memory).
    pub duration: Duration,
    /// `S_c / S_o` (smaller = better compression).
    pub ratio: f64,
    /// Number of groups formed.
    pub num_groups: usize,
    /// Tuples covered by some pattern.
    pub covered_tuples: usize,
    /// Total tuples.
    pub num_tuples: usize,
}

/// Per-pattern accumulation: members' outlying items plus the count of
/// members that *are* the pattern.
type Members = (Vec<Vec<Item>>, u32);

/// Compresses databases with recycled patterns (paper Figure 1).
///
/// ```
/// use gogreen_core::{Compressor, Strategy};
/// use gogreen_data::{MinSupport, TransactionDb};
/// use gogreen_miners::mine_hmine;
///
/// let db = TransactionDb::paper_example();
/// let fp = mine_hmine(&db, MinSupport::Absolute(3));
/// let (cdb, stats) = Compressor::new(Strategy::Mcp).compress_with_stats(&db, &fp);
/// // The paper's Table 2: groups fgc and ae cover all five tuples.
/// assert_eq!(stats.num_groups, 2);
/// assert_eq!(stats.covered_tuples, 5);
/// assert!(stats.ratio < 1.0);
/// // Compression is lossless.
/// assert_eq!(cdb.reconstruct().len(), db.len());
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Compressor {
    strategy: Strategy,
    parallelism: Parallelism,
}

impl Compressor {
    /// A compressor using `strategy` to rank patterns (single-threaded).
    pub fn new(strategy: Strategy) -> Self {
        Compressor { strategy, parallelism: Parallelism::serial() }
    }

    /// Sets the worker-thread budget for the covering pass. The output
    /// is identical for every setting; only wall time changes.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Convenience for [`Self::with_parallelism`] from a raw thread
    /// count (`0` = all cores).
    pub fn with_threads(self, threads: usize) -> Self {
        self.with_parallelism(Parallelism::threads(threads))
    }

    /// The strategy in use.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The configured thread budget.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Algorithm name fragment ("MCP"/"MLP").
    pub fn name(&self) -> &'static str {
        self.strategy.suffix()
    }

    /// Compresses `db` using the recycled pattern set `fp`.
    pub fn compress(&self, db: &TransactionDb, fp: &PatternSet) -> CompressedDb {
        self.compress_with_stats(db, fp).0
    }

    /// Compresses and reports [`CompressionStats`].
    pub fn compress_with_stats(
        &self,
        db: &TransactionDb,
        fp: &PatternSet,
    ) -> (CompressedDb, CompressionStats) {
        let start = Instant::now();
        let mut sp = span("compress");
        let mut watch = Stopwatch::started();
        let index = {
            let _build_sp = span("cover.build");
            CoverIndex::new(db, fp, self.strategy)
        };
        let build = watch.lap();

        // Each worker runs the vertical sweep on one contiguous row range
        // of the database's CSR storage (`par_ranges` is a single inline
        // range when serial) — a chunk is a borrowed window, so splitting
        // costs two offsets. Merging the partial maps in chunk order
        // concatenates every pattern's member list exactly as one serial
        // pass over the whole database would have, so the CDB is
        // identical for any thread count.
        let mut cover_sp = span("cover");
        cover_sp.field("tuples", db.len()).field("patterns", fp.len());
        let tuples = db.tuples();
        let parts = par_ranges(self.parallelism, db.len(), |_, range| {
            let chunk = tuples.range(range.start, range.end);
            let assign = index.cover_all(chunk);
            let mut by_pattern: FxHashMap<u32, Members> = FxHashMap::default();
            let mut plain: CsrTuples<Item> = CsrTuples::new();
            let mut items = 0usize;
            let mut rest: Vec<Item> = Vec::new();
            for (t, covered_by) in chunk.iter().zip(assign) {
                items += t.len();
                match covered_by {
                    Some(pidx) => {
                        rest.clear();
                        difference_into(t, index.pattern(pidx).items(), &mut rest);
                        let slot = by_pattern.entry(pidx).or_insert_with(|| (Vec::new(), 0));
                        if rest.is_empty() {
                            slot.1 += 1;
                        } else {
                            slot.0.push(rest.clone());
                        }
                    }
                    None => plain.push_row(t),
                }
            }
            (by_pattern, plain, items)
        });
        drop(cover_sp);
        let mut by_pattern: FxHashMap<u32, Members> = FxHashMap::default();
        let mut plain: CsrTuples<Item> = CsrTuples::new();
        let mut original_items = 0usize;
        for (_, (part, part_plain, items)) in parts {
            original_items += items;
            for t in part_plain.iter() {
                plain.push_row(t);
            }
            for (pidx, (outliers, bare)) in part {
                let slot = by_pattern.entry(pidx).or_insert_with(|| (Vec::new(), 0));
                slot.0.extend(outliers);
                slot.1 += bare;
            }
        }

        let groups = emit_groups(
            by_pattern,
            |pidx| index.rank_of(pidx),
            |pidx| index.pattern(pidx).items().to_vec(),
        );
        let cdb = CompressedDb::new(groups, plain, original_items);
        let sweep = watch.lap();
        let s = cdb.stats();
        let stats = CompressionStats {
            duration: start.elapsed(),
            ratio: s.ratio(),
            num_groups: s.num_groups,
            covered_tuples: s.covered_tuples,
            num_tuples: s.num_tuples,
        };
        metrics::add("compress.runs", 1);
        metrics::add("compress.tuples_total", stats.num_tuples as u64);
        metrics::add("compress.tuples_covered", stats.covered_tuples as u64);
        metrics::add("compress.groups_emitted", stats.num_groups as u64);
        sp.field("strategy", self.name())
            .field("patterns", fp.len())
            .field("tuples", stats.num_tuples)
            .field("covered", stats.covered_tuples)
            .field("groups", stats.num_groups)
            .field("build_us", build.as_micros() as u64)
            .field("sweep_us", sweep.as_micros() as u64);
        (cdb, stats)
    }

    /// Begins a streaming compression: the caller supplies the *global*
    /// item supports and tuple count up front (a segmented store reads
    /// them from its per-segment sidecars) and then feeds tuple chunks —
    /// e.g. one loaded segment at a time — in database order. The
    /// finished [`CompressedDb`] is identical to
    /// [`Compressor::compress_with_stats`] over the concatenated
    /// database: cover assignment is tuple-local once the utility order
    /// and rarity ranks are fixed, group members and plain rows
    /// accumulate in tuple order, and groups are emitted in utility-rank
    /// order regardless of which chunk their members arrived in.
    pub fn stream<'a>(
        &self,
        patterns: &'a [Pattern],
        supports: Vec<u64>,
        db_len: usize,
    ) -> StreamCompressor<'a> {
        let index = {
            let _build_sp = span("cover.build");
            CoverIndex::from_supports(patterns, self.strategy, supports, db_len)
        };
        StreamCompressor {
            index,
            strategy: self.strategy,
            parallelism: self.parallelism,
            by_pattern: FxHashMap::default(),
            plain: CsrTuples::new(),
            original_items: 0,
            num_tuples: 0,
            started: Instant::now(),
        }
    }

    /// The seed's O(|DB|·|FP|·|X|) linear-scan cover, kept as the
    /// reference implementation: the differential tests assert the
    /// indexed kernel (serial and parallel) reproduces its output
    /// exactly, and the benches measure the speedup against it.
    pub fn compress_reference(&self, db: &TransactionDb, fp: &PatternSet) -> CompressedDb {
        let patterns: Vec<Pattern> = fp.iter().cloned().collect();
        let order = order_by_utility(&patterns, self.strategy, db.len());
        let mut rank = vec![0u32; patterns.len()];
        for (k, &pidx) in order.iter().enumerate() {
            rank[pidx as usize] = k as u32;
        }

        let max_item =
            db.iter().filter_map(|t| t.last()).map(|it| it.index()).max().map_or(0, |m| m + 1);
        let mut present = vec![false; max_item];

        let mut by_pattern: FxHashMap<u32, Members> = FxHashMap::default();
        let mut plain: CsrTuples<Item> = CsrTuples::new();
        let mut original_items = 0usize;
        for t in db.iter() {
            original_items += t.len();
            for it in t {
                present[it.index()] = true;
            }
            let mut chosen: Option<u32> = None;
            'patterns: for &pidx in &order {
                let p = &patterns[pidx as usize];
                if p.len() > t.len() {
                    continue;
                }
                for it in p.items() {
                    if it.index() >= max_item || !present[it.index()] {
                        continue 'patterns;
                    }
                }
                chosen = Some(pidx);
                break;
            }
            for it in t {
                present[it.index()] = false;
            }
            match chosen {
                Some(pidx) => {
                    let mut rest = Vec::new();
                    difference_into(t, patterns[pidx as usize].items(), &mut rest);
                    let slot = by_pattern.entry(pidx).or_insert_with(|| (Vec::new(), 0));
                    if rest.is_empty() {
                        slot.1 += 1;
                    } else {
                        slot.0.push(rest);
                    }
                }
                None => plain.push_row(t),
            }
        }

        let groups = emit_groups(
            by_pattern,
            |pidx| rank[pidx as usize],
            |pidx| patterns[pidx as usize].items().to_vec(),
        );
        CompressedDb::new(groups, plain, original_items)
    }
}

/// An in-progress streaming compression (see [`Compressor::stream`]).
///
/// Feed tuple chunks in database order, then [`StreamCompressor::finish`].
/// Only the accumulating group members, plain residue, and the cover
/// index are resident between feeds — never the database itself.
#[derive(Debug)]
pub struct StreamCompressor<'a> {
    index: CoverIndex<'a>,
    strategy: Strategy,
    parallelism: Parallelism,
    by_pattern: FxHashMap<u32, Members>,
    plain: CsrTuples<Item>,
    original_items: usize,
    num_tuples: usize,
    started: Instant,
}

impl StreamCompressor<'_> {
    /// Covers one chunk of tuples (fanned out over the configured
    /// thread budget; partial results merge in chunk order, so the
    /// accumulated state only depends on the tuples fed so far).
    pub fn feed(&mut self, tuples: TupleSlices<'_, Item>) {
        let mut cover_sp = span("cover");
        cover_sp.field("tuples", tuples.len());
        let index = &self.index;
        let parts = par_ranges(self.parallelism, tuples.len(), |_, range| {
            let chunk = tuples.range(range.start, range.end);
            let assign = index.cover_all(chunk);
            let mut by_pattern: FxHashMap<u32, Members> = FxHashMap::default();
            let mut plain: CsrTuples<Item> = CsrTuples::new();
            let mut items = 0usize;
            let mut rest: Vec<Item> = Vec::new();
            for (t, covered_by) in chunk.iter().zip(assign) {
                items += t.len();
                match covered_by {
                    Some(pidx) => {
                        rest.clear();
                        difference_into(t, index.pattern(pidx).items(), &mut rest);
                        let slot = by_pattern.entry(pidx).or_insert_with(|| (Vec::new(), 0));
                        if rest.is_empty() {
                            slot.1 += 1;
                        } else {
                            slot.0.push(rest.clone());
                        }
                    }
                    None => plain.push_row(t),
                }
            }
            (by_pattern, plain, items)
        });
        self.num_tuples += tuples.len();
        for (_, (part, part_plain, items)) in parts {
            self.original_items += items;
            for t in part_plain.iter() {
                self.plain.push_row(t);
            }
            for (pidx, (outliers, bare)) in part {
                let slot = self.by_pattern.entry(pidx).or_insert_with(|| (Vec::new(), 0));
                slot.0.extend(outliers);
                slot.1 += bare;
            }
        }
    }

    /// Seals the stream into a compressed database plus stats, emitting
    /// the same `compress.*` counters as a whole-database run.
    pub fn finish(self) -> (CompressedDb, CompressionStats) {
        let mut sp = span("compress");
        let groups = emit_groups(
            self.by_pattern,
            |pidx| self.index.rank_of(pidx),
            |pidx| self.index.pattern(pidx).items().to_vec(),
        );
        let cdb = CompressedDb::new(groups, self.plain, self.original_items);
        let s = cdb.stats();
        let stats = CompressionStats {
            duration: self.started.elapsed(),
            ratio: s.ratio(),
            num_groups: s.num_groups,
            covered_tuples: s.covered_tuples,
            num_tuples: s.num_tuples,
        };
        metrics::add("compress.runs", 1);
        metrics::add("compress.tuples_total", stats.num_tuples as u64);
        metrics::add("compress.tuples_covered", stats.covered_tuples as u64);
        metrics::add("compress.groups_emitted", stats.num_groups as u64);
        sp.field("strategy", self.strategy.suffix())
            .field("tuples", stats.num_tuples)
            .field("covered", stats.covered_tuples)
            .field("groups", stats.num_groups);
        (cdb, stats)
    }
}

/// Emits groups in utility order. Only the patterns actually used are
/// sorted — the seed walked the *entire* order doing a hash remove per
/// pattern, which costs O(|FP|) even when a handful of groups exist.
fn emit_groups(
    mut by_pattern: FxHashMap<u32, Members>,
    rank_of: impl Fn(u32) -> u32,
    items_of: impl Fn(u32) -> Vec<Item>,
) -> Vec<Group> {
    let mut used: Vec<u32> = by_pattern.keys().copied().collect();
    used.sort_unstable_by_key(|&pidx| rank_of(pidx));
    used.into_iter()
        .map(|pidx| {
            let (outliers, bare) = by_pattern.remove(&pidx).expect("used key vanished");
            histogram::observe("compress.group_size", outliers.len() as u64 + bare as u64);
            Group::new(items_of(pidx), outliers, bare)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gogreen_data::MinSupport;
    use gogreen_miners::mine_apriori;

    fn paper_fp() -> PatternSet {
        mine_apriori(&TransactionDb::paper_example(), MinSupport::Absolute(3))
    }

    #[test]
    fn mcp_reproduces_paper_table_2() {
        let db = TransactionDb::paper_example();
        let cdb = Compressor::new(Strategy::Mcp).compress(&db, &paper_fp());
        // Two groups: fgc covering 100/200/300 and ae covering 400/500.
        assert_eq!(cdb.groups().len(), 2);
        let g_fgc = &cdb.groups()[0];
        assert_eq!(g_fgc.pattern(), &[Item(2), Item(5), Item(6)]);
        assert_eq!(g_fgc.count(), 3);
        let g_ae = &cdb.groups()[1];
        assert_eq!(g_ae.pattern(), &[Item(0), Item(4)]);
        assert_eq!(g_ae.count(), 2);
        assert!(cdb.plain().is_empty());
        // Outliers of tuple 100 are a,d,e; of 200 b,d; of 300 e.
        let o: Vec<&[Item]> = g_fgc.outliers().iter().collect();
        assert!(o.contains(&&[Item(0), Item(3), Item(4)][..]));
        assert!(o.contains(&&[Item(1), Item(3)][..]));
        assert!(o.contains(&&[Item(4)][..]));
    }

    #[test]
    fn compression_is_lossless_both_strategies() {
        let db = TransactionDb::paper_example();
        for strategy in [Strategy::Mcp, Strategy::Mlp] {
            let cdb = Compressor::new(strategy).compress(&db, &paper_fp());
            let rebuilt = cdb.reconstruct();
            let mut a: Vec<Vec<Item>> = rebuilt.iter().map(|t| t.to_vec()).collect();
            let mut b: Vec<Vec<Item>> = db.iter().map(|t| t.to_vec()).collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "{strategy:?}");
        }
    }

    #[test]
    fn empty_pattern_set_leaves_everything_plain() {
        let db = TransactionDb::paper_example();
        let cdb = Compressor::default().compress(&db, &PatternSet::new());
        assert!(cdb.groups().is_empty());
        assert_eq!(cdb.plain().len(), 5);
        assert_eq!(cdb.stats().ratio(), 1.0);
    }

    #[test]
    fn unmatched_tuples_stay_plain() {
        let db = TransactionDb::from_rows(&[&[1, 2], &[3, 4], &[1, 2, 9]]);
        let mut fp = PatternSet::new();
        fp.insert(Pattern::from_ids([1, 2], 2));
        let cdb = Compressor::default().compress(&db, &fp);
        assert_eq!(cdb.groups().len(), 1);
        assert_eq!(cdb.groups()[0].count(), 2);
        assert_eq!(cdb.groups()[0].bare(), 1); // tuple [1,2] exactly
        assert_eq!(cdb.plain().len(), 1); // [3,4]
    }

    #[test]
    fn stats_track_coverage() {
        let db = TransactionDb::paper_example();
        let (_, stats) = Compressor::new(Strategy::Mcp).compress_with_stats(&db, &paper_fp());
        assert_eq!(stats.num_tuples, 5);
        assert_eq!(stats.covered_tuples, 5);
        assert_eq!(stats.num_groups, 2);
        assert!(stats.ratio < 1.0);
    }

    #[test]
    fn mlp_prefers_longest_pattern() {
        // Tuple {1,2,3}: MLP must pick {1,2,3} (support 1) over {1,2}
        // (support 3); MCP picks {1,2}: U = 3·3 = 9 > 7·1.
        let db = TransactionDb::from_rows(&[&[1, 2, 3], &[1, 2], &[1, 2]]);
        let mut fp = PatternSet::new();
        fp.insert(Pattern::from_ids([1, 2], 3));
        fp.insert(Pattern::from_ids([1, 2, 3], 1));
        let mlp = Compressor::new(Strategy::Mlp).compress(&db, &fp);
        assert!(mlp.groups().iter().any(|g| g.pattern().len() == 3));
        let mcp = Compressor::new(Strategy::Mcp).compress(&db, &fp);
        assert_eq!(mcp.groups().len(), 1);
        assert_eq!(mcp.groups()[0].pattern().len(), 2);
        // (The paper's "MLP compresses better" claim is empirical, not
        // universal: each group stores its pattern once, so splitting
        // tuples across more groups can cost more than it saves. The
        // Table 3 experiment checks the claim on realistic data.)
    }

    #[test]
    fn patterns_with_items_outside_db_never_match() {
        let db = TransactionDb::from_rows(&[&[1, 2]]);
        let mut fp = PatternSet::new();
        fp.insert(Pattern::from_ids([1, 2, 500], 1));
        let cdb = Compressor::default().compress(&db, &fp);
        assert!(cdb.groups().is_empty());
        assert_eq!(cdb.plain().len(), 1);
    }

    #[test]
    fn parallel_output_is_identical_to_serial() {
        let db = TransactionDb::paper_example();
        for strategy in [Strategy::Mcp, Strategy::Mlp] {
            let serial = Compressor::new(strategy).compress(&db, &paper_fp());
            for threads in [2, 3, 8] {
                let par =
                    Compressor::new(strategy).with_threads(threads).compress(&db, &paper_fp());
                assert_eq!(serial, par, "{strategy:?} threads={threads}");
            }
        }
    }

    #[test]
    fn streaming_chunks_match_whole_database_run() {
        let db = TransactionDb::paper_example();
        let fp = paper_fp();
        let patterns: Vec<Pattern> = fp.iter().cloned().collect();
        for strategy in [Strategy::Mcp, Strategy::Mlp] {
            let c = Compressor::new(strategy);
            let whole = c.compress(&db, &fp);
            // Feed the same tuples split at every possible boundary.
            for split in 0..=db.len() {
                let mut sc = c.stream(&patterns, db.item_supports(), db.len());
                sc.feed(db.tuples().range(0, split));
                sc.feed(db.tuples().range(split, db.len()));
                let (streamed, stats) = sc.finish();
                assert_eq!(streamed, whole, "{strategy:?} split={split}");
                assert_eq!(stats.num_tuples, db.len());
            }
        }
    }

    #[test]
    fn reference_scan_agrees_with_indexed_kernel() {
        let db = TransactionDb::paper_example();
        for strategy in [Strategy::Mcp, Strategy::Mlp] {
            let c = Compressor::new(strategy);
            assert_eq!(c.compress(&db, &paper_fp()), c.compress_reference(&db, &paper_fp()));
        }
    }
}
