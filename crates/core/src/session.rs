//! Interactive mining sessions — the workflow the paper's introduction
//! motivates.
//!
//! A user iterates: run, inspect, refine constraints, run again. The
//! session publishes every round's full frequent set into an internal
//! [`PatternStore`] and dispatches each new round on the cheapest sound
//! path (paper §2):
//!
//! * **same constraints** → cached result, no work;
//! * **a published threshold ≤ ξ exists** → filter the *closest* such
//!   superset ([`PatternStore::best_at_most`] — support-only full sets
//!   are exact supersets of any round at a higher threshold, whatever
//!   the other constraints do);
//! * **otherwise** → no stored set can contain the answer; *recycle* the
//!   richest one ([`PatternStore::best_for`], the paper's §5 rule):
//!   compress the database with it and mine the compressed database with
//!   the configured recycling miner.
//!
//! Fleets of simultaneous queries go through [`MiningSession::run_batch`]
//! (one shared coalesced pass, see [`crate::batch`]); the shared ξ_min
//! result lands in the same store, so follow-up rounds filter instead of
//! mining.
//!
//! Non-support constraints are applied as post-filters on the full
//! frequent set (with anti-monotone parts available for pushdown through
//! [`gogreen_constraints::Pushdown`] in callers that mine manually).

use crate::batch::{BatchOutcome, BatchQuery, QueryBatch};
use crate::compress::{CompressionStats, Compressor};
use crate::engine::engine_named;
use crate::store::PatternStore;
use crate::utility::Strategy;
use crate::RecyclingMiner;
use gogreen_constraints::{ConstraintSet, ItemAttributes, Relation};
use gogreen_data::{PatternSet, TransactionDb};
use gogreen_miners::Miner;
use gogreen_obs::{metrics, snapshot, span};
use gogreen_util::pool::Parallelism;
use std::time::Duration;

/// The session's internal [`PatternStore`] key: one session, one
/// database, one dataset entry.
const SESSION_DATASET: &str = "session";

/// Which algorithm family the session uses for fresh and recycled mining.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// H-Mine / Recycle-HM (the paper's primary pair).
    #[default]
    HMine,
    /// FP-growth / FP-recycle.
    FpTree,
    /// Tree Projection / TP-recycle.
    TreeProjection,
    /// Vertical bitmap Eclat / VT-recycle.
    Eclat,
    /// Naive projected-database miner / RP-Mine.
    Naive,
}

impl Engine {
    /// The registry key of this family (see [`crate::engine`]).
    pub fn key(self) -> &'static str {
        match self {
            Engine::HMine => "hmine",
            Engine::FpTree => "fp",
            Engine::TreeProjection => "tp",
            Engine::Eclat => "vt",
            Engine::Naive => "naive",
        }
    }

    /// Resolves a registry key or alias (`"hmine"`, `"hm"`, `"fp"`, …)
    /// to a session engine. `None` for unknown names and for families
    /// without a recycling pair (Apriori).
    pub fn from_key(name: &str) -> Option<Engine> {
        match engine_named(name)?.key() {
            "hmine" => Some(Engine::HMine),
            "fp" => Some(Engine::FpTree),
            "tp" => Some(Engine::TreeProjection),
            "vt" => Some(Engine::Eclat),
            "naive" => Some(Engine::Naive),
            _ => None,
        }
    }

    fn fresh(self) -> Box<dyn Miner> {
        engine_named(self.key()).expect("session engines are registered").raw()
    }

    fn recycling(self, par: Parallelism) -> Box<dyn RecyclingMiner> {
        engine_named(self.key())
            .expect("session engines are registered")
            .recycling(par)
            .expect("session engines have recycling pairs")
    }
}

/// How a round was answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunMode {
    /// No previous round: mined from scratch.
    Fresh,
    /// Identical constraints: cached result returned.
    Cached,
    /// A published threshold ≤ ξ exists: its closest superset filtered.
    Filtered,
    /// No stored superset: the richest published set recycled through
    /// compression.
    Recycled,
}

impl RunMode {
    /// Lowercase label used in trace spans and metric names.
    pub fn label(self) -> &'static str {
        match self {
            RunMode::Fresh => "fresh",
            RunMode::Cached => "cached",
            RunMode::Filtered => "filtered",
            RunMode::Recycled => "recycled",
        }
    }

    fn counter(self) -> &'static str {
        match self {
            RunMode::Fresh => "session.rounds_fresh",
            RunMode::Cached => "session.rounds_cached",
            RunMode::Filtered => "session.rounds_filtered",
            RunMode::Recycled => "session.rounds_recycled",
        }
    }
}

/// Per-round snapshot emission: captures the merged metric state when a
/// round opens and delivers the delta (exactly the round's own activity)
/// to the installed [`snapshot`] exporter when it closes, on every exit
/// path including the cached early return. When no exporter is installed
/// — the common library case — opening and closing cost two lock-free
/// checks and no capture.
struct RoundScope {
    before: Option<(u64, snapshot::MetricsSnapshot)>,
}

impl RoundScope {
    fn open(round: u64) -> RoundScope {
        let before =
            snapshot::exporter_installed().then(|| (round, snapshot::MetricsSnapshot::capture()));
        RoundScope { before }
    }
}

impl Drop for RoundScope {
    fn drop(&mut self) {
        if let Some((round, before)) = self.before.take() {
            let delta = snapshot::MetricsSnapshot::capture().delta_since(&before);
            snapshot::emit(&format!("session.round/{round}"), &delta);
        }
    }
}

/// Metrics of one session round.
#[derive(Debug, Clone)]
pub struct RoundReport {
    /// Dispatch decision.
    pub mode: RunMode,
    /// Wall time of the mining (or filtering) step.
    pub mining_time: Duration,
    /// Compression metrics when `mode == Recycled`.
    pub compression: Option<CompressionStats>,
    /// Patterns returned after all constraints.
    pub num_patterns: usize,
    /// Size of the source set the round was answered from: the filtered
    /// superset (`Filtered`, the *closest* published threshold ≤ ξ) or
    /// the recycled fodder (`Recycled`, the *richest* published set —
    /// paper §5: lower `ξ_old` recycles better).
    pub fodder_patterns: Option<usize>,
}

/// An iterative constrained-mining session over one database.
///
/// ```
/// use gogreen_core::session::{MiningSession, RunMode};
/// use gogreen_constraints::ConstraintSet;
/// use gogreen_data::{MinSupport, TransactionDb};
///
/// let mut session = MiningSession::new(TransactionDb::paper_example());
/// let cs = |n| ConstraintSet::support_only(MinSupport::Absolute(n));
///
/// let (_, r1) = session.run_with_report(cs(3));
/// assert_eq!(r1.mode, RunMode::Fresh);
/// let (_, r2) = session.run_with_report(cs(2)); // relaxed → recycle
/// assert_eq!(r2.mode, RunMode::Recycled);
/// let (_, r3) = session.run_with_report(cs(4)); // tightened → filter
/// assert_eq!(r3.mode, RunMode::Filtered);
/// ```
pub struct MiningSession {
    db: TransactionDb,
    attrs: ItemAttributes,
    engine: Engine,
    strategy: Strategy,
    parallelism: Parallelism,
    /// Previous round: constraints, the *full* frequent set at that
    /// round's support, and the constraint-filtered answer.
    last: Option<(ConstraintSet, PatternSet, PatternSet)>,
    /// Every round's full frequent set, keyed by absolute threshold:
    /// [`PatternStore::best_at_most`] serves filter rounds, and
    /// [`PatternStore::best_for`] the recycling fodder.
    store: PatternStore,
    /// Rounds run by *this* session — labels the per-round metric
    /// snapshots (the global `session.rounds` counter spans sessions).
    rounds_run: u64,
}

impl MiningSession {
    /// Starts a session with the default engine (H-Mine) and strategy
    /// (MCP).
    pub fn new(db: TransactionDb) -> Self {
        MiningSession {
            db,
            attrs: ItemAttributes::new(),
            engine: Engine::default(),
            strategy: Strategy::default(),
            parallelism: Parallelism::serial(),
            last: None,
            store: PatternStore::new(),
            rounds_run: 0,
        }
    }

    /// Selects the algorithm family.
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Selects the compression strategy for recycled rounds.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the worker-thread budget for every round: fresh and recycled
    /// mining fan their first-level projections out over this many
    /// threads, and recycled rounds also parallelize compression and
    /// compressed-database setup. Results are identical for every
    /// setting.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Convenience for [`Self::with_parallelism`] from a raw thread
    /// count (`0` = all cores).
    pub fn with_threads(self, threads: usize) -> Self {
        self.with_parallelism(Parallelism::threads(threads))
    }

    /// Attaches item attributes for aggregate constraints.
    pub fn with_attributes(mut self, attrs: ItemAttributes) -> Self {
        self.attrs = attrs;
        self
    }

    /// The underlying database.
    pub fn db(&self) -> &TransactionDb {
        &self.db
    }

    /// Runs one round under `constraints`, returning the result set.
    pub fn run(&mut self, constraints: ConstraintSet) -> PatternSet {
        self.run_with_report(constraints).0
    }

    /// Runs one round, also reporting how it was answered.
    pub fn run_with_report(&mut self, constraints: ConstraintSet) -> (PatternSet, RoundReport) {
        let db_len = self.db.len();
        let xi = constraints.min_support().to_absolute(db_len);
        self.rounds_run += 1;
        let _snap_scope = RoundScope::open(self.rounds_run);
        let mut sp = span("session.round");
        let started = std::time::Instant::now();
        if let Some((prev_cs, _, prev_answer)) = &self.last {
            if constraints.relation_to(prev_cs, db_len) == Relation::Equal {
                metrics::add("session.rounds", 1);
                metrics::add(RunMode::Cached.counter(), 1);
                sp.field("mode", RunMode::Cached.label())
                    .field("xi", xi)
                    .field("patterns", prev_answer.len());
                let report = RoundReport {
                    mode: RunMode::Cached,
                    mining_time: started.elapsed(),
                    compression: None,
                    num_patterns: prev_answer.len(),
                    fodder_patterns: None,
                };
                return (prev_answer.clone(), report);
            }
        }
        let (mode, full, compression, fodder_patterns) = if let Some((_, superset)) =
            self.store.best_at_most(SESSION_DATASET, xi)
        {
            // The closest published threshold ≤ ξ: its (support-only,
            // complete) set contains the whole answer, so the round
            // is a support filter regardless of the other
            // constraints' relation.
            let full = superset.filter(|p| p.support() >= xi);
            (RunMode::Filtered, full, None, Some(superset.len()))
        } else if let Some((_, fodder)) = self.store.best_for(SESSION_DATASET) {
            // ξ undercuts everything published: recycle the richest
            // set (paper §5 — lower ξ_old recycles better).
            let (cdb, stats) = Compressor::new(self.strategy)
                .with_parallelism(self.parallelism)
                .compress_with_stats(&self.db, &fodder);
            let full = self.engine.recycling(self.parallelism).mine_par(
                &cdb,
                constraints.min_support(),
                self.parallelism,
            );
            (RunMode::Recycled, full, Some(stats), Some(fodder.len()))
        } else {
            let full =
                self.engine.fresh().mine_par(&self.db, constraints.min_support(), self.parallelism);
            (RunMode::Fresh, full, None, None)
        };
        let answer = if constraints.others().is_empty() {
            full.clone()
        } else {
            full.filter(|p| constraints.satisfied_by(p, db_len, &self.attrs))
        };
        let report = RoundReport {
            mode,
            mining_time: started.elapsed(),
            compression,
            num_patterns: answer.len(),
            fodder_patterns,
        };
        metrics::add("session.rounds", 1);
        metrics::add(mode.counter(), 1);
        sp.field("mode", mode.label())
            .field("xi", xi)
            .field("full_patterns", full.len())
            .field("patterns", answer.len());
        if let Some(n) = fodder_patterns {
            sp.field("fodder_patterns", n);
        }
        // Publish the full set so later rounds can filter from (or
        // recycle) it — Filtered rounds included: their result is the
        // complete set at ξ, a closer superset for future lookups.
        self.store.publish(SESSION_DATASET, xi, full.clone());
        self.last = Some((constraints, full, answer.clone()));
        (answer, report)
    }

    /// Runs a fleet of queries as one batched round: a single coalesced
    /// pass at the fleet's ξ_min answers every admitted query (see
    /// [`crate::batch`]), and the shared result is published into the
    /// session's store, so follow-up [`Self::run_with_report`] rounds at
    /// ξ ≥ ξ_min dispatch as `Filtered`.
    pub fn run_batch(&mut self, queries: Vec<BatchQuery>) -> Result<BatchOutcome, String> {
        let mut batch = QueryBatch::new()
            .with_attributes(self.attrs.clone())
            .with_parallelism(self.parallelism);
        for q in queries {
            batch.push(q);
        }
        batch.run_with_store(&self.db, self.engine.key(), &self.store, SESSION_DATASET)
    }

    /// Forgets all previous rounds (the next run mines fresh).
    pub fn reset(&mut self) {
        self.last = None;
        self.store = PatternStore::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gogreen_constraints::Constraint;
    use gogreen_data::{Item, MinSupport};
    use gogreen_miners::mine_apriori;

    fn cs(minsup: u64) -> ConstraintSet {
        ConstraintSet::support_only(MinSupport::Absolute(minsup))
    }

    #[test]
    fn fresh_then_relax_then_tighten() {
        let db = TransactionDb::paper_example();
        let mut session = MiningSession::new(db.clone());
        let (r1, rep1) = session.run_with_report(cs(3));
        assert_eq!(rep1.mode, RunMode::Fresh);
        assert!(r1.same_patterns_as(&mine_apriori(&db, MinSupport::Absolute(3))));

        // Relax 3 → 2: recycled, exact.
        let (r2, rep2) = session.run_with_report(cs(2));
        assert_eq!(rep2.mode, RunMode::Recycled);
        assert!(rep2.compression.is_some());
        assert!(r2.same_patterns_as(&mine_apriori(&db, MinSupport::Absolute(2))));

        // Tighten 2 → 4: filtered, exact.
        let (r3, rep3) = session.run_with_report(cs(4));
        assert_eq!(rep3.mode, RunMode::Filtered);
        assert!(r3.same_patterns_as(&mine_apriori(&db, MinSupport::Absolute(4))));
    }

    #[test]
    fn repeated_constraints_hit_cache() {
        let mut session = MiningSession::new(TransactionDb::paper_example());
        let (a, _) = session.run_with_report(cs(3));
        let (b, rep) = session.run_with_report(cs(3));
        assert_eq!(rep.mode, RunMode::Cached);
        assert!(a.same_patterns_as(&b));
    }

    #[test]
    fn all_engines_agree_across_a_session() {
        let db = TransactionDb::paper_example();
        let oracle2 = mine_apriori(&db, MinSupport::Absolute(2));
        for engine in
            [Engine::HMine, Engine::FpTree, Engine::TreeProjection, Engine::Eclat, Engine::Naive]
        {
            let mut s = MiningSession::new(db.clone()).with_engine(engine);
            s.run(cs(4));
            let relaxed = s.run(cs(2));
            assert!(relaxed.same_patterns_as(&oracle2), "{engine:?}");
        }
    }

    #[test]
    fn non_support_constraints_filter_results() {
        let db = TransactionDb::paper_example();
        let mut s = MiningSession::new(db);
        let constrained = s.run(
            ConstraintSet::support_only(MinSupport::Absolute(3)).with(Constraint::MaxLength(1)),
        );
        assert!(constrained.iter().all(|p| p.len() == 1));
        assert_eq!(constrained.len(), 5); // a, c, e, f, g

        // Relaxing both support and length recycles and re-filters.
        let relaxed = s.run(
            ConstraintSet::support_only(MinSupport::Absolute(2)).with(Constraint::MaxLength(2)),
        );
        assert!(relaxed.iter().all(|p| p.len() <= 2));
        assert!(relaxed.contains(&[Item(3), Item(5)])); // df:2
    }

    #[test]
    fn reset_forces_fresh() {
        let mut s = MiningSession::new(TransactionDb::paper_example());
        s.run(cs(3));
        s.reset();
        let (_, rep) = s.run_with_report(cs(3));
        assert_eq!(rep.mode, RunMode::Fresh);
    }

    #[test]
    fn relaxation_filters_from_a_stored_superset() {
        // 2 → 4 → 3: the third round relaxes relative to ξ=4, but the
        // round-1 set mined at ξ=2 is a stored exact superset — the
        // round is a filter, no mining at all.
        let db = TransactionDb::paper_example();
        let mut s = MiningSession::new(db.clone());
        let (r1, _) = s.run_with_report(cs(2));
        s.run(cs(4));
        let (r3, rep3) = s.run_with_report(cs(3));
        assert_eq!(rep3.mode, RunMode::Filtered);
        assert_eq!(rep3.fodder_patterns, Some(r1.len()));
        assert!(r3.same_patterns_as(&mine_apriori(&db, MinSupport::Absolute(3))));
    }

    #[test]
    fn filtering_uses_the_closest_superset_not_the_richest() {
        // 2 → 3 → 4: both earlier sets contain the ξ=4 answer; the
        // session filters the *smaller* ξ=3 set.
        let db = TransactionDb::paper_example();
        let mut s = MiningSession::new(db.clone());
        s.run(cs(2));
        let (r2, _) = s.run_with_report(cs(3));
        let (r4, rep4) = s.run_with_report(cs(4));
        assert_eq!(rep4.mode, RunMode::Filtered);
        assert_eq!(rep4.fodder_patterns, Some(r2.len()));
        assert!(r4.same_patterns_as(&mine_apriori(&db, MinSupport::Absolute(4))));
    }

    #[test]
    fn batched_round_seeds_the_store_for_filtering() {
        use crate::batch::BatchQuery;
        let db = TransactionDb::paper_example();
        let mut s = MiningSession::new(db.clone());
        let out = s
            .run_batch(vec![
                BatchQuery::new("a", cs(4)),
                BatchQuery::new("b", cs(2)),
                BatchQuery::new("c", cs(3)),
            ])
            .unwrap();
        assert_eq!(out.report.published_at, Some(2));
        for (i, xi) in [4u64, 2, 3].into_iter().enumerate() {
            let oracle = mine_apriori(&db, MinSupport::Absolute(xi));
            assert!(out.results[i].same_patterns_as(&oracle), "query {i}");
        }
        // The shared ξ_min = 2 result is in the store: a follow-up round
        // at ξ=3 filters instead of mining.
        let (r, rep) = s.run_with_report(cs(3));
        assert_eq!(rep.mode, RunMode::Filtered);
        assert!(r.same_patterns_as(&mine_apriori(&db, MinSupport::Absolute(3))));
    }

    #[test]
    fn threaded_session_matches_serial() {
        let db = TransactionDb::paper_example();
        for engine in [Engine::HMine, Engine::FpTree, Engine::Eclat, Engine::Naive] {
            let mut serial = MiningSession::new(db.clone()).with_engine(engine);
            let mut threaded = MiningSession::new(db.clone()).with_engine(engine).with_threads(4);
            serial.run(cs(3));
            threaded.run(cs(3));
            let (a, ra) = serial.run_with_report(cs(2));
            let (b, rb) = threaded.run_with_report(cs(2));
            assert_eq!(ra.mode, RunMode::Recycled);
            assert_eq!(rb.mode, RunMode::Recycled);
            assert!(a.same_patterns_as(&b), "{engine:?}");
        }
    }

    #[test]
    fn mixed_change_recycles_and_stays_exact() {
        // Support relaxes while a max-length tightens: Mixed relation.
        let db = TransactionDb::paper_example();
        let mut s = MiningSession::new(db.clone());
        s.run(cs(3).with(Constraint::MaxLength(3)));
        let (out, rep) = s.run_with_report(cs(2).with(Constraint::MaxLength(2)));
        assert_eq!(rep.mode, RunMode::Recycled);
        let want = mine_apriori(&db, MinSupport::Absolute(2)).filter(|p| p.len() <= 2);
        assert!(out.same_patterns_as(&want));
    }
}
