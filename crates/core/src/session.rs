//! Interactive mining sessions — the workflow the paper's introduction
//! motivates.
//!
//! A user iterates: run, inspect, refine constraints, run again. The
//! session keeps the previous round's full frequent set and dispatches
//! each new round on the cheapest sound path (paper §2):
//!
//! * **same constraints** → cached result, no work;
//! * **tightened constraints** → filter the previous set (the new
//!   solution space is a subset);
//! * **relaxed / mixed / incomparable** → the previous set cannot contain
//!   the answer; *recycle* it: compress the database with it and mine the
//!   compressed database with the configured recycling miner.
//!
//! Non-support constraints are applied as post-filters on the full
//! frequent set (with anti-monotone parts available for pushdown through
//! [`gogreen_constraints::Pushdown`] in callers that mine manually).

use crate::compress::{CompressionStats, Compressor};
use crate::engine::engine_named;
use crate::utility::Strategy;
use crate::RecyclingMiner;
use gogreen_constraints::{ConstraintSet, ItemAttributes, Relation};
use gogreen_data::{PatternSet, TransactionDb};
use gogreen_miners::Miner;
use gogreen_obs::{metrics, snapshot, span};
use gogreen_util::pool::Parallelism;
use std::time::Duration;

/// Which algorithm family the session uses for fresh and recycled mining.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// H-Mine / Recycle-HM (the paper's primary pair).
    #[default]
    HMine,
    /// FP-growth / FP-recycle.
    FpTree,
    /// Tree Projection / TP-recycle.
    TreeProjection,
    /// Vertical bitmap Eclat / VT-recycle.
    Eclat,
    /// Naive projected-database miner / RP-Mine.
    Naive,
}

impl Engine {
    /// The registry key of this family (see [`crate::engine`]).
    pub fn key(self) -> &'static str {
        match self {
            Engine::HMine => "hmine",
            Engine::FpTree => "fp",
            Engine::TreeProjection => "tp",
            Engine::Eclat => "vt",
            Engine::Naive => "naive",
        }
    }

    /// Resolves a registry key or alias (`"hmine"`, `"hm"`, `"fp"`, …)
    /// to a session engine. `None` for unknown names and for families
    /// without a recycling pair (Apriori).
    pub fn from_key(name: &str) -> Option<Engine> {
        match engine_named(name)?.key() {
            "hmine" => Some(Engine::HMine),
            "fp" => Some(Engine::FpTree),
            "tp" => Some(Engine::TreeProjection),
            "vt" => Some(Engine::Eclat),
            "naive" => Some(Engine::Naive),
            _ => None,
        }
    }

    fn fresh(self) -> Box<dyn Miner> {
        engine_named(self.key()).expect("session engines are registered").raw()
    }

    fn recycling(self, par: Parallelism) -> Box<dyn RecyclingMiner> {
        engine_named(self.key())
            .expect("session engines are registered")
            .recycling(par)
            .expect("session engines have recycling pairs")
    }
}

/// How a round was answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunMode {
    /// No previous round: mined from scratch.
    Fresh,
    /// Identical constraints: cached result returned.
    Cached,
    /// Tightened constraints: previous set filtered.
    Filtered,
    /// Relaxed (or incomparable) constraints: previous patterns recycled
    /// through compression.
    Recycled,
}

impl RunMode {
    /// Lowercase label used in trace spans and metric names.
    pub fn label(self) -> &'static str {
        match self {
            RunMode::Fresh => "fresh",
            RunMode::Cached => "cached",
            RunMode::Filtered => "filtered",
            RunMode::Recycled => "recycled",
        }
    }

    fn counter(self) -> &'static str {
        match self {
            RunMode::Fresh => "session.rounds_fresh",
            RunMode::Cached => "session.rounds_cached",
            RunMode::Filtered => "session.rounds_filtered",
            RunMode::Recycled => "session.rounds_recycled",
        }
    }
}

/// Per-round snapshot emission: captures the merged metric state when a
/// round opens and delivers the delta (exactly the round's own activity)
/// to the installed [`snapshot`] exporter when it closes, on every exit
/// path including the cached early return. When no exporter is installed
/// — the common library case — opening and closing cost two lock-free
/// checks and no capture.
struct RoundScope {
    before: Option<(u64, snapshot::MetricsSnapshot)>,
}

impl RoundScope {
    fn open(round: u64) -> RoundScope {
        let before =
            snapshot::exporter_installed().then(|| (round, snapshot::MetricsSnapshot::capture()));
        RoundScope { before }
    }
}

impl Drop for RoundScope {
    fn drop(&mut self) {
        if let Some((round, before)) = self.before.take() {
            let delta = snapshot::MetricsSnapshot::capture().delta_since(&before);
            snapshot::emit(&format!("session.round/{round}"), &delta);
        }
    }
}

/// Metrics of one session round.
#[derive(Debug, Clone)]
pub struct RoundReport {
    /// Dispatch decision.
    pub mode: RunMode,
    /// Wall time of the mining (or filtering) step.
    pub mining_time: Duration,
    /// Compression metrics when `mode == Recycled`.
    pub compression: Option<CompressionStats>,
    /// Patterns returned after all constraints.
    pub num_patterns: usize,
    /// Size of the recycled pattern set when `mode == Recycled` — drawn
    /// from the *richest* round seen so far, not necessarily the last
    /// one (a user who tightened and then relaxed again recycles the
    /// early, lower-threshold set).
    pub fodder_patterns: Option<usize>,
}

/// An iterative constrained-mining session over one database.
///
/// ```
/// use gogreen_core::session::{MiningSession, RunMode};
/// use gogreen_constraints::ConstraintSet;
/// use gogreen_data::{MinSupport, TransactionDb};
///
/// let mut session = MiningSession::new(TransactionDb::paper_example());
/// let cs = |n| ConstraintSet::support_only(MinSupport::Absolute(n));
///
/// let (_, r1) = session.run_with_report(cs(3));
/// assert_eq!(r1.mode, RunMode::Fresh);
/// let (_, r2) = session.run_with_report(cs(2)); // relaxed → recycle
/// assert_eq!(r2.mode, RunMode::Recycled);
/// let (_, r3) = session.run_with_report(cs(4)); // tightened → filter
/// assert_eq!(r3.mode, RunMode::Filtered);
/// ```
pub struct MiningSession {
    db: TransactionDb,
    attrs: ItemAttributes,
    engine: Engine,
    strategy: Strategy,
    parallelism: Parallelism,
    /// Previous round: constraints, the *full* frequent set at that
    /// round's support, and the constraint-filtered answer.
    last: Option<(ConstraintSet, PatternSet, PatternSet)>,
    /// The richest full frequent set any round produced (lowest absolute
    /// threshold) — the best recycling fodder (paper §5: lower `ξ_old`
    /// recycles better).
    richest: Option<(u64, PatternSet)>,
    /// Rounds run by *this* session — labels the per-round metric
    /// snapshots (the global `session.rounds` counter spans sessions).
    rounds_run: u64,
}

impl MiningSession {
    /// Starts a session with the default engine (H-Mine) and strategy
    /// (MCP).
    pub fn new(db: TransactionDb) -> Self {
        MiningSession {
            db,
            attrs: ItemAttributes::new(),
            engine: Engine::default(),
            strategy: Strategy::default(),
            parallelism: Parallelism::serial(),
            last: None,
            richest: None,
            rounds_run: 0,
        }
    }

    /// Selects the algorithm family.
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Selects the compression strategy for recycled rounds.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the worker-thread budget for every round: fresh and recycled
    /// mining fan their first-level projections out over this many
    /// threads, and recycled rounds also parallelize compression and
    /// compressed-database setup. Results are identical for every
    /// setting.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Convenience for [`Self::with_parallelism`] from a raw thread
    /// count (`0` = all cores).
    pub fn with_threads(self, threads: usize) -> Self {
        self.with_parallelism(Parallelism::threads(threads))
    }

    /// Attaches item attributes for aggregate constraints.
    pub fn with_attributes(mut self, attrs: ItemAttributes) -> Self {
        self.attrs = attrs;
        self
    }

    /// The underlying database.
    pub fn db(&self) -> &TransactionDb {
        &self.db
    }

    /// Runs one round under `constraints`, returning the result set.
    pub fn run(&mut self, constraints: ConstraintSet) -> PatternSet {
        self.run_with_report(constraints).0
    }

    /// Runs one round, also reporting how it was answered.
    pub fn run_with_report(&mut self, constraints: ConstraintSet) -> (PatternSet, RoundReport) {
        let db_len = self.db.len();
        let xi = constraints.min_support().to_absolute(db_len);
        self.rounds_run += 1;
        let _snap_scope = RoundScope::open(self.rounds_run);
        let mut sp = span("session.round");
        let started = std::time::Instant::now();
        let (mode, full, compression, fodder_patterns) = match &self.last {
            Some((prev_cs, prev_full, prev_answer)) => {
                match constraints.relation_to(prev_cs, db_len) {
                    Relation::Equal => {
                        metrics::add("session.rounds", 1);
                        metrics::add(RunMode::Cached.counter(), 1);
                        sp.field("mode", RunMode::Cached.label())
                            .field("xi", xi)
                            .field("patterns", prev_answer.len());
                        let report = RoundReport {
                            mode: RunMode::Cached,
                            mining_time: started.elapsed(),
                            compression: None,
                            num_patterns: prev_answer.len(),
                            fodder_patterns: None,
                        };
                        return (prev_answer.clone(), report);
                    }
                    Relation::Tightened => {
                        let full = prev_full.filter(|p| p.support() >= xi);
                        (RunMode::Filtered, full, None, None)
                    }
                    _ => {
                        // Relaxed, mixed, or incomparable: recycle the
                        // richest set any round produced.
                        let fodder = self.richest.as_ref().map(|(_, set)| set).unwrap_or(prev_full);
                        let (cdb, stats) = Compressor::new(self.strategy)
                            .with_parallelism(self.parallelism)
                            .compress_with_stats(&self.db, fodder);
                        let n = fodder.len();
                        let full = self.engine.recycling(self.parallelism).mine_par(
                            &cdb,
                            constraints.min_support(),
                            self.parallelism,
                        );
                        (RunMode::Recycled, full, Some(stats), Some(n))
                    }
                }
            }
            None => {
                let full = self.engine.fresh().mine_par(
                    &self.db,
                    constraints.min_support(),
                    self.parallelism,
                );
                (RunMode::Fresh, full, None, None)
            }
        };
        let answer = if constraints.others().is_empty() {
            full.clone()
        } else {
            full.filter(|p| constraints.satisfied_by(p, db_len, &self.attrs))
        };
        let report = RoundReport {
            mode,
            mining_time: started.elapsed(),
            compression,
            num_patterns: answer.len(),
            fodder_patterns,
        };
        metrics::add("session.rounds", 1);
        metrics::add(mode.counter(), 1);
        sp.field("mode", mode.label())
            .field("xi", xi)
            .field("full_patterns", full.len())
            .field("patterns", answer.len());
        if let Some(n) = fodder_patterns {
            sp.field("fodder_patterns", n);
        }
        // Track the richest full set for future recycling.
        let abs = xi;
        let richer = match &self.richest {
            None => true,
            Some((best_abs, best)) => abs < *best_abs || full.len() > best.len(),
        };
        if richer && mode != RunMode::Filtered {
            // Filtered sets are subsets of an already-tracked run.
            self.richest = Some((abs, full.clone()));
        }
        self.last = Some((constraints, full, answer.clone()));
        (answer, report)
    }

    /// Forgets all previous rounds (the next run mines fresh).
    pub fn reset(&mut self) {
        self.last = None;
        self.richest = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gogreen_constraints::Constraint;
    use gogreen_data::{Item, MinSupport};
    use gogreen_miners::mine_apriori;

    fn cs(minsup: u64) -> ConstraintSet {
        ConstraintSet::support_only(MinSupport::Absolute(minsup))
    }

    #[test]
    fn fresh_then_relax_then_tighten() {
        let db = TransactionDb::paper_example();
        let mut session = MiningSession::new(db.clone());
        let (r1, rep1) = session.run_with_report(cs(3));
        assert_eq!(rep1.mode, RunMode::Fresh);
        assert!(r1.same_patterns_as(&mine_apriori(&db, MinSupport::Absolute(3))));

        // Relax 3 → 2: recycled, exact.
        let (r2, rep2) = session.run_with_report(cs(2));
        assert_eq!(rep2.mode, RunMode::Recycled);
        assert!(rep2.compression.is_some());
        assert!(r2.same_patterns_as(&mine_apriori(&db, MinSupport::Absolute(2))));

        // Tighten 2 → 4: filtered, exact.
        let (r3, rep3) = session.run_with_report(cs(4));
        assert_eq!(rep3.mode, RunMode::Filtered);
        assert!(r3.same_patterns_as(&mine_apriori(&db, MinSupport::Absolute(4))));
    }

    #[test]
    fn repeated_constraints_hit_cache() {
        let mut session = MiningSession::new(TransactionDb::paper_example());
        let (a, _) = session.run_with_report(cs(3));
        let (b, rep) = session.run_with_report(cs(3));
        assert_eq!(rep.mode, RunMode::Cached);
        assert!(a.same_patterns_as(&b));
    }

    #[test]
    fn all_engines_agree_across_a_session() {
        let db = TransactionDb::paper_example();
        let oracle2 = mine_apriori(&db, MinSupport::Absolute(2));
        for engine in
            [Engine::HMine, Engine::FpTree, Engine::TreeProjection, Engine::Eclat, Engine::Naive]
        {
            let mut s = MiningSession::new(db.clone()).with_engine(engine);
            s.run(cs(4));
            let relaxed = s.run(cs(2));
            assert!(relaxed.same_patterns_as(&oracle2), "{engine:?}");
        }
    }

    #[test]
    fn non_support_constraints_filter_results() {
        let db = TransactionDb::paper_example();
        let mut s = MiningSession::new(db);
        let constrained = s.run(
            ConstraintSet::support_only(MinSupport::Absolute(3)).with(Constraint::MaxLength(1)),
        );
        assert!(constrained.iter().all(|p| p.len() == 1));
        assert_eq!(constrained.len(), 5); // a, c, e, f, g

        // Relaxing both support and length recycles and re-filters.
        let relaxed = s.run(
            ConstraintSet::support_only(MinSupport::Absolute(2)).with(Constraint::MaxLength(2)),
        );
        assert!(relaxed.iter().all(|p| p.len() <= 2));
        assert!(relaxed.contains(&[Item(3), Item(5)])); // df:2
    }

    #[test]
    fn reset_forces_fresh() {
        let mut s = MiningSession::new(TransactionDb::paper_example());
        s.run(cs(3));
        s.reset();
        let (_, rep) = s.run_with_report(cs(3));
        assert_eq!(rep.mode, RunMode::Fresh);
    }

    #[test]
    fn relaxation_recycles_the_richest_round() {
        // 2 → 4 → 3: the third round relaxes relative to ξ=4, but the
        // best fodder is the round-1 set mined at ξ=2.
        let db = TransactionDb::paper_example();
        let mut s = MiningSession::new(db.clone());
        let (r1, _) = s.run_with_report(cs(2));
        s.run(cs(4));
        let (r3, rep3) = s.run_with_report(cs(3));
        assert_eq!(rep3.mode, RunMode::Recycled);
        assert_eq!(rep3.fodder_patterns, Some(r1.len()));
        assert!(r3.same_patterns_as(&mine_apriori(&db, MinSupport::Absolute(3))));
    }

    #[test]
    fn threaded_session_matches_serial() {
        let db = TransactionDb::paper_example();
        for engine in [Engine::HMine, Engine::FpTree, Engine::Eclat, Engine::Naive] {
            let mut serial = MiningSession::new(db.clone()).with_engine(engine);
            let mut threaded = MiningSession::new(db.clone()).with_engine(engine).with_threads(4);
            serial.run(cs(3));
            threaded.run(cs(3));
            let (a, ra) = serial.run_with_report(cs(2));
            let (b, rb) = threaded.run_with_report(cs(2));
            assert_eq!(ra.mode, RunMode::Recycled);
            assert_eq!(rb.mode, RunMode::Recycled);
            assert!(a.same_patterns_as(&b), "{engine:?}");
        }
    }

    #[test]
    fn mixed_change_recycles_and_stays_exact() {
        // Support relaxes while a max-length tightens: Mixed relation.
        let db = TransactionDb::paper_example();
        let mut s = MiningSession::new(db.clone());
        s.run(cs(3).with(Constraint::MaxLength(3)));
        let (out, rep) = s.run_with_report(cs(2).with(Constraint::MaxLength(2)));
        assert_eq!(rep.mode, RunMode::Recycled);
        let want = mine_apriori(&db, MinSupport::Absolute(2)).filter(|p| p.len() <= 2);
        assert!(out.same_patterns_as(&want));
    }
}
