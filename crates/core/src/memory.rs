//! Memory estimation for compressed-database mining structures.
//!
//! The paper's Algorithm *Recycling* (Figure 3, line 1) estimates the
//! memory an in-memory structure would need *before* building it, and
//! projects to disk when the estimate exceeds the budget (§3.3, §5.3).
//! H-Mine-style structures make this estimate reliable — their size is a
//! linear function of item occurrences — which is exactly why the paper's
//! memory-limited experiments use the H-Mine pair only.
//!
//! The estimators here are formula-based (no structure is built); the
//! unit tests cross-check them against the real arena sizes.

use crate::cdb::CompressedRankDb;

/// Bytes per outlier entry in the RP-Struct arena (the rank itself).
const BYTES_PER_ENTRY: usize = 4;
/// Bytes per tail: first-entry index + owning group in the arena, plus
/// one working `(tail, position)` member reference during mining.
const BYTES_PER_TAIL: usize = 16;
/// Fixed bytes per group: count (8) plus the two `Vec` headers for
/// pattern and tails.
const BYTES_PER_GROUP: usize = 8 + 2 * std::mem::size_of::<Vec<u32>>();

/// Estimated heap bytes of the RP-Struct that
/// [`crate::recycle_hm::RecycleHm`] would build for `rdb`.
pub fn estimate_rp_struct_bytes(rdb: &CompressedRankDb) -> usize {
    // The CSR sections make these whole-database sums O(1): row counts
    // and total element counts are offset-array lookups, no per-group
    // iteration over tuple data at all.
    let outlier_rows = rdb.group_outlier_rows();
    let num_tails = outlier_rows + rdb.plain().len();
    let outlier_items = rdb.group_outlier_items() + rdb.plain().flat().len();
    // Each tail also stores one sentinel entry.
    let entries = outlier_items + num_tails;
    let group_bytes =
        rdb.num_groups() * BYTES_PER_GROUP + rdb.pattern_items() * 4 + outlier_rows * 4;
    entries * BYTES_PER_ENTRY + num_tails * BYTES_PER_TAIL + group_bytes
}

/// Estimated heap bytes of the plain H-Mine hyper-structure for a
/// database with `occurrences` frequent-item occurrences in `tuples`
/// tuples (item + hyperlink per entry, one sentinel per tuple).
pub fn estimate_hmine_bytes(occurrences: usize, tuples: usize) -> usize {
    (occurrences + tuples) * 8
}

/// Estimated heap bytes of the root tid-bitmap columns the vertical
/// miner ([`crate::recycle_vt::RecycleVt`]) builds for `rdb`: one
/// `⌈n/64⌉`-word column per rank, `n` the expanded tuple count. The
/// per-node tidset arenas below the root are bounded by the same figure
/// (a child level never materializes more columns than the root holds),
/// so doubling this estimate budgets the whole vertical run; the arenas
/// report their actual usage under `alloc.projection_bytes`.
pub fn estimate_vt_bitmap_bytes(rdb: &CompressedRankDb) -> usize {
    let mut n = rdb.plain().len();
    for g in 0..rdb.num_groups() {
        n += rdb.group_count(g) as usize;
    }
    rdb.num_ranks() * gogreen_data::bitmap::words_for(n) * 8
}

/// Estimated heap bytes of the root sparse tid-list columns for `rdb`:
/// 4 bytes per rank occurrence. A group contributes its full expanded
/// run per pattern item (`count × |pattern|`), outliers and plain tuples
/// one entry per rank. Unlike the bitmap figure this scales with data
/// density, not rank count × width, so on sparse databases it is the
/// smaller of the two.
pub fn estimate_vt_tidlist_bytes(rdb: &CompressedRankDb) -> usize {
    let mut occurrences = rdb.group_outlier_items() + rdb.plain().flat().len();
    for g in 0..rdb.num_groups() {
        occurrences += rdb.group_count(g) as usize * rdb.group_pattern(g).len();
    }
    occurrences * 4
}

/// Estimated heap bytes of the root vertical columns under the
/// density-adaptive default ([`VtRepr::Auto`]): the cheaper of the
/// bitmap and tid-list layouts, which is exactly the choice the engine
/// makes at the root.
///
/// [`VtRepr::Auto`]: gogreen_miners::engine::vt::VtRepr::Auto
pub fn estimate_vt_root_bytes(rdb: &CompressedRankDb) -> usize {
    estimate_vt_bitmap_bytes(rdb).min(estimate_vt_tidlist_bytes(rdb))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdb::CompressedDb;
    use crate::compress::Compressor;
    use crate::utility::Strategy;
    use gogreen_data::{MinSupport, TransactionDb};
    use gogreen_miners::engine::hm::RpStruct;
    use gogreen_miners::mine_apriori;

    fn rdb_for(db: &TransactionDb, xi_old: u64, minsup: u64) -> CompressedRankDb {
        let fp = mine_apriori(db, MinSupport::Absolute(xi_old));
        let cdb = Compressor::new(Strategy::Mcp).compress(db, &fp);
        let flist = cdb.flist(minsup);
        cdb.to_ranks(&flist)
    }

    #[test]
    fn estimate_tracks_real_arena_size() {
        let db = TransactionDb::paper_example();
        let rdb = rdb_for(&db, 3, 2);
        let est = estimate_rp_struct_bytes(&rdb);
        let real = RpStruct::build(&rdb).arena_bytes();
        // The estimate covers the arena plus the working member
        // references mining allocates, so it must be at least the arena
        // and within a small factor of it — tight enough for budget
        // decisions.
        assert!(est >= real, "est {est} below arena {real}");
        assert!(est <= real * 4, "est {est} far above arena {real}");
    }

    #[test]
    fn estimate_scales_with_data() {
        let small = rdb_for(&TransactionDb::paper_example(), 3, 2);
        let mut rows: Vec<Vec<u32>> = Vec::new();
        for k in 0..50 {
            rows.push(vec![k % 7, 7 + (k % 5), 12 + (k % 3)]);
        }
        let big_db = TransactionDb::from_transactions(
            rows.into_iter().map(gogreen_data::Transaction::from_ids).collect(),
        );
        let big = rdb_for(&big_db, 5, 2);
        assert!(
            estimate_rp_struct_bytes(&big) > estimate_rp_struct_bytes(&small),
            "more data must estimate larger"
        );
    }

    #[test]
    fn uncompressed_estimate_counts_plain_tuples() {
        let db = TransactionDb::paper_example();
        let cdb = CompressedDb::uncompressed(&db);
        let flist = cdb.flist(1);
        let rdb = cdb.to_ranks(&flist);
        let est = estimate_rp_struct_bytes(&rdb);
        assert!(est > 0);
        // 22 occurrences + 5 sentinels entries, 5 tails.
        assert_eq!(est, (22 + 5) * BYTES_PER_ENTRY + 5 * BYTES_PER_TAIL);
    }

    #[test]
    fn hmine_estimate_formula() {
        assert_eq!(estimate_hmine_bytes(22, 5), 27 * 8);
        assert_eq!(estimate_hmine_bytes(0, 0), 0);
    }

    #[test]
    fn vt_bitmap_estimate_formula() {
        // Paper example, uncompressed: 5 tuples -> one 64-bit word per
        // rank; at ξ = 1 all 9 items are ranks.
        let db = TransactionDb::paper_example();
        let cdb = CompressedDb::uncompressed(&db);
        let flist = cdb.flist(1);
        let rdb = cdb.to_ranks(&flist);
        assert_eq!(estimate_vt_bitmap_bytes(&rdb), 9 * 8);
        // Compressed view of the same database: group members re-expand,
        // so the tuple count — and the estimate at equal rank count —
        // is unchanged.
        let rdb2 = rdb_for(&db, 3, 1);
        assert_eq!(estimate_vt_bitmap_bytes(&rdb2), 9 * 8);
    }

    #[test]
    fn vt_tidlist_estimate_counts_occurrences() {
        // Paper example, uncompressed: 22 frequent-item occurrences at
        // ξ = 1, 4 bytes each.
        let db = TransactionDb::paper_example();
        let cdb = CompressedDb::uncompressed(&db);
        let flist = cdb.flist(1);
        let rdb = cdb.to_ranks(&flist);
        assert_eq!(estimate_vt_tidlist_bytes(&rdb), 22 * 4);
        // The compressed view re-expands group members, so the
        // occurrence total is preserved (groups store each pattern item
        // once but weight it by the member count).
        let rdb2 = rdb_for(&db, 3, 1);
        assert_eq!(estimate_vt_tidlist_bytes(&rdb2), 22 * 4);
        // Auto takes the cheaper layout; here the 9-rank bitmap (72 B)
        // wins over the 88 B of lists.
        assert_eq!(estimate_vt_root_bytes(&rdb), 9 * 8);
    }

    #[test]
    fn vt_root_estimate_prefers_lists_when_sparse() {
        // 200 single-item tuples over 64 items: bitmaps need
        // 64 ranks × 4 words × 8 = 2048 B, lists only 200 × 4 = 800 B.
        let mut rows: Vec<Vec<u32>> = Vec::new();
        for k in 0..200u32 {
            rows.push(vec![k % 64]);
        }
        let db = TransactionDb::from_transactions(
            rows.into_iter().map(gogreen_data::Transaction::from_ids).collect(),
        );
        let cdb = CompressedDb::uncompressed(&db);
        let flist = cdb.flist(1);
        let rdb = cdb.to_ranks(&flist);
        let bm = estimate_vt_bitmap_bytes(&rdb);
        let tl = estimate_vt_tidlist_bytes(&rdb);
        assert!(tl < bm, "lists {tl} must beat bitmaps {bm} here");
        assert_eq!(estimate_vt_root_bytes(&rdb), tl);
    }

    /// The vertical miner's tidset arenas report under the same
    /// `alloc.projection_bytes` / `alloc.arena_reuses` counters as the
    /// horizontal projection slabs.
    #[test]
    fn vt_arena_bytes_reach_the_alloc_counters() {
        use crate::RecyclingMiner;
        let db = TransactionDb::paper_example();
        let cdb = CompressedDb::uncompressed(&db);
        gogreen_obs::metrics::reset();
        gogreen_obs::metrics::set_enabled(true);
        let fp = crate::recycle_vt::RecycleVt::new().mine(&cdb, MinSupport::Absolute(2));
        gogreen_obs::metrics::set_enabled(false);
        let bytes = gogreen_obs::metrics::get("alloc.projection_bytes").unwrap_or(0);
        gogreen_obs::metrics::reset();
        assert!(!fp.is_empty());
        assert!(bytes > 0, "vertical arenas did not report projection bytes");
    }
}
