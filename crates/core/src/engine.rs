//! Engine registry: one entry per algorithm family, pairing the raw
//! miner with its recycling adaptation.
//!
//! The traversal of each family is written once, generically over
//! [`gogreen_data::GroupedSource`], in `gogreen_miners::engine`; the raw
//! miner instantiates it on the degenerate [`gogreen_data::PlainRanks`]
//! substrate and the recycling miner on the real
//! [`crate::cdb::CompressedRankDb`]. This registry is the single place
//! that knows the pairing, so every front end — the CLI `mine` and
//! `recycle` commands, the interactive session, the benchmark harness —
//! dispatches by name through [`engine_named`] instead of hard-coding
//! its own `match` over algorithm strings.

use crate::recycle_fp::RecycleFp;
use crate::recycle_hm::RecycleHm;
use crate::recycle_tp::RecycleTp;
use crate::recycle_vt::RecycleVt;
use crate::rpmine::RpMine;
use crate::{CompressedDb, RecyclingMiner};
use gogreen_data::{MinSupport, PatternSink, SearchPrune, TransactionDb};
use gogreen_miners::{Apriori, Eclat, FpGrowth, HMine, Miner, NaiveProjection, TreeProjection};
use gogreen_util::pool::Parallelism;

pub use gogreen_miners::engine::vt::VtRepr;

/// Per-invocation engine options a front end may carry alongside the
/// algorithm name. Families ignore what doesn't apply to them, so one
/// options value can be parsed once and handed to any engine.
#[derive(Debug, Default, Clone, Copy)]
pub struct EngineOpts {
    /// Vertical representation mode (`--vt-repr`); only the vt family
    /// reads it.
    pub vt_repr: VtRepr,
}

/// One algorithm family: a raw miner plus (usually) a recycling
/// counterpart sharing the same generic traversal.
pub trait MiningEngine: Sync {
    /// Canonical key, the primary `--algo` spelling (`"hmine"`, `"fp"`,
    /// `"tp"`, `"vt"`, `"naive"`, `"apriori"`).
    fn key(&self) -> &'static str;

    /// Additional accepted spellings (`"hm"` for `"hmine"`, …).
    fn aliases(&self) -> &'static [&'static str] {
        &[]
    }

    /// Human-readable family name for reports.
    fn family(&self) -> &'static str;

    /// The from-scratch miner over plain databases.
    fn raw(&self) -> Box<dyn Miner>;

    /// The recycling miner over compressed databases, or `None` when
    /// the family has no recycling adaptation (Apriori, which exists as
    /// the differential-testing oracle only).
    fn recycling(&self, par: Parallelism) -> Option<Box<dyn RecyclingMiner>>;

    /// Like [`MiningEngine::raw`], honouring `opts` where the family
    /// has a matching knob (currently only the vt family's `vt_repr`).
    fn raw_with(&self, opts: EngineOpts) -> Box<dyn Miner> {
        let _ = opts;
        self.raw()
    }

    /// Like [`MiningEngine::recycling`], honouring `opts`.
    fn recycling_with(
        &self,
        par: Parallelism,
        opts: EngineOpts,
    ) -> Option<Box<dyn RecyclingMiner>> {
        let _ = opts;
        self.recycling(par)
    }

    /// Serial constrained raw mining with the pushed predicates checked
    /// *inside* the search. Returns `false` when the family has no
    /// pushdown-capable driver — callers then mine unconstrained and
    /// post-filter.
    fn mine_raw_pruned(
        &self,
        db: &TransactionDb,
        min_support: MinSupport,
        prune: &dyn SearchPrune,
        sink: &mut dyn PatternSink,
    ) -> bool {
        let _ = (db, min_support, prune, sink);
        false
    }
}

struct HMineEngine;

impl MiningEngine for HMineEngine {
    fn key(&self) -> &'static str {
        "hmine"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["hm"]
    }
    fn family(&self) -> &'static str {
        "H-Mine"
    }
    fn raw(&self) -> Box<dyn Miner> {
        Box::new(HMine)
    }
    fn recycling(&self, _par: Parallelism) -> Option<Box<dyn RecyclingMiner>> {
        Some(Box::new(RecycleHm))
    }
    fn mine_raw_pruned(
        &self,
        db: &TransactionDb,
        min_support: MinSupport,
        prune: &dyn SearchPrune,
        sink: &mut dyn PatternSink,
    ) -> bool {
        HMine.mine_pruned(db, min_support, prune, sink);
        true
    }
}

struct FpEngine;

impl MiningEngine for FpEngine {
    fn key(&self) -> &'static str {
        "fp"
    }
    fn family(&self) -> &'static str {
        "FP-growth"
    }
    fn raw(&self) -> Box<dyn Miner> {
        Box::new(FpGrowth)
    }
    fn recycling(&self, par: Parallelism) -> Option<Box<dyn RecyclingMiner>> {
        Some(Box::new(RecycleFp::default().with_parallelism(par)))
    }
}

struct TpEngine;

impl MiningEngine for TpEngine {
    fn key(&self) -> &'static str {
        "tp"
    }
    fn family(&self) -> &'static str {
        "TreeProjection"
    }
    fn raw(&self) -> Box<dyn Miner> {
        Box::new(TreeProjection)
    }
    fn recycling(&self, _par: Parallelism) -> Option<Box<dyn RecyclingMiner>> {
        Some(Box::new(RecycleTp))
    }
}

struct VtEngine;

impl MiningEngine for VtEngine {
    fn key(&self) -> &'static str {
        "vt"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["eclat"]
    }
    fn family(&self) -> &'static str {
        "Eclat"
    }
    fn raw(&self) -> Box<dyn Miner> {
        Box::new(Eclat::new())
    }
    fn recycling(&self, _par: Parallelism) -> Option<Box<dyn RecyclingMiner>> {
        Some(Box::new(RecycleVt::new()))
    }
    fn raw_with(&self, opts: EngineOpts) -> Box<dyn Miner> {
        Box::new(Eclat::with_repr(opts.vt_repr))
    }
    fn recycling_with(
        &self,
        _par: Parallelism,
        opts: EngineOpts,
    ) -> Option<Box<dyn RecyclingMiner>> {
        Some(Box::new(RecycleVt::with_repr(opts.vt_repr)))
    }
}

struct NaiveEngine;

impl MiningEngine for NaiveEngine {
    fn key(&self) -> &'static str {
        "naive"
    }
    fn family(&self) -> &'static str {
        "Naive projection"
    }
    fn raw(&self) -> Box<dyn Miner> {
        Box::new(NaiveProjection)
    }
    fn recycling(&self, _par: Parallelism) -> Option<Box<dyn RecyclingMiner>> {
        Some(Box::new(RpMine::default()))
    }
    fn mine_raw_pruned(
        &self,
        db: &TransactionDb,
        min_support: MinSupport,
        prune: &dyn SearchPrune,
        sink: &mut dyn PatternSink,
    ) -> bool {
        NaiveProjection.mine_pruned(db, min_support, prune, sink);
        true
    }
}

struct AprioriEngine;

impl MiningEngine for AprioriEngine {
    fn key(&self) -> &'static str {
        "apriori"
    }
    fn family(&self) -> &'static str {
        "Apriori"
    }
    fn raw(&self) -> Box<dyn Miner> {
        Box::new(Apriori)
    }
    fn recycling(&self, _par: Parallelism) -> Option<Box<dyn RecyclingMiner>> {
        None
    }
}

/// Constrained recycling on the naive engine (the only family with a
/// pushdown-capable recycling driver). Returns `false` for every other
/// key.
pub fn mine_recycled_pruned(
    key: &str,
    cdb: &CompressedDb,
    min_support: MinSupport,
    prune: &dyn SearchPrune,
    sink: &mut dyn PatternSink,
) -> bool {
    if key == "naive" {
        RpMine::default().mine_pruned(cdb, min_support, prune, sink);
        return true;
    }
    false
}

/// All registered engines, in presentation order.
pub fn engines() -> &'static [&'static dyn MiningEngine] {
    const ENGINES: [&dyn MiningEngine; 6] =
        [&HMineEngine, &FpEngine, &TpEngine, &VtEngine, &NaiveEngine, &AprioriEngine];
    &ENGINES
}

/// Looks an engine up by canonical key or alias.
pub fn engine_named(name: &str) -> Option<&'static dyn MiningEngine> {
    engines().iter().copied().find(|e| e.key() == name || e.aliases().contains(&name))
}

/// The `--algo` help string: every canonical key, `|`-separated.
pub fn engine_keys() -> String {
    let keys: Vec<&str> = engines().iter().map(|e| e.key()).collect();
    keys.join("|")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gogreen_data::CollectSink;
    use gogreen_miners::mine_apriori;

    #[test]
    fn lookup_resolves_keys_and_aliases() {
        for key in ["hmine", "fp", "tp", "vt", "naive", "apriori"] {
            let e = engine_named(key).expect(key);
            assert_eq!(e.key(), key);
        }
        assert_eq!(engine_named("hm").unwrap().key(), "hmine");
        assert_eq!(engine_named("eclat").unwrap().key(), "vt");
        assert!(engine_named("bogus").is_none());
    }

    #[test]
    fn every_raw_engine_matches_the_oracle() {
        let db = TransactionDb::paper_example();
        let oracle = mine_apriori(&db, MinSupport::Absolute(2));
        for e in engines() {
            let got = e.raw().mine(&db, MinSupport::Absolute(2));
            assert!(got.same_patterns_as(&oracle), "{}", e.family());
        }
    }

    #[test]
    fn recycling_pairs_are_exact() {
        let db = TransactionDb::paper_example();
        let fp_old = mine_apriori(&db, MinSupport::Absolute(3));
        let cdb = crate::Compressor::new(crate::Strategy::Mcp).compress(&db, &fp_old);
        let oracle = mine_apriori(&db, MinSupport::Absolute(2));
        for e in engines() {
            let Some(rec) = e.recycling(Parallelism::serial()) else {
                assert_eq!(e.key(), "apriori");
                continue;
            };
            let got = rec.mine(&cdb, MinSupport::Absolute(2));
            assert!(got.same_patterns_as(&oracle), "{}", e.family());
        }
    }

    #[test]
    fn pruned_hooks_report_support_correctly() {
        let db = TransactionDb::paper_example();
        let prune = gogreen_data::NoPrune;
        for e in engines() {
            let mut sink = CollectSink::new();
            let handled = e.mine_raw_pruned(&db, MinSupport::Absolute(2), &prune, &mut sink);
            assert_eq!(handled, matches!(e.key(), "hmine" | "naive"), "{}", e.key());
            if handled {
                let oracle = mine_apriori(&db, MinSupport::Absolute(2));
                assert!(sink.into_set().same_patterns_as(&oracle), "{}", e.key());
            }
        }
    }
}
