//! Recycle-HM: the H-Mine adaptation to compressed databases
//! (paper §4.1, Figures 4–8).
//!
//! The RP-Struct search itself lives in `gogreen_miners::engine::hm`,
//! shared with the plain `HMine` baseline: this type instantiates it on
//! the real [`CompressedRankDb`] substrate, where group heads are counted
//! group-at-a-time (weight = member count), projection on a pattern item
//! moves whole group views in one step, and Lemma 3.1 collapses
//! single-group subtrees into subset enumeration. See the engine module
//! docs for the realization details (projected group views, the single
//! reusable hyperlink per entry, partial groups).

use crate::cdb::{CompressedDb, CompressedRankDb};
use crate::RecyclingMiner;
use gogreen_data::{MinSupport, PatternSink};
use gogreen_miners::engine::hm;
use gogreen_util::pool::Parallelism;

/// The Recycle-HM miner.
#[derive(Debug, Default, Clone)]
pub struct RecycleHm;

impl RecyclingMiner for RecycleHm {
    fn name(&self) -> &'static str {
        "Recycle-HM"
    }

    fn mine_into(&self, cdb: &CompressedDb, min_support: MinSupport, sink: &mut dyn PatternSink) {
        self.mine_into_par(cdb, min_support, Parallelism::serial(), sink);
    }

    fn mine_into_par(
        &self,
        cdb: &CompressedDb,
        min_support: MinSupport,
        par: Parallelism,
        sink: &mut dyn PatternSink,
    ) {
        let minsup = min_support.to_absolute(cdb.num_tuples());
        let flist = cdb.flist(minsup);
        if flist.is_empty() {
            return;
        }
        let rdb = cdb.to_ranks(&flist);
        self.mine_rank_db_par(&rdb, &flist, &[], minsup, par, sink);
    }
}

impl RecycleHm {
    /// Mines a rank-space compressed database against `flist` at the
    /// absolute threshold `minsup`, emitting every pattern prefixed by
    /// `prefix_items`.
    ///
    /// This is the resumable entry point the memory-limited driver uses:
    /// a spilled `i`-projected compressed partition is mined by passing
    /// it with `prefix_items = [item(i)]`. Supports are counted from the
    /// partition itself (group counts for pattern items, per occurrence
    /// for outliers), not taken from the global F-list.
    pub fn mine_rank_db(
        &self,
        rdb: &CompressedRankDb,
        flist: &gogreen_data::FList,
        prefix_items: &[gogreen_data::Item],
        minsup: u64,
        sink: &mut dyn PatternSink,
    ) {
        self.mine_rank_db_par(rdb, flist, prefix_items, minsup, Parallelism::serial(), sink);
    }

    /// Like [`RecycleHm::mine_rank_db`], fanning the first-level
    /// projections out over `par` scoped threads; the emitted stream is
    /// byte-identical to the serial run at any thread count.
    pub fn mine_rank_db_par(
        &self,
        rdb: &CompressedRankDb,
        flist: &gogreen_data::FList,
        prefix_items: &[gogreen_data::Item],
        minsup: u64,
        par: Parallelism,
        sink: &mut dyn PatternSink,
    ) {
        hm::mine_source_par(rdb, flist, prefix_items, minsup, par, sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::Compressor;
    use crate::rpmine::RpMine;
    use crate::utility::Strategy;
    use gogreen_data::{Item, TransactionDb};
    use gogreen_miners::mine_apriori;

    fn compressed(db: &TransactionDb, xi_old: u64, strategy: Strategy) -> CompressedDb {
        let fp = mine_apriori(db, MinSupport::Absolute(xi_old));
        Compressor::new(strategy).compress(db, &fp)
    }

    #[test]
    fn reproduces_paper_examples_4_and_5() {
        let db = TransactionDb::paper_example();
        let cdb = compressed(&db, 3, Strategy::Mcp);
        let fp = RecycleHm.mine(&cdb, MinSupport::Absolute(2));
        let oracle = mine_apriori(&db, MinSupport::Absolute(2));
        assert!(fp.same_patterns_as(&oracle), "hm {} vs oracle {}", fp.len(), oracle.len());
        // Example 5 step (2): fg:3, fgc:3, fe:2, fec:2, fc:3.
        let sup = |ids: &[u32]| {
            let mut v: Vec<Item> = ids.iter().map(|&i| Item(i)).collect();
            v.sort_unstable();
            fp.support_of(&v)
        };
        assert_eq!(sup(&[5, 6]), Some(3));
        assert_eq!(sup(&[5, 6, 2]), Some(3));
        assert_eq!(sup(&[5, 4]), Some(2));
        assert_eq!(sup(&[5, 4, 2]), Some(2));
        assert_eq!(sup(&[5, 2]), Some(3));
        // Example 5 step (4): ae:3, ace:2, ac:2.
        assert_eq!(sup(&[0, 4]), Some(3));
        assert_eq!(sup(&[0, 2, 4]), Some(2));
        assert_eq!(sup(&[0, 2]), Some(2));
    }

    #[test]
    fn exact_for_both_strategies_all_thresholds() {
        let db = TransactionDb::paper_example();
        for strategy in [Strategy::Mcp, Strategy::Mlp] {
            for xi_old in [3, 4] {
                let cdb = compressed(&db, xi_old, strategy);
                for minsup in 1..=5 {
                    let fp = RecycleHm.mine(&cdb, MinSupport::Absolute(minsup));
                    let oracle = mine_apriori(&db, MinSupport::Absolute(minsup));
                    assert!(
                        fp.same_patterns_as(&oracle),
                        "{strategy:?} ξ_old={xi_old} ξ_new={minsup}: {} vs {}",
                        fp.len(),
                        oracle.len()
                    );
                }
            }
        }
    }

    #[test]
    fn uncompressed_cdb_equals_plain_mining() {
        let db = TransactionDb::from_rows(&[
            &[1, 2, 5],
            &[2, 4],
            &[2, 3],
            &[1, 2, 4],
            &[1, 3],
            &[2, 3],
            &[1, 3],
            &[1, 2, 3, 5],
            &[1, 2, 3],
        ]);
        let cdb = CompressedDb::uncompressed(&db);
        for minsup in 1..=4 {
            let fp = RecycleHm.mine(&cdb, MinSupport::Absolute(minsup));
            let oracle = mine_apriori(&db, MinSupport::Absolute(minsup));
            assert!(fp.same_patterns_as(&oracle), "minsup={minsup}");
        }
    }

    #[test]
    fn partial_groups_in_nested_projections() {
        // Engineered so groups are split by outlier projections: group
        // {8,9} has members with and without outlier 1, and deeper
        // projections interleave pattern and outlier items.
        let db = TransactionDb::from_rows(&[
            &[1, 8, 9],
            &[1, 2, 8, 9],
            &[2, 8, 9],
            &[8, 9],
            &[1, 2],
            &[1, 2, 3],
            &[2, 3, 8],
            &[1, 3, 9],
        ]);
        for strategy in [Strategy::Mcp, Strategy::Mlp] {
            for xi_old in [2, 3, 4] {
                let cdb = compressed(&db, xi_old, strategy);
                for minsup in 1..=4 {
                    let fp = RecycleHm.mine(&cdb, MinSupport::Absolute(minsup));
                    let oracle = mine_apriori(&db, MinSupport::Absolute(minsup));
                    assert!(
                        fp.same_patterns_as(&oracle),
                        "{strategy:?} ξ_old={xi_old} ξ_new={minsup}: {} vs {}",
                        fp.len(),
                        oracle.len()
                    );
                }
            }
        }
    }

    #[test]
    fn agrees_with_rpmine_on_structured_cases() {
        let db = TransactionDb::from_rows(&[
            &[1, 2, 3, 4],
            &[1, 2, 3, 5],
            &[1, 2, 4, 5],
            &[2, 3, 4, 5],
            &[1, 2, 3],
            &[1, 2],
            &[4, 5],
            &[4, 5, 6],
            &[1, 6],
        ]);
        let cdb = compressed(&db, 3, Strategy::Mcp);
        for minsup in 1..=5 {
            let hm = RecycleHm.mine(&cdb, MinSupport::Absolute(minsup));
            let rp = RpMine::default().mine(&cdb, MinSupport::Absolute(minsup));
            assert!(hm.same_patterns_as(&rp), "minsup={minsup}");
        }
    }

    #[test]
    fn bare_members_count_through_group_heads() {
        // Identical tuples compress into a group with bare members.
        let db =
            TransactionDb::from_rows(&[&[1, 2, 3], &[1, 2, 3], &[1, 2, 3], &[1, 2, 3, 4], &[4, 5]]);
        let cdb = compressed(&db, 3, Strategy::Mcp);
        assert!(cdb.groups().iter().any(|g| g.bare() > 0));
        let fp = RecycleHm.mine(&cdb, MinSupport::Absolute(2));
        let oracle = mine_apriori(&db, MinSupport::Absolute(2));
        assert!(fp.same_patterns_as(&oracle));
    }

    #[test]
    fn empty_cdb() {
        let cdb = CompressedDb::uncompressed(&TransactionDb::new());
        assert!(RecycleHm.mine(&cdb, MinSupport::Absolute(1)).is_empty());
    }
}
