//! Recycle-HM: the H-Mine adaptation to compressed databases
//! (paper §4.1, Figures 4–8).
//!
//! H-Mine's defining trait is **pseudo-projection**: tuples are loaded
//! once into an entry arena and never copied; a projected database is a
//! set of references into that arena. The paper's *RP-Struct* extends
//! this with group heads (pattern + member count + member tails), group
//! tails (the members' outlying items as arena entries), and per-node
//! RP-Header tables whose *item-links* reach tails and whose
//! *group-links* reach whole groups.
//!
//! Our realization keeps all of that, with one engineering deviation
//! that matters for *partial* groups — groups projected through an
//! outlying item, so that only some members remain. The paper's figures
//! only exercise whole groups; threading each partial member through the
//! header tables individually (one link hop per remaining pattern item
//! per member) degenerates to per-member × per-pattern-item work and is
//! measurably slower than plain H-Mine on dense data. Instead, each
//! search node holds its groups as **projected group views**: the source
//! group id, an offset into its pattern, the surviving members as
//! `(tail, entry position)` pairs, and a bare-member count. Projection
//! through a pattern item advances the offset and keeps the member list
//! (the whole group follows — the paper's group-link move); projection
//! through an outlying item collects the members holding that entry (the
//! paper's item-link move). Item data is never copied; only member
//! reference lists are.
//!
//! Savings realized (paper §3.1): counting touches each group view once
//! per pattern item — weight = member count — instead of once per member
//! tuple; and projecting on a pattern item moves the whole view in one
//! step. Lemma 3.1 (single-group pattern generation) prunes entire
//! subtrees into subset enumeration.

use crate::cdb::{CompressedDb, CompressedRankDb};
use crate::RecyclingMiner;
use gogreen_data::{MinSupport, PatternSink};
use gogreen_miners::common::{fan_out_ordered, for_each_subset, RankEmitter, ScratchCounts};
use gogreen_obs::metrics;
use gogreen_util::pool::Parallelism;

/// Entry item marking the end of a tail.
const SENT: u32 = u32::MAX;
/// `tail_group` value for plain (uncovered) tuples.
const GNONE: u32 = u32::MAX;

const SRC_NONE: u32 = u32::MAX;
const SRC_MIXED: u32 = u32::MAX - 1;

/// The Recycle-HM miner.
#[derive(Debug, Default, Clone)]
pub struct RecycleHm;

/// The RP-Struct arenas: all tuple data, loaded once, never copied.
pub(crate) struct RpStruct {
    /// Entry items (ranks, ascending within a tail); `SENT` terminates
    /// each tail.
    eitem: Vec<u32>,
    /// First entry of each tail.
    tail_first: Vec<u32>,
    /// Owning group of each tail (`GNONE` for plain tuples).
    tail_group: Vec<u32>,
    /// Group patterns (ranks ascending).
    gpat: Vec<Vec<u32>>,
    /// Group member counts (including bare members).
    gcount: Vec<u64>,
    /// Tails of each group (members with outlying items).
    gtails: Vec<Vec<u32>>,
}

impl RpStruct {
    pub(crate) fn build(cdb: &CompressedRankDb) -> Self {
        let total_entries: usize = cdb
            .groups
            .iter()
            .flat_map(|g| g.outliers.iter())
            .chain(cdb.plain.iter())
            .map(|t| t.len() + 1)
            .sum();
        let num_tails: usize =
            cdb.groups.iter().map(|g| g.outliers.len()).sum::<usize>() + cdb.plain.len();
        let mut s = RpStruct {
            eitem: Vec::with_capacity(total_entries),
            tail_first: Vec::with_capacity(num_tails),
            tail_group: Vec::with_capacity(num_tails),
            gpat: Vec::with_capacity(cdb.groups.len()),
            gcount: Vec::with_capacity(cdb.groups.len()),
            gtails: Vec::with_capacity(cdb.groups.len()),
        };
        fn push_tail(s: &mut RpStruct, items: &[u32], group: u32) -> u32 {
            let t = s.tail_first.len() as u32;
            s.tail_first.push(s.eitem.len() as u32);
            s.tail_group.push(group);
            s.eitem.extend_from_slice(items);
            s.eitem.push(SENT);
            t
        }
        for g in &cdb.groups {
            let gid = s.gpat.len() as u32;
            s.gpat.push(g.pattern.clone());
            s.gcount.push(g.count());
            let tails: Vec<u32> = g.outliers.iter().map(|o| push_tail(&mut s, o, gid)).collect();
            s.gtails.push(tails);
        }
        for t in &cdb.plain {
            push_tail(&mut s, t, GNONE);
        }
        s
    }

    /// Arena bytes — the base quantity the paper's memory estimator
    /// (§3.3) budgets against.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn arena_bytes(&self) -> usize {
        self.eitem.capacity() * 4
            + (self.tail_first.capacity() + self.tail_group.capacity()) * 4
            + self.gcount.capacity() * 8
            + self.gpat.iter().map(|p| p.capacity() * 4).sum::<usize>()
            + self.gtails.iter().map(|t| t.capacity() * 4).sum::<usize>()
    }
}

/// A member reference: a tail plus the first arena entry still relevant
/// (anchors advance as projections consume entries, so no entry is
/// re-skipped by descendant nodes).
type Member = (u32, u32);

/// Marks a bucketed member as belonging to the plain partition.
const VNONE: u32 = u32::MAX;

/// One group's presence in the current projection.
struct GroupView {
    /// Source group.
    gid: u32,
    /// Residual pattern = `gpat[gid][pat_from..]` (every rank greater
    /// than the node's projection bound, maintained by construction).
    pat_from: u32,
    /// Members with (possibly) relevant outlying items.
    members: Vec<Member>,
    /// Members known to have no relevant outliers (counted only).
    bare: u64,
    /// The locally frequent pattern rank this view currently queues at
    /// (its group-link position); `u32::MAX` once the residual pattern
    /// has no locally frequent item left.
    cur: u32,
}

impl GroupView {
    fn count(&self) -> u64 {
        self.members.len() as u64 + self.bare
    }
}

/// One node of the depth-first search: the paper's RP-Header scope.
struct Node {
    views: Vec<GroupView>,
    plain: Vec<Member>,
}

/// One header row's queues: the RP-Header's group-link (whole views) and
/// item-link (individual members; `VNONE` view = plain tuple) chains.
#[derive(Default)]
struct Bucket {
    views: Vec<u32>,
    members: Vec<(u32, Member)>,
}

/// Reusable per-depth scratch of the DFS: the bucket array of one node,
/// the member grouping buffer, and the bucket currently being processed.
/// Kept in a depth-indexed arena on [`Ctx`] so sibling nodes at the same
/// depth recycle each other's allocations instead of growing fresh
/// `Vec<Bucket>`s per node.
#[derive(Default)]
struct LevelScratch {
    buckets: Vec<Bucket>,
    member_run: Vec<(u32, Member)>,
    cur: Bucket,
}

impl LevelScratch {
    /// Clears all queues and guarantees at least `n` buckets, preserving
    /// every inner capacity.
    fn reset(&mut self, n: usize) {
        for b in &mut self.buckets {
            b.views.clear();
            b.members.clear();
        }
        if self.buckets.len() < n {
            self.buckets.resize_with(n, Bucket::default);
        }
        self.cur.views.clear();
        self.cur.members.clear();
        self.member_run.clear();
    }
}

/// Per-worker mining state. The RP-Struct arena is shared by reference:
/// it is read-only once built, so parallel first-level units each carry
/// their own `Ctx` over the same arena.
struct Ctx<'s> {
    s: &'s RpStruct,
    scratch: ScratchCounts,
    src: Vec<u32>,
    /// Local-frequency tags: `lf_tag[rank] == lf_gen` ⇔ rank is locally
    /// frequent at the node currently being processed; `lf_pos` then
    /// holds its bucket index.
    lf_tag: Vec<u32>,
    lf_pos: Vec<u32>,
    lf_gen: u32,
    minsup: u64,
    /// Depth-indexed scratch arenas (index = recursion depth below this
    /// context's root).
    levels: Vec<LevelScratch>,
    depth: usize,
}

impl<'s> Ctx<'s> {
    fn new(s: &'s RpStruct, num_ranks: usize, minsup: u64) -> Self {
        Ctx {
            s,
            scratch: ScratchCounts::new(num_ranks),
            src: vec![SRC_NONE; num_ranks],
            lf_tag: vec![0; num_ranks],
            lf_pos: vec![0; num_ranks],
            lf_gen: 0,
            minsup,
            levels: Vec::new(),
            depth: 0,
        }
    }
    /// Finds the entry of rank `r` in `member`'s remaining outliers,
    /// exploiting the ascending entry order for early exit.
    #[inline]
    fn find_entry(&self, (_, pos): Member, r: u32) -> Option<u32> {
        let mut e = pos as usize;
        loop {
            let x = self.s.eitem[e];
            if x == SENT || x > r {
                return None;
            }
            if x == r {
                return Some(e as u32);
            }
            e += 1;
        }
    }

    /// First entry of `member` with rank > `r`, or `None` when the
    /// remaining outliers are exhausted.
    #[inline]
    fn advance_past(&self, (_, pos): Member, r: u32) -> Option<u32> {
        let mut e = pos as usize;
        loop {
            let x = self.s.eitem[e];
            if x == SENT {
                return None;
            }
            if x > r {
                return Some(e as u32);
            }
            e += 1;
        }
    }

    /// First *locally frequent* outlier rank of `member` strictly greater
    /// than `after` (`-1` = no bound).
    #[inline]
    fn first_lf_outlier(&self, (_, pos): Member, after: i64) -> Option<u32> {
        let mut e = pos as usize;
        loop {
            let x = self.s.eitem[e];
            if x == SENT {
                return None;
            }
            if (x as i64) > after && self.lf_tag[x as usize] == self.lf_gen {
                return Some(x);
            }
            e += 1;
        }
    }

    /// First locally frequent residual pattern rank of `view` strictly
    /// greater than `after`.
    #[inline]
    fn first_lf_pattern(&self, view: &GroupView, after: i64) -> Option<u32> {
        self.s.gpat[view.gid as usize][view.pat_from as usize..]
            .iter()
            .copied()
            .find(|&x| (x as i64) > after && self.lf_tag[x as usize] == self.lf_gen)
    }

    /// Adds +1 (source MIXED) for each remaining outlier rank of
    /// `member` (anchors guarantee every remaining entry is in scope);
    /// returns the number of entries touched.
    #[inline]
    fn count_member(&mut self, (_, pos): Member) -> u64 {
        let mut e = pos as usize;
        let mut touched = 0u64;
        loop {
            let x = self.s.eitem[e];
            if x == SENT {
                return touched;
            }
            self.scratch.add(x, 1);
            self.src[x as usize] = SRC_MIXED;
            touched += 1;
            e += 1;
        }
    }

    fn merge_src(&mut self, x: u32, view_idx: u32) {
        let s = &mut self.src[x as usize];
        *s = match *s {
            SRC_NONE => view_idx,
            cur if cur == view_idx => cur,
            _ => SRC_MIXED,
        };
    }

    /// Installs `frequent` as the current node's local-frequency tags.
    fn tag_lf(&mut self, frequent: &[(u32, u64)]) {
        self.lf_gen = self.lf_gen.wrapping_add(1);
        for (k, &(x, _)) in frequent.iter().enumerate() {
            self.lf_tag[x as usize] = self.lf_gen;
            self.lf_pos[x as usize] = k as u32;
        }
    }
}

impl RecyclingMiner for RecycleHm {
    fn name(&self) -> &'static str {
        "Recycle-HM"
    }

    fn mine_into(&self, cdb: &CompressedDb, min_support: MinSupport, sink: &mut dyn PatternSink) {
        self.mine_into_par(cdb, min_support, Parallelism::serial(), sink);
    }

    fn mine_into_par(
        &self,
        cdb: &CompressedDb,
        min_support: MinSupport,
        par: Parallelism,
        sink: &mut dyn PatternSink,
    ) {
        let minsup = min_support.to_absolute(cdb.num_tuples());
        let flist = cdb.flist(minsup);
        if flist.is_empty() {
            return;
        }
        let rdb = cdb.to_ranks(&flist);
        self.mine_rank_db_par(&rdb, &flist, &[], minsup, par, sink);
    }
}

impl RecycleHm {
    /// Mines a rank-space compressed database against `flist` at the
    /// absolute threshold `minsup`, emitting every pattern prefixed by
    /// `prefix_items`.
    ///
    /// This is the resumable entry point the memory-limited driver uses:
    /// a spilled `i`-projected compressed partition is mined by passing
    /// it with `prefix_items = [item(i)]`. Supports are counted from the
    /// partition itself (group counts for pattern items, per occurrence
    /// for outliers), not taken from the global F-list.
    pub fn mine_rank_db(
        &self,
        rdb: &CompressedRankDb,
        flist: &gogreen_data::FList,
        prefix_items: &[gogreen_data::Item],
        minsup: u64,
        sink: &mut dyn PatternSink,
    ) {
        self.mine_rank_db_par(rdb, flist, prefix_items, minsup, Parallelism::serial(), sink);
    }

    /// Like [`RecycleHm::mine_rank_db`], fanning the first-level
    /// projections out over `par` scoped threads.
    ///
    /// The root node is counted once on the caller thread; each locally
    /// frequent rank then becomes an independent unit. The serial search
    /// discovers a rank's root bucket incrementally (H-Mine queue
    /// relinks), but the bucket contents at rank `r`'s processing time
    /// are a pure function of the node: a view is queued at `r` iff `r`
    /// is in its locally frequent residual pattern, and a member is
    /// queued at `r` iff `r` is one of its locally frequent outliers
    /// (relinks walk each tuple through exactly those positions in rank
    /// order, and the `cur` coverage rule only defers a queueing, never
    /// cancels it). One sweep therefore precomputes every unit's bucket,
    /// and workers share the read-only RP-Struct and root views.
    pub fn mine_rank_db_par(
        &self,
        rdb: &CompressedRankDb,
        flist: &gogreen_data::FList,
        prefix_items: &[gogreen_data::Item],
        minsup: u64,
        par: Parallelism,
        sink: &mut dyn PatternSink,
    ) {
        let s = RpStruct::build(rdb);
        let node = root_views(&s);
        let num_ranks = flist.len();
        metrics::set_max("mine.max_depth", prefix_items.len() as u64);
        let mut root_ctx = Ctx::new(&s, num_ranks, minsup);
        let counted = count_node(&node, &mut root_ctx);
        if counted.frequent.is_empty() {
            return;
        }
        if counted.single_group && counted.frequent.len() <= 62 {
            let mut emitter = RankEmitter::new(flist);
            for &it in prefix_items {
                emitter.push_item(it);
            }
            for_each_subset(&counted.frequent, &mut |ranks, sup| {
                emitter.emit_with(sink, ranks, sup)
            });
            return;
        }
        let frequent = counted.frequent;
        root_ctx.tag_lf(&frequent);
        // Root plan sweep (see above): bucket every view at each locally
        // frequent residual pattern rank, every member at each locally
        // frequent outlier rank.
        let mut plan: Vec<Bucket> = (0..frequent.len()).map(|_| Bucket::default()).collect();
        for (vi, v) in node.views.iter().enumerate() {
            for &x in &s.gpat[v.gid as usize][v.pat_from as usize..] {
                if root_ctx.lf_tag[x as usize] == root_ctx.lf_gen {
                    plan[root_ctx.lf_pos[x as usize] as usize].views.push(vi as u32);
                }
            }
            for &m in &v.members {
                push_lf_outliers(&root_ctx, vi as u32, m, &mut plan);
            }
        }
        for &m in &node.plain {
            push_lf_outliers(&root_ctx, VNONE, m, &mut plan);
        }
        drop(root_ctx);
        let (s, node, frequent, plan) = (&s, &node, &frequent, &plan);
        fan_out_ordered(
            par,
            frequent.len(),
            sink,
            || {
                let mut emitter = RankEmitter::new(flist);
                for &it in prefix_items {
                    emitter.push_item(it);
                }
                (Ctx::new(s, num_ranks, minsup), emitter, Vec::new())
            },
            |(ctx, emitter, member_run), li, sink| {
                let (r, c) = frequent[li];
                emitter.push(r);
                emitter.emit(sink, c);
                let child = build_child(&node.views, &plan[li], r, member_run, ctx);
                if !child.views.is_empty() || !child.plain.is_empty() {
                    metrics::add("mine.projected_dbs", 1);
                    mine_node(child, ctx, emitter, sink);
                }
                emitter.pop();
            },
        );
    }
}

/// Builds the root node's group views and plain member list over `s`.
fn root_views(s: &RpStruct) -> Node {
    let mut views = Vec::with_capacity(s.gpat.len());
    let mut plain = Vec::new();
    let mut group_tail_count = 0usize;
    for gid in 0..s.gpat.len() as u32 {
        let members: Vec<Member> =
            s.gtails[gid as usize].iter().map(|&t| (t, s.tail_first[t as usize])).collect();
        let bare = s.gcount[gid as usize] - members.len() as u64;
        group_tail_count += members.len();
        views.push(GroupView { gid, pat_from: 0, members, bare, cur: u32::MAX });
    }
    for t in group_tail_count as u32..s.tail_first.len() as u32 {
        debug_assert_eq!(s.tail_group[t as usize], GNONE);
        plain.push((t, s.tail_first[t as usize]));
    }
    Node { views, plain }
}

/// Queues `m` (of view `vi`, or plain when `VNONE`) at every locally
/// frequent outlier rank — the root plan sweep's member rule.
fn push_lf_outliers(ctx: &Ctx<'_>, vi: u32, m: Member, plan: &mut [Bucket]) {
    let mut e = m.1 as usize;
    loop {
        let x = ctx.s.eitem[e];
        if x == SENT {
            return;
        }
        if ctx.lf_tag[x as usize] == ctx.lf_gen {
            plan[ctx.lf_pos[x as usize] as usize].members.push((vi, m));
        }
        e += 1;
    }
}

/// Counting outcome of one node.
struct Counted {
    frequent: Vec<(u32, u64)>,
    /// Lemma 3.1: every occurrence of every frequent rank lies in a
    /// single group view's pattern.
    single_group: bool,
}

/// Counts candidate extensions of the node: residual pattern items once
/// per view (weight = member count), outliers and plain tuples per
/// occurrence.
fn count_node(node: &Node, ctx: &mut Ctx<'_>) -> Counted {
    let mut group_hits = 0u64;
    let mut touches = 0u64;
    for (vi, v) in node.views.iter().enumerate() {
        let c = v.count();
        for k in v.pat_from as usize..ctx.s.gpat[v.gid as usize].len() {
            let x = ctx.s.gpat[v.gid as usize][k];
            ctx.scratch.add(x, c);
            ctx.merge_src(x, vi as u32);
            group_hits += 1;
        }
        for &m in &v.members {
            touches += ctx.count_member(m);
        }
    }
    for &m in &node.plain {
        touches += ctx.count_member(m);
    }
    metrics::add("mine.group_hits", group_hits);
    metrics::add("mine.tuple_touches", touches);
    metrics::add("mine.candidate_tests", ctx.scratch.touched().len() as u64);
    let mut frequent: Vec<(u32, u64)> = ctx
        .scratch
        .touched()
        .iter()
        .map(|&x| (x, ctx.scratch.get(x)))
        .filter(|&(_, c)| c >= ctx.minsup)
        .collect();
    frequent.sort_unstable_by_key(|&(x, _)| x);
    let single_group = match frequent.split_first() {
        Some((&(x0, _), rest)) => {
            let g0 = ctx.src[x0 as usize];
            g0 != SRC_MIXED && rest.iter().all(|&(x, _)| ctx.src[x as usize] == g0)
        }
        None => false,
    };
    for &x in ctx.scratch.touched() {
        ctx.src[x as usize] = SRC_NONE;
    }
    ctx.scratch.clear();
    Counted { frequent, single_group }
}

/// Queues a view on its first locally frequent pattern rank after
/// `after` (its group-link position), and queues its members whose first
/// locally frequent outlier precedes that rank on their item-links. A
/// view with no frequent pattern rank left dissolves: its members carry
/// on individually.
fn bucket_view(
    views: &mut [GroupView],
    vi: u32,
    after: i64,
    buckets: &mut [Bucket],
    ctx: &Ctx<'_>,
) {
    let v = &views[vi as usize];
    match ctx.first_lf_pattern(v, after) {
        Some(p) => {
            buckets[ctx.lf_pos[p as usize] as usize].views.push(vi);
            for &m in &v.members {
                if let Some(f) = ctx.first_lf_outlier(m, after) {
                    if f < p {
                        buckets[ctx.lf_pos[f as usize] as usize].members.push((vi, m));
                    }
                }
            }
            views[vi as usize].cur = p;
        }
        None => {
            for &m in &v.members {
                if let Some(f) = ctx.first_lf_outlier(m, after) {
                    buckets[ctx.lf_pos[f as usize] as usize].members.push((vi, m));
                }
            }
            views[vi as usize].cur = u32::MAX;
        }
    }
}

/// Queues an individual member (of view `vi`, or plain when `VNONE`) on
/// its first locally frequent outlier after `after` — unless that rank
/// is already covered by the owning view's queue position.
fn bucket_member(
    views: &[GroupView],
    vi: u32,
    m: Member,
    after: i64,
    buckets: &mut [Bucket],
    ctx: &Ctx<'_>,
) {
    if let Some(f) = ctx.first_lf_outlier(m, after) {
        let covered_from = if vi == VNONE { u32::MAX } else { views[vi as usize].cur };
        if f < covered_from || covered_from == u32::MAX {
            buckets[ctx.lf_pos[f as usize] as usize].members.push((vi, m));
        }
    }
}

/// Depth-first search over one node (procedure Recycle-HM, Figure 8,
/// with Lemma 3.1 as lines 1–2). Tuples hop between per-rank buckets
/// exactly like H-Mine queue relinks, so each extension only pays for
/// its own projection.
fn mine_node(
    mut node: Node,
    ctx: &mut Ctx<'_>,
    emitter: &mut RankEmitter<'_>,
    sink: &mut dyn PatternSink,
) {
    metrics::set_max("mine.max_depth", emitter.depth() as u64);
    let counted = count_node(&node, ctx);
    if counted.frequent.is_empty() {
        return;
    }
    if counted.single_group && counted.frequent.len() <= 62 {
        for_each_subset(&counted.frequent, &mut |ranks, sup| emitter.emit_with(sink, ranks, sup));
        return;
    }
    let frequent = counted.frequent;
    ctx.tag_lf(&frequent);
    // Borrow this depth's scratch arena; the recursion below only uses
    // deeper slots, so taking it out of the context is conflict-free.
    let depth = ctx.depth;
    if ctx.levels.len() <= depth {
        ctx.levels.resize_with(depth + 1, LevelScratch::default);
    }
    let mut lvl = std::mem::take(&mut ctx.levels[depth]);
    lvl.reset(frequent.len());
    ctx.depth = depth + 1;
    for vi in 0..node.views.len() as u32 {
        bucket_view(&mut node.views, vi, -1, &mut lvl.buckets, ctx);
    }
    for &m in &node.plain {
        bucket_member(&node.views, VNONE, m, -1, &mut lvl.buckets, ctx);
    }
    // Plain members live only in buckets from here on.
    node.plain.clear();

    for li in 0..frequent.len() {
        let (r, c) = frequent[li];
        emitter.push(r);
        emitter.emit(sink, c);
        // `cur` is empty here (reset, or cleared by the previous
        // iteration), so the swap hands this bucket over while keeping
        // both allocations alive for reuse.
        std::mem::swap(&mut lvl.cur, &mut lvl.buckets[li]);

        let child = build_child(&node.views, &lvl.cur, r, &mut lvl.member_run, ctx);
        if !child.views.is_empty() || !child.plain.is_empty() {
            metrics::add("mine.projected_dbs", 1);
            mine_node(child, ctx, emitter, sink);
            // The recursion reused the tag arrays; restore this node's.
            ctx.tag_lf(&frequent);
        }

        // Relink forward (Fill-RPHeader on the items after r): everything
        // queued at r hops to its next locally frequent rank.
        for &vi in &lvl.cur.views {
            bucket_view(&mut node.views, vi, r as i64, &mut lvl.buckets, ctx);
        }
        for &(vi, m) in &lvl.cur.members {
            bucket_member(&node.views, vi, m, r as i64, &mut lvl.buckets, ctx);
        }
        lvl.cur.views.clear();
        lvl.cur.members.clear();
        emitter.pop();
    }
    ctx.depth = depth;
    ctx.levels[depth] = lvl;
}

/// Builds the `r`-projection from one bucket: whole views advance past
/// `r` (the paper's group-link move), individual members are grouped by
/// owning view and projected through their `r` entry (the item-link
/// move). `member_run` is caller-provided grouping scratch. Shared by
/// the serial loop of [`mine_node`] and the root fan-out units.
fn build_child(
    views: &[GroupView],
    bucket: &Bucket,
    r: u32,
    member_run: &mut Vec<(u32, Member)>,
    ctx: &Ctx<'_>,
) -> Node {
    let mut child_views: Vec<GroupView> = Vec::new();
    let mut child_plain: Vec<Member> = Vec::new();
    for &vi in &bucket.views {
        let v = &views[vi as usize];
        let gpat = &ctx.s.gpat[v.gid as usize];
        // r is in the residual pattern (it is v's queue rank).
        let off = gpat[v.pat_from as usize..]
            .binary_search(&r)
            .expect("queued view contains its queue rank");
        let pat_from = v.pat_from + off as u32 + 1;
        let mut bare = v.bare;
        let mut members = Vec::with_capacity(v.members.len());
        for &m in &v.members {
            match ctx.advance_past(m, r) {
                Some(e) => members.push((m.0, e)),
                None => bare += 1,
            }
        }
        if (pat_from as usize) < gpat.len() {
            child_views.push(GroupView { gid: v.gid, pat_from, members, bare, cur: u32::MAX });
        } else {
            child_plain.extend(members);
        }
    }
    // Individual members: group by owning view to rebuild views.
    member_run.clear();
    member_run.extend(bucket.members.iter().copied());
    member_run.sort_unstable_by_key(|&(vi, _)| vi);
    let mut k = 0;
    while k < member_run.len() {
        let vi = member_run[k].0;
        let mut end = k + 1;
        while end < member_run.len() && member_run[end].0 == vi {
            end += 1;
        }
        if vi == VNONE {
            for &(_, m) in &member_run[k..end] {
                if let Some(e) = ctx.find_entry(m, r) {
                    if ctx.s.eitem[e as usize + 1] != SENT {
                        child_plain.push((m.0, e + 1));
                    }
                }
            }
        } else {
            let v = &views[vi as usize];
            let gpat = &ctx.s.gpat[v.gid as usize];
            let off = gpat[v.pat_from as usize..].partition_point(|&x| x <= r);
            let pat_from = v.pat_from + off as u32;
            let keep_pattern = (pat_from as usize) < gpat.len();
            let mut members = Vec::new();
            let mut bare = 0u64;
            for &(_, m) in &member_run[k..end] {
                let e = ctx.find_entry(m, r).expect("queued member contains its rank");
                if ctx.s.eitem[e as usize + 1] == SENT {
                    bare += 1;
                } else {
                    members.push((m.0, e + 1));
                }
            }
            if keep_pattern {
                if bare > 0 || !members.is_empty() {
                    child_views.push(GroupView {
                        gid: v.gid,
                        pat_from,
                        members,
                        bare,
                        cur: u32::MAX,
                    });
                }
            } else {
                child_plain.extend(members);
            }
        }
        k = end;
    }
    Node { views: child_views, plain: child_plain }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::Compressor;
    use crate::rpmine::RpMine;
    use crate::utility::Strategy;
    use gogreen_data::{Item, TransactionDb};
    use gogreen_miners::mine_apriori;

    fn compressed(db: &TransactionDb, xi_old: u64, strategy: Strategy) -> CompressedDb {
        let fp = mine_apriori(db, MinSupport::Absolute(xi_old));
        Compressor::new(strategy).compress(db, &fp)
    }

    #[test]
    fn reproduces_paper_examples_4_and_5() {
        let db = TransactionDb::paper_example();
        let cdb = compressed(&db, 3, Strategy::Mcp);
        let fp = RecycleHm.mine(&cdb, MinSupport::Absolute(2));
        let oracle = mine_apriori(&db, MinSupport::Absolute(2));
        assert!(fp.same_patterns_as(&oracle), "hm {} vs oracle {}", fp.len(), oracle.len());
        // Example 5 step (2): fg:3, fgc:3, fe:2, fec:2, fc:3.
        let sup = |ids: &[u32]| {
            let mut v: Vec<Item> = ids.iter().map(|&i| Item(i)).collect();
            v.sort_unstable();
            fp.support_of(&v)
        };
        assert_eq!(sup(&[5, 6]), Some(3));
        assert_eq!(sup(&[5, 6, 2]), Some(3));
        assert_eq!(sup(&[5, 4]), Some(2));
        assert_eq!(sup(&[5, 4, 2]), Some(2));
        assert_eq!(sup(&[5, 2]), Some(3));
        // Example 5 step (4): ae:3, ace:2, ac:2.
        assert_eq!(sup(&[0, 4]), Some(3));
        assert_eq!(sup(&[0, 2, 4]), Some(2));
        assert_eq!(sup(&[0, 2]), Some(2));
    }

    #[test]
    fn exact_for_both_strategies_all_thresholds() {
        let db = TransactionDb::paper_example();
        for strategy in [Strategy::Mcp, Strategy::Mlp] {
            for xi_old in [3, 4] {
                let cdb = compressed(&db, xi_old, strategy);
                for minsup in 1..=5 {
                    let fp = RecycleHm.mine(&cdb, MinSupport::Absolute(minsup));
                    let oracle = mine_apriori(&db, MinSupport::Absolute(minsup));
                    assert!(
                        fp.same_patterns_as(&oracle),
                        "{strategy:?} ξ_old={xi_old} ξ_new={minsup}: {} vs {}",
                        fp.len(),
                        oracle.len()
                    );
                }
            }
        }
    }

    #[test]
    fn uncompressed_cdb_equals_plain_mining() {
        let db = TransactionDb::from_rows(&[
            &[1, 2, 5],
            &[2, 4],
            &[2, 3],
            &[1, 2, 4],
            &[1, 3],
            &[2, 3],
            &[1, 3],
            &[1, 2, 3, 5],
            &[1, 2, 3],
        ]);
        let cdb = CompressedDb::uncompressed(&db);
        for minsup in 1..=4 {
            let fp = RecycleHm.mine(&cdb, MinSupport::Absolute(minsup));
            let oracle = mine_apriori(&db, MinSupport::Absolute(minsup));
            assert!(fp.same_patterns_as(&oracle), "minsup={minsup}");
        }
    }

    #[test]
    fn partial_groups_in_nested_projections() {
        // Engineered so groups are split by outlier projections: group
        // {8,9} has members with and without outlier 1, and deeper
        // projections interleave pattern and outlier items.
        let db = TransactionDb::from_rows(&[
            &[1, 8, 9],
            &[1, 2, 8, 9],
            &[2, 8, 9],
            &[8, 9],
            &[1, 2],
            &[1, 2, 3],
            &[2, 3, 8],
            &[1, 3, 9],
        ]);
        for strategy in [Strategy::Mcp, Strategy::Mlp] {
            for xi_old in [2, 3, 4] {
                let cdb = compressed(&db, xi_old, strategy);
                for minsup in 1..=4 {
                    let fp = RecycleHm.mine(&cdb, MinSupport::Absolute(minsup));
                    let oracle = mine_apriori(&db, MinSupport::Absolute(minsup));
                    assert!(
                        fp.same_patterns_as(&oracle),
                        "{strategy:?} ξ_old={xi_old} ξ_new={minsup}: {} vs {}",
                        fp.len(),
                        oracle.len()
                    );
                }
            }
        }
    }

    #[test]
    fn agrees_with_rpmine_on_structured_cases() {
        let db = TransactionDb::from_rows(&[
            &[1, 2, 3, 4],
            &[1, 2, 3, 5],
            &[1, 2, 4, 5],
            &[2, 3, 4, 5],
            &[1, 2, 3],
            &[1, 2],
            &[4, 5],
            &[4, 5, 6],
            &[1, 6],
        ]);
        let cdb = compressed(&db, 3, Strategy::Mcp);
        for minsup in 1..=5 {
            let hm = RecycleHm.mine(&cdb, MinSupport::Absolute(minsup));
            let rp = RpMine::default().mine(&cdb, MinSupport::Absolute(minsup));
            assert!(hm.same_patterns_as(&rp), "minsup={minsup}");
        }
    }

    #[test]
    fn bare_members_count_through_group_heads() {
        // Identical tuples compress into a group with bare members.
        let db =
            TransactionDb::from_rows(&[&[1, 2, 3], &[1, 2, 3], &[1, 2, 3], &[1, 2, 3, 4], &[4, 5]]);
        let cdb = compressed(&db, 3, Strategy::Mcp);
        assert!(cdb.groups().iter().any(|g| g.bare() > 0));
        let fp = RecycleHm.mine(&cdb, MinSupport::Absolute(2));
        let oracle = mine_apriori(&db, MinSupport::Absolute(2));
        assert!(fp.same_patterns_as(&oracle));
    }

    #[test]
    fn empty_cdb() {
        let cdb = CompressedDb::uncompressed(&TransactionDb::new());
        assert!(RecycleHm.mine(&cdb, MinSupport::Absolute(1)).is_empty());
    }
}
