//! RP-Mine: the paper's naive recycling algorithm (Figure 3).
//!
//! A direct realization of mining-by-projection over the compressed
//! representation, exactly as the paper's Example 3 walks through:
//!
//! * **Counting** exploits groups: each group-pattern item is bumped once
//!   with the group's member count instead of once per member tuple.
//! * **Projection** touches each group head once: if the projected item is
//!   in the pattern, the whole group moves into the projection with a
//!   shortened pattern; otherwise only members whose outliers contain the
//!   item move, carrying the residual pattern.
//! * **Lemma 3.1 (single-group pattern generation)**: when every
//!   occurrence of every locally frequent item lies in one group's
//!   pattern, the complete pattern set of the sub-space is all
//!   combinations of those items with the group's projected count — no
//!   recursion needed.
//!
//! The smarter adaptations ([`crate::recycle_hm`], [`crate::recycle_fp`],
//! [`crate::recycle_tp`]) implement the same semantics over cleverer data
//! structures; RP-Mine doubles as their readable specification and as a
//! differential-testing partner.

use crate::cdb::{CompressedDb, CompressedRankDb};
use crate::RecyclingMiner;
use gogreen_data::{MinSupport, NoPrune, PatternSet, PatternSink, SearchPrune};
use gogreen_miners::common::{for_each_subset, RankEmitter, ScratchCounts};
use gogreen_obs::metrics;
use gogreen_util::pool::Parallelism;

/// Per-rank contribution source, for the Lemma 3.1 check.
const SRC_NONE: u32 = u32::MAX;
const SRC_MIXED: u32 = u32::MAX - 1;

/// The naive recycling miner.
#[derive(Debug, Clone)]
pub struct RpMine {
    /// Apply the Lemma 3.1 single-group shortcut (default true; the
    /// ablation benches turn it off to measure its contribution).
    pub single_group_shortcut: bool,
}

impl Default for RpMine {
    fn default() -> Self {
        RpMine { single_group_shortcut: true }
    }
}

impl RecyclingMiner for RpMine {
    fn name(&self) -> &'static str {
        "RP-Mine"
    }

    fn mine_into(&self, cdb: &CompressedDb, min_support: MinSupport, sink: &mut dyn PatternSink) {
        self.mine_into_par(cdb, min_support, Parallelism::serial(), sink);
    }

    fn mine_into_par(
        &self,
        cdb: &CompressedDb,
        min_support: MinSupport,
        par: Parallelism,
        sink: &mut dyn PatternSink,
    ) {
        let minsup = min_support.to_absolute(cdb.num_tuples());
        let flist = cdb.flist(minsup);
        if flist.is_empty() {
            return;
        }
        // RP-Mine is the readable specification and differential-testing
        // partner of the unified engines, so it stays deliberately
        // serial — the engines own the parallel fan-out.
        let _ = par;
        let view = cdb.to_ranks(&flist);
        let mut ctx = Ctx {
            scratch: ScratchCounts::new(flist.len()),
            src: vec![SRC_NONE; flist.len()],
            minsup,
            shortcut: self.single_group_shortcut,
        };
        let mut emitter = RankEmitter::new(&flist);
        mine_rec(&view, &mut ctx, &NoPrune, &mut emitter, sink);
    }
}

impl RpMine {
    /// Constrained *recycling*: mines the compressed database while
    /// consulting `prune` — disallowed items are stripped from group
    /// patterns and outliers up front (supports of surviving items are
    /// unchanged), violating prefixes abandon their subtrees, and the
    /// length bound stops extension. Recycling and constraint pushdown
    /// compose: the answer equals the unconstrained answer filtered by
    /// the pushed predicates.
    pub fn mine_pruned(
        &self,
        cdb: &CompressedDb,
        min_support: MinSupport,
        prune: &dyn SearchPrune,
        sink: &mut dyn PatternSink,
    ) {
        let minsup = min_support.to_absolute(cdb.num_tuples());
        let flist = cdb.flist(minsup);
        if flist.is_empty() {
            return;
        }
        let view = cdb.to_ranks(&flist).retain_ranks(|r| prune.item_allowed(flist.item(r)));
        let mut emitter = RankEmitter::new(&flist);
        let mut ctx = Ctx {
            scratch: ScratchCounts::new(flist.len()),
            src: vec![SRC_NONE; flist.len()],
            minsup,
            // Subset enumeration would bypass the per-prefix checks;
            // pruned mining always uses plain recursion.
            shortcut: false,
        };
        mine_rec(&view, &mut ctx, prune, &mut emitter, sink);
    }
}

struct Ctx {
    scratch: ScratchCounts,
    src: Vec<u32>,
    minsup: u64,
    shortcut: bool,
}

/// Counting outcome of one (projected) view.
struct Counted {
    /// Locally frequent `(rank, count)`, ascending.
    frequent: Vec<(u32, u64)>,
    /// `Some(group index)` when every occurrence of every frequent rank
    /// lies in that single group's pattern (Lemma 3.1 applies).
    single_group: Option<usize>,
}

/// Counts item supports of `view`, tracking contribution sources.
fn count_view(view: &CompressedRankDb, ctx: &mut Ctx) -> Counted {
    let mut group_hits = 0u64;
    let mut touches = 0u64;
    for gi in 0..view.num_groups() {
        let c = view.group_count(gi);
        for &r in view.group_pattern(gi) {
            ctx.scratch.add(r, c);
            group_hits += 1;
            let s = &mut ctx.src[r as usize];
            *s = match *s {
                SRC_NONE => gi as u32,
                cur if cur == gi as u32 => cur,
                _ => SRC_MIXED,
            };
        }
        for o in view.group_outliers(gi) {
            for &r in o {
                ctx.scratch.add(r, 1);
                ctx.src[r as usize] = SRC_MIXED;
            }
            touches += o.len() as u64;
        }
    }
    for t in view.plain() {
        for &r in t {
            ctx.scratch.add(r, 1);
            ctx.src[r as usize] = SRC_MIXED;
        }
        touches += t.len() as u64;
    }
    metrics::add("mine.group_hits", group_hits);
    metrics::add("mine.tuple_touches", touches);
    metrics::add("mine.candidate_tests", ctx.scratch.touched().len() as u64);
    let mut frequent: Vec<(u32, u64)> = ctx
        .scratch
        .touched()
        .iter()
        .map(|&r| (r, ctx.scratch.get(r)))
        .filter(|&(_, c)| c >= ctx.minsup)
        .collect();
    frequent.sort_unstable_by_key(|&(r, _)| r);
    let single_group = match frequent.split_first() {
        Some((&(r0, _), rest)) => {
            let g0 = ctx.src[r0 as usize];
            if g0 != SRC_MIXED && rest.iter().all(|&(r, _)| ctx.src[r as usize] == g0) {
                Some(g0 as usize)
            } else {
                None
            }
        }
        None => None,
    };
    for &r in ctx.scratch.touched() {
        ctx.src[r as usize] = SRC_NONE;
    }
    ctx.scratch.clear();
    Counted { frequent, single_group }
}

/// Materializes the `r`-projection of a compressed view — one pass,
/// suffix slices copied straight into the projection's CSR sections.
fn project(view: &CompressedRankDb, r: u32) -> CompressedRankDb {
    let mut out = CompressedRankDb::empty(view.num_ranks());
    for g in 0..view.num_groups() {
        let pat = view.group_pattern(g);
        match pat.binary_search(&r) {
            Ok(pos) => {
                // Pattern item: every member joins the projection.
                let pattern = &pat[pos + 1..];
                if pattern.is_empty() {
                    for o in view.group_outliers(g) {
                        let cut = o.partition_point(|&x| x <= r);
                        if cut < o.len() {
                            out.plain.push_row(&o[cut..]);
                        }
                    }
                } else {
                    out.patterns.push_row(pattern);
                    let mut bare = view.group_bare(g);
                    for o in view.group_outliers(g) {
                        let cut = o.partition_point(|&x| x <= r);
                        if cut < o.len() {
                            out.outliers.push_row(&o[cut..]);
                        } else {
                            bare += 1;
                        }
                    }
                    out.close_group(bare);
                }
            }
            Err(ppos) => {
                // Only members whose outliers contain r join, keeping the
                // residual pattern (items after r).
                let pattern = &pat[ppos..];
                if pattern.is_empty() {
                    for o in view.group_outliers(g) {
                        if let Ok(opos) = o.binary_search(&r) {
                            if opos + 1 < o.len() {
                                out.plain.push_row(&o[opos + 1..]);
                            }
                        }
                    }
                } else {
                    let mut bare = 0u64;
                    let rows_before = out.outliers.len();
                    for o in view.group_outliers(g) {
                        if let Ok(opos) = o.binary_search(&r) {
                            if opos + 1 < o.len() {
                                out.outliers.push_row(&o[opos + 1..]);
                            } else {
                                bare += 1;
                            }
                        }
                    }
                    // Keep the group only if any member followed; an
                    // empty group left no rows behind, so there is
                    // nothing to roll back.
                    if bare > 0 || out.outliers.len() > rows_before {
                        out.patterns.push_row(pattern);
                        out.close_group(bare);
                    }
                }
            }
        }
    }
    for t in view.plain() {
        if let Ok(pos) = t.binary_search(&r) {
            if pos + 1 < t.len() {
                out.plain.push_row(&t[pos + 1..]);
            }
        }
    }
    out
}

/// Procedure RP-InMemory (paper Figure 3) with the Lemma 3.1 shortcut.
fn mine_rec(
    view: &CompressedRankDb,
    ctx: &mut Ctx,
    prune: &dyn SearchPrune,
    emitter: &mut RankEmitter<'_>,
    sink: &mut dyn PatternSink,
) {
    metrics::set_max("mine.max_depth", emitter.depth() as u64);
    let counted = count_view(view, ctx);
    if counted.frequent.is_empty() {
        return;
    }
    if ctx.shortcut && counted.single_group.is_some() && counted.frequent.len() <= 62 {
        for_each_subset(&counted.frequent, &mut |ranks, sup| emitter.emit_with(sink, ranks, sup));
        return;
    }
    for &(r, c) in &counted.frequent {
        emitter.push(r);
        if !prune.prefix_ok(emitter.prefix()) {
            emitter.pop();
            continue;
        }
        emitter.emit(sink, c);
        if prune.may_extend(emitter.depth()) {
            let sub = project(view, r);
            if sub.num_groups() > 0 || !sub.plain().is_empty() {
                metrics::add("mine.projected_dbs", 1);
                mine_rec(&sub, ctx, prune, emitter, sink);
            }
        }
        emitter.pop();
    }
}

impl RpMine {
    /// Compatibility wrapper over [`RecyclingMiner::mine_par`]. RP-Mine
    /// itself runs serially regardless of `threads` (it is the readable
    /// specification the parallel engines are differential-tested
    /// against), so the result is trivially identical to the serial run.
    pub fn mine_parallel(
        &self,
        cdb: &CompressedDb,
        min_support: MinSupport,
        threads: usize,
    ) -> PatternSet {
        assert!(threads >= 1, "at least one thread");
        self.mine_par(cdb, min_support, Parallelism::threads(threads))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::Compressor;
    use crate::utility::Strategy;
    use gogreen_data::{Item, TransactionDb};
    use gogreen_miners::mine_apriori;

    fn paper_setup(strategy: Strategy) -> CompressedDb {
        let db = TransactionDb::paper_example();
        let fp = mine_apriori(&db, MinSupport::Absolute(3));
        Compressor::new(strategy).compress(&db, &fp)
    }

    #[test]
    fn reproduces_paper_example_3() {
        let cdb = paper_setup(Strategy::Mcp);
        let fp = RpMine::default().mine(&cdb, MinSupport::Absolute(2));
        let oracle = mine_apriori(&TransactionDb::paper_example(), MinSupport::Absolute(2));
        assert!(fp.same_patterns_as(&oracle), "rp {} vs oracle {}", fp.len(), oracle.len());
        // Example 3 step (1): all d-extensions, supports 2.
        for ids in
            [&[3u32, 2][..], &[3, 5], &[3, 6], &[2, 3, 5], &[2, 3, 6], &[3, 5, 6], &[2, 3, 5, 6]]
        {
            let items: Vec<Item> = ids.iter().map(|&i| Item(i)).collect();
            let mut items = items;
            items.sort_unstable();
            assert_eq!(fp.support_of(&items), Some(2), "{ids:?}");
        }
    }

    #[test]
    fn exact_for_both_strategies_all_thresholds() {
        let db = TransactionDb::paper_example();
        for strategy in [Strategy::Mcp, Strategy::Mlp] {
            let cdb = paper_setup(strategy);
            for minsup in 1..=5 {
                let fp = RpMine::default().mine(&cdb, MinSupport::Absolute(minsup));
                let oracle = mine_apriori(&db, MinSupport::Absolute(minsup));
                assert!(fp.same_patterns_as(&oracle), "{strategy:?} minsup={minsup}");
            }
        }
    }

    #[test]
    fn uncompressed_cdb_equals_plain_mining() {
        let db = TransactionDb::from_rows(&[
            &[1, 2, 5],
            &[2, 4],
            &[2, 3],
            &[1, 2, 4],
            &[1, 3],
            &[2, 3],
            &[1, 3],
            &[1, 2, 3, 5],
            &[1, 2, 3],
        ]);
        let cdb = CompressedDb::uncompressed(&db);
        for minsup in 1..=4 {
            let fp = RpMine::default().mine(&cdb, MinSupport::Absolute(minsup));
            let oracle = mine_apriori(&db, MinSupport::Absolute(minsup));
            assert!(fp.same_patterns_as(&oracle), "minsup={minsup}");
        }
    }

    #[test]
    fn single_group_shortcut_fires_on_pure_projection() {
        // One group, no outliers, no plain: the root itself is single-group.
        let db = TransactionDb::from_rows(&[&[1, 2, 3], &[1, 2, 3], &[1, 2, 3], &[1, 2, 3]]);
        let fp_old = mine_apriori(&db, MinSupport::Absolute(4));
        let cdb = Compressor::new(Strategy::Mcp).compress(&db, &fp_old);
        assert_eq!(cdb.groups().len(), 1);
        assert_eq!(cdb.groups()[0].bare(), 4);
        let fp = RpMine::default().mine(&cdb, MinSupport::Absolute(2));
        assert_eq!(fp.len(), 7);
        assert_eq!(fp.support_of(&[Item(1), Item(2), Item(3)]), Some(4));
    }

    #[test]
    fn recycled_patterns_need_not_be_frequent_at_new_threshold() {
        // Compress with patterns mined at support 1 (including rare ones):
        // mining at higher thresholds must still be exact.
        let db = TransactionDb::from_rows(&[&[1, 2, 3], &[1, 2], &[4, 5], &[1, 4, 5], &[2, 3]]);
        let fp_old = mine_apriori(&db, MinSupport::Absolute(1));
        let cdb = Compressor::new(Strategy::Mcp).compress(&db, &fp_old);
        for minsup in 1..=3 {
            let fp = RpMine::default().mine(&cdb, MinSupport::Absolute(minsup));
            let oracle = mine_apriori(&db, MinSupport::Absolute(minsup));
            assert!(fp.same_patterns_as(&oracle), "minsup={minsup}");
        }
    }

    #[test]
    fn empty_cdb_yields_nothing() {
        let cdb = CompressedDb::uncompressed(&TransactionDb::new());
        assert!(RpMine::default().mine(&cdb, MinSupport::Absolute(1)).is_empty());
    }

    fn rows(v: gogreen_data::TupleSlices<'_>) -> Vec<Vec<u32>> {
        v.iter().map(|t| t.to_vec()).collect()
    }

    #[test]
    fn projection_moves_whole_group_on_pattern_item() {
        let mut view = CompressedRankDb::empty(4);
        view.push_group(&[1, 3], [&[0u32, 2][..], &[2]], 1);
        view.push_plain(&[1, 2]);
        let p = project(&view, 1);
        // Group: pattern {3}, outliers filtered to {2},{2}; bare stays 1.
        assert_eq!(p.num_groups(), 1);
        assert_eq!(p.group_pattern(0), &[3]);
        assert_eq!(rows(p.group_outliers(0)), vec![vec![2], vec![2]]);
        assert_eq!(p.group_bare(0), 1);
        // Plain tuple [1,2] -> [2].
        assert_eq!(rows(p.plain()), vec![vec![2]]);
    }

    #[test]
    fn projection_takes_partial_group_on_outlier_item() {
        let mut view = CompressedRankDb::empty(4);
        view.push_group(&[1, 3], [&[0u32, 2][..], &[2], &[0]], 2);
        // Project on rank 0 (outlier item): members 1 and 3 contain it.
        let p = project(&view, 0);
        assert_eq!(p.num_groups(), 1);
        assert_eq!(p.group_pattern(0), &[1, 3]);
        assert_eq!(rows(p.group_outliers(0)), vec![vec![2]]);
        assert_eq!(p.group_bare(0), 1); // member 3's outliers exhausted
        assert!(p.plain().is_empty());
    }

    #[test]
    fn projection_degrades_exhausted_pattern_to_plain() {
        let mut view = CompressedRankDb::empty(4);
        view.push_group(&[1], [&[2u32, 3][..], &[0]], 1);
        let p = project(&view, 1);
        assert_eq!(p.num_groups(), 0);
        assert_eq!(rows(p.plain()), vec![vec![2, 3]]);
    }
}
