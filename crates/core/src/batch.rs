//! Batched multi-query mining: one shared pass answers a fleet of
//! (ξ, constraint) queries.
//!
//! The paper's motivation (§2) is a *multi-user* mining system where one
//! user's work pays for another's query. [`QueryBatch`] is the
//! synchronous form of that bargain: k queries on the same dataset —
//! each with its own minimum support ξᵢ and [`ConstraintSet`] — are
//! coalesced into **one** mining pass at ξ_min = minᵢ ξᵢ, and the
//! emitted stream is demultiplexed through per-query filters (support
//! ≥ ξᵢ plus the query's residual constraints) so every member's output
//! stream is **byte-identical** to running it alone.
//!
//! Why the demuxed stream matches a solo run, byte for byte: raw engine
//! emission order is *not* threshold-stable (FP-growth's single-path
//! subset shortcut fires at tree shapes that depend on ξ), so the
//! demultiplexer normalizes — each member's accepted patterns are
//! delivered in canonical (lexicographic item) order, the same order
//! pattern files use. The solo reference ([`QueryBatch::run_solo`])
//! flows through the identical normalization, so member streams are
//! byte-identical by construction, and *content* exactness reduces to
//! anti-monotonicity of support: the ξ_min pass emits every pattern any
//! member could want, and the filter keeps exactly support ≥ ξᵢ plus
//! the member's residual constraints.
//!
//! Three design rules keep the pass exact and deterministic:
//!
//! * **Pushdown split.** Only the batch-common anti-monotone envelope is
//!   pushed into the shared pass: when *every* admitted query carries a
//!   [`Constraint::SubsetOf`], the union of their allowed sets is
//!   materialized as an item-filtered database (empty rows kept, so
//!   lengths and thresholds are unchanged). Everything else — per-query
//!   support, lengths, sums, the individual subset constraints — is
//!   checked at demux time.
//! * **Bound-driven admission.** Widening the shared pass for a query
//!   must not cost more than answering it alone. [`QueryBatch::plan`]
//!   prices a pass with the level-1 touch count plus the Kruskal–Katona
//!   level-2 candidate bound ([`gogreen_miners::bound`]) and admits a
//!   query only when the *marginal* shared cost is at most its solo
//!   cost; the rest run solo inside the same call (`batch.rejected`).
//! * **Determinism.** The shared pass runs through each engine's
//!   `mine_into_par` fan-out (`fan_out_ordered` replay), so the stream
//!   reaching the demultiplexer — and therefore every member stream and
//!   every `batch.*` metric — is identical at any `--threads N`.
//!
//! When no envelope was pushed, the shared stream is the complete
//! frequent set at ξ_min; [`QueryBatch::run_with_store`] tees it into a
//! [`PatternStore`] so every member's threshold (and any future query
//! at ξ ≥ ξ_min) is answerable by filtering.

use crate::engine::{engine_named, EngineOpts, MiningEngine};
use crate::store::PatternStore;
use crate::CompressedDb;
use gogreen_constraints::{Constraint, ConstraintSet, ItemAttributes};
use gogreen_data::{
    CollectSink, CsrTuples, Item, MinSupport, PatternSet, PatternSink, TransactionDb,
};
use gogreen_miners::bound::candidate_bound;
use gogreen_obs::{histogram, metrics, span};
use gogreen_util::pool::Parallelism;

/// One member of a batch: a label (used by front ends to name output
/// streams) and the query's full constraint set.
#[derive(Debug, Clone)]
pub struct BatchQuery {
    label: String,
    constraints: ConstraintSet,
}

impl BatchQuery {
    /// A labelled query.
    pub fn new(label: impl Into<String>, constraints: ConstraintSet) -> Self {
        BatchQuery { label: label.into(), constraints }
    }

    /// The query's label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The query's constraints (minimum support + residuals).
    pub fn constraints(&self) -> &ConstraintSet {
        &self.constraints
    }

    /// The intersection of this query's `SubsetOf` item sets, sorted
    /// ascending — its own anti-monotone item envelope. `None` when the
    /// query has no subset constraint (every item allowed).
    fn allowed_items(&self) -> Option<Vec<Item>> {
        let mut acc: Option<Vec<Item>> = None;
        for c in self.constraints.others() {
            if let Constraint::SubsetOf(s) = c {
                acc = Some(match acc {
                    None => s.clone(),
                    Some(prev) => intersect_sorted(&prev, s),
                });
            }
        }
        acc
    }
}

/// The admission decision for one batch on one substrate.
#[derive(Debug, Clone)]
pub struct BatchPlan {
    /// Per-query absolute threshold (index-aligned with the batch).
    pub xi_abs: Vec<u64>,
    /// The coalesced threshold of the shared pass: minᵢ ξᵢ over the
    /// admitted queries.
    pub xi_min: u64,
    /// Indices answered by the shared pass, ascending.
    pub admitted: Vec<usize>,
    /// Indices the admission bound priced out, ascending. They are
    /// answered by solo passes inside the same run.
    pub rejected: Vec<usize>,
    /// The pushed item envelope (union of the admitted queries' allowed
    /// sets, sorted), when every admitted query has one.
    pub envelope: Option<Vec<Item>>,
}

/// What one batch run did.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// The admission plan the run executed.
    pub plan: BatchPlan,
    /// Patterns in the shared stream seen by the demultiplexer.
    pub shared_patterns: u64,
    /// The threshold published into the [`PatternStore`], when a store
    /// was attached and the shared pass was complete (no envelope).
    pub published_at: Option<u64>,
}

/// A batch run's collected per-query results plus its report.
#[derive(Debug)]
pub struct BatchOutcome {
    /// Result set per query, index-aligned with the batch.
    pub results: Vec<PatternSet>,
    /// The run report.
    pub report: BatchReport,
}

/// A fleet of queries coalesced into one mining pass. See the module
/// docs for the coalescing, pushdown, and admission rules.
///
/// ```
/// use gogreen_core::batch::{BatchQuery, QueryBatch};
/// use gogreen_constraints::ConstraintSet;
/// use gogreen_data::{MinSupport, TransactionDb};
///
/// let mut batch = QueryBatch::new();
/// batch.push(BatchQuery::new("a", ConstraintSet::support_only(MinSupport::Absolute(3))));
/// batch.push(BatchQuery::new("b", ConstraintSet::support_only(MinSupport::Absolute(2))));
/// let out = batch.run(&TransactionDb::paper_example(), "hmine").unwrap();
/// assert_eq!(out.results.len(), 2);
/// assert_eq!(out.report.plan.xi_min, 2);
/// ```
#[derive(Debug, Default)]
pub struct QueryBatch {
    queries: Vec<BatchQuery>,
    attrs: ItemAttributes,
    par: Parallelism,
    opts: EngineOpts,
}

impl QueryBatch {
    /// An empty batch (serial, no attributes).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a query.
    pub fn push(&mut self, q: BatchQuery) {
        self.queries.push(q);
    }

    /// Attaches item attributes for aggregate residual constraints.
    pub fn with_attributes(mut self, attrs: ItemAttributes) -> Self {
        self.attrs = attrs;
        self
    }

    /// Sets the worker-thread budget of the shared pass. Streams and
    /// `batch.*` metrics are identical for every setting.
    pub fn with_parallelism(mut self, par: Parallelism) -> Self {
        self.par = par;
        self
    }

    /// Per-invocation engine options (`--vt-repr` etc.).
    pub fn with_engine_opts(mut self, opts: EngineOpts) -> Self {
        self.opts = opts;
        self
    }

    /// Queries in the batch.
    pub fn queries(&self) -> &[BatchQuery] {
        &self.queries
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the batch has no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Prices the shared pass and decides admission. `counts` are the
    /// substrate's per-item supports, `db_len` its tuple count (for
    /// relative-threshold conversion); `allow_envelope` is false on
    /// substrates without an item-filter path (the compressed database),
    /// which also makes admission purely support-driven.
    ///
    /// Greedy and deterministic: queries are considered by descending
    /// ξᵢ (ties by index); the first seeds the pass, and each next query
    /// joins iff the marginal pass cost `Δ = cost(ξ_min∪i) − cost(ξ_min)`
    /// is at most its solo cost. A pass at (ξ, envelope) is priced as
    /// the encoded level-1 touches plus the Kruskal–Katona level-2
    /// candidate bound.
    pub fn plan(&self, counts: &[u64], db_len: usize, allow_envelope: bool) -> BatchPlan {
        assert!(!self.queries.is_empty(), "cannot plan an empty batch");
        let k = self.queries.len();
        let xi_abs: Vec<u64> =
            self.queries.iter().map(|q| q.constraints.min_support().to_absolute(db_len)).collect();
        let allowed: Vec<Option<Vec<Item>>> = if allow_envelope {
            self.queries.iter().map(|q| q.allowed_items()).collect()
        } else {
            vec![None; k]
        };
        let mut order: Vec<usize> = (0..k).collect();
        order.sort_by(|&a, &b| xi_abs[b].cmp(&xi_abs[a]).then(a.cmp(&b)));

        let seed = order[0];
        let mut admitted = vec![seed];
        let mut rejected = Vec::new();
        let mut xi_cur = xi_abs[seed];
        let mut allowed_cur = allowed[seed].clone();
        let mut cost_cur = pass_cost(counts, xi_cur, allowed_cur.as_deref());
        for &i in &order[1..] {
            let xi_new = xi_cur.min(xi_abs[i]);
            let allowed_new = union_opt(allowed_cur.as_deref(), allowed[i].as_deref());
            let cost_new = pass_cost(counts, xi_new, allowed_new.as_deref());
            let solo = pass_cost(counts, xi_abs[i], allowed[i].as_deref());
            if cost_new.saturating_sub(cost_cur) <= solo {
                admitted.push(i);
                xi_cur = xi_new;
                allowed_cur = allowed_new;
                cost_cur = cost_new;
            } else {
                rejected.push(i);
            }
        }
        admitted.sort_unstable();
        rejected.sort_unstable();
        BatchPlan { xi_abs, xi_min: xi_cur, admitted, rejected, envelope: allowed_cur }
    }

    /// Runs the batch on a raw database, streaming each query's result
    /// into its sink (`sinks` is index-aligned with the batch). Every
    /// member stream is byte-identical to [`Self::run_solo`] on the same
    /// engine.
    pub fn run_into(
        &self,
        db: &TransactionDb,
        algo: &str,
        sinks: &mut [&mut dyn PatternSink],
    ) -> Result<BatchReport, String> {
        self.run_raw_impl(db, algo, sinks, None)
    }

    /// Like [`Self::run_into`], collecting per-query [`PatternSet`]s.
    pub fn run(&self, db: &TransactionDb, algo: &str) -> Result<BatchOutcome, String> {
        self.collect(|sinks| self.run_raw_impl(db, algo, sinks, None))
    }

    /// Like [`Self::run`], additionally publishing the shared-pass
    /// result (the complete frequent set at ξ_min) into `store` under
    /// `dataset`, when the pass was complete (no pushed envelope).
    pub fn run_with_store(
        &self,
        db: &TransactionDb,
        algo: &str,
        store: &PatternStore,
        dataset: &str,
    ) -> Result<BatchOutcome, String> {
        self.collect(|sinks| self.run_raw_impl(db, algo, sinks, Some((store, dataset))))
    }

    /// Runs the batch on a compressed (recycled) substrate. No item
    /// envelope is pushed — admission is purely support-driven — but
    /// coalescing, demux, and determinism guarantees are identical.
    pub fn run_recycled_into(
        &self,
        cdb: &CompressedDb,
        algo: &str,
        sinks: &mut [&mut dyn PatternSink],
    ) -> Result<BatchReport, String> {
        self.run_recycled_impl(cdb, algo, sinks, None)
    }

    /// Like [`Self::run_recycled_into`], collecting per-query sets.
    pub fn run_recycled(&self, cdb: &CompressedDb, algo: &str) -> Result<BatchOutcome, String> {
        self.collect(|sinks| self.run_recycled_impl(cdb, algo, sinks, None))
    }

    /// Like [`Self::run_recycled`], publishing the ξ_min set into
    /// `store`.
    pub fn run_recycled_with_store(
        &self,
        cdb: &CompressedDb,
        algo: &str,
        store: &PatternStore,
        dataset: &str,
    ) -> Result<BatchOutcome, String> {
        self.collect(|sinks| self.run_recycled_impl(cdb, algo, sinks, Some((store, dataset))))
    }

    /// The solo reference: answers query `idx` alone — one pass at ξᵢ
    /// through the same per-query filter the demultiplexer applies.
    /// This is the stream batched runs are byte-compared against.
    pub fn run_solo(
        &self,
        idx: usize,
        db: &TransactionDb,
        algo: &str,
        sink: &mut dyn PatternSink,
    ) -> Result<(), String> {
        let engine = lookup(algo)?;
        let q = self.queries.get(idx).ok_or_else(|| format!("no query #{idx} in the batch"))?;
        let xi = q.constraints.min_support().to_absolute(db.len());
        let mut demux = self.demux_for(&[idx], &[xi], sink, None, false);
        engine.raw_with(self.opts).mine_into_par(
            db,
            MinSupport::Absolute(xi),
            self.par,
            &mut demux,
        );
        demux.flush();
        Ok(())
    }

    /// [`Self::run_solo`] on the compressed substrate.
    pub fn run_solo_recycled(
        &self,
        idx: usize,
        cdb: &CompressedDb,
        algo: &str,
        sink: &mut dyn PatternSink,
    ) -> Result<(), String> {
        let engine = lookup(algo)?;
        let rec = engine
            .recycling_with(self.par, self.opts)
            .ok_or_else(|| format!("engine '{algo}' has no recycling pair"))?;
        let q = self.queries.get(idx).ok_or_else(|| format!("no query #{idx} in the batch"))?;
        let xi = q.constraints.min_support().to_absolute(cdb.num_tuples());
        let mut demux = self.demux_for(&[idx], &[xi], sink, None, false);
        rec.mine_into_par(cdb, MinSupport::Absolute(xi), self.par, &mut demux);
        demux.flush();
        Ok(())
    }

    fn run_raw_impl(
        &self,
        db: &TransactionDb,
        algo: &str,
        sinks: &mut [&mut dyn PatternSink],
        store: Option<(&PatternStore, &str)>,
    ) -> Result<BatchReport, String> {
        let engine = self.validate(algo, sinks.len())?;
        let counts = db.item_supports();
        let plan = self.plan(&counts, db.len(), true);
        let mut sp = span("batch");
        self.count_plan(&plan, &mut sp);

        let mut tee = (store.is_some() && plan.envelope.is_none()).then(CollectSink::new);
        let shared_patterns = {
            let mut demux = self.demux_members(&plan, sinks, tee.as_mut());
            let miner = engine.raw_with(self.opts);
            let xi = MinSupport::Absolute(plan.xi_min);
            match &plan.envelope {
                Some(env) => {
                    let restricted = restrict_db(db, env);
                    miner.mine_into_par(&restricted, xi, self.par, &mut demux);
                }
                None => miner.mine_into_par(db, xi, self.par, &mut demux),
            }
            demux.flush()
        };
        metrics::add("batch.demux_patterns", shared_patterns);

        // Queries priced out of the shared pass are answered solo, with
        // the same filter machinery (and therefore identical streams).
        for &i in &plan.rejected {
            let mut demux = self.demux_for(&[i], &[plan.xi_abs[i]], &mut *sinks[i], None, false);
            engine.raw_with(self.opts).mine_into_par(
                db,
                MinSupport::Absolute(plan.xi_abs[i]),
                self.par,
                &mut demux,
            );
            demux.flush();
        }

        let published_at = match (store, tee) {
            (Some((store, dataset)), Some(t)) => {
                store.publish(dataset, plan.xi_min, t.into_set());
                Some(plan.xi_min)
            }
            _ => None,
        };
        sp.field("shared_patterns", shared_patterns);
        Ok(BatchReport { plan, shared_patterns, published_at })
    }

    fn run_recycled_impl(
        &self,
        cdb: &CompressedDb,
        algo: &str,
        sinks: &mut [&mut dyn PatternSink],
        store: Option<(&PatternStore, &str)>,
    ) -> Result<BatchReport, String> {
        let engine = self.validate(algo, sinks.len())?;
        let rec = engine
            .recycling_with(self.par, self.opts)
            .ok_or_else(|| format!("engine '{algo}' has no recycling pair"))?;
        let counts = cdb.item_supports();
        let plan = self.plan(&counts, cdb.num_tuples(), false);
        let mut sp = span("batch");
        self.count_plan(&plan, &mut sp);

        let mut tee = store.is_some().then(CollectSink::new);
        let shared_patterns = {
            let mut demux = self.demux_members(&plan, sinks, tee.as_mut());
            rec.mine_into_par(cdb, MinSupport::Absolute(plan.xi_min), self.par, &mut demux);
            demux.flush()
        };
        metrics::add("batch.demux_patterns", shared_patterns);

        for &i in &plan.rejected {
            let mut demux = self.demux_for(&[i], &[plan.xi_abs[i]], &mut *sinks[i], None, false);
            rec.mine_into_par(cdb, MinSupport::Absolute(plan.xi_abs[i]), self.par, &mut demux);
            demux.flush();
        }

        let published_at = match (store, tee) {
            (Some((store, dataset)), Some(t)) => {
                store.publish(dataset, plan.xi_min, t.into_set());
                Some(plan.xi_min)
            }
            _ => None,
        };
        sp.field("shared_patterns", shared_patterns);
        Ok(BatchReport { plan, shared_patterns, published_at })
    }

    fn validate(&self, algo: &str, num_sinks: usize) -> Result<&'static dyn MiningEngine, String> {
        if self.queries.is_empty() {
            return Err("batch has no queries".into());
        }
        if num_sinks != self.queries.len() {
            return Err(format!(
                "batch has {} queries but {} sinks were supplied",
                self.queries.len(),
                num_sinks
            ));
        }
        lookup(algo)
    }

    fn count_plan(&self, plan: &BatchPlan, sp: &mut gogreen_obs::Span) {
        metrics::add("batch.queries", self.queries.len() as u64);
        metrics::add("batch.rejected", plan.rejected.len() as u64);
        metrics::add("batch.shared_passes", 1);
        sp.field("queries", self.queries.len())
            .field("admitted", plan.admitted.len())
            .field("rejected", plan.rejected.len())
            .field("xi_min", plan.xi_min);
    }

    fn demux_members<'a, 'b>(
        &'a self,
        plan: &BatchPlan,
        sinks: &'a mut [&'b mut dyn PatternSink],
        tee: Option<&'a mut CollectSink>,
    ) -> DemuxSink<'a, 'b> {
        let members = plan
            .admitted
            .iter()
            .map(|&i| MemberFilter {
                sink_idx: i,
                xi: plan.xi_abs[i],
                residual: self.queries[i].constraints.others().to_vec(),
                buffer: Vec::new(),
            })
            .collect();
        DemuxSink {
            members,
            sinks: Fan::Many(sinks),
            attrs: &self.attrs,
            scratch: Vec::new(),
            tee,
            record: true,
            emitted: 0,
        }
    }

    fn demux_for<'a, 'b>(
        &'a self,
        indices: &[usize],
        xis: &[u64],
        sink: &'a mut (dyn PatternSink + 'b),
        tee: Option<&'a mut CollectSink>,
        record: bool,
    ) -> DemuxSink<'a, 'b> {
        let members = indices
            .iter()
            .zip(xis)
            .map(|(&i, &xi)| MemberFilter {
                sink_idx: 0,
                xi,
                residual: self.queries[i].constraints.others().to_vec(),
                buffer: Vec::new(),
            })
            .collect();
        DemuxSink {
            members,
            sinks: Fan::One(sink),
            attrs: &self.attrs,
            scratch: Vec::new(),
            tee,
            record,
            emitted: 0,
        }
    }

    fn collect(
        &self,
        run: impl FnOnce(&mut [&mut dyn PatternSink]) -> Result<BatchReport, String>,
    ) -> Result<BatchOutcome, String> {
        let mut collectors: Vec<CollectSink> =
            (0..self.queries.len()).map(|_| CollectSink::new()).collect();
        let mut refs: Vec<&mut dyn PatternSink> =
            collectors.iter_mut().map(|c| c as &mut dyn PatternSink).collect();
        let report = run(&mut refs)?;
        drop(refs);
        let results = collectors.into_iter().map(CollectSink::into_set).collect();
        Ok(BatchOutcome { results, report })
    }
}

/// One admitted query's demux filter plus its accepted-pattern buffer
/// (delivered in canonical order at flush time).
struct MemberFilter {
    sink_idx: usize,
    xi: u64,
    residual: Vec<Constraint>,
    buffer: Vec<(Vec<Item>, u64)>,
}

/// The demux target: the full per-query sink array for a shared pass,
/// or a single sink for solo passes.
enum Fan<'a, 'b> {
    Many(&'a mut [&'b mut dyn PatternSink]),
    One(&'a mut (dyn PatternSink + 'b)),
}

impl Fan<'_, '_> {
    fn get(&mut self, idx: usize) -> &mut dyn PatternSink {
        match self {
            Fan::Many(sinks) => &mut *sinks[idx],
            Fan::One(sink) => &mut **sink,
        }
    }
}

/// Replays the (rank-ordered, thread-invariant) shared stream through
/// every member filter, buffering accepts; [`DemuxSink::flush`] then
/// delivers each member's patterns in canonical (lexicographic item)
/// order. Runs single-threaded after `fan_out_ordered` replay, so all
/// `batch.*` observations are thread-invariant.
struct DemuxSink<'a, 'b> {
    members: Vec<MemberFilter>,
    sinks: Fan<'a, 'b>,
    attrs: &'a ItemAttributes,
    /// Filters and buffers need sorted items; miners emit DFS push
    /// order. Sorted once per emission.
    scratch: Vec<Item>,
    tee: Option<&'a mut CollectSink>,
    record: bool,
    emitted: u64,
}

impl DemuxSink<'_, '_> {
    /// Delivers every member's buffered patterns in canonical order and
    /// returns the shared-stream emission count.
    fn flush(mut self) -> u64 {
        for m in &mut self.members {
            m.buffer.sort_unstable_by(|a, b| a.0.cmp(&b.0));
            let sink = self.sinks.get(m.sink_idx);
            for (items, support) in &m.buffer {
                sink.emit(items, *support);
            }
        }
        self.emitted
    }
}

impl PatternSink for DemuxSink<'_, '_> {
    fn emit(&mut self, items: &[Item], support: u64) {
        self.emitted += 1;
        if let Some(tee) = self.tee.as_deref_mut() {
            tee.emit(items, support);
        }
        self.scratch.clear();
        self.scratch.extend_from_slice(items);
        self.scratch.sort_unstable();
        let mut accepted = 0u64;
        for m in &mut self.members {
            if support < m.xi {
                continue;
            }
            if !m.residual.iter().all(|c| c.satisfied(&self.scratch, self.attrs)) {
                continue;
            }
            m.buffer.push((self.scratch.clone(), support));
            accepted += 1;
        }
        if self.record {
            histogram::observe("batch.fanout", accepted);
        }
    }
}

fn lookup(algo: &str) -> Result<&'static dyn MiningEngine, String> {
    engine_named(algo).ok_or_else(|| format!("unknown engine '{algo}'"))
}

/// Prices one pass at (ξ, envelope): total level-1 touches of the
/// surviving items plus the Kruskal–Katona bound on level-2 candidates.
fn pass_cost(counts: &[u64], xi: u64, allowed: Option<&[Item]>) -> u64 {
    let mut touches = 0u64;
    let mut n1 = 0u64;
    for (idx, &c) in counts.iter().enumerate() {
        if c >= xi && allowed.is_none_or(|a| a.binary_search(&Item(idx as u32)).is_ok()) {
            touches = touches.saturating_add(c);
            n1 += 1;
        }
    }
    touches.saturating_add(candidate_bound(n1, 1))
}

/// Union of two optional sorted item sets; `None` (everything allowed)
/// absorbs.
fn union_opt(a: Option<&[Item]>, b: Option<&[Item]>) -> Option<Vec<Item>> {
    let (a, b) = (a?, b?);
    let mut out = Vec::with_capacity(a.len() + b.len());
    out.extend_from_slice(a);
    out.extend_from_slice(b);
    out.sort_unstable();
    out.dedup();
    Some(out)
}

fn intersect_sorted(a: &[Item], b: &[Item]) -> Vec<Item> {
    a.iter().copied().filter(|it| b.binary_search(it).is_ok()).collect()
}

/// Materializes the pushed envelope: every row keeps only allowed items.
/// Rows that empty out are *kept*, so the tuple count — and with it
/// every relative-threshold conversion — is unchanged.
fn restrict_db(db: &TransactionDb, envelope: &[Item]) -> TransactionDb {
    let mut tuples = CsrTuples::with_capacity(db.len(), 0);
    let mut row = Vec::new();
    for t in db.iter() {
        row.clear();
        row.extend(t.iter().copied().filter(|it| envelope.binary_search(it).is_ok()));
        tuples.push_row(&row);
    }
    TransactionDb::from_csr(tuples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gogreen_data::FnSink;
    use gogreen_miners::mine_apriori;

    fn q(label: &str, minsup: u64) -> BatchQuery {
        BatchQuery::new(label, ConstraintSet::support_only(MinSupport::Absolute(minsup)))
    }

    fn stream(run: impl FnOnce(&mut dyn PatternSink)) -> Vec<(Vec<Item>, u64)> {
        let mut out = Vec::new();
        let mut sink = FnSink(|items: &[Item], support| out.push((items.to_vec(), support)));
        run(&mut sink);
        out
    }

    #[test]
    fn pure_support_batch_matches_oracle_per_query() {
        let db = TransactionDb::paper_example();
        let mut batch = QueryBatch::new();
        for (label, xi) in [("a", 4), ("b", 2), ("c", 3)] {
            batch.push(q(label, xi));
        }
        let out = batch.run(&db, "hmine").unwrap();
        assert_eq!(out.report.plan.xi_min, 2);
        assert!(out.report.plan.rejected.is_empty());
        for (i, xi) in [4u64, 2, 3].into_iter().enumerate() {
            let oracle = mine_apriori(&db, MinSupport::Absolute(xi));
            assert!(out.results[i].same_patterns_as(&oracle), "query {i} at xi={xi}");
        }
    }

    #[test]
    fn batched_streams_are_byte_identical_to_solo() {
        let db = TransactionDb::paper_example();
        let mut batch = QueryBatch::new();
        batch.push(q("a", 3));
        batch.push(BatchQuery::new(
            "b",
            ConstraintSet::support_only(MinSupport::Absolute(2)).with(Constraint::MaxLength(2)),
        ));
        for algo in ["hmine", "fp", "tp", "vt", "naive"] {
            let mut out0 = Vec::new();
            let mut out1 = Vec::new();
            {
                let mut s0 =
                    FnSink(|items: &[Item], support: u64| out0.push((items.to_vec(), support)));
                let mut s1 =
                    FnSink(|items: &[Item], support: u64| out1.push((items.to_vec(), support)));
                let mut sinks: [&mut dyn PatternSink; 2] = [&mut s0, &mut s1];
                batch.run_into(&db, algo, &mut sinks).unwrap();
            }
            let solo0 = stream(|sink| batch.run_solo(0, &db, algo, sink).unwrap());
            let solo1 = stream(|sink| batch.run_solo(1, &db, algo, sink).unwrap());
            assert_eq!(out0, solo0, "{algo} query 0");
            assert_eq!(out1, solo1, "{algo} query 1");
        }
    }

    #[test]
    fn residual_constraints_filter_at_demux() {
        let db = TransactionDb::paper_example();
        let mut batch = QueryBatch::new();
        batch.push(BatchQuery::new(
            "short",
            ConstraintSet::support_only(MinSupport::Absolute(2)).with(Constraint::MaxLength(1)),
        ));
        batch.push(BatchQuery::new(
            "sub",
            ConstraintSet::support_only(MinSupport::Absolute(2)).with(Constraint::SubsetOf(vec![
                Item(0),
                Item(2),
                Item(4),
            ])),
        ));
        let out = batch.run(&db, "fp").unwrap();
        assert!(out.results[0].iter().all(|p| p.len() == 1));
        assert!(out.results[1].iter().all(|p| p.items().iter().all(|it| [
            Item(0),
            Item(2),
            Item(4)
        ]
        .contains(it))));
        let oracle = mine_apriori(&db, MinSupport::Absolute(2));
        assert!(out.results[0].same_patterns_as(&oracle.filter(|p| p.len() == 1)));
    }

    #[test]
    fn envelope_is_pushed_only_when_every_query_has_one() {
        let db = TransactionDb::paper_example();
        let sub = |items: Vec<Item>, xi| {
            ConstraintSet::support_only(MinSupport::Absolute(xi)).with(Constraint::SubsetOf(items))
        };
        let mut all_sub = QueryBatch::new();
        all_sub.push(BatchQuery::new("a", sub(vec![Item(0), Item(2)], 2)));
        all_sub.push(BatchQuery::new("b", sub(vec![Item(2), Item(4)], 3)));
        let out = all_sub.run(&db, "hmine").unwrap();
        assert_eq!(out.report.plan.envelope.as_deref(), Some(&[Item(0), Item(2), Item(4)][..]));
        // Results under the pushed envelope are still exact per query.
        let attrs = ItemAttributes::new();
        for idx in 0..2 {
            let cs = all_sub.queries[idx].constraints();
            let oracle =
                mine_apriori(&db, MinSupport::Absolute(cs.min_support().to_absolute(db.len())));
            let want =
                oracle.filter(|p| cs.others().iter().all(|c| c.satisfied(p.items(), &attrs)));
            assert!(out.results[idx].same_patterns_as(&want), "query {idx}");
        }

        let mut mixed = QueryBatch::new();
        mixed.push(BatchQuery::new("a", sub(vec![Item(0), Item(2)], 2)));
        mixed.push(q("plain", 3));
        let out = mixed.run(&db, "hmine").unwrap();
        assert!(out.report.plan.envelope.is_none());
    }

    #[test]
    fn admission_rejects_an_envelope_destroying_query() {
        // Synthetic supports: ten heavy items and two rare ones. A wide
        // high-ξ seed prices cheaply; adding a narrow very-low-ξ query
        // would drag the whole alphabet down to ξ=2, costing far more
        // than its tiny solo pass.
        let counts = vec![10, 10, 10, 10, 10, 10, 10, 10, 10, 10, 2, 2];
        let mut batch = QueryBatch::new();
        batch.push(q("wide", 10));
        batch.push(BatchQuery::new(
            "narrow",
            ConstraintSet::support_only(MinSupport::Absolute(2))
                .with(Constraint::SubsetOf(vec![Item(10), Item(11)])),
        ));
        let plan = batch.plan(&counts, 100, true);
        assert_eq!(plan.admitted, vec![0]);
        assert_eq!(plan.rejected, vec![1]);
        assert_eq!(plan.xi_min, 10);

        // Without the envelope (support-only planning) nothing rejects.
        let plan = batch.plan(&counts, 100, false);
        assert!(plan.rejected.is_empty());
        assert_eq!(plan.xi_min, 2);
    }

    #[test]
    fn rejected_queries_still_get_exact_answers() {
        let db = TransactionDb::paper_example();
        // Force a rejection-shaped batch on the real database by
        // pairing a full-alphabet query with a narrow one; whether the
        // bound rejects depends on counts, so assert exactness either
        // way and verify the solo fallback path via a synthetic plan.
        let mut batch = QueryBatch::new();
        batch.push(q("wide", 4));
        batch.push(BatchQuery::new(
            "narrow",
            ConstraintSet::support_only(MinSupport::Absolute(2))
                .with(Constraint::SubsetOf(vec![Item(3), Item(5)])),
        ));
        let out = batch.run(&db, "hmine").unwrap();
        let oracle4 = mine_apriori(&db, MinSupport::Absolute(4));
        assert!(out.results[0].same_patterns_as(&oracle4));
        let want = mine_apriori(&db, MinSupport::Absolute(2))
            .filter(|p| p.items().iter().all(|it| [Item(3), Item(5)].contains(it)));
        assert!(out.results[1].same_patterns_as(&want));
    }

    #[test]
    fn recycled_batch_matches_raw_batch() {
        let db = TransactionDb::paper_example();
        let fp_old = mine_apriori(&db, MinSupport::Absolute(3));
        let cdb = crate::Compressor::new(crate::Strategy::Mcp).compress(&db, &fp_old);
        let mut batch = QueryBatch::new();
        batch.push(q("a", 2));
        batch.push(q("b", 4));
        let raw = batch.run(&db, "hmine").unwrap();
        let rec = batch.run_recycled(&cdb, "hmine").unwrap();
        for idx in 0..2 {
            assert!(raw.results[idx].same_patterns_as(&rec.results[idx]), "query {idx}");
        }
        assert!(batch.run_recycled(&cdb, "apriori").is_err());
    }

    #[test]
    fn store_receives_the_shared_result_once() {
        let db = TransactionDb::paper_example();
        let store = PatternStore::new();
        let mut batch = QueryBatch::new();
        batch.push(q("a", 3));
        batch.push(q("b", 2));
        let out = batch.run_with_store(&db, "hmine", &store, "paper").unwrap();
        assert_eq!(out.report.published_at, Some(2));
        let published = store.get("paper", 2).expect("published at xi_min");
        assert!(published.same_patterns_as(&mine_apriori(&db, MinSupport::Absolute(2))));
        assert_eq!(store.thresholds("paper"), vec![2]);
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        let db = TransactionDb::paper_example();
        let empty = QueryBatch::new();
        assert!(empty.run(&db, "hmine").is_err());
        let mut batch = QueryBatch::new();
        batch.push(q("a", 2));
        assert!(batch.run(&db, "bogus").is_err());
        let mut one_sink = CollectSink::new();
        let mut sinks: [&mut dyn PatternSink; 1] = [&mut one_sink];
        batch.push(q("b", 3));
        assert!(batch.run_into(&db, "hmine", &mut sinks).is_err());
    }
}
