//! A shared pattern store for multi-user recycling.
//!
//! The paper notes (§2) that "when there are many users in a data mining
//! system, the frequent patterns discovered by one user also provide
//! opportunity for the others to recycle". [`PatternStore`] is that
//! shared repository: sessions publish the frequent sets they mine, keyed
//! by dataset, and later sessions (of any user/thread) fetch the most
//! useful prior set to compress with.
//!
//! Two lookup policies serve two different dispatch paths:
//!
//! * [`PatternStore::best_at_most`] — the *cheapest exact superset*: the
//!   highest published threshold ≤ the new round's ξ. Any such set
//!   contains the complete answer, so the new round is a filter, and the
//!   closest (highest-threshold, smallest) superset filters cheapest.
//! * [`PatternStore::best_for`] — the best *recycling fodder* when no
//!   superset exists (the new ξ undercuts everything published). This
//!   follows the paper's §5 observation that a lower initial support
//!   yields better recycling — more resources were spent, so more can be
//!   reclaimed: it returns the stored set with the lowest threshold.

use gogreen_data::PatternSet;
use gogreen_util::FxHashMap;
use std::sync::{Arc, RwLock};

/// One published pattern set.
#[derive(Debug, Clone)]
struct Entry {
    abs_support: u64,
    patterns: Arc<PatternSet>,
}

/// Thread-safe repository of mined pattern sets, keyed by dataset name.
#[derive(Debug, Default)]
pub struct PatternStore {
    inner: RwLock<FxHashMap<String, Vec<Entry>>>,
}

impl PatternStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes a pattern set mined on `dataset` at the absolute
    /// threshold `abs_support`. Re-publishing at the same threshold
    /// replaces the previous entry.
    pub fn publish(&self, dataset: &str, abs_support: u64, patterns: PatternSet) {
        let mut map = self.inner.write().expect("store lock poisoned");
        let entries = map.entry(dataset.to_owned()).or_default();
        let patterns = Arc::new(patterns);
        match entries.iter_mut().find(|e| e.abs_support == abs_support) {
            Some(e) => e.patterns = patterns,
            None => {
                entries.push(Entry { abs_support, patterns });
                entries.sort_by_key(|e| e.abs_support);
            }
        }
    }

    /// The exact entry published at `abs_support`, if any.
    pub fn get(&self, dataset: &str, abs_support: u64) -> Option<Arc<PatternSet>> {
        self.inner
            .read()
            .expect("store lock poisoned")
            .get(dataset)?
            .iter()
            .find(|e| e.abs_support == abs_support)
            .map(|e| Arc::clone(&e.patterns))
    }

    /// The best recycled set for a new round on `dataset`: the entry with
    /// the lowest threshold (richest pattern set). Returns the threshold
    /// it was mined at alongside the patterns.
    pub fn best_for(&self, dataset: &str) -> Option<(u64, Arc<PatternSet>)> {
        self.inner
            .read()
            .expect("store lock poisoned")
            .get(dataset)?
            .first()
            .map(|e| (e.abs_support, Arc::clone(&e.patterns)))
    }

    /// The cheapest *exact superset* for a new round at absolute
    /// threshold `xi`: the entry with the **highest** published threshold
    /// ≤ `xi`. Every pattern frequent at `xi` is frequent at any lower
    /// threshold, so such an entry contains the complete answer and the
    /// round reduces to a support filter — and the closest superset is
    /// the smallest one to filter. `None` when every published threshold
    /// is above `xi` (the answer may contain patterns no entry holds;
    /// fall back to [`Self::best_for`] fodder and re-mine).
    pub fn best_at_most(&self, dataset: &str, xi: u64) -> Option<(u64, Arc<PatternSet>)> {
        self.inner
            .read()
            .expect("store lock poisoned")
            .get(dataset)?
            .iter()
            .rev()
            .find(|e| e.abs_support <= xi)
            .map(|e| (e.abs_support, Arc::clone(&e.patterns)))
    }

    /// Thresholds published for `dataset`, ascending.
    pub fn thresholds(&self, dataset: &str) -> Vec<u64> {
        self.inner
            .read()
            .expect("store lock poisoned")
            .get(dataset)
            .map(|es| es.iter().map(|e| e.abs_support).collect())
            .unwrap_or_default()
    }

    /// Number of datasets with at least one entry.
    pub fn num_datasets(&self) -> usize {
        self.inner.read().expect("store lock poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gogreen_data::{MinSupport, TransactionDb};
    use gogreen_miners::mine_apriori;

    fn fp(minsup: u64) -> PatternSet {
        mine_apriori(&TransactionDb::paper_example(), MinSupport::Absolute(minsup))
    }

    #[test]
    fn publish_and_get() {
        let store = PatternStore::new();
        store.publish("paper", 3, fp(3));
        assert!(store.get("paper", 3).is_some());
        assert!(store.get("paper", 4).is_none());
        assert!(store.get("other", 3).is_none());
        assert_eq!(store.num_datasets(), 1);
    }

    #[test]
    fn best_for_prefers_lowest_threshold() {
        let store = PatternStore::new();
        store.publish("paper", 4, fp(4));
        store.publish("paper", 2, fp(2));
        store.publish("paper", 3, fp(3));
        let (sup, set) = store.best_for("paper").unwrap();
        assert_eq!(sup, 2);
        assert_eq!(set.len(), fp(2).len());
        assert_eq!(store.thresholds("paper"), vec![2, 3, 4]);
    }

    #[test]
    fn best_at_most_prefers_closest_superset() {
        let store = PatternStore::new();
        store.publish("paper", 4, fp(4));
        store.publish("paper", 2, fp(2));
        store.publish("paper", 3, fp(3));
        // Exact hit: the published 3-entry, not the richer 2-entry.
        let (sup, set) = store.best_at_most("paper", 3).unwrap();
        assert_eq!(sup, 3);
        assert_eq!(set.len(), fp(3).len());
        // Between entries: highest threshold not exceeding ξ.
        assert_eq!(store.best_at_most("paper", 5).unwrap().0, 4);
        // Below every entry: no superset exists.
        assert!(store.best_at_most("paper", 1).is_none());
        assert!(store.best_at_most("missing", 3).is_none());
        // The two policies disagree on purpose: fodder is the richest.
        assert_eq!(store.best_for("paper").unwrap().0, 2);
    }

    #[test]
    fn republish_replaces() {
        let store = PatternStore::new();
        store.publish("d", 3, fp(3));
        store.publish("d", 3, fp(4)); // pretend a corrected set
        assert_eq!(store.get("d", 3).unwrap().len(), fp(4).len());
        assert_eq!(store.thresholds("d").len(), 1);
    }

    #[test]
    fn concurrent_publish_and_read() {
        let store = std::sync::Arc::new(PatternStore::new());
        let mut handles = Vec::new();
        for user in 0..8u64 {
            let store = std::sync::Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                let sup = 2 + (user % 3);
                store.publish("shared", sup, fp(sup));
                // Readers may observe any interleaving; best_for must
                // always be a valid entry.
                if let Some((s, set)) = store.best_for("shared") {
                    assert!((2..=4).contains(&s));
                    assert!(!set.is_empty());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.best_for("shared").unwrap().0, 2);
    }
}
