//! VT-recycle: the vertical (Eclat) adaptation to compressed databases.
//!
//! The tidset-intersection search lives in `gogreen_miners::engine::vt`,
//! shared with the plain `Eclat` baseline: this type instantiates it on
//! the real [`CompressedRankDb`](crate::cdb::CompressedRankDb)
//! substrate. Recycling happens entirely in the root bitmap build — a
//! group's members occupy one contiguous tid run, so every pattern item
//! of the group fills its run word-wise (O(count/64) per item instead
//! of per-member bit work) and only outlier residues pay per-bit cost.
//! From there the search is pure vertical mining: fused AND + popcount
//! candidate tests, the inclusion-chain shortcut, and Kruskal–Katona
//! bound termination, identical on both substrates.

use crate::cdb::CompressedDb;
use crate::RecyclingMiner;
use gogreen_data::{MinSupport, PatternSink};
use gogreen_miners::engine::vt::{self, VtRepr};
use gogreen_util::pool::Parallelism;

/// The VT-recycle miner.
#[derive(Debug, Default, Clone)]
pub struct RecycleVt {
    repr: VtRepr,
}

impl RecycleVt {
    /// The default density-adaptive miner ([`VtRepr::Auto`]).
    pub fn new() -> Self {
        RecycleVt::default()
    }

    /// A miner pinned to one vertical representation (ablation and the
    /// CLI `--vt-repr` flag). A group's contiguous tid run keeps its
    /// cheap fill in every representation: a word-wise run fill for
    /// bitmaps, one `lo..hi` range push for tid-lists.
    pub fn with_repr(repr: VtRepr) -> Self {
        RecycleVt { repr }
    }
}

impl RecyclingMiner for RecycleVt {
    fn name(&self) -> &'static str {
        "VT-recycle"
    }

    fn mine_into(&self, cdb: &CompressedDb, min_support: MinSupport, sink: &mut dyn PatternSink) {
        self.mine_into_par(cdb, min_support, Parallelism::serial(), sink);
    }

    fn mine_into_par(
        &self,
        cdb: &CompressedDb,
        min_support: MinSupport,
        par: Parallelism,
        sink: &mut dyn PatternSink,
    ) {
        let minsup = min_support.to_absolute(cdb.num_tuples());
        let flist = cdb.flist(minsup);
        if flist.is_empty() {
            return;
        }
        let rdb = cdb.to_ranks(&flist);
        vt::mine_source_par_repr(&rdb, &flist, minsup, par, self.repr, sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::Compressor;
    use crate::rpmine::RpMine;
    use crate::utility::Strategy;
    use gogreen_data::TransactionDb;
    use gogreen_miners::mine_apriori;

    fn compressed(db: &TransactionDb, xi_old: u64, strategy: Strategy) -> CompressedDb {
        let fp = mine_apriori(db, MinSupport::Absolute(xi_old));
        Compressor::new(strategy).compress(db, &fp)
    }

    #[test]
    fn exact_on_paper_example() {
        let db = TransactionDb::paper_example();
        for strategy in [Strategy::Mcp, Strategy::Mlp] {
            for xi_old in [3, 4] {
                let cdb = compressed(&db, xi_old, strategy);
                for minsup in 1..=5 {
                    let fp = RecycleVt::new().mine(&cdb, MinSupport::Absolute(minsup));
                    let oracle = mine_apriori(&db, MinSupport::Absolute(minsup));
                    assert!(
                        fp.same_patterns_as(&oracle),
                        "{strategy:?} ξ_old={xi_old} ξ_new={minsup}: {} vs {}",
                        fp.len(),
                        oracle.len()
                    );
                }
            }
        }
    }

    #[test]
    fn uncompressed_cdb_is_plain_eclat() {
        let db = TransactionDb::from_rows(&[
            &[1, 2, 5],
            &[2, 4],
            &[2, 3],
            &[1, 2, 4],
            &[1, 3],
            &[2, 3],
            &[1, 3],
            &[1, 2, 3, 5],
            &[1, 2, 3],
        ]);
        let cdb = CompressedDb::uncompressed(&db);
        for minsup in 1..=4 {
            let fp = RecycleVt::new().mine(&cdb, MinSupport::Absolute(minsup));
            let oracle = mine_apriori(&db, MinSupport::Absolute(minsup));
            assert!(fp.same_patterns_as(&oracle), "minsup={minsup}");
        }
    }

    #[test]
    fn all_bare_group_chain_shortcut() {
        // One group, no outliers: all tidsets coincide, so every node is
        // an inclusion chain and the search finishes by subset
        // enumeration without a single materialization.
        let db = TransactionDb::from_rows(&[&[1, 2, 3], &[1, 2, 3], &[1, 2, 3], &[1, 2, 3]]);
        let fp_old = mine_apriori(&db, MinSupport::Absolute(4));
        let cdb = Compressor::new(Strategy::Mcp).compress(&db, &fp_old);
        let fp = RecycleVt::new().mine(&cdb, MinSupport::Absolute(2));
        assert_eq!(fp.len(), 7);
    }

    #[test]
    fn agrees_with_rpmine() {
        let db = TransactionDb::from_rows(&[
            &[1, 8, 9],
            &[1, 2, 8, 9],
            &[2, 8, 9],
            &[8, 9],
            &[1, 2],
            &[1, 2, 3],
            &[2, 3, 8],
            &[1, 3, 9],
        ]);
        for strategy in [Strategy::Mcp, Strategy::Mlp] {
            let cdb = compressed(&db, 2, strategy);
            for minsup in 1..=4 {
                let a = RecycleVt::new().mine(&cdb, MinSupport::Absolute(minsup));
                let b = RpMine::default().mine(&cdb, MinSupport::Absolute(minsup));
                assert!(a.same_patterns_as(&b), "{strategy:?} minsup={minsup}");
            }
        }
    }

    #[test]
    fn empty_cdb() {
        let cdb = CompressedDb::uncompressed(&TransactionDb::new());
        assert!(RecycleVt::new().mine(&cdb, MinSupport::Absolute(1)).is_empty());
    }
}
