//! Randomized differential testing: every recycling miner must produce
//! exactly the oracle's pattern set for any database, any recycled
//! pattern set (any `ξ_old`), any compression strategy, and any `ξ_new`.
//!
//! This is the central exactness guarantee of the whole system, so it
//! gets the heaviest property coverage in the workspace.

use gogreen_core::compress::Compressor;
use gogreen_core::recycle_fp::RecycleFp;
use gogreen_core::recycle_hm::RecycleHm;
use gogreen_core::recycle_tp::RecycleTp;
use gogreen_core::rpmine::RpMine;
use gogreen_core::utility::Strategy;
use gogreen_core::RecyclingMiner;
use gogreen_data::{MinSupport, Transaction, TransactionDb};
use gogreen_miners::mine_apriori;
use proptest::prelude::*;
use proptest::strategy::Strategy as _;

/// A random small database: up to 24 tuples over up to 12 items.
fn db_strategy() -> impl proptest::strategy::Strategy<Value = TransactionDb> {
    prop::collection::vec(prop::collection::btree_set(0u32..12, 1..8), 1..24).prop_map(
        |rows| {
            TransactionDb::from_transactions(
                rows.into_iter()
                    .map(Transaction::from_ids)
                    .collect(),
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn rpmine_is_exact(db in db_strategy(), xi_old in 1u64..6, xi_new in 1u64..6, mlp in any::<bool>()) {
        let strategy = if mlp { Strategy::Mlp } else { Strategy::Mcp };
        let fp_old = mine_apriori(&db, MinSupport::Absolute(xi_old));
        let cdb = Compressor::new(strategy).compress(&db, &fp_old);
        let got = RpMine::default().mine(&cdb, MinSupport::Absolute(xi_new));
        let want = mine_apriori(&db, MinSupport::Absolute(xi_new));
        prop_assert!(got.same_patterns_as(&want), "got {} want {}", got.len(), want.len());
    }

    #[test]
    fn recycle_hm_is_exact(db in db_strategy(), xi_old in 1u64..6, xi_new in 1u64..6, mlp in any::<bool>()) {
        let strategy = if mlp { Strategy::Mlp } else { Strategy::Mcp };
        let fp_old = mine_apriori(&db, MinSupport::Absolute(xi_old));
        let cdb = Compressor::new(strategy).compress(&db, &fp_old);
        let got = RecycleHm.mine(&cdb, MinSupport::Absolute(xi_new));
        let want = mine_apriori(&db, MinSupport::Absolute(xi_new));
        prop_assert!(got.same_patterns_as(&want), "got {} want {}", got.len(), want.len());
    }

    #[test]
    fn recycle_fp_is_exact(db in db_strategy(), xi_old in 1u64..6, xi_new in 1u64..6, mlp in any::<bool>()) {
        let strategy = if mlp { Strategy::Mlp } else { Strategy::Mcp };
        let fp_old = mine_apriori(&db, MinSupport::Absolute(xi_old));
        let cdb = Compressor::new(strategy).compress(&db, &fp_old);
        let got = RecycleFp.mine(&cdb, MinSupport::Absolute(xi_new));
        let want = mine_apriori(&db, MinSupport::Absolute(xi_new));
        prop_assert!(got.same_patterns_as(&want), "got {} want {}", got.len(), want.len());
    }

    #[test]
    fn recycle_tp_is_exact(db in db_strategy(), xi_old in 1u64..6, xi_new in 1u64..6, mlp in any::<bool>()) {
        let strategy = if mlp { Strategy::Mlp } else { Strategy::Mcp };
        let fp_old = mine_apriori(&db, MinSupport::Absolute(xi_old));
        let cdb = Compressor::new(strategy).compress(&db, &fp_old);
        let got = RecycleTp.mine(&cdb, MinSupport::Absolute(xi_new));
        let want = mine_apriori(&db, MinSupport::Absolute(xi_new));
        prop_assert!(got.same_patterns_as(&want), "got {} want {}", got.len(), want.len());
    }

    #[test]
    fn compression_is_lossless(db in db_strategy(), xi_old in 1u64..6, mlp in any::<bool>()) {
        let strategy = if mlp { Strategy::Mlp } else { Strategy::Mcp };
        let fp_old = mine_apriori(&db, MinSupport::Absolute(xi_old));
        let cdb = Compressor::new(strategy).compress(&db, &fp_old);
        let mut a: Vec<_> = cdb.reconstruct().into_transactions();
        let mut b: Vec<_> = db.iter().cloned().collect();
        a.sort_by(|x, y| x.items().cmp(y.items()));
        b.sort_by(|x, y| x.items().cmp(y.items()));
        prop_assert_eq!(a, b);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Parallel recycled mining partitions first-level subtrees across
    /// workers; any thread count must produce the sequential answer.
    #[test]
    fn parallel_rpmine_is_exact(
        db in db_strategy(),
        xi_old in 1u64..6,
        xi_new in 1u64..6,
        threads in 1usize..5,
    ) {
        let fp_old = mine_apriori(&db, MinSupport::Absolute(xi_old));
        let cdb = Compressor::new(Strategy::Mcp).compress(&db, &fp_old);
        let got = RpMine::default().mine_parallel(&cdb, MinSupport::Absolute(xi_new), threads);
        let want = mine_apriori(&db, MinSupport::Absolute(xi_new));
        prop_assert!(got.same_patterns_as(&want), "threads={threads}: got {} want {}", got.len(), want.len());
    }
}
