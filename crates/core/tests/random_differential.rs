//! Randomized differential testing: every recycling miner must produce
//! exactly the oracle's pattern set for any database, any recycled
//! pattern set (any `ξ_old`), any compression strategy, and any `ξ_new`.
//!
//! This is the central exactness guarantee of the whole system, so it
//! gets the heaviest randomized coverage in the workspace. Cases come
//! from a seeded in-repo PRNG; the case index in each failure message
//! replays the exact input.

use gogreen_core::compress::Compressor;
use gogreen_core::recycle_fp::RecycleFp;
use gogreen_core::recycle_hm::RecycleHm;
use gogreen_core::recycle_tp::RecycleTp;
use gogreen_core::rpmine::RpMine;
use gogreen_core::utility::Strategy;
use gogreen_core::RecyclingMiner;
use gogreen_data::{MinSupport, Transaction, TransactionDb};
use gogreen_miners::mine_apriori;
use gogreen_util::rng::{Rng, SmallRng};
use std::collections::BTreeSet;

/// A random small database: up to 24 tuples over up to 12 items.
fn random_db(rng: &mut SmallRng) -> TransactionDb {
    let rows = 1 + rng.gen_index(23);
    let mut txs = Vec::with_capacity(rows);
    for _ in 0..rows {
        let len = 1 + rng.gen_index(7);
        let mut set = BTreeSet::new();
        for _ in 0..len {
            set.insert(rng.gen_below(12) as u32);
        }
        txs.push(Transaction::from_ids(set));
    }
    TransactionDb::from_transactions(txs)
}

/// One random (db, ξ_old, ξ_new, strategy) scenario.
fn scenario(rng: &mut SmallRng) -> (TransactionDb, u64, u64, Strategy) {
    let db = random_db(rng);
    let xi_old = 1 + rng.gen_below(5);
    let xi_new = 1 + rng.gen_below(5);
    let strategy = if rng.gen_bool(0.5) { Strategy::Mlp } else { Strategy::Mcp };
    (db, xi_old, xi_new, strategy)
}

fn check_exact(
    name: &str,
    seed_base: u64,
    run: impl Fn(&gogreen_core::CompressedDb, MinSupport) -> gogreen_data::PatternSet,
) {
    for case in 0..96u64 {
        let mut rng = SmallRng::seed_from_u64(seed_base + case);
        let (db, xi_old, xi_new, strategy) = scenario(&mut rng);
        let fp_old = mine_apriori(&db, MinSupport::Absolute(xi_old));
        let cdb = Compressor::new(strategy).compress(&db, &fp_old);
        let got = run(&cdb, MinSupport::Absolute(xi_new));
        let want = mine_apriori(&db, MinSupport::Absolute(xi_new));
        assert!(
            got.same_patterns_as(&want),
            "{name} case {case}: got {} want {}",
            got.len(),
            want.len()
        );
    }
}

#[test]
fn rpmine_is_exact() {
    check_exact("rpmine", 0x4990_0000, |cdb, ms| RpMine::default().mine(cdb, ms));
}

#[test]
fn recycle_hm_is_exact() {
    check_exact("recycle_hm", 0x48e1_0000, |cdb, ms| RecycleHm.mine(cdb, ms));
}

#[test]
fn recycle_fp_is_exact() {
    check_exact("recycle_fp", 0x48f9_0000, |cdb, ms| RecycleFp::default().mine(cdb, ms));
}

#[test]
fn recycle_tp_is_exact() {
    check_exact("recycle_tp", 0x4879_0000, |cdb, ms| RecycleTp.mine(cdb, ms));
}

#[test]
fn compression_is_lossless() {
    for case in 0..96u64 {
        let mut rng = SmallRng::seed_from_u64(0x1055_1e55 + case);
        let (db, xi_old, _, strategy) = scenario(&mut rng);
        let fp_old = mine_apriori(&db, MinSupport::Absolute(xi_old));
        let cdb = Compressor::new(strategy).compress(&db, &fp_old);
        let rebuilt = cdb.reconstruct();
        let mut a: Vec<_> = rebuilt.iter().map(|t| t.to_vec()).collect();
        let mut b: Vec<_> = db.iter().map(|t| t.to_vec()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "case {case} ({strategy:?})");
    }
}

/// Parallel recycled mining partitions first-level subtrees across
/// workers; any thread count must produce the sequential answer.
#[test]
fn parallel_rpmine_is_exact() {
    for case in 0..48u64 {
        let mut rng = SmallRng::seed_from_u64(0x9a2a_11e1 + case);
        let (db, xi_old, xi_new, _) = scenario(&mut rng);
        let threads = 1 + rng.gen_index(4);
        let fp_old = mine_apriori(&db, MinSupport::Absolute(xi_old));
        let cdb = Compressor::new(Strategy::Mcp).compress(&db, &fp_old);
        let got = RpMine::default().mine_parallel(&cdb, MinSupport::Absolute(xi_new), threads);
        let want = mine_apriori(&db, MinSupport::Absolute(xi_new));
        assert!(
            got.same_patterns_as(&want),
            "case {case} threads={threads}: got {} want {}",
            got.len(),
            want.len()
        );
    }
}
