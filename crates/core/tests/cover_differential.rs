//! Differential tests for the indexed covering kernel: on random
//! databases and recycled pattern sets, the `CoverIndex` compressor —
//! serial *and* multi-threaded — must produce a `CompressedDb` identical
//! group-for-group (same groups, same order, same outliers, same plain
//! residue) to the seed's linear-scan cover, for both strategies; and the
//! recycled output must still mine exactly. Cases come from a seeded
//! in-repo PRNG; the case index in a failure message replays the input.

use gogreen_core::compress::Compressor;
use gogreen_core::recycle_fp::RecycleFp;
use gogreen_core::utility::Strategy;
use gogreen_core::RecyclingMiner;
use gogreen_data::{MinSupport, Transaction, TransactionDb};
use gogreen_miners::mine_apriori;
use gogreen_util::rng::{Rng, SmallRng};
use std::collections::BTreeSet;

/// A random database: up to 30 tuples over up to 14 items. Skewed item
/// draws make some items rare so anchor buckets differ in size.
fn random_db(rng: &mut SmallRng) -> TransactionDb {
    let rows = 1 + rng.gen_index(29);
    let mut txs = Vec::with_capacity(rows);
    for _ in 0..rows {
        let len = 1 + rng.gen_index(8);
        let mut set = BTreeSet::new();
        for _ in 0..len {
            // Quadratic skew: low ids frequent, high ids rare.
            let r = rng.gen_f64();
            set.insert((r * r * 14.0) as u32);
        }
        txs.push(Transaction::from_ids(set));
    }
    TransactionDb::from_transactions(txs)
}

#[test]
fn indexed_cover_matches_linear_scan() {
    for case in 0..96u64 {
        let mut rng = SmallRng::seed_from_u64(0xc0fe_0000 + case);
        let db = random_db(&mut rng);
        let xi_old = 1 + rng.gen_below(5);
        let fp = mine_apriori(&db, MinSupport::Absolute(xi_old));
        for strategy in [Strategy::Mcp, Strategy::Mlp] {
            let c = Compressor::new(strategy);
            let reference = c.compress_reference(&db, &fp);
            let indexed = c.compress(&db, &fp);
            assert_eq!(reference, indexed, "case {case} {strategy:?} serial");
        }
    }
}

#[test]
fn parallel_cover_is_identical_for_any_thread_count() {
    for case in 0..96u64 {
        let mut rng = SmallRng::seed_from_u64(0xc0fe_8000 + case);
        let db = random_db(&mut rng);
        let xi_old = 1 + rng.gen_below(5);
        let threads = 2 + rng.gen_index(7);
        let fp = mine_apriori(&db, MinSupport::Absolute(xi_old));
        for strategy in [Strategy::Mcp, Strategy::Mlp] {
            let reference = Compressor::new(strategy).compress_reference(&db, &fp);
            let parallel = Compressor::new(strategy).with_threads(threads).compress(&db, &fp);
            assert_eq!(reference, parallel, "case {case} {strategy:?} threads={threads}");
        }
    }
}

/// End-to-end exactness through the new kernel: compress (parallel) then
/// mine the compressed database (parallel FP-recycle) and compare to the
/// Apriori oracle on the original database.
#[test]
fn recycled_output_of_indexed_cover_mines_exactly() {
    for case in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(0xc0fe_f000 + case);
        let db = random_db(&mut rng);
        let xi_old = 1 + rng.gen_below(5);
        let xi_new = 1 + rng.gen_below(5);
        let threads = 1 + rng.gen_index(4);
        let strategy = if rng.gen_bool(0.5) { Strategy::Mlp } else { Strategy::Mcp };
        let fp_old = mine_apriori(&db, MinSupport::Absolute(xi_old));
        let cdb = Compressor::new(strategy).with_threads(threads).compress(&db, &fp_old);
        let got =
            RecycleFp::default().with_threads(threads).mine(&cdb, MinSupport::Absolute(xi_new));
        let want = mine_apriori(&db, MinSupport::Absolute(xi_new));
        assert!(
            got.same_patterns_as(&want),
            "case {case} {strategy:?} threads={threads}: got {} want {}",
            got.len(),
            want.len()
        );
    }
}
