//! Minimal argument parsing: positionals, `--flag value` options, and a
//! small fixed set of valueless boolean switches.

use gogreen_data::MinSupport;

/// Options that take no value (boolean switches). Everything else after
/// `--` consumes the next token as its value.
const SWITCHES: &[&str] = &["quiet-metrics"];

/// Parsed command line: positionals in order, options by name.
#[derive(Debug, Default)]
pub struct Args {
    positional: Vec<String>,
    options: Vec<(String, String)>,
    switches: Vec<String>,
}

impl Args {
    /// Splits `argv` into positionals, `--name value` / `-o value`
    /// options, and the known valueless switches ([`SWITCHES`]). A
    /// value-taking `--name` at the end of the line is an error.
    pub fn parse(argv: Vec<String>) -> Result<Self, String> {
        let mut out = Args::default();
        let mut it = argv.into_iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--").or_else(|| a.strip_prefix('-')) {
                if SWITCHES.contains(&name) {
                    out.switches.push(name.to_owned());
                    continue;
                }
                let value = it.next().ok_or_else(|| format!("option --{name} expects a value"))?;
                out.options.push((name.to_owned(), value));
            } else {
                out.positional.push(a);
            }
        }
        Ok(out)
    }

    /// The `idx`-th positional, or an error naming it.
    pub fn positional(&self, idx: usize, what: &str) -> Result<&str, String> {
        self.positional.get(idx).map(String::as_str).ok_or_else(|| format!("missing {what}"))
    }

    /// An optional `--name` value.
    pub fn opt(&self, name: &str) -> Option<&str> {
        self.options.iter().rev().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// A required `--name` value.
    pub fn required(&self, name: &str) -> Result<&str, String> {
        self.opt(name).ok_or_else(|| format!("missing required option --{name}"))
    }

    /// True when the boolean switch `--name` was given.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

/// Parses `5%` or `0.5%` as relative, `120` as absolute support.
pub fn parse_support(text: &str) -> Result<MinSupport, String> {
    if let Some(pct) = text.strip_suffix('%') {
        let p: f64 = pct.parse().map_err(|_| format!("invalid support percentage {text:?}"))?;
        if !(0.0..=100.0).contains(&p) {
            return Err(format!("support percentage {p} outside 0..=100"));
        }
        Ok(MinSupport::percent(p))
    } else {
        let n: u64 = text.parse().map_err(|_| format!("invalid support count {text:?}"))?;
        Ok(MinSupport::Absolute(n))
    }
}

/// Parses a comma-separated item id list.
pub fn parse_items(text: &str) -> Result<Vec<u32>, String> {
    text.split(',')
        .map(|t| t.trim().parse().map_err(|_| format!("invalid item id {t:?}")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn positionals_and_options_mix() {
        let a = Args::parse(argv(&["db.txt", "--support", "5%", "-o", "out.txt"])).unwrap();
        assert_eq!(a.positional(0, "db").unwrap(), "db.txt");
        assert_eq!(a.opt("support"), Some("5%"));
        assert_eq!(a.opt("o"), Some("out.txt"));
        assert_eq!(a.opt("missing"), None);
        assert!(a.positional(1, "x").is_err());
        assert!(a.required("algo").is_err());
    }

    #[test]
    fn dangling_option_is_an_error() {
        assert!(Args::parse(argv(&["db.txt", "--support"])).is_err());
    }

    #[test]
    fn switches_consume_no_value() {
        let a = Args::parse(argv(&["db.txt", "--quiet-metrics", "--algo", "fp"])).unwrap();
        assert!(a.switch("quiet-metrics"));
        assert!(!a.switch("algo"));
        assert_eq!(a.opt("algo"), Some("fp"));
        assert_eq!(a.positional(0, "db").unwrap(), "db.txt");
        // A switch at the end of the line is fine.
        assert!(Args::parse(argv(&["--quiet-metrics"])).unwrap().switch("quiet-metrics"));
    }

    #[test]
    fn later_options_win() {
        let a = Args::parse(argv(&["--algo", "fp", "--algo", "tp"])).unwrap();
        assert_eq!(a.opt("algo"), Some("tp"));
    }

    #[test]
    fn support_formats() {
        assert_eq!(parse_support("5%").unwrap(), MinSupport::percent(5.0));
        assert_eq!(parse_support("0.5%").unwrap(), MinSupport::percent(0.5));
        assert_eq!(parse_support("120").unwrap(), MinSupport::Absolute(120));
        assert!(parse_support("abc").is_err());
        assert!(parse_support("150%").is_err());
    }

    #[test]
    fn item_lists() {
        assert_eq!(parse_items("1,2, 3").unwrap(), vec![1, 2, 3]);
        assert!(parse_items("1,x").is_err());
    }
}
