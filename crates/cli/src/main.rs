//! `gogreen` — the command-line face of the pattern-recycling miner.
//!
//! ```text
//! gogreen stats    <db.txt>
//! gogreen generate <weather|forest|connect4|pumsb> [--scale S] -o <db.txt>
//! gogreen mine     <db.txt> --support <ξ> [--algo A] [--max-length K]
//!                  [--items 1,2,3] [--threads N] [-o patterns.txt]
//! gogreen mine     <db.txt> --batch <spec.json> [--algo A] [--threads N]
//! gogreen compress <db.txt> --patterns <fp.txt> [--strategy mcp|mlp]
//!                  [--threads N]
//! gogreen recycle  <db.txt> --patterns <fp.txt> --support <ξ>
//!                  [--algo A] [--strategy mcp|mlp] [--threads N]
//!                  [-o patterns.txt]
//! gogreen session  <db.txt> [--threads N]   # interactive REPL (stdin)
//! ```
//!
//! Supports are `5%` (relative) or `120` (absolute tuples). See
//! `gogreen help` for everything.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    // Dying quietly on a closed pipe (`gogreen … | head`) is correct CLI
    // behaviour; Rust's default is a noisy panic from `println!`.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let broken_pipe =
            info.payload().downcast_ref::<String>().is_some_and(|m| m.contains("Broken pipe"));
        if broken_pipe {
            std::process::exit(0);
        }
        default_hook(info);
    }));

    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (command, rest) = match argv.split_first() {
        Some((c, rest)) => (c.as_str(), rest.to_vec()),
        None => {
            print_usage();
            return ExitCode::from(2);
        }
    };
    let result = match command {
        "stats" => commands::stats::run(rest),
        "generate" => commands::generate::run(rest),
        "mine" => commands::mine::run(rest),
        "compress" => commands::compress::run(rest),
        "compact" => commands::compact::run(rest),
        "diff" => commands::diff::run(rest),
        "recycle" => commands::recycle::run(rest),
        "session" => commands::session::run(rest),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => Err(format!("unknown command {other:?} (try `gogreen help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            gogreen_obs::error(&format!("gogreen: {msg}"));
            ExitCode::from(2)
        }
    }
}

fn print_usage() {
    println!(
        "\
gogreen — recycle and reuse frequent patterns (ICDE 2004)

USAGE
  gogreen stats    <db.txt>
  gogreen generate <weather|forest|connect4|pumsb> [--scale S] -o <db.txt>
                   [--db-dir DIR] [--segment-bytes B]
  gogreen mine     <db.txt> --support <ξ> [--algo hmine|fp|tp|vt|apriori|naive]
                   [--max-length K] [--items 1,2,3] [--filter closed|maximal]
                   [--threads N] [-o patterns.txt]
  gogreen mine     <db.txt> --batch <spec.json> [--algo A] [--threads N]
                   [-o prefix]   # one pass answers every query in the spec
  gogreen compress <db.txt> --patterns <fp.txt> [--strategy mcp|mlp]
                   [--threads N]
  gogreen compact  <db-dir> [--segment-bytes B]
  gogreen recycle  <db.txt> --patterns <fp.txt> --support <ξ>
                   [--algo hm|fp|tp|naive] [--strategy mcp|mlp] [--threads N]
                   [-o patterns.txt]
  gogreen diff     <new.txt> <old.txt> [--limit N]
  gogreen session  <db.txt> [--threads N]

OUT-OF-CORE (mine | compress)
  --db-dir <dir>   mine/compress an on-disk segment store (written by
                   `generate --db-dir`) instead of a text database: one
                   pass per segment, output byte-identical to in-memory
  --budget <B>     cap resident segment bytes (e.g. 8MiB); errors if any
                   single segment exceeds it
  byte counts accept 4096, 64k, 8MiB, 1g

BATCH (mine)
  --batch <spec.json>  coalesce k (ξ, constraint) queries into ONE mining
                   pass at ξ_min, demultiplexed so each query's stream is
                   byte-identical to running it alone. The spec is a JSON
                   array (or {{\"queries\": [...]}}) of objects with
                   \"support\" (\"3%\" or absolute), optional \"label\",
                   \"max-length\", and \"items\" [1,2,3]. With -o PREFIX
                   each query writes PREFIX.<label>.txt

FORMATS
  databases: one transaction per line, whitespace-separated item ids
  patterns:  `items : support` per line (what `mine -o` writes)
  supports:  `5%` (fraction of tuples) or `120` (absolute tuple count)
  threads:   worker threads for compression and recycled mining
             (default 1 = the paper's serial timings; 0 = all cores;
             output is identical at any thread count)

OBSERVABILITY (mine | compress | recycle | session)
  --metrics-out <file>   write mining counters and histograms as JSON
                         lines and print summary tables (names outside
                         `cover.*` are bit-identical at any --threads)
  --trace-out <file>     write hierarchical phase spans as JSON lines
  --profile-out <file>   write a collapsed-stack self-time profile
                         (flamegraph-compatible) and print the tree
  --snapshot-out <file>  write one metric-snapshot delta per session
                         round as JSON lines (session command)
  --quiet-metrics        suppress the summary tables and progress lines

The recycle command is the paper's two-phase pipeline: compress <db>
with the recycled <fp.txt>, then mine the compressed database — exact,
and usually much faster than mining from scratch."
    );
}
