//! `gogreen mine <db.txt> --support <ξ> …` — mine frequent patterns,
//! optionally with pushed constraints, writing `items : support` lines.

use crate::args::{parse_items, parse_support, Args};
use crate::commands::{
    load_db, measure_arena_bytes, measure_storage, parse_bytes, parse_engine_opts, parse_threads,
    setup_obs, show_bytes, show_support,
};
use gogreen_constraints::{Constraint, ConstraintSet, ItemAttributes, Pushdown};
use gogreen_core::batch::{BatchQuery, QueryBatch};
use gogreen_core::engine::{engine_keys, engine_named, EngineOpts};
use gogreen_data::{CollectSink, Item, MinSupport, PatternSet, TransactionDb};
use gogreen_storage::{MemoryBudget, OocEngine, OocMiner, SegmentedDb};
use gogreen_util::pool::Parallelism;
use gogreen_util::Json;
use std::time::Instant;

pub fn run(argv: Vec<String>) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let obs = setup_obs(&args)?;
    let db_dir = args.opt("db-dir").map(str::to_owned);
    let path = match &db_dir {
        Some(dir) => dir.clone(),
        None => args.positional(0, "database path (or --db-dir)")?.to_owned(),
    };
    if let Some(spec) = args.opt("batch") {
        if db_dir.is_some() {
            return Err("--batch does not combine with --db-dir".into());
        }
        run_batch(&args, &path, spec)?;
        return obs.finish();
    }
    let support = parse_support(args.required("support")?)?;
    let algo = args.opt("algo").unwrap_or("hmine");
    let par = parse_threads(args.opt("threads"))?;
    let opts = parse_engine_opts(&args)?;

    // Pushable constraints.
    let mut cs = ConstraintSet::support_only(support);
    if let Some(k) = args.opt("max-length") {
        let k: usize = k.parse().map_err(|_| format!("invalid --max-length {k:?}"))?;
        cs = cs.with(Constraint::MaxLength(k));
    }
    if let Some(list) = args.opt("items") {
        let items: Vec<Item> = parse_items(list)?.into_iter().map(Item).collect();
        cs = cs.with(Constraint::SubsetOf(items));
    }
    let attrs = ItemAttributes::new();
    let pushdown = Pushdown::from_constraints(&cs, &attrs);

    let start = Instant::now();
    let (mut patterns, db_len, summary) = match &db_dir {
        Some(dir) => {
            // Out-of-core: one rank-encode pass per segment, identical
            // output to materializing the store. Pushed constraints are
            // applied as post-filters (same result set).
            let engine = match OocEngine::from_key(algo) {
                Some(OocEngine::Eclat(_)) => OocEngine::Eclat(opts.vt_repr),
                Some(e) => e,
                None => {
                    return Err(format!("--db-dir supports --algo hmine|fp|tp|vt, not {algo:?}"))
                }
            };
            let mut seg = SegmentedDb::open(dir).map_err(|e| format!("opening {dir}: {e}"))?;
            if let Some(b) = args.opt("budget") {
                seg = seg.with_budget(MemoryBudget::bytes(parse_bytes(b)?));
            }
            let (patterns, arena_bytes, traffic) = measure_storage(|| {
                let mut sp = gogreen_obs::span("mine");
                let patterns = OocMiner::new(&seg)
                    .with_engine(engine)
                    .with_parallelism(par)
                    .mine(support)
                    .map_err(|e| format!("mining {dir}: {e}"))?;
                sp.field("algo", algo).field("patterns", patterns.len());
                Ok::<_, String>(patterns.filter(|p| pushdown.prefix_ok(p.items(), &attrs)))
            });
            let summary = format!(
                "{algo}, arena {}, {} segments in {} passes, resident peak {}",
                show_bytes(arena_bytes),
                seg.num_segments(),
                traffic.passes,
                show_bytes(traffic.resident_peak),
            );
            (patterns?, seg.total_rows(), summary)
        }
        None => {
            let db = load_db(&path)?;
            let (patterns, arena_bytes) = measure_arena_bytes(|| {
                let mut sp = gogreen_obs::span("mine");
                let patterns = mine(&db, support, algo, par, opts, &pushdown, &attrs);
                if let Ok(p) = &patterns {
                    sp.field("algo", algo).field("patterns", p.len());
                }
                patterns
            });
            (patterns?, db.len(), format!("{algo}, arena {}", show_bytes(arena_bytes)))
        }
    };
    let elapsed = start.elapsed();
    // Optional condensed-representation post-filters.
    match args.opt("filter") {
        Some("closed") => patterns = patterns.closed_only(),
        Some("maximal") => patterns = patterns.maximal_only(),
        Some(other) => return Err(format!("unknown --filter {other:?} (closed|maximal)")),
        None => {}
    }

    println!(
        "{path}: {} patterns at {} in {elapsed:.2?} [{summary}]",
        patterns.len(),
        show_support(support, db_len),
    );
    match args.opt("o") {
        Some(out) => {
            gogreen_data::pattern_io::write_patterns_file(&patterns, out)
                .map_err(|e| format!("writing {out}: {e}"))?;
            println!("wrote {out}");
        }
        None => {
            // Print the top patterns by support, longest first on ties.
            let mut v = patterns.sorted();
            v.sort_by(|a, b| b.support().cmp(&a.support()).then(b.len().cmp(&a.len())));
            for p in v.iter().take(20) {
                println!("  {p}");
            }
            if v.len() > 20 {
                println!("  … {} more (use -o to save all)", v.len() - 20);
            }
        }
    }
    obs.finish()
}

fn mine(
    db: &TransactionDb,
    support: MinSupport,
    algo: &str,
    par: Parallelism,
    opts: EngineOpts,
    pushdown: &Pushdown,
    attrs: &ItemAttributes,
) -> Result<PatternSet, String> {
    // Every algorithm resolves through the engine registry. Constraint
    // pushdown into the search is serial-only (and only some families
    // provide it); otherwise mine unconstrained — fanning the
    // first-level projections out over `par` threads — and post-filter
    // the pushed constraints.
    let engine =
        engine_named(algo).ok_or_else(|| format!("unknown algo {algo:?} ({})", engine_keys()))?;
    if par.is_serial() {
        let mut sink = CollectSink::new();
        if engine.mine_raw_pruned(db, support, &pushdown.search(attrs), &mut sink) {
            return Ok(sink.into_set());
        }
    }
    Ok(engine
        .raw_with(opts)
        .mine_par(db, support, par)
        .filter(|p| pushdown.prefix_ok(p.items(), attrs)))
}

/// `gogreen mine <db.txt> --batch <spec.json>` — one shared pass answers
/// a fleet of (ξ, constraint) queries. The spec is a JSON array of query
/// objects (or `{"queries": [...]}`), each with a `support` ("3%" or an
/// absolute count), an optional `label` (defaults to `q<i>`), an
/// optional `max-length`, and an optional `items` allow-list. Every
/// query's output is byte-identical to a solo `mine` run with the same
/// constraints.
fn run_batch(args: &Args, path: &str, spec_path: &str) -> Result<(), String> {
    let algo = args.opt("algo").unwrap_or("hmine");
    let par = parse_threads(args.opt("threads"))?;
    let opts = parse_engine_opts(args)?;
    for flag in ["support", "max-length", "items", "filter"] {
        if args.opt(flag).is_some() {
            return Err(format!("--{flag} belongs inside the --batch spec, not the command line"));
        }
    }

    let text =
        std::fs::read_to_string(spec_path).map_err(|e| format!("reading {spec_path}: {e}"))?;
    let json = Json::parse(&text).map_err(|e| format!("parsing {spec_path}: {e}"))?;
    let entries = json
        .get("queries")
        .and_then(Json::as_arr)
        .or_else(|| json.as_arr())
        .ok_or_else(|| format!("{spec_path}: expected a JSON array of queries"))?;
    if entries.is_empty() {
        return Err(format!("{spec_path}: batch has no queries"));
    }

    let mut batch = QueryBatch::new().with_parallelism(par).with_engine_opts(opts);
    let mut labels = Vec::with_capacity(entries.len());
    for (i, entry) in entries.iter().enumerate() {
        let label = match entry.get("label") {
            Some(l) => l
                .as_str()
                .ok_or_else(|| format!("{spec_path}: query #{i}: label must be a string"))?
                .to_owned(),
            None => format!("q{i}"),
        };
        if labels.contains(&label) {
            return Err(format!("{spec_path}: duplicate label {label:?}"));
        }
        let support = entry
            .get("support")
            .ok_or_else(|| format!("{spec_path}: query {label:?} lacks a support"))?;
        let support = match (support.as_str(), support.as_u64()) {
            (Some(s), _) => parse_support(s)?,
            (None, Some(n)) => MinSupport::Absolute(n),
            _ => return Err(format!("{spec_path}: query {label:?}: bad support")),
        };
        let mut cs = ConstraintSet::support_only(support);
        if let Some(k) = entry.get("max-length") {
            let k = k
                .as_u64()
                .ok_or_else(|| format!("{spec_path}: query {label:?}: bad max-length"))?;
            cs = cs.with(Constraint::MaxLength(k as usize));
        }
        if let Some(list) = entry.get("items") {
            let ids = list
                .as_arr()
                .and_then(|a| a.iter().map(Json::as_u64).collect::<Option<Vec<u64>>>())
                .ok_or_else(|| format!("{spec_path}: query {label:?}: bad items list"))?;
            cs = cs.with(Constraint::SubsetOf(ids.into_iter().map(|v| Item(v as u32)).collect()));
        }
        batch.push(BatchQuery::new(label.clone(), cs));
        labels.push(label);
    }

    let db = load_db(path)?;
    let start = Instant::now();
    let out = batch.run(&db, algo)?;
    let elapsed = start.elapsed();
    let plan = &out.report.plan;
    println!(
        "{path}: {} queries in one pass at xi_min={} ({} admitted, {} solo) in {elapsed:.2?} \
         [{algo}, {} shared patterns]",
        labels.len(),
        plan.xi_min,
        plan.admitted.len(),
        plan.rejected.len(),
        out.report.shared_patterns,
    );
    for (i, label) in labels.iter().enumerate() {
        let how = if plan.rejected.contains(&i) { "solo" } else { "shared" };
        println!(
            "  {label}: {} patterns at {} ({how})",
            out.results[i].len(),
            show_support(batch.queries()[i].constraints().min_support(), db.len()),
        );
    }
    if let Some(prefix) = args.opt("o") {
        for (i, label) in labels.iter().enumerate() {
            let out_path = format!("{prefix}.{label}.txt");
            gogreen_data::pattern_io::write_patterns_file(&out.results[i], &out_path)
                .map_err(|e| format!("writing {out_path}: {e}"))?;
            println!("wrote {out_path}");
        }
    }
    Ok(())
}
