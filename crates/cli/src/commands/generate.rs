//! `gogreen generate <preset> [--scale S] -o <db.txt> | --db-dir <dir>`
//! — write a calibrated synthetic dataset, as a text file and/or
//! streamed straight into an on-disk segment store.

use crate::args::Args;
use crate::commands::parse_bytes;
use gogreen_datagen::{DatasetPreset, PresetKind};
use gogreen_storage::SegmentWriter;

pub fn run(argv: Vec<String>) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let name = args.positional(0, "preset name (weather|forest|connect4|pumsb)")?;
    let kind = match name {
        "weather" => PresetKind::Weather,
        "forest" => PresetKind::Forest,
        "connect4" => PresetKind::Connect4,
        "pumsb" => PresetKind::Pumsb,
        other => return Err(format!("unknown preset {other:?}")),
    };
    let scale: f64 = match args.opt("scale") {
        Some(v) => v.parse().map_err(|_| format!("invalid --scale {v:?}"))?,
        None => 0.05,
    };
    if scale <= 0.0 {
        return Err("--scale must be positive".into());
    }
    let out = args.opt("o");
    let db_dir = args.opt("db-dir");
    if out.is_none() && db_dir.is_none() {
        return Err("need -o <db.txt> and/or --db-dir <dir>".into());
    }
    let preset = DatasetPreset::new(kind, scale);
    if let Some(dir) = db_dir {
        // Stream rows straight into bounded segments: peak memory is one
        // open segment, regardless of dataset size.
        let segment_bytes = match args.opt("segment-bytes") {
            Some(v) => parse_bytes(v)?,
            None => SegmentWriter::DEFAULT_SEGMENT_BYTES,
        };
        let mut w = SegmentWriter::create(dir, segment_bytes)
            .map_err(|e| format!("creating {dir}: {e}"))?;
        let mut write_err: Option<std::io::Error> = None;
        let mut rows = 0usize;
        let mut elems = 0usize;
        preset.for_each_transaction(|row| {
            if write_err.is_none() {
                rows += 1;
                elems += row.len();
                if let Err(e) = w.push_row(row) {
                    write_err = Some(e);
                }
            }
        });
        if let Some(e) = write_err {
            return Err(format!("writing {dir}: {e}"));
        }
        let segments = w.finish().map_err(|e| format!("sealing {dir}: {e}"))?;
        println!(
            "wrote {dir}: {rows} tuples, avg length {:.1}, {segments} segments \
             (analog of {}, ξ_old = {})",
            elems as f64 / rows.max(1) as f64,
            preset.name(),
            preset.xi_old(),
        );
    }
    if let Some(out) = out {
        let db = preset.generate();
        gogreen_data::io::write_file(&db, out).map_err(|e| format!("writing {out}: {e}"))?;
        let s = db.stats();
        println!(
            "wrote {out}: {} tuples, avg length {:.1}, {} items (analog of {}, ξ_old = {})",
            s.num_tuples,
            s.avg_len,
            s.num_items,
            preset.name(),
            preset.xi_old(),
        );
    }
    Ok(())
}
