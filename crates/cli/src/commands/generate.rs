//! `gogreen generate <preset> [--scale S] -o <db.txt>` — write a
//! calibrated synthetic dataset.

use crate::args::Args;
use gogreen_datagen::{DatasetPreset, PresetKind};

pub fn run(argv: Vec<String>) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let name = args.positional(0, "preset name (weather|forest|connect4|pumsb)")?;
    let kind = match name {
        "weather" => PresetKind::Weather,
        "forest" => PresetKind::Forest,
        "connect4" => PresetKind::Connect4,
        "pumsb" => PresetKind::Pumsb,
        other => return Err(format!("unknown preset {other:?}")),
    };
    let scale: f64 = match args.opt("scale") {
        Some(v) => v.parse().map_err(|_| format!("invalid --scale {v:?}"))?,
        None => 0.05,
    };
    if scale <= 0.0 {
        return Err("--scale must be positive".into());
    }
    let out = args.required("o")?;
    let preset = DatasetPreset::new(kind, scale);
    let db = preset.generate();
    gogreen_data::io::write_file(&db, out).map_err(|e| format!("writing {out}: {e}"))?;
    let s = db.stats();
    println!(
        "wrote {out}: {} tuples, avg length {:.1}, {} items (analog of {}, ξ_old = {})",
        s.num_tuples,
        s.avg_len,
        s.num_items,
        preset.name(),
        preset.xi_old(),
    );
    Ok(())
}
