//! `gogreen compress <db.txt> --patterns <fp.txt>` — compress and report
//! the paper's Table 3 statistics for one database/pattern-set pair.

use crate::args::Args;
use crate::commands::{load_db, parse_strategy, parse_threads, setup_obs};
use gogreen_core::Compressor;

pub fn run(argv: Vec<String>) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let obs = setup_obs(&args)?;
    let path = args.positional(0, "database path")?;
    let db = load_db(path)?;
    let fp_path = args.required("patterns")?;
    let fp = gogreen_data::pattern_io::read_patterns_file(fp_path)
        .map_err(|e| format!("reading {fp_path}: {e}"))?;
    let strategy = parse_strategy(args.opt("strategy"))?;
    let par = parse_threads(args.opt("threads"))?;

    let (cdb, stats) =
        Compressor::new(strategy).with_parallelism(par).compress_with_stats(&db, &fp);
    println!("{path} compressed with {} patterns [{}]:", fp.len(), strategy.suffix());
    println!("  groups          {}", stats.num_groups);
    println!("  covered tuples  {} / {}", stats.covered_tuples, stats.num_tuples);
    println!("  ratio S_c/S_o   {:.4}", stats.ratio);
    // In-memory footprint per tuple: compressed CSR sections vs the raw
    // database's CSR storage.
    println!(
        "  bytes/tuple     {:.1} (raw {:.1})",
        cdb.stats().bytes_per_tuple,
        db.stats().bytes_per_tuple
    );
    println!("  time            {:.2?}", stats.duration);
    // Top groups by member count.
    let mut groups: Vec<_> = cdb.groups().iter().collect();
    groups.sort_by_key(|g| std::cmp::Reverse(g.count()));
    for g in groups.iter().take(8) {
        let ids: Vec<String> = g.pattern().iter().map(|i| i.id().to_string()).collect();
        println!("  group {{{}}} × {}", ids.join(" "), g.count());
    }
    if groups.len() > 8 {
        println!("  … {} more groups", groups.len() - 8);
    }
    obs.finish()
}
