//! `gogreen compress <db.txt> --patterns <fp.txt>` — compress and report
//! the paper's Table 3 statistics for one database/pattern-set pair.

use crate::args::Args;
use crate::commands::{
    load_db, measure_storage, parse_bytes, parse_strategy, parse_threads, setup_obs, show_bytes,
};
use gogreen_core::Compressor;
use gogreen_storage::{MemoryBudget, OocMiner, SegmentedDb};

pub fn run(argv: Vec<String>) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let obs = setup_obs(&args)?;
    let db_dir = args.opt("db-dir").map(str::to_owned);
    let path = match &db_dir {
        Some(dir) => dir.clone(),
        None => args.positional(0, "database path (or --db-dir)")?.to_owned(),
    };
    let fp_path = args.required("patterns")?;
    let fp = gogreen_data::pattern_io::read_patterns_file(fp_path)
        .map_err(|e| format!("reading {fp_path}: {e}"))?;
    let strategy = parse_strategy(args.opt("strategy"))?;
    let par = parse_threads(args.opt("threads"))?;

    let (cdb, stats, raw_bpt, storage_row) = match &db_dir {
        Some(dir) => {
            // Out-of-core: one cover pass per segment; identical result
            // to compressing the materialized database.
            let mut seg = SegmentedDb::open(dir).map_err(|e| format!("opening {dir}: {e}"))?;
            if let Some(b) = args.opt("budget") {
                seg = seg.with_budget(MemoryBudget::bytes(parse_bytes(b)?));
            }
            let (out, _, traffic) = measure_storage(|| {
                OocMiner::new(&seg).with_parallelism(par).compress(&fp, strategy)
            });
            let (cdb, stats) = out.map_err(|e| format!("compressing {dir}: {e}"))?;
            // Raw CSR footprint of the segmented store: data + offsets.
            let raw_bpt = (seg.total_elems() * 4 + (seg.total_rows() + 1) * 4) as f64
                / seg.total_rows().max(1) as f64;
            let row = format!(
                "{} segments in {} passes, resident peak {}",
                seg.num_segments(),
                traffic.passes,
                show_bytes(traffic.resident_peak),
            );
            (cdb, stats, raw_bpt, Some(row))
        }
        None => {
            let db = load_db(&path)?;
            let (cdb, stats) =
                Compressor::new(strategy).with_parallelism(par).compress_with_stats(&db, &fp);
            (cdb, stats, db.stats().bytes_per_tuple, None)
        }
    };
    println!("{path} compressed with {} patterns [{}]:", fp.len(), strategy.suffix());
    println!("  groups          {}", stats.num_groups);
    println!("  covered tuples  {} / {}", stats.covered_tuples, stats.num_tuples);
    println!("  ratio S_c/S_o   {:.4}", stats.ratio);
    // In-memory footprint per tuple: compressed CSR sections vs the raw
    // database's CSR storage.
    println!("  bytes/tuple     {:.1} (raw {raw_bpt:.1})", cdb.stats().bytes_per_tuple);
    println!("  time            {:.2?}", stats.duration);
    if let Some(row) = storage_row {
        println!("  storage         {row}");
    }
    // Top groups by member count.
    let mut groups: Vec<_> = cdb.groups().iter().collect();
    groups.sort_by_key(|g| std::cmp::Reverse(g.count()));
    for g in groups.iter().take(8) {
        let ids: Vec<String> = g.pattern().iter().map(|i| i.id().to_string()).collect();
        println!("  group {{{}}} × {}", ids.join(" "), g.count());
    }
    if groups.len() > 8 {
        println!("  … {} more groups", groups.len() - 8);
    }
    obs.finish()
}
