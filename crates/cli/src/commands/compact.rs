//! `gogreen compact <db-dir> [--segment-bytes N]` — rewrite a segment
//! store into full segments of the target size, dropping the
//! fragmentation appends leave behind.

use crate::args::Args;
use crate::commands::parse_bytes;
use gogreen_storage::SegmentWriter;

pub fn run(argv: Vec<String>) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let dir = args.positional(0, "segment store directory")?;
    let segment_bytes = match args.opt("segment-bytes") {
        Some(v) => parse_bytes(v)?,
        None => SegmentWriter::DEFAULT_SEGMENT_BYTES,
    };
    let report = gogreen_storage::compact(dir, segment_bytes)
        .map_err(|e| format!("compacting {dir}: {e}"))?;
    println!(
        "compacted {dir}: {} segments -> {} ({} rows)",
        report.segments_before, report.segments_after, report.rows
    );
    Ok(())
}
