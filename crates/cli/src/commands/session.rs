//! `gogreen session <db.txt>` — an interactive mining session driven by
//! a tiny REPL; the paper's iterative-refinement workflow, live.
//!
//! Commands (one per line on stdin):
//!
//! ```text
//! support <ξ>        set the minimum support (e.g. `support 2%`)
//! maxlen <K>         limit pattern length (0 clears)
//! run                mine under the current constraints
//! top [N]            show the N (default 10) best patterns of the last run
//! save <file>        write the last result as `items : support` lines
//! engine <name>      hmine | fp | tp | vt | naive
//! quit               exit
//! ```

use crate::args::{parse_support, Args};
use crate::commands::{load_db, parse_threads, setup_obs};
use gogreen_constraints::{Constraint, ConstraintSet};
use gogreen_core::session::{Engine, MiningSession};
use gogreen_data::{MinSupport, PatternSet};
use gogreen_util::pool::Parallelism;
use std::io::BufRead;

pub fn run(argv: Vec<String>) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let obs = setup_obs(&args)?;
    let path = args.positional(0, "database path")?;
    let db = load_db(path)?;
    let par = parse_threads(args.opt("threads"))?;
    println!(
        "session on {path} ({} tuples); `run` mines, `quit` exits, see docs for more",
        db.len()
    );
    let stdin = std::io::stdin();
    drive_with(db, par, stdin.lock())?;
    obs.finish()
}

/// The REPL body, separated from stdin for testability; `par` is the
/// thread budget for the recycling phases.
pub fn drive_with(
    db: gogreen_data::TransactionDb,
    par: Parallelism,
    input: impl BufRead,
) -> Result<(), String> {
    let mut session = MiningSession::new(db).with_parallelism(par);
    let mut support = MinSupport::percent(5.0);
    let mut maxlen: usize = 0;
    let mut last: Option<PatternSet> = None;
    for line in input.lines() {
        let line = line.map_err(|e| format!("reading input: {e}"))?;
        let mut parts = line.split_whitespace();
        let Some(cmd) = parts.next() else { continue };
        let arg = parts.next();
        match cmd {
            "support" => {
                support = parse_support(arg.ok_or("support expects a value")?)?;
                println!("support = {support}");
            }
            "maxlen" => {
                maxlen = arg
                    .ok_or("maxlen expects a number")?
                    .parse()
                    .map_err(|_| "invalid maxlen".to_owned())?;
                println!(
                    "maxlen = {}",
                    if maxlen == 0 { "off".into() } else { maxlen.to_string() }
                );
            }
            "engine" => {
                let name = arg.ok_or("engine expects a name")?;
                let engine =
                    Engine::from_key(name).ok_or_else(|| format!("unknown engine {name:?}"))?;
                session = MiningSession::new(session.db().clone())
                    .with_engine(engine)
                    .with_parallelism(par);
                println!("engine set (session reset)");
            }
            "run" => {
                let mut cs = ConstraintSet::support_only(support);
                if maxlen > 0 {
                    cs = cs.with(Constraint::MaxLength(maxlen));
                }
                let (result, report) = session.run_with_report(cs);
                println!(
                    "{} patterns in {:.2?} [{:?}]",
                    result.len(),
                    report.mining_time,
                    report.mode
                );
                last = Some(result);
            }
            "top" => {
                let n: usize = arg.map(|a| a.parse().unwrap_or(10)).unwrap_or(10);
                match &last {
                    None => println!("nothing mined yet (use `run`)"),
                    Some(set) => {
                        let mut v = set.sorted();
                        v.sort_by(|a, b| b.support().cmp(&a.support()).then(b.len().cmp(&a.len())));
                        for p in v.iter().take(n) {
                            println!("  {p}");
                        }
                    }
                }
            }
            "save" => match (&last, arg) {
                (Some(set), Some(file)) => {
                    gogreen_data::pattern_io::write_patterns_file(set, file)
                        .map_err(|e| format!("writing {file}: {e}"))?;
                    println!("wrote {file} ({} patterns)", set.len());
                }
                (None, _) => println!("nothing mined yet (use `run`)"),
                (_, None) => println!("save expects a file name"),
            },
            "quit" | "exit" => break,
            other => println!("unknown command {other:?}"),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gogreen_data::TransactionDb;

    #[test]
    fn scripted_session_runs() {
        let script = "support 3\nrun\nsupport 2\nmaxlen 2\nrun\ntop 3\nquit\n";
        drive_with(TransactionDb::paper_example(), Parallelism::serial(), script.as_bytes())
            .unwrap();
    }

    #[test]
    fn bad_support_is_an_error() {
        let script = "support nope\n";
        assert!(drive_with(
            TransactionDb::paper_example(),
            Parallelism::serial(),
            script.as_bytes()
        )
        .is_err());
    }

    #[test]
    fn threaded_session_runs_and_survives_engine_reset() {
        let script = "support 2\nrun\nengine fp\nrun\nengine vt\nrun\nengine naive\nrun\nquit\n";
        drive_with(TransactionDb::paper_example(), Parallelism::threads(3), script.as_bytes())
            .unwrap();
    }

    #[test]
    fn unknown_commands_are_tolerated() {
        let script = "frobnicate\nquit\n";
        drive_with(TransactionDb::paper_example(), Parallelism::serial(), script.as_bytes())
            .unwrap();
    }
}
