//! `gogreen stats <db.txt>` — dataset shape summary.

use crate::args::Args;
use crate::commands::load_db;

pub fn run(argv: Vec<String>) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let path = args.positional(0, "database path")?;
    let db = load_db(path)?;
    let s = db.stats();
    println!("{path}:");
    println!("  tuples         {}", s.num_tuples);
    println!("  avg length     {:.2}", s.avg_len);
    println!("  distinct items {}", s.num_items);
    println!("  occurrences    {}", s.total_items);
    if let Some(m) = s.max_item {
        println!("  max item id    {}", m.id());
    }
    // A quick support profile: how many items clear common thresholds.
    let counts = db.item_supports();
    for pct in [10.0f64, 5.0, 1.0, 0.1] {
        let min = ((s.num_tuples as f64) * pct / 100.0).ceil().max(1.0) as u64;
        let n = counts.iter().filter(|&&c| c >= min).count();
        println!("  items ≥ {pct:>4}%  {n}");
    }
    Ok(())
}
