//! `gogreen recycle <db.txt> --patterns <fp.txt> --support <ξ>` — the
//! paper's two-phase pipeline from the command line.

use crate::args::{parse_support, Args};
use crate::commands::{
    load_db, measure_arena_bytes, parse_engine_opts, parse_strategy, parse_threads, setup_obs,
    show_bytes, show_support,
};
use gogreen_core::engine::{engine_keys, engine_named};
use gogreen_core::{Compressor, RecyclingMiner};
use std::time::Instant;

pub fn run(argv: Vec<String>) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let obs = setup_obs(&args)?;
    let path = args.positional(0, "database path")?;
    let db = load_db(path)?;
    let fp_path = args.required("patterns")?;
    let fp = gogreen_data::pattern_io::read_patterns_file(fp_path)
        .map_err(|e| format!("reading {fp_path}: {e}"))?;
    let support = parse_support(args.required("support")?)?;
    let strategy = parse_strategy(args.opt("strategy"))?;
    let par = parse_threads(args.opt("threads"))?;
    let algo = args.opt("algo").unwrap_or("hm");
    let opts = parse_engine_opts(&args)?;
    let miner: Box<dyn RecyclingMiner> = engine_named(algo)
        .ok_or_else(|| format!("unknown algo {algo:?} ({})", engine_keys()))?
        .recycling_with(par, opts)
        .ok_or_else(|| format!("algo {algo:?} has no recycling adaptation"))?;

    let start = Instant::now();
    let (cdb, stats) =
        Compressor::new(strategy).with_parallelism(par).compress_with_stats(&db, &fp);
    let compress_time = start.elapsed();
    let start = Instant::now();
    let (patterns, arena_bytes) = measure_arena_bytes(|| miner.mine_par(&cdb, support, par));
    let mine_time = start.elapsed();

    println!("{path}: recycled {} patterns [{}-{}]", fp.len(), miner.name(), strategy.suffix());
    println!(
        "  compression  {compress_time:.2?} (ratio {:.4}, {} groups covering {}/{})",
        stats.ratio, stats.num_groups, stats.covered_tuples, stats.num_tuples
    );
    println!(
        "  mining       {mine_time:.2?} → {} patterns at {} (arena {})",
        patterns.len(),
        show_support(support, db.len()),
        show_bytes(arena_bytes),
    );
    if let Some(out) = args.opt("o") {
        gogreen_data::pattern_io::write_patterns_file(&patterns, out)
            .map_err(|e| format!("writing {out}: {e}"))?;
        println!("wrote {out}");
    }
    obs.finish()
}
