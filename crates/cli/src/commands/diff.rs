//! `gogreen diff <new.txt> <old.txt>` — what changed between two mining
//! rounds' pattern files.

use crate::args::Args;
use gogreen_data::pattern_io::read_patterns_file;

pub fn run(argv: Vec<String>) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let new_path = args.positional(0, "new pattern file")?;
    let old_path = args.positional(1, "old pattern file")?;
    let new = read_patterns_file(new_path).map_err(|e| format!("reading {new_path}: {e}"))?;
    let old = read_patterns_file(old_path).map_err(|e| format!("reading {old_path}: {e}"))?;

    let appeared = new.difference(&old);
    let vanished = old.difference(&new);
    let kept = new.intersection(&old);
    println!(
        "{new_path} vs {old_path}: +{} appeared, -{} vanished, {} kept",
        appeared.len(),
        vanished.len(),
        kept.len()
    );
    let limit: usize = args.opt("limit").and_then(|v| v.parse().ok()).unwrap_or(15);
    let mut shown = appeared.sorted();
    shown.sort_by_key(|p| std::cmp::Reverse(p.support()));
    for p in shown.iter().take(limit) {
        println!("  + {p}");
    }
    if shown.len() > limit {
        println!("  … {} more new patterns (--limit N to show more)", shown.len() - limit);
    }
    Ok(())
}
