//! One module per subcommand.

pub mod compact;
pub mod compress;
pub mod diff;
pub mod generate;
pub mod mine;
pub mod recycle;
pub mod session;
pub mod stats;

use crate::args::Args;
use gogreen_core::engine::{EngineOpts, VtRepr};
use gogreen_core::utility::Strategy;
use gogreen_data::{MinSupport, TransactionDb};
use gogreen_util::pool::Parallelism;
use std::io::Write;

/// Loads a transaction database with a friendly error.
pub fn load_db(path: &str) -> Result<TransactionDb, String> {
    gogreen_data::io::read_file(path).map_err(|e| format!("reading {path}: {e}"))
}

/// Parses a `--strategy` value (default MCP).
pub fn parse_strategy(opt: Option<&str>) -> Result<Strategy, String> {
    match opt.unwrap_or("mcp") {
        "mcp" => Ok(Strategy::Mcp),
        "mlp" => Ok(Strategy::Mlp),
        other => Err(format!("unknown strategy {other:?} (mcp|mlp)")),
    }
}

/// Parses a `--threads` value (default 1 = serial; `0` = all cores).
pub fn parse_threads(opt: Option<&str>) -> Result<Parallelism, String> {
    match opt {
        None => Ok(Parallelism::serial()),
        Some(v) => {
            let n: usize = v.parse().map_err(|_| format!("invalid --threads {v:?}"))?;
            Ok(Parallelism::threads(n))
        }
    }
}

/// Parses the per-engine options shared by `mine` and `recycle`:
/// currently just `--vt-repr auto|bitmap|tidlist|diffset`.
pub fn parse_engine_opts(args: &Args) -> Result<EngineOpts, String> {
    let vt_repr = match args.opt("vt-repr") {
        None => VtRepr::Auto,
        Some(v) => VtRepr::parse(v)
            .ok_or_else(|| format!("unknown --vt-repr {v:?} (auto|bitmap|tidlist|diffset)"))?,
    };
    Ok(EngineOpts { vt_repr })
}

/// Renders a support back for messages.
pub fn show_support(ms: MinSupport, db_len: usize) -> String {
    format!("{ms} (≥ {} tuples)", ms.to_absolute(db_len))
}

/// Measures a mining closure's arena traffic: runs `f` with the metrics
/// registry enabled and returns the `alloc.projection_bytes` delta —
/// the bytes every engine family's slab arenas (horizontal projection
/// slabs and vertical column arenas alike) report on flush. Restores
/// the registry's enabled state, so `--metrics-out` accounting is
/// unaffected.
pub fn measure_arena_bytes<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let was_enabled = gogreen_obs::metrics::enabled();
    if !was_enabled {
        gogreen_obs::metrics::set_enabled(true);
    }
    let before = gogreen_obs::metrics::get("alloc.projection_bytes").unwrap_or(0);
    let out = f();
    let after = gogreen_obs::metrics::get("alloc.projection_bytes").unwrap_or(0);
    if !was_enabled {
        gogreen_obs::metrics::set_enabled(false);
    }
    (out, after.saturating_sub(before))
}

/// Segment traffic of an out-of-core command, for the summary row.
pub struct StorageTraffic {
    /// Full segment payload loads (`storage.segments_read` delta).
    pub passes: u64,
    /// Largest segment payload resident at once.
    pub resident_peak: u64,
}

/// Measures a closure's segment traffic alongside its arena bytes: the
/// out-of-core analog of [`measure_arena_bytes`], returning how many
/// segment passes the work made and the resident high-water mark.
pub fn measure_storage<T>(f: impl FnOnce() -> T) -> (T, u64, StorageTraffic) {
    let was_enabled = gogreen_obs::metrics::enabled();
    if !was_enabled {
        gogreen_obs::metrics::set_enabled(true);
    }
    let arena_before = gogreen_obs::metrics::get("alloc.projection_bytes").unwrap_or(0);
    let passes_before = gogreen_obs::metrics::get("storage.segments_read").unwrap_or(0);
    let out = f();
    let arena_after = gogreen_obs::metrics::get("alloc.projection_bytes").unwrap_or(0);
    let passes_after = gogreen_obs::metrics::get("storage.segments_read").unwrap_or(0);
    let resident_peak = gogreen_obs::metrics::get("storage.resident_peak").unwrap_or(0);
    if !was_enabled {
        gogreen_obs::metrics::set_enabled(false);
    }
    let traffic =
        StorageTraffic { passes: passes_after.saturating_sub(passes_before), resident_peak };
    (out, arena_after.saturating_sub(arena_before), traffic)
}

/// Parses a byte count with an optional binary suffix: `4096`, `64k`,
/// `4M`, `1g`, `8MiB`.
pub fn parse_bytes(text: &str) -> Result<usize, String> {
    let lower = text.to_ascii_lowercase();
    let (digits, mult) = if let Some(d) = lower.strip_suffix("kib").or(lower.strip_suffix("kb")) {
        (d, 1usize << 10)
    } else if let Some(d) = lower.strip_suffix("mib").or(lower.strip_suffix("mb")) {
        (d, 1 << 20)
    } else if let Some(d) = lower.strip_suffix("gib").or(lower.strip_suffix("gb")) {
        (d, 1 << 30)
    } else if let Some(d) = lower.strip_suffix('k') {
        (d, 1 << 10)
    } else if let Some(d) = lower.strip_suffix('m') {
        (d, 1 << 20)
    } else if let Some(d) = lower.strip_suffix('g') {
        (d, 1 << 30)
    } else {
        (lower.as_str(), 1)
    };
    let n: usize = digits.trim().parse().map_err(|_| format!("invalid byte count {text:?}"))?;
    n.checked_mul(mult).ok_or_else(|| format!("byte count {text:?} overflows"))
}

/// Renders a byte count for summary rows (`1.4 MiB`, `312 KiB`, `96 B`).
pub fn show_bytes(bytes: u64) -> String {
    match bytes {
        b if b >= 1 << 20 => format!("{:.1} MiB", b as f64 / (1 << 20) as f64),
        b if b >= 1 << 10 => format!("{:.1} KiB", b as f64 / (1 << 10) as f64),
        b => format!("{b} B"),
    }
}

/// Observability wiring shared by the mining subcommands: honours
/// `--trace-out <file>`, `--metrics-out <file>`, `--profile-out <file>`,
/// `--snapshot-out <file>` and `--quiet-metrics`. Build one right after
/// [`Args::parse`] and call [`ObsGuard::finish`] once the command's work
/// is done.
pub struct ObsGuard {
    metrics_out: Option<String>,
    profile_out: Option<String>,
    snapshot_out: bool,
}

/// Installs the trace writer, enables the metrics registry and the
/// profile/snapshot layers as requested, and records where to write
/// each output on [`ObsGuard::finish`].
pub fn setup_obs(args: &Args) -> Result<ObsGuard, String> {
    gogreen_obs::set_quiet(args.switch("quiet-metrics"));
    if let Some(path) = args.opt("trace-out") {
        let f = std::fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?;
        gogreen_obs::set_trace_writer(Box::new(std::io::BufWriter::new(f)));
    }
    let metrics_out = args.opt("metrics-out").map(str::to_owned);
    let profile_out = args.opt("profile-out").map(str::to_owned);
    let snapshot_out = args.opt("snapshot-out").map(str::to_owned);
    if metrics_out.is_some() || snapshot_out.is_some() || args.opt("trace-out").is_some() {
        gogreen_obs::metrics::set_enabled(true);
    }
    if profile_out.is_some() {
        gogreen_obs::profile::reset();
        gogreen_obs::profile::set_enabled(true);
    }
    if let Some(path) = &snapshot_out {
        // Each emitted snapshot (e.g. one per session round) becomes one
        // JSON line: {"snapshot":label,"counters":{..},..}.
        let f = std::fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?;
        let mut w = std::io::BufWriter::new(f);
        gogreen_obs::snapshot::set_exporter(Box::new(move |label, snap| {
            let mut line = vec![("snapshot", gogreen_util::Json::from(label))];
            if let gogreen_util::Json::Obj(fields) = snap.to_json() {
                line.extend(fields.into_iter().map(|(k, v)| match k.as_str() {
                    "counters" => ("counters", v),
                    "maxes" => ("maxes", v),
                    _ => ("hists", v),
                }));
            }
            let _ = writeln!(w, "{}", gogreen_util::Json::obj(line).dump());
        }));
    }
    Ok(ObsGuard { metrics_out, profile_out, snapshot_out: snapshot_out.is_some() })
}

impl ObsGuard {
    /// Writes the metric snapshot as JSONL (counters + histograms),
    /// writes the collapsed-stack profile, prints the human-readable
    /// tables to stderr (unless `--quiet-metrics`), and flushes/closes
    /// the trace and snapshot writers.
    pub fn finish(self) -> Result<(), String> {
        if let Some(path) = &self.metrics_out {
            let mut body = gogreen_obs::metrics::to_jsonl();
            body.push_str(&gogreen_obs::histogram::to_jsonl());
            std::fs::write(path, body).map_err(|e| format!("writing {path}: {e}"))?;
            if !gogreen_obs::quiet() {
                eprintln!("metrics ({path}):\n{}", gogreen_obs::metrics::render_table());
                let hists = gogreen_obs::histogram::render_table();
                if !hists.contains("no histograms") {
                    eprintln!("histograms ({path}):\n{hists}");
                }
            }
        }
        if let Some(path) = &self.profile_out {
            gogreen_obs::profile::set_enabled(false);
            std::fs::write(path, gogreen_obs::profile::to_collapsed())
                .map_err(|e| format!("writing {path}: {e}"))?;
            if !gogreen_obs::quiet() {
                eprintln!("profile ({path}):\n{}", gogreen_obs::profile::render_table());
            }
        }
        if self.snapshot_out {
            // Dropping the exporter flushes its BufWriter.
            drop(gogreen_obs::snapshot::take_exporter());
        }
        if let Some(mut w) = gogreen_obs::take_trace_writer() {
            w.flush().map_err(|e| format!("flushing trace: {e}"))?;
        }
        Ok(())
    }
}
