//! One module per subcommand.

pub mod compress;
pub mod diff;
pub mod generate;
pub mod mine;
pub mod recycle;
pub mod session;
pub mod stats;

use gogreen_core::utility::Strategy;
use gogreen_data::{MinSupport, TransactionDb};
use gogreen_util::pool::Parallelism;

/// Loads a transaction database with a friendly error.
pub fn load_db(path: &str) -> Result<TransactionDb, String> {
    gogreen_data::io::read_file(path).map_err(|e| format!("reading {path}: {e}"))
}

/// Parses a `--strategy` value (default MCP).
pub fn parse_strategy(opt: Option<&str>) -> Result<Strategy, String> {
    match opt.unwrap_or("mcp") {
        "mcp" => Ok(Strategy::Mcp),
        "mlp" => Ok(Strategy::Mlp),
        other => Err(format!("unknown strategy {other:?} (mcp|mlp)")),
    }
}

/// Parses a `--threads` value (default 1 = serial; `0` = all cores).
pub fn parse_threads(opt: Option<&str>) -> Result<Parallelism, String> {
    match opt {
        None => Ok(Parallelism::serial()),
        Some(v) => {
            let n: usize = v.parse().map_err(|_| format!("invalid --threads {v:?}"))?;
            Ok(Parallelism::threads(n))
        }
    }
}

/// Renders a support back for messages.
pub fn show_support(ms: MinSupport, db_len: usize) -> String {
    format!("{ms} (≥ {} tuples)", ms.to_absolute(db_len))
}
