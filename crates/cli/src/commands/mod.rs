//! One module per subcommand.

pub mod compress;
pub mod diff;
pub mod generate;
pub mod mine;
pub mod recycle;
pub mod session;
pub mod stats;

use crate::args::Args;
use gogreen_core::utility::Strategy;
use gogreen_data::{MinSupport, TransactionDb};
use gogreen_util::pool::Parallelism;
use std::io::Write;

/// Loads a transaction database with a friendly error.
pub fn load_db(path: &str) -> Result<TransactionDb, String> {
    gogreen_data::io::read_file(path).map_err(|e| format!("reading {path}: {e}"))
}

/// Parses a `--strategy` value (default MCP).
pub fn parse_strategy(opt: Option<&str>) -> Result<Strategy, String> {
    match opt.unwrap_or("mcp") {
        "mcp" => Ok(Strategy::Mcp),
        "mlp" => Ok(Strategy::Mlp),
        other => Err(format!("unknown strategy {other:?} (mcp|mlp)")),
    }
}

/// Parses a `--threads` value (default 1 = serial; `0` = all cores).
pub fn parse_threads(opt: Option<&str>) -> Result<Parallelism, String> {
    match opt {
        None => Ok(Parallelism::serial()),
        Some(v) => {
            let n: usize = v.parse().map_err(|_| format!("invalid --threads {v:?}"))?;
            Ok(Parallelism::threads(n))
        }
    }
}

/// Renders a support back for messages.
pub fn show_support(ms: MinSupport, db_len: usize) -> String {
    format!("{ms} (≥ {} tuples)", ms.to_absolute(db_len))
}

/// Observability wiring shared by the mining subcommands: honours
/// `--trace-out <file>`, `--metrics-out <file>` and `--quiet-metrics`.
/// Build one right after [`Args::parse`] and call [`ObsGuard::finish`]
/// once the command's work is done.
pub struct ObsGuard {
    metrics_out: Option<String>,
}

/// Installs the trace writer, enables the metrics registry, and records
/// where to write metrics on [`ObsGuard::finish`].
pub fn setup_obs(args: &Args) -> Result<ObsGuard, String> {
    gogreen_obs::set_quiet(args.switch("quiet-metrics"));
    if let Some(path) = args.opt("trace-out") {
        let f = std::fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?;
        gogreen_obs::set_trace_writer(Box::new(std::io::BufWriter::new(f)));
    }
    let metrics_out = args.opt("metrics-out").map(str::to_owned);
    if metrics_out.is_some() || args.opt("trace-out").is_some() {
        gogreen_obs::metrics::set_enabled(true);
    }
    Ok(ObsGuard { metrics_out })
}

impl ObsGuard {
    /// Writes the metric snapshot as JSONL, prints the human-readable
    /// table to stderr (unless `--quiet-metrics`), and flushes/closes
    /// the trace writer.
    pub fn finish(self) -> Result<(), String> {
        if let Some(path) = &self.metrics_out {
            std::fs::write(path, gogreen_obs::metrics::to_jsonl())
                .map_err(|e| format!("writing {path}: {e}"))?;
            if !gogreen_obs::quiet() {
                eprintln!("metrics ({path}):\n{}", gogreen_obs::metrics::render_table());
            }
        }
        if let Some(mut w) = gogreen_obs::take_trace_writer() {
            w.flush().map_err(|e| format!("flushing trace: {e}"))?;
        }
        Ok(())
    }
}
