//! One module per subcommand.

pub mod compress;
pub mod diff;
pub mod generate;
pub mod mine;
pub mod recycle;
pub mod session;
pub mod stats;

use gogreen_core::utility::Strategy;
use gogreen_data::{MinSupport, TransactionDb};

/// Loads a transaction database with a friendly error.
pub fn load_db(path: &str) -> Result<TransactionDb, String> {
    gogreen_data::io::read_file(path).map_err(|e| format!("reading {path}: {e}"))
}

/// Parses a `--strategy` value (default MCP).
pub fn parse_strategy(opt: Option<&str>) -> Result<Strategy, String> {
    match opt.unwrap_or("mcp") {
        "mcp" => Ok(Strategy::Mcp),
        "mlp" => Ok(Strategy::Mlp),
        other => Err(format!("unknown strategy {other:?} (mcp|mlp)")),
    }
}

/// Renders a support back for messages.
pub fn show_support(ms: MinSupport, db_len: usize) -> String {
    format!("{ms} (≥ {} tuples)", ms.to_absolute(db_len))
}
