//! Black-box test of the `gogreen` binary: the full generate → mine →
//! compress → recycle → verify workflow through the real CLI surface.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_gogreen")
}

fn tmpdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "gogreen-cli-test-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(args: &[&str]) -> Output {
    Command::new(bin()).args(args).output().expect("spawn gogreen")
}

fn run_ok(args: &[&str]) -> String {
    let out = run(args);
    assert!(
        out.status.success(),
        "gogreen {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap()
}

#[test]
fn full_workflow_round_trips() {
    let dir = tmpdir();
    let db = dir.join("db.txt");
    let fp_hi = dir.join("fp_hi.txt");
    let fp_rec = dir.join("fp_rec.txt");
    let fp_scratch = dir.join("fp_scratch.txt");
    let dbs = db.to_str().unwrap();

    let out = run_ok(&["generate", "pumsb", "--scale", "0.01", "-o", dbs]);
    assert!(out.contains("wrote"), "{out}");

    let out = run_ok(&["stats", dbs]);
    assert!(out.contains("tuples"), "{out}");

    run_ok(&["mine", dbs, "--support", "90%", "-o", fp_hi.to_str().unwrap()]);
    let out = run_ok(&["compress", dbs, "--patterns", fp_hi.to_str().unwrap()]);
    assert!(out.contains("ratio"), "{out}");

    run_ok(&[
        "recycle",
        dbs,
        "--patterns",
        fp_hi.to_str().unwrap(),
        "--support",
        "82%",
        "-o",
        fp_rec.to_str().unwrap(),
    ]);
    run_ok(&["mine", dbs, "--support", "82%", "--algo", "fp", "-o", fp_scratch.to_str().unwrap()]);

    // Recycled output must equal the from-scratch output line for line
    // (the format is canonical).
    let a = std::fs::read_to_string(&fp_rec).unwrap();
    let b = std::fs::read_to_string(&fp_scratch).unwrap();
    assert_eq!(a, b, "recycled vs scratch pattern files differ");
    assert!(a.lines().count() > 10);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn constrained_mine_restricts_output() {
    let dir = tmpdir();
    let db = dir.join("db.txt");
    let dbs = db.to_str().unwrap();
    run_ok(&["generate", "connect4", "--scale", "0.01", "-o", dbs]);
    let all = dir.join("all.txt");
    let limited = dir.join("limited.txt");
    run_ok(&["mine", dbs, "--support", "90%", "-o", all.to_str().unwrap()]);
    run_ok(&[
        "mine",
        dbs,
        "--support",
        "90%",
        "--max-length",
        "2",
        "-o",
        limited.to_str().unwrap(),
    ]);
    let all_n = std::fs::read_to_string(&all).unwrap().lines().count();
    let lim = std::fs::read_to_string(&limited).unwrap();
    assert!(lim.lines().count() < all_n);
    for line in lim.lines() {
        let items = line.split(':').next().unwrap().split_whitespace().count();
        assert!(items <= 2, "pattern too long: {line}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn session_script_drives_repl() {
    let dir = tmpdir();
    let db = dir.join("db.txt");
    let dbs = db.to_str().unwrap();
    run_ok(&["generate", "connect4", "--scale", "0.01", "-o", dbs]);
    let mut child = Command::new(bin())
        .args(["session", dbs])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    use std::io::Write;
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"support 92%\nrun\nsupport 86%\nrun\ntop 3\nquit\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("[Fresh]"), "{text}");
    assert!(text.contains("[Recycled]"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_usage_fails_cleanly() {
    assert!(!run(&["mine"]).status.success());
    assert!(!run(&["mine", "/nonexistent", "--support", "5%"]).status.success());
    assert!(!run(&["frobnicate"]).status.success());
    assert!(run(&["help"]).status.success());
}

#[test]
fn diff_and_condensed_filters() {
    let dir = tmpdir();
    let db = dir.join("db.txt");
    let dbs = db.to_str().unwrap();
    run_ok(&["generate", "connect4", "--scale", "0.01", "-o", dbs]);
    let hi = dir.join("hi.txt");
    let lo = dir.join("lo.txt");
    run_ok(&["mine", dbs, "--support", "92%", "-o", hi.to_str().unwrap()]);
    run_ok(&["mine", dbs, "--support", "88%", "-o", lo.to_str().unwrap()]);
    let out = run_ok(&["diff", lo.to_str().unwrap(), hi.to_str().unwrap()]);
    assert!(out.contains("appeared"), "{out}");
    assert!(out.contains("-0 vanished"), "{out}"); // relaxation only adds

    // Maximal output must be a (strict, here) subset of the full set.
    let maximal = dir.join("max.txt");
    run_ok(&[
        "mine",
        dbs,
        "--support",
        "88%",
        "--filter",
        "maximal",
        "-o",
        maximal.to_str().unwrap(),
    ]);
    let full_n = std::fs::read_to_string(&lo).unwrap().lines().count();
    let max_n = std::fs::read_to_string(&maximal).unwrap().lines().count();
    assert!(max_n > 0 && max_n < full_n, "maximal {max_n} vs full {full_n}");
    std::fs::remove_dir_all(&dir).ok();
}
