//! Semantic soundness of [`ConstraintSet::relation_to`]: when it claims
//! `Tightened`, the new solution space really is a subset of the old one
//! (and symmetrically for `Relaxed`) — checked by brute force over the
//! power set of a small item universe.

use gogreen_constraints::{Constraint, ConstraintSet, ItemAttributes, Relation};
use gogreen_data::{Item, MinSupport, Pattern};
use proptest::prelude::*;

/// Enumerates all non-empty itemsets over items 0..n with a synthetic
/// support (larger sets less frequent, deterministic).
fn universe(n: u32, db_len: usize) -> Vec<Pattern> {
    let mut out = Vec::new();
    for mask in 1u32..(1 << n) {
        let items: Vec<Item> =
            (0..n).filter(|b| mask & (1 << b) != 0).map(Item).collect();
        let support = (db_len / items.len()).max(1) as u64;
        out.push(Pattern::new(items, support));
    }
    out
}

fn arb_constraint() -> impl proptest::strategy::Strategy<Value = Constraint> {
    prop_oneof![
        (1usize..5).prop_map(Constraint::MaxLength),
        (1usize..5).prop_map(Constraint::MinLength),
        prop::collection::btree_set(0u32..5, 1..4).prop_map(|s| {
            Constraint::SubsetOf(s.into_iter().map(Item).collect())
        }),
        prop::collection::btree_set(0u32..5, 1..3).prop_map(|s| {
            Constraint::ContainsAll(s.into_iter().map(Item).collect())
        }),
        prop::collection::btree_set(0u32..5, 1..4).prop_map(|s| {
            Constraint::ContainsAny(s.into_iter().map(Item).collect())
        }),
    ]
}

fn arb_set() -> impl proptest::strategy::Strategy<Value = ConstraintSet> {
    ((1u64..20), prop::collection::vec(arb_constraint(), 0..3)).prop_map(|(ms, cs)| {
        let mut set = ConstraintSet::support_only(MinSupport::Absolute(ms));
        for c in cs {
            set = set.with(c);
        }
        set
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn tightened_means_subset(a in arb_set(), b in arb_set()) {
        let attrs = ItemAttributes::new();
        let db_len = 40;
        let all = universe(5, db_len);
        let sols = |cs: &ConstraintSet| -> Vec<bool> {
            all.iter().map(|p| cs.satisfied_by(p, db_len, &attrs)).collect()
        };
        match a.relation_to(&b, db_len) {
            Relation::Tightened | Relation::Equal => {
                // a's solutions ⊆ b's solutions.
                let (sa, sb) = (sols(&a), sols(&b));
                for (k, (&x, &y)) in sa.iter().zip(&sb).enumerate() {
                    prop_assert!(!x || y, "pattern {} satisfies tightened but not old", all[k]);
                }
            }
            Relation::Relaxed => {
                let (sa, sb) = (sols(&a), sols(&b));
                for (k, (&x, &y)) in sa.iter().zip(&sb).enumerate() {
                    prop_assert!(!y || x, "pattern {} satisfies old but not relaxed", all[k]);
                }
            }
            // Mixed/Incomparable make no subset claim.
            _ => {}
        }
    }

    #[test]
    fn relation_is_antisymmetric(a in arb_set(), b in arb_set()) {
        let db_len = 40;
        let ab = a.relation_to(&b, db_len);
        let ba = b.relation_to(&a, db_len);
        match ab {
            Relation::Equal => prop_assert_eq!(ba, Relation::Equal),
            Relation::Tightened => prop_assert_eq!(ba, Relation::Relaxed),
            Relation::Relaxed => prop_assert_eq!(ba, Relation::Tightened),
            Relation::Mixed => prop_assert_eq!(ba, Relation::Mixed),
            Relation::Incomparable => prop_assert_eq!(ba, Relation::Incomparable),
        }
    }

    #[test]
    fn relation_to_self_is_equal(a in arb_set()) {
        prop_assert_eq!(a.relation_to(&a, 40), Relation::Equal);
    }
}
