//! Semantic soundness of [`ConstraintSet::relation_to`]: when it claims
//! `Tightened`, the new solution space really is a subset of the old one
//! (and symmetrically for `Relaxed`) — checked by brute force over the
//! power set of a small item universe, on seeded random constraint sets.

use gogreen_constraints::{Constraint, ConstraintSet, ItemAttributes, Relation};
use gogreen_data::{Item, MinSupport, Pattern};
use gogreen_util::rng::{Rng, SmallRng};
use std::collections::BTreeSet;

/// Enumerates all non-empty itemsets over items 0..n with a synthetic
/// support (larger sets less frequent, deterministic).
fn universe(n: u32, db_len: usize) -> Vec<Pattern> {
    let mut out = Vec::new();
    for mask in 1u32..(1 << n) {
        let items: Vec<Item> = (0..n).filter(|b| mask & (1 << b) != 0).map(Item).collect();
        let support = (db_len / items.len()).max(1) as u64;
        out.push(Pattern::new(items, support));
    }
    out
}

fn random_items(rng: &mut SmallRng, min: usize, max: usize) -> Vec<Item> {
    let want = min + rng.gen_index(max - min + 1);
    let mut set = BTreeSet::new();
    while set.len() < want {
        set.insert(rng.gen_below(5) as u32);
    }
    set.into_iter().map(Item).collect()
}

fn random_constraint(rng: &mut SmallRng) -> Constraint {
    match rng.gen_index(5) {
        0 => Constraint::MaxLength(1 + rng.gen_index(4)),
        1 => Constraint::MinLength(1 + rng.gen_index(4)),
        2 => Constraint::SubsetOf(random_items(rng, 1, 3)),
        3 => Constraint::ContainsAll(random_items(rng, 1, 2)),
        _ => Constraint::ContainsAny(random_items(rng, 1, 3)),
    }
}

fn random_set(rng: &mut SmallRng) -> ConstraintSet {
    let ms = 1 + rng.gen_below(19);
    let mut set = ConstraintSet::support_only(MinSupport::Absolute(ms));
    for _ in 0..rng.gen_index(3) {
        set = set.with(random_constraint(rng));
    }
    set
}

#[test]
fn tightened_means_subset() {
    for case in 0..128u64 {
        let mut rng = SmallRng::seed_from_u64(0x7197_0000 + case);
        let a = random_set(&mut rng);
        let b = random_set(&mut rng);
        let attrs = ItemAttributes::new();
        let db_len = 40;
        let all = universe(5, db_len);
        let sols = |cs: &ConstraintSet| -> Vec<bool> {
            all.iter().map(|p| cs.satisfied_by(p, db_len, &attrs)).collect()
        };
        match a.relation_to(&b, db_len) {
            Relation::Tightened | Relation::Equal => {
                // a's solutions ⊆ b's solutions.
                let (sa, sb) = (sols(&a), sols(&b));
                for (k, (&x, &y)) in sa.iter().zip(&sb).enumerate() {
                    assert!(
                        !x || y,
                        "case {case}: pattern {} satisfies tightened but not old",
                        all[k]
                    );
                }
            }
            Relation::Relaxed => {
                let (sa, sb) = (sols(&a), sols(&b));
                for (k, (&x, &y)) in sa.iter().zip(&sb).enumerate() {
                    assert!(
                        !y || x,
                        "case {case}: pattern {} satisfies old but not relaxed",
                        all[k]
                    );
                }
            }
            // Mixed/Incomparable make no subset claim.
            _ => {}
        }
    }
}

#[test]
fn relation_is_antisymmetric() {
    for case in 0..128u64 {
        let mut rng = SmallRng::seed_from_u64(0xa271_0000 + case);
        let a = random_set(&mut rng);
        let b = random_set(&mut rng);
        let db_len = 40;
        let ab = a.relation_to(&b, db_len);
        let ba = b.relation_to(&a, db_len);
        match ab {
            Relation::Equal => assert_eq!(ba, Relation::Equal, "case {case}"),
            Relation::Tightened => assert_eq!(ba, Relation::Relaxed, "case {case}"),
            Relation::Relaxed => assert_eq!(ba, Relation::Tightened, "case {case}"),
            Relation::Mixed => assert_eq!(ba, Relation::Mixed, "case {case}"),
            Relation::Incomparable => assert_eq!(ba, Relation::Incomparable, "case {case}"),
        }
    }
}

#[test]
fn relation_to_self_is_equal() {
    for case in 0..128u64 {
        let mut rng = SmallRng::seed_from_u64(0x5e1f_0000 + case);
        let a = random_set(&mut rng);
        assert_eq!(a.relation_to(&a, 40), Relation::Equal, "case {case}");
    }
}
