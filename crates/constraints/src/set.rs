//! Constraint sets and the tighten/relax relation between mining rounds.

use crate::attrs::ItemAttributes;
use crate::constraint::{Constraint, Tightness};
use gogreen_data::{MinSupport, Pattern};

/// A full constraint specification for one mining round: the paper's `C`,
/// always containing a minimum support plus optional further constraints.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstraintSet {
    min_support: MinSupport,
    others: Vec<Constraint>,
}

/// How a new constraint set relates to the previous round's — the dispatch
/// point of the recycling engine (§2):
///
/// * `Tightened` → the new answer is a **filter** of the old `FP`.
/// * `Relaxed` → the old `FP` cannot contain the new answer; recycle it as
///   compression fodder and re-mine.
/// * `Mixed`/`Incomparable` → treated like `Relaxed` (re-mine), with
///   post-filtering for the non-support constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// Identical solution spaces.
    Equal,
    /// Every constraint is as tight or tighter.
    Tightened,
    /// Every constraint is as loose or looser.
    Relaxed,
    /// Some tighter, some looser.
    Mixed,
    /// Constraint kinds don't align.
    Incomparable,
}

impl ConstraintSet {
    /// A constraint set with only a minimum support.
    pub fn support_only(min_support: MinSupport) -> Self {
        ConstraintSet { min_support, others: Vec::new() }
    }

    /// Adds a constraint (builder style).
    pub fn with(mut self, c: Constraint) -> Self {
        self.others.push(c.normalized());
        self
    }

    /// The minimum-support component.
    pub fn min_support(&self) -> MinSupport {
        self.min_support
    }

    /// Replaces the minimum support, keeping other constraints.
    pub fn set_min_support(&mut self, ms: MinSupport) {
        self.min_support = ms;
    }

    /// The non-support constraints.
    pub fn others(&self) -> &[Constraint] {
        &self.others
    }

    /// Evaluates all constraints on a mined pattern.
    pub fn satisfied_by(&self, p: &Pattern, db_len: usize, attrs: &ItemAttributes) -> bool {
        p.support() >= self.min_support.to_absolute(db_len)
            && self.others.iter().all(|c| c.satisfied(p.items(), attrs))
    }

    /// Classifies this set against `old` for a database of `db_len`
    /// tuples.
    ///
    /// The comparison is conservative: constraints are matched pairwise in
    /// order, and any unmatched or incomparable pair degrades the result,
    /// so a `Tightened`/`Relaxed` verdict is always sound (never claims a
    /// smaller/larger solution space wrongly).
    pub fn relation_to(&self, old: &ConstraintSet, db_len: usize) -> Relation {
        if self.others.len() != old.others.len() {
            return Relation::Incomparable;
        }
        let new_abs = self.min_support.to_absolute(db_len);
        let old_abs = old.min_support.to_absolute(db_len);
        let mut any_tighter = new_abs > old_abs;
        let mut any_looser = new_abs < old_abs;
        for (n, o) in self.others.iter().zip(&old.others) {
            match n.tightness_vs(o) {
                Tightness::Equal => {}
                Tightness::Tighter => any_tighter = true,
                Tightness::Looser => any_looser = true,
                Tightness::Incomparable => return Relation::Incomparable,
            }
        }
        match (any_tighter, any_looser) {
            (false, false) => Relation::Equal,
            (true, false) => Relation::Tightened,
            (false, true) => Relation::Relaxed,
            (true, true) => Relation::Mixed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gogreen_data::Item;

    fn items(ids: &[u32]) -> Vec<Item> {
        ids.iter().map(|&i| Item(i)).collect()
    }

    #[test]
    fn support_only_relations() {
        let five = ConstraintSet::support_only(MinSupport::percent(5.0));
        let three = ConstraintSet::support_only(MinSupport::percent(3.0));
        assert_eq!(three.relation_to(&five, 1000), Relation::Relaxed);
        assert_eq!(five.relation_to(&three, 1000), Relation::Tightened);
        assert_eq!(five.relation_to(&five, 1000), Relation::Equal);
    }

    #[test]
    fn mixed_when_support_drops_but_length_tightens() {
        let old =
            ConstraintSet::support_only(MinSupport::Absolute(5)).with(Constraint::MaxLength(5));
        let new =
            ConstraintSet::support_only(MinSupport::Absolute(3)).with(Constraint::MaxLength(3));
        assert_eq!(new.relation_to(&old, 100), Relation::Mixed);
    }

    #[test]
    fn incomparable_on_shape_mismatch() {
        let old = ConstraintSet::support_only(MinSupport::Absolute(5));
        let new =
            ConstraintSet::support_only(MinSupport::Absolute(5)).with(Constraint::MaxLength(3));
        assert_eq!(new.relation_to(&old, 100), Relation::Incomparable);
        let old2 =
            ConstraintSet::support_only(MinSupport::Absolute(5)).with(Constraint::MinLength(2));
        assert_eq!(new.relation_to(&old2, 100), Relation::Incomparable);
    }

    #[test]
    fn satisfied_by_checks_all_parts() {
        let attrs = ItemAttributes::new();
        let cs = ConstraintSet::support_only(MinSupport::Absolute(3))
            .with(Constraint::MaxLength(2))
            .with(Constraint::SubsetOf(items(&[1, 2, 3])));
        let ok = Pattern::from_ids([1, 2], 4);
        assert!(cs.satisfied_by(&ok, 100, &attrs));
        let low_support = Pattern::from_ids([1, 2], 2);
        assert!(!cs.satisfied_by(&low_support, 100, &attrs));
        let too_long = Pattern::from_ids([1, 2, 3], 4);
        assert!(!cs.satisfied_by(&too_long, 100, &attrs));
        let outside = Pattern::from_ids([1, 4], 4);
        assert!(!cs.satisfied_by(&outside, 100, &attrs));
    }

    #[test]
    fn relaxed_subset_of() {
        let old = ConstraintSet::support_only(MinSupport::Absolute(3))
            .with(Constraint::SubsetOf(items(&[1, 2])));
        let new = ConstraintSet::support_only(MinSupport::Absolute(3))
            .with(Constraint::SubsetOf(items(&[1, 2, 3])));
        assert_eq!(new.relation_to(&old, 100), Relation::Relaxed);
    }
}
