#![warn(missing_docs)]

//! Constrained frequent-pattern mining framework.
//!
//! The paper's problem statement (§2) mines under a *set of constraints*
//! `C` that always includes a minimum-support threshold and may add
//! further predicates drawn from the four classes the constrained-mining
//! literature integrates into miners (Ng et al., Pei & Han):
//!
//! * **anti-monotone** — if a pattern violates it, so do all supersets
//!   (e.g. `sup(X) ≥ ξ`, `|X| ≤ k`, `sum(price) ≤ v` for non-negative
//!   prices). These prune the search space during mining.
//! * **monotone** — if a pattern satisfies it, so do all supersets
//!   (e.g. `|X| ≥ k`).
//! * **succinct** — expressible as set operations on item subsets
//!   (e.g. `X ⊆ S`, `X ∩ S ≠ ∅`).
//! * **convertible** — become anti-/monotone under an item ordering
//!   (e.g. `avg(price) ≥ v`).
//!
//! The recycling engine needs exactly two operations from this framework:
//!
//! 1. [`ConstraintSet::relation_to`] — decide whether a new constraint set
//!    is a *tightening* or a *relaxation* of the previous round's. A
//!    tightening is answered by [`filtering`](ConstraintSet::satisfied_by)
//!    the old `FP`; a relaxation triggers compression + re-mining.
//! 2. [`pushdown`] — derive prune predicates that projected-database
//!    miners can consult while mining (anti-monotone and succinct classes
//!    only; the rest are post-filters).

pub mod attrs;
pub mod constraint;
pub mod pushdown;
pub mod set;

pub use attrs::{AttrId, ItemAttributes};
pub use constraint::{Constraint, ConstraintClass};
pub use pushdown::Pushdown;
pub use set::{ConstraintSet, Relation};
